"""Setuptools shim.

Metadata lives in pyproject.toml; this file exists so that editable
installs (``pip install -e .``) work in offline environments whose
setuptools lacks the PEP 660 editable-wheel path (no ``wheel`` package).
"""

from setuptools import setup

setup()
