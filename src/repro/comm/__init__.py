"""The two-party communication substrate.

Protocols in this library are written as *party coroutines*: each party is a
Python generator that yields :class:`~repro.comm.engine.Send` and
:class:`~repro.comm.engine.Recv` effects and returns its output.  The engine
(:func:`~repro.comm.engine.run_two_party`) interleaves the two coroutines,
delivering messages and keeping exact bit and message counts.  This design
enforces the information-flow discipline of the communication model by
construction: a party's code only ever sees its own input, the shared random
string, its private coins, and the bits the other party actually sent.

Message/round accounting follows the paper's convention: the *round
complexity* is the total number of messages exchanged, and consecutive sends
by the same party (with nothing received in between) count as one message.
"""

from repro.comm.engine import (
    PartyContext,
    Recv,
    Send,
    TwoPartyOutcome,
    run_two_party,
)
from repro.comm.errors import (
    ProtocolAborted,
    ProtocolDeadlock,
    ProtocolError,
    ProtocolViolation,
)
from repro.comm.parallel import run_batched
from repro.comm.render import render_transcript, summarize_by_sender
from repro.comm.transcript import Message, Transcript

__all__ = [
    "run_batched",
    "render_transcript",
    "summarize_by_sender",
    "PartyContext",
    "Recv",
    "Send",
    "TwoPartyOutcome",
    "run_two_party",
    "ProtocolAborted",
    "ProtocolDeadlock",
    "ProtocolError",
    "ProtocolViolation",
    "Message",
    "Transcript",
]
