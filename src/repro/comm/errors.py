"""Exception hierarchy for protocol execution.

Protocol failures are *simulator* failures (bugs or budget overruns), never
the randomized errors the paper's theorems allow -- a randomized protocol
that merely outputs a wrong set terminates normally and the wrongness is
detected by comparing against ground truth in tests and benchmarks.
"""

from __future__ import annotations

__all__ = [
    "ProtocolError",
    "ProtocolDeadlock",
    "ProtocolViolation",
    "MessageToFinishedPlayer",
    "ProtocolAborted",
]


class ProtocolError(Exception):
    """Base class for everything raised by the protocol engines."""


class ProtocolDeadlock(ProtocolError):
    """Every live party is blocked on a receive with an empty inbox.

    Indicates a protocol bug: mismatched send/receive structure between the
    two party coroutines.
    """


class ProtocolViolation(ProtocolError):
    """A party coroutine yielded something the engine cannot interpret,
    or violated the model (e.g. sent a non-``BitString`` payload)."""


class MessageToFinishedPlayer(ProtocolViolation):
    """A multiparty message was addressed to a player that had already
    finished (or crashed under a fault model).

    The BSP scheduler defers this check to the top of the following
    superstep (where the full-scan scheduler would have seen it), then
    raises with the offending player and its undelivered message count.
    Subclassing :class:`ProtocolViolation` keeps pre-existing handlers
    working; fault-aware callers catch this type to distinguish "peer is
    gone" from a structural protocol bug.
    """

    def __init__(self, message: str, player: str, undelivered: int) -> None:
        super().__init__(message)
        self.player = player
        self.undelivered = undelivered

    def __reduce__(self):
        # Same pickling concern as ProtocolAborted: keep the typed fields
        # across process boundaries (executor workers).
        return (type(self), (self.args[0], self.player, self.undelivered))


class ProtocolAborted(ProtocolError):
    """The run exceeded its communication budget.

    Expected-communication protocols are converted to worst-case ones by
    aborting after a constant factor times the expected cost (the paper's
    remark at the end of the toy-protocol analysis); this is the exception
    that surfaces such an abort.  Callers that wrap protocols in
    repeat-until-success loops catch it and retry with fresh randomness.
    """

    def __init__(self, message: str, bits_used: int, budget: int) -> None:
        super().__init__(message)
        self.bits_used = bits_used
        self.budget = budget

    def __reduce__(self):
        # Default exception pickling replays only ``args`` (the message),
        # which would lose bits_used/budget and break unpickling in trial
        # executor workers; reconstruct with the full signature instead.
        return (type(self), (self.args[0], self.bits_used, self.budget))
