"""The two-party protocol engine.

A protocol party is a *generator function* taking a :class:`PartyContext`
and yielding effects:

* ``yield Send(payload)`` -- put a :class:`~repro.util.bits.BitString` on the
  wire (returns ``None``);
* ``message = yield Recv()`` -- block until the other party's next payload
  arrives and receive it.

The party's ``return`` value is its protocol output.  The engine
(:func:`run_two_party`) interleaves the two generators -- running each until
it blocks on an empty inbox -- delivers payloads in FIFO order, and records
every send in a :class:`~repro.comm.transcript.Transcript`.

This structure enforces the communication model *by construction*: the only
values that cross between the two coroutines are the ``Send`` payloads, so a
party can only learn about the other's input through counted bits.

Example
-------
>>> from repro.util.bits import encode_uint, decode_uint
>>> def alice(ctx):
...     yield Send(encode_uint(ctx.input, 8))
...     reply = yield Recv()
...     return decode_uint(reply, 8)
>>> def bob(ctx):
...     got = yield Recv()
...     yield Send(encode_uint(decode_uint(got, 8) + 1, 8))
...     return None
>>> outcome = run_two_party(alice, bob, alice_input=41, bob_input=None, shared_seed=0)
>>> outcome.alice_output, outcome.transcript.total_bits, outcome.transcript.num_messages
(42, 16, 2)
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Generator, Optional

from repro.comm.errors import ProtocolAborted, ProtocolDeadlock, ProtocolViolation
from repro.comm.transcript import Transcript
from repro.faults.state import STATE as _FAULTS
from repro.obs.state import STATE as _OBS
from repro.util.bits import BitString
from repro.util.rng import PrivateRandomness, SharedRandomness

__all__ = [
    "Send",
    "Recv",
    "PartyContext",
    "TwoPartyOutcome",
    "PartyFn",
    "run_two_party",
]

ALICE = "alice"
BOB = "bob"


@dataclass(frozen=True)
class Send:
    """Effect: transmit ``payload`` to the other party."""

    payload: BitString

    def __post_init__(self) -> None:
        if not isinstance(self.payload, BitString):
            raise ProtocolViolation(
                f"Send payload must be a BitString, got {type(self.payload).__name__}"
            )


@dataclass(frozen=True)
class Recv:
    """Effect: block until the other party's next payload arrives."""


@dataclass(frozen=True)
class PartyContext:
    """Everything one party may legitimately look at.

    :param role: ``"alice"`` or ``"bob"`` (players get names in multiparty
        runs).
    :param input: this party's private input.
    :param shared: the common random string (identical object contents for
        both parties).
    :param private: this party's private coins (distinct per party).
    """

    role: str
    input: Any
    shared: SharedRandomness
    private: PrivateRandomness


PartyFn = Callable[[PartyContext], Generator]


@dataclass
class TwoPartyOutcome:
    """Result of one two-party protocol execution."""

    alice_output: Any
    bob_output: Any
    transcript: Transcript

    @property
    def total_bits(self) -> int:
        """Shorthand for ``transcript.total_bits``."""
        return self.transcript.total_bits

    @property
    def num_messages(self) -> int:
        """Shorthand for ``transcript.num_messages`` (= rounds)."""
        return self.transcript.num_messages


class _PartyState:
    """Book-keeping for one running party coroutine."""

    def __init__(self, role: str, generator: Generator) -> None:
        self.role = role
        self.generator = generator
        self.inbox: Deque[BitString] = deque()
        self.started = False
        self.done = False
        self.output: Any = None
        # The effect the party is currently blocked on (None = runnable).
        self.pending_effect: Optional[object] = None


def run_two_party(
    alice_fn: PartyFn,
    bob_fn: PartyFn,
    *,
    alice_input: Any,
    bob_input: Any,
    shared_seed: int = 0,
    shared: Optional[SharedRandomness] = None,
    alice_private_seed: int = 1,
    bob_private_seed: int = 2,
    max_total_bits: Optional[int] = None,
    transcript: Optional[Transcript] = None,
    fault_injector: Optional[Callable[[str, BitString], BitString]] = None,
) -> TwoPartyOutcome:
    """Execute a two-party protocol to completion.

    :param alice_fn: Alice's party coroutine (generator function).
    :param bob_fn: Bob's party coroutine.
    :param alice_input: Alice's private input.
    :param bob_input: Bob's private input.
    :param shared_seed: seed for the common random string (ignored when an
        explicit ``shared`` object is passed).
    :param shared: an existing :class:`SharedRandomness` to use, e.g. a
        namespaced view when this run is a sub-protocol of a larger one.
    :param alice_private_seed: seed for Alice's private coins.
    :param bob_private_seed: seed for Bob's private coins.
    :param max_total_bits: abort with :class:`ProtocolAborted` once total
        communication exceeds this budget (worst-case cutoff for
        expected-communication protocols).
    :param transcript: record into an existing transcript (sub-protocol
        composition); a fresh one is created by default.
    :param fault_injector: optional channel fault model for robustness
        testing: called as ``fault_injector(sender, payload)`` on every
        send.  It may return a single bit string (delivered as-is) or a
        list of bit strings -- each delivered in order, so an empty list
        models a dropped message and a two-element list a duplication;
        the transcript always records the original, since the sender paid
        for it.  When ``None`` and a process-global fault plan is
        installed (:mod:`repro.faults`), that plan's injector is used;
        otherwise the channel is reliable.  The protocols assume a
        reliable channel, so this exists to test how they fail (and to
        drive the :mod:`repro.faults.retry` loop), not to model the
        paper.
    :returns: a :class:`TwoPartyOutcome` with both outputs and the transcript.
    :raises ProtocolDeadlock: mismatched send/receive structure.
    :raises ProtocolAborted: communication budget exceeded.

    Zero-length payloads are *delivered* like any other send (the peer's
    ``Recv`` completes with a 0-bit string, keeping the effect structure
    synchronized), but they are free on the transcript and never open a
    message -- see :meth:`Transcript.record_send
    <repro.comm.transcript.Transcript.record_send>` for the pinned
    convention.
    """
    shared_randomness = shared if shared is not None else SharedRandomness(shared_seed)
    record = transcript if transcript is not None else Transcript()
    budget_base = record.total_bits
    messages_base = record.num_messages
    if _OBS.active:
        _OBS.tracer.emit("engine.start")

    states: Dict[str, _PartyState] = {
        ALICE: _PartyState(
            ALICE,
            alice_fn(
                PartyContext(
                    role=ALICE,
                    input=alice_input,
                    shared=shared_randomness,
                    private=PrivateRandomness(alice_private_seed),
                )
            ),
        ),
        BOB: _PartyState(
            BOB,
            bob_fn(
                PartyContext(
                    role=BOB,
                    input=bob_input,
                    shared=shared_randomness,
                    private=PrivateRandomness(bob_private_seed),
                )
            ),
        ),
    }
    peers = {ALICE: BOB, BOB: ALICE}
    # Hot path: every Send flows through these; bind them once.  Payloads
    # are byte-backed BitStrings recorded and delivered by reference, so
    # the engine never re-materializes message bytes per send.
    record_send = record.record_send
    # Resolve the channel model once: an explicit injector wins, else the
    # process-global fault plan (REPRO_FAULTS), else a reliable channel --
    # the default costs one falsy check here and nothing per send.
    injector = fault_injector
    if injector is None and _FAULTS.active:
        injector = _FAULTS.plan.inject_two_party

    def advance(state: _PartyState, value: Any) -> None:
        """Resume the coroutine with ``value``; stash the next effect."""
        try:
            if not state.started:
                state.started = True
                effect = next(state.generator)
            else:
                effect = state.generator.send(value)
        except StopIteration as stop:
            state.done = True
            state.output = stop.value
            state.pending_effect = None
            return
        if not isinstance(effect, (Send, Recv)):
            raise ProtocolViolation(
                f"{state.role} yielded {effect!r}; expected Send(...) or Recv()"
            )
        state.pending_effect = effect

    def run_until_blocked(state: _PartyState) -> bool:
        """Drive one party as far as it can go; True if it made progress."""
        progressed = False
        while not state.done:
            if not state.started:
                advance(state, None)
                progressed = True
                continue
            effect = state.pending_effect
            if isinstance(effect, Send):
                record_send(state.role, effect.payload)
                if (
                    max_total_bits is not None
                    and record.total_bits - budget_base > max_total_bits
                ):
                    raise ProtocolAborted(
                        f"communication budget exceeded at "
                        f"{record.total_bits - budget_base} bits",
                        bits_used=record.total_bits - budget_base,
                        budget=max_total_bits,
                    )
                if injector is None:
                    states[peers[state.role]].inbox.append(effect.payload)
                else:
                    delivered = injector(state.role, effect.payload)
                    inbox = states[peers[state.role]].inbox
                    if isinstance(delivered, BitString):
                        inbox.append(delivered)
                    else:
                        # Structural faults: a list of deliveries (empty =
                        # dropped, several = duplicated).
                        inbox.extend(delivered)
                advance(state, None)
                progressed = True
            elif isinstance(effect, Recv):
                if state.inbox:
                    advance(state, state.inbox.popleft())
                    progressed = True
                else:
                    break  # blocked on an empty inbox
            else:  # pragma: no cover - advance() already validated
                raise ProtocolViolation(f"unhandled effect {effect!r}")
        return progressed

    while not (states[ALICE].done and states[BOB].done):
        made_progress = False
        for role in (ALICE, BOB):
            if run_until_blocked(states[role]):
                made_progress = True
        if not made_progress:
            blocked = [r for r, s in states.items() if not s.done]
            raise ProtocolDeadlock(
                f"deadlock: parties {blocked} blocked on empty inboxes "
                f"(mismatched send/receive structure)"
            )

    for state in states.values():
        if state.inbox:
            raise ProtocolViolation(
                f"{state.role} finished with {len(state.inbox)} undelivered "
                f"payload(s) in its inbox"
            )

    if _OBS.active:
        # Run-relative totals: with a composed (pre-populated) transcript
        # only this run's share is reported, matching budget accounting.
        run_bits = record.total_bits - budget_base
        run_messages = record.num_messages - messages_base
        _OBS.tracer.emit(
            "engine.finish", total_bits=run_bits, num_messages=run_messages
        )
        from repro.obs import metrics as _metrics

        _metrics.histogram("engine.rounds_per_run").observe(run_messages)
        _metrics.histogram("engine.bits_per_run").observe(run_bits)
        for message in record.messages[messages_base:]:
            _metrics.histogram("engine.bits_per_round").observe(
                message.num_bits
            )

    return TwoPartyOutcome(
        alice_output=states[ALICE].output,
        bob_output=states[BOB].output,
        transcript=record,
    )
