"""Human-readable rendering of transcripts.

Debugging a protocol means reading its conversation.  :func:`render_transcript`
draws a message sequence chart of who sent how many bits when, and
:func:`summarize_by_sender` gives the per-party totals the Section 4 bounds
talk about.

::

    alice ──[  1024 bits,  3 chunks]──▶ bob
    bob   ◀──[   256 bits,  1 chunk ]── alice
    ...
    total: 1280 bits in 2 messages (alice: 1024, bob: 256)
"""

from __future__ import annotations

from typing import Dict, List

from repro.comm.transcript import Transcript

__all__ = ["render_transcript", "summarize_by_sender"]


def summarize_by_sender(transcript: Transcript) -> Dict[str, Dict[str, int]]:
    """Per-sender totals: bits and messages."""
    summary: Dict[str, Dict[str, int]] = {}
    for message in transcript.messages:
        entry = summary.setdefault(
            message.sender, {"bits": 0, "messages": 0, "chunks": 0}
        )
        entry["bits"] += message.num_bits
        entry["messages"] += 1
        entry["chunks"] += len(message.chunks)
    return summary


def render_transcript(
    transcript: Transcript,
    *,
    max_messages: int = 50,
    first_party: str = "alice",
) -> str:
    """Render the transcript as an ASCII message sequence chart.

    :param transcript: what to render.
    :param max_messages: elide the middle when the conversation is longer.
    :param first_party: which sender to draw on the left.
    """
    messages = transcript.messages
    if not messages:
        return "(empty transcript: no communication)"

    senders = transcript.senders
    width = max(len(sender) for sender in senders)

    def line(message) -> str:
        chunk_word = "chunk" if len(message.chunks) == 1 else "chunks"
        body = f"[{message.num_bits:>7} bits, {len(message.chunks):>2} {chunk_word}]"
        if message.sender == first_party:
            return f"{message.sender:<{width}} ──{body}──▶"
        return f"{message.sender:<{width}} ◀──{body}──"

    lines: List[str] = []
    if len(messages) <= max_messages:
        lines.extend(line(message) for message in messages)
    else:
        head = max_messages // 2
        tail = max_messages - head
        lines.extend(line(message) for message in messages[:head])
        lines.append(f"... {len(messages) - head - tail} messages elided ...")
        lines.extend(line(message) for message in messages[-tail:])

    per_sender = summarize_by_sender(transcript)
    breakdown = ", ".join(
        f"{sender}: {stats['bits']}" for sender, stats in sorted(per_sender.items())
    )
    lines.append(
        f"total: {transcript.total_bits} bits in "
        f"{transcript.num_messages} messages ({breakdown})"
    )
    return "\n".join(lines)
