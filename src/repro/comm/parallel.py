"""Batched parallel composition of two-party sub-protocols.

The paper's round bounds rely on running many sub-protocol instances "in
parallel": all the stage-``i`` equality tests share two messages, all the
failed leaves' Basic-Intersection runs share four.  The shipped protocols
hand-batch their messages; this module provides the *generic* combinator
for protocol authors:

::

    def alice(ctx):
        verdicts = yield from run_batched(
            ctx,
            [equality_coroutine(ctx, value, index) for index, value in ...],
            num_messages=2,
        )

``run_batched`` drives ``N`` alternating sub-coroutines and multiplexes
their traffic into ``num_messages`` combined messages -- the same round
count as a single instance -- with self-delimiting per-instance framing
(gamma-coded chunk counts and lengths, ``O(log)`` bits of overhead per
chunk).

Contract: every sub-protocol must be message-alternating with Alice
sending first, and take exactly ``num_messages`` messages (homogeneous
batch).  Both parties must construct the same number of sub-coroutines in
the same order.
"""

from __future__ import annotations

from typing import Any, Generator, List, Sequence

from repro.comm.engine import PartyContext, Recv, Send
from repro.comm.errors import ProtocolViolation
from repro.util.bits import BitReader, BitString, BitWriter

__all__ = ["run_batched"]


class _Slot:
    """Book-keeping for one sub-coroutine: the pending effect it is blocked
    on, plus a queue for chunks that arrived while it was not receiving.

    A deliberately thin replacement for driving each instance through a
    full :class:`~repro.multiparty.network.TwoPartyAdapter`: the combinator
    resumes every sub-coroutine a handful of times per combined message,
    so per-resume overhead multiplies by the batch size.
    """

    __slots__ = ("gen", "effect", "done", "output", "queue")

    def __init__(self, gen: Generator) -> None:
        self.gen = gen
        self.done = False
        self.output: Any = None
        self.queue: List[BitString] = []
        try:
            self.effect = next(gen)
        except StopIteration as stop:
            self.done = True
            self.output = stop.value
            self.effect = None


def _drain(slot: _Slot, sink: List[BitString]) -> None:
    """Advance ``slot`` until it blocks on a Recv with an empty queue or
    finishes; Send payloads append to ``sink``, queued chunks feed Recvs."""
    gen = slot.gen
    effect = slot.effect
    queue = slot.queue
    try:
        while True:
            if isinstance(effect, Send):
                sink.append(effect.payload)
                effect = gen.send(None)
            elif isinstance(effect, Recv):
                if queue:
                    effect = gen.send(queue.pop(0))
                else:
                    slot.effect = effect
                    return
            else:
                raise ProtocolViolation(
                    f"batched sub-protocol yielded {effect!r}; "
                    f"expected Send(...) or Recv()"
                )
    except StopIteration as stop:
        slot.done = True
        slot.output = stop.value
        slot.effect = None


def run_batched(
    ctx: PartyContext,
    coroutines: Sequence[Generator],
    *,
    num_messages: int,
) -> Generator:
    """Run sub-coroutines in parallel; returns their outputs in order.

    :param ctx: the calling party's context (its role decides which
        combined messages it sends: Alice sends the even-indexed ones).
    :param coroutines: already-constructed party generators, one per
        instance (Alice passes her sides, Bob passes his, same order).
    :param num_messages: the per-instance message count; the batch uses
        exactly this many combined messages.
    :raises ProtocolViolation: a sub-protocol broke the alternation
        contract (sent during a receive round beyond buffering, or failed
        to finish within ``num_messages`` messages).
    """
    slots = [_Slot(coroutine) for coroutine in coroutines]
    # Sends produced in reaction to a receive belong to OUR next combined
    # message; they buffer here until that round comes up.
    pending: List[List[BitString]] = [[] for _ in slots]

    for round_index in range(num_messages):
        alice_sends = round_index % 2 == 0
        i_send = (ctx.role == "alice") == alice_sends
        if i_send:
            writer = BitWriter()
            write_frame = writer.write_chunk_frame
            for slot, chunks in zip(slots, pending):
                if not slot.done:
                    _drain(slot, chunks)
                write_frame(chunks)
                chunks.clear()
            yield Send(writer.finish())
        else:
            payload = yield Recv()
            reader = BitReader(payload)
            read_frame = reader.read_chunk_frame
            for slot, buffered in zip(slots, pending):
                chunks = read_frame()
                if chunks:
                    slot.queue.extend(chunks)
                if slot.queue and not slot.done:
                    _drain(slot, buffered)
            reader.expect_exhausted()

    outputs: List[Any] = []
    for index, slot in enumerate(slots):
        if not slot.done:
            raise ProtocolViolation(
                f"batched sub-protocol {index} did not finish within "
                f"{num_messages} messages"
            )
        if pending[index]:
            raise ProtocolViolation(
                f"batched sub-protocol {index} has {len(pending[index])} "
                f"unsent chunk(s) after the final round"
            )
        outputs.append(slot.output)
    return outputs
