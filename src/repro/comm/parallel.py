"""Batched parallel composition of two-party sub-protocols.

The paper's round bounds rely on running many sub-protocol instances "in
parallel": all the stage-``i`` equality tests share two messages, all the
failed leaves' Basic-Intersection runs share four.  The shipped protocols
hand-batch their messages; this module provides the *generic* combinator
for protocol authors:

::

    def alice(ctx):
        verdicts = yield from run_batched(
            ctx,
            [equality_coroutine(ctx, value, index) for index, value in ...],
            num_messages=2,
        )

``run_batched`` drives ``N`` alternating sub-coroutines and multiplexes
their traffic into ``num_messages`` combined messages -- the same round
count as a single instance -- with self-delimiting per-instance framing
(gamma-coded chunk counts and lengths, ``O(log)`` bits of overhead per
chunk).

Contract: every sub-protocol must be message-alternating with Alice
sending first, and take exactly ``num_messages`` messages (homogeneous
batch).  Both parties must construct the same number of sub-coroutines in
the same order.
"""

from __future__ import annotations

from typing import Any, Generator, List, Sequence

from repro.comm.engine import PartyContext, Recv, Send
from repro.comm.errors import ProtocolViolation
from repro.util.bits import BitReader, BitString, BitWriter

__all__ = ["run_batched"]


def run_batched(
    ctx: PartyContext,
    coroutines: Sequence[Generator],
    *,
    num_messages: int,
) -> Generator:
    """Run sub-coroutines in parallel; returns their outputs in order.

    :param ctx: the calling party's context (its role decides which
        combined messages it sends: Alice sends the even-indexed ones).
    :param coroutines: already-constructed party generators, one per
        instance (Alice passes her sides, Bob passes his, same order).
    :param num_messages: the per-instance message count; the batch uses
        exactly this many combined messages.
    :raises ProtocolViolation: a sub-protocol broke the alternation
        contract (sent during a receive round beyond buffering, or failed
        to finish within ``num_messages`` messages).
    """
    # Imported lazily: the adapter lives with the multiparty machinery,
    # which itself builds on repro.comm (import cycle otherwise).
    from repro.multiparty.network import TwoPartyAdapter

    adapters = [TwoPartyAdapter(coroutine) for coroutine in coroutines]
    pending: List[List[BitString]] = [[] for _ in adapters]

    for round_index in range(num_messages):
        alice_sends = round_index % 2 == 0
        i_send = (ctx.role == "alice") == alice_sends
        if i_send:
            writer = BitWriter()
            for index, adapter in enumerate(adapters):
                chunks = pending[index] + adapter.step([])
                pending[index] = []
                writer.write_gamma(len(chunks))
                for chunk in chunks:
                    writer.write_gamma(len(chunk))
                    writer.write_bits(chunk)
            yield Send(writer.finish())
        else:
            payload = yield Recv()
            reader = BitReader(payload)
            for index, adapter in enumerate(adapters):
                count = reader.read_gamma()
                chunks = []
                for _ in range(count):
                    length = reader.read_gamma()
                    chunks.append(BitString(reader.read_uint(length), length))
                # Sends produced in reaction to a receive belong to OUR
                # next combined message; buffer them.
                pending[index].extend(adapter.step(chunks))
            reader.expect_exhausted()

    outputs: List[Any] = []
    for index, adapter in enumerate(adapters):
        if not adapter.done:
            raise ProtocolViolation(
                f"batched sub-protocol {index} did not finish within "
                f"{num_messages} messages"
            )
        if pending[index]:
            raise ProtocolViolation(
                f"batched sub-protocol {index} has {len(pending[index])} "
                f"unsent chunk(s) after the final round"
            )
        outputs.append(adapter.output)
    return outputs
