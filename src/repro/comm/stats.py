"""Aggregation of repeated protocol runs.

The paper's guarantees are *expected* communication and *with-high-
probability* correctness, so single runs prove nothing: benchmarks and tests
run a protocol over many seeded trials and look at the aggregate.  This
module is the one place that aggregation logic lives.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence

__all__ = ["Summary", "summarize", "TrialAggregator", "TrialReport"]


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample of nonnegative measurements."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.1f} min={self.minimum:.0f} "
            f"p50={self.p50:.0f} p95={self.p95:.0f} max={self.maximum:.0f}"
        )


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an already sorted sample.

    Emptiness is checked via ``len``, not truthiness: numpy arrays (the
    natural output of a kernel-backend caller) raise "truth value of an
    array is ambiguous" under ``if not values``.
    """
    if len(sorted_values) == 0:
        raise ValueError("percentile of empty sample")
    rank = max(0, math.ceil(fraction * len(sorted_values)) - 1)
    return sorted_values[rank]


def summarize(values: Sequence[float]) -> Summary:
    """Summarize a nonempty sample (any sized sequence, including numpy
    arrays -- see :func:`_percentile` for why the check is ``len``-based)."""
    if len(values) == 0:
        raise ValueError("summarize requires a nonempty sample")
    ordered = sorted(float(v) for v in values)
    return Summary(
        count=len(ordered),
        mean=sum(ordered) / len(ordered),
        minimum=ordered[0],
        maximum=ordered[-1],
        p50=_percentile(ordered, 0.50),
        p95=_percentile(ordered, 0.95),
    )


@dataclass
class TrialReport:
    """Aggregated view over many protocol trials."""

    trials: int
    failures: int
    bits: Summary
    messages: Summary

    @property
    def success_rate(self) -> float:
        """Fraction of trials whose output matched ground truth.

        A zero-trial report has no success rate: it returns ``nan`` rather
        than the former (silently vacuous) ``1.0``, so code that compares
        it against a threshold fails loudly instead of reporting success
        for an experiment that never ran.
        """
        if self.trials == 0:
            return float("nan")
        return 1.0 - self.failures / self.trials

    def __str__(self) -> str:
        success = (
            "n/a (0 trials)" if self.trials == 0 else f"{self.success_rate:.4f}"
        )
        return (
            f"trials={self.trials} success={success} "
            f"bits[{self.bits}] messages[{self.messages}]"
        )


class TrialAggregator:
    """Collects per-trial measurements and produces a :class:`TrialReport`.

    Usage::

        agg = TrialAggregator()
        for seed in range(trials):
            outcome = protocol.run(S, T, seed=seed)
            agg.add(
                bits=outcome.total_bits,
                messages=outcome.num_messages,
                correct=(outcome.alice_output == truth),
            )
        report = agg.report()
    """

    def __init__(self) -> None:
        self._bits: List[float] = []
        self._messages: List[float] = []
        self._failures = 0

    def add(self, *, bits: int, messages: int, correct: bool) -> None:
        """Record one trial."""
        self._bits.append(float(bits))
        self._messages.append(float(messages))
        if not correct:
            self._failures += 1

    @property
    def trials(self) -> int:
        """Number of trials recorded so far."""
        return len(self._bits)

    def report(self) -> TrialReport:
        """Produce the aggregate report (requires at least one trial)."""
        return TrialReport(
            trials=self.trials,
            failures=self._failures,
            bits=summarize(self._bits),
            messages=summarize(self._messages),
        )


def run_trials(
    run_once: Callable[[int], tuple],
    trials: int,
    *,
    first_seed: int = 0,
) -> TrialReport:
    """Drive ``run_once(seed) -> (bits, messages, correct)`` over many seeds."""
    aggregator = TrialAggregator()
    for offset in range(trials):
        bits, messages, correct = run_once(first_seed + offset)
        aggregator.add(bits=bits, messages=messages, correct=correct)
    return aggregator.report()
