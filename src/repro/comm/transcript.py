"""Transcripts: exact accounting of who sent how many bits in how many messages.

A :class:`Transcript` is the ground truth every measurement in this library
reads from.  It records the sequence of *messages* -- where a message is a
maximal run of sends by one party -- and exposes the quantities the paper's
theorems bound:

* :attr:`Transcript.total_bits` -- the communication cost;
* :attr:`Transcript.num_messages` -- the round complexity (the paper counts
  rounds as messages exchanged);
* per-party bit counts, used by the multiparty per-player bounds.

**Zero-length payloads never open messages.**  A 0-bit ``Send`` is a
synchronization artifact (a party with nothing to report in a shared
round), not communication: it is still *delivered* by the engine, but the
transcript neither opens a new message for it nor bumps any counter.
Before this convention was pinned, an empty send from the non-current
sender opened a brand-new 0-bit message and inflated the paper's round
count.  An empty send by the *current* sender still appends a 0-bit chunk,
so decoders that walk ``chunks`` see every logical payload.

With observability enabled (:mod:`repro.obs`), every message boundary
emits a ``message.open`` event and every merged chunk a ``message.merge``
event -- the per-round bit breakdown every trace rollup is built from.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.state import STATE as _OBS
from repro.util.bits import BitString

__all__ = ["Message", "Transcript"]


class Message:
    """One message: a maximal run of same-sender sends.

    A slotted plain class rather than a dataclass: the engine constructs one
    per round on every protocol run, so construction must stay a few
    attribute stores.

    :param sender: the sending party's name (``"alice"`` / ``"bob"`` for
        two-party runs; player names in multiparty runs).
    :param chunks: the individual ``Send`` payloads merged into this message,
        in order.  Kept separate so decoders can consume them one logical
        payload at a time.  Append through :meth:`append_chunk` so the
        running bit counter stays true; mutating ``chunks`` directly
        desynchronizes it.
    """

    __slots__ = ("sender", "chunks", "_num_bits")

    def __init__(
        self, sender: str, chunks: Optional[List[BitString]] = None
    ) -> None:
        self.sender = sender
        self.chunks = [] if chunks is None else chunks
        total = 0
        for chunk in self.chunks:
            total += len(chunk)
        self._num_bits = total

    def append_chunk(self, payload: BitString) -> None:
        """Add one payload, maintaining the bit counter incrementally."""
        self.chunks.append(payload)
        self._num_bits += len(payload)

    @property
    def num_bits(self) -> int:
        """Total bits in this message (O(1): maintained on append, not
        recounted per access -- renderers and stats poll this per message)."""
        return self._num_bits

    def __repr__(self) -> str:
        return (
            f"Message(sender={self.sender!r}, bits={self._num_bits}, "
            f"chunks={len(self.chunks)})"
        )


class Transcript:
    """The full record of one protocol execution.

    Sends are appended via :meth:`record_send`; consecutive sends by the same
    party merge into the current message, and a *nonempty* send by a
    different party opens a new message (empty sends never open one; see
    the module docstring).  This implements the paper's round convention
    without protocols having to declare round boundaries explicitly.
    """

    def __init__(self) -> None:
        self._messages: List[Message] = []
        self._bits_by_sender: Dict[str, int] = {}
        self._total_bits = 0

    def record_send(self, sender: str, payload: BitString) -> None:
        """Record one ``Send`` effect by ``sender``.

        The payload object is kept by reference (zero-copy) and every
        counter -- per-message, per-sender, total -- is bumped
        incrementally, so recording is O(1) per send regardless of how
        long the transcript already is.

        A zero-length payload never opens a message (see the module
        docstring): when no same-sender message is current it is dropped
        from the accounting entirely.
        """
        num_bits = len(payload)
        messages = self._messages
        last = messages[-1] if messages else None
        if last is not None and last.sender == sender:
            # Inlined append_chunk: this branch is the single hottest
            # line of transcript accounting.
            last.chunks.append(payload)
            last._num_bits += num_bits
            if _OBS.active:
                _OBS.tracer.emit(
                    "message.merge",
                    sender=sender,
                    index=len(messages) - 1,
                    bits=num_bits,
                )
        elif num_bits:
            messages.append(Message(sender, [payload]))
            if _OBS.active:
                _OBS.tracer.emit(
                    "message.open",
                    sender=sender,
                    index=len(messages) - 1,
                    bits=num_bits,
                )
        else:
            # Empty payload with no open same-sender message: delivered by
            # the engine, invisible to the accounting.
            return
        self._bits_by_sender[sender] = (
            self._bits_by_sender.get(sender, 0) + num_bits
        )
        self._total_bits += num_bits

    @property
    def messages(self) -> List[Message]:
        """The message sequence (read-only by convention)."""
        return self._messages

    @property
    def total_bits(self) -> int:
        """Total communication in bits."""
        return self._total_bits

    @property
    def num_messages(self) -> int:
        """The round complexity: number of messages exchanged."""
        return len(self._messages)

    def bits_sent_by(self, sender: str) -> int:
        """Bits sent by one party (0 if the party never sent)."""
        return self._bits_by_sender.get(sender, 0)

    @property
    def senders(self) -> List[str]:
        """The distinct senders, in first-send order."""
        seen: List[str] = []
        for message in self._messages:
            if message.sender not in seen:
                seen.append(message.sender)
        return seen

    def merge_from(self, other: "Transcript") -> None:
        """Append another transcript's messages (sub-protocol composition).

        Used when a driver runs a sub-protocol on a private channel object
        and wants the parent transcript to carry the full cost.  Message
        boundaries are preserved except that adjacent same-sender messages
        across the seam merge, consistent with :meth:`record_send`.
        """
        for message in other.messages:
            for chunk in message.chunks:
                self.record_send(message.sender, chunk)

    def __repr__(self) -> str:
        return (
            f"Transcript(bits={self.total_bits}, "
            f"messages={self.num_messages}, senders={self.senders})"
        )
