"""Bit-exact message encoding over a byte-backed bitstream engine.

Communication complexity counts *bits*, so every message exchanged by the
protocols in this library is a :class:`BitString` -- an immutable sequence of
bits with an exact length.  This module provides the bit strings themselves
plus the small family of codecs the protocols use:

* fixed-width unsigned integers (:func:`encode_uint`) -- for hash values in a
  known range ``[t]``, width ``ceil_log2(t)``;
* Elias gamma codes (:func:`encode_elias_gamma`) -- self-delimiting varints
  for lengths and counts whose magnitude is not known to the receiver;
* fixed-width lists (:func:`encode_fixed_list`) -- for sorted lists of hash
  values, the workhorse of `Basic-Intersection`;
* delta-coded sorted sets (:func:`encode_delta_sorted_set`) -- the
  ``O(k log(n/k))``-bit set encoding used by the trivial deterministic
  protocol (gap encoding achieves the information-theoretic
  ``log C(n, k) = Theta(k log(n/k))`` up to constants).

Encoders write through a :class:`BitWriter` and decoders read through a
:class:`BitReader`; both enforce exact consumption so a protocol cannot
accidentally "read past" a message and smuggle information.

Representation.  A :class:`BitString` is an immutable ``(bytes, length)``
pair: the bits live MSB-first in a ``bytes`` buffer whose final byte is
zero-padded in its low ``(-length) % 8`` bits.  :class:`BitWriter`
accumulates into a ``bytearray`` plus a sub-byte bit cursor, so appending
``w`` bits costs ``O(w/8 + 1)`` regardless of how long the prefix already
is -- O(1) amortized per bit, where the previous big-int representation
re-shifted the entire prefix on every append (quadratic message assembly).
:class:`BitReader` reads straight off the underlying buffer without
materializing the message as an integer.  The wire format itself --
bit order, codec layouts, every transcript bit -- is unchanged; the
differential suite in ``tests/test_bits_differential.py`` pins the new
engine against the retained big-int oracle bit for bit.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

__all__ = [
    "BitString",
    "BitWriter",
    "BitReader",
    "encode_uint",
    "decode_uint",
    "encode_elias_gamma",
    "decode_elias_gamma",
    "encode_fixed_list",
    "decode_fixed_list",
    "encode_delta_sorted_set",
    "decode_delta_sorted_set",
]

#: Bulk runs are packed through small ints of at most this many bits, so a
#: run of m fixed-width values costs O(m) small-int work rather than O(m^2)
#: big-int reshifting (chunks stay within a few machine words).
_RUN_CHUNK_BITS = 512


class BitString:
    """An immutable sequence of bits.

    Internally a pair ``(data, length)`` where ``data`` is a ``bytes``
    buffer holding the bits most-significant-first (final byte zero-padded
    low).  Supports concatenation (``+``), slicing, equality, hashing, and
    iteration over individual bits.

    >>> b = BitString.from_bits([1, 0, 1, 1])
    >>> len(b), str(b)
    (4, '1011')
    >>> (b + BitString.from_bits([0]))[4]
    0
    """

    __slots__ = ("_data", "_length", "_value")

    def __init__(self, value: int, length: int):
        if length < 0:
            raise ValueError(f"BitString length must be >= 0, got {length}")
        if value < 0:
            raise ValueError(f"BitString value must be >= 0, got {value}")
        if value.bit_length() > length:
            raise ValueError(
                f"value {value} does not fit in {length} bits "
                f"(needs {value.bit_length()})"
            )
        self._data = (value << (-length % 8)).to_bytes((length + 7) // 8, "big")
        self._length = length
        self._value = value

    @classmethod
    def _from_buffer(cls, data: bytes, length: int) -> "BitString":
        """Trusted constructor: adopt ``data`` without copying or validating.

        ``data`` must be exactly ``ceil(length / 8)`` bytes with the padding
        bits of the final byte zeroed -- the canonical form every public
        path produces (this invariant is what makes ``__eq__`` a plain
        bytes comparison).
        """
        self = object.__new__(cls)
        self._data = data
        self._length = length
        self._value = None
        return self

    @classmethod
    def _from_value(cls, value: int, length: int) -> "BitString":
        """Trusted constructor: ``value`` must be nonnegative and already
        known to fit in ``length`` bits (reader/stream internals call this
        with values they masked or drew themselves)."""
        self = object.__new__(cls)
        self._data = (value << (-length & 7)).to_bytes((length + 7) >> 3, "big")
        self._length = length
        self._value = value
        return self

    @classmethod
    def empty(cls) -> "BitString":
        """The zero-length bit string."""
        return cls(0, 0)

    @classmethod
    def from_bits(cls, bits: Iterable[int]) -> "BitString":
        """Build from an iterable of 0/1 integers, first bit first."""
        value = 0
        length = 0
        for bit in bits:
            if bit not in (0, 1):
                raise ValueError(f"bits must be 0 or 1, got {bit!r}")
            value = (value << 1) | bit
            length += 1
        return cls(value, length)

    @classmethod
    def from_str(cls, text: str) -> "BitString":
        """Build from a string of '0'/'1' characters."""
        return cls.from_bits(int(ch) for ch in text)

    @property
    def value(self) -> int:
        """The bits interpreted as a big-endian unsigned integer."""
        if self._value is None:
            self._value = int.from_bytes(self._data, "big") >> (-self._length % 8)
        return self._value

    @property
    def data(self) -> bytes:
        """The backing buffer: MSB-first bytes, final byte zero-padded low.

        Exposed for zero-copy consumers (readers, writers, tests); the
        buffer is immutable ``bytes`` so sharing it is safe.
        """
        return self._data

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[int]:
        data = self._data
        for i in range(self._length):
            yield (data[i >> 3] >> (7 - (i & 7))) & 1

    def __getitem__(self, index):
        if isinstance(index, slice):
            indices = range(*index.indices(self._length))
            return BitString.from_bits(self._raw_bit(i) for i in indices)
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError(f"bit index {index} out of range [0, {self._length})")
        return self._raw_bit(index)

    def _raw_bit(self, index: int) -> int:
        return (self._data[index >> 3] >> (7 - (index & 7))) & 1

    def __add__(self, other: "BitString") -> "BitString":
        if not isinstance(other, BitString):
            return NotImplemented
        if self._length % 8 == 0:
            # Byte-aligned prefix: concatenation is a buffer join, no bit
            # arithmetic at all.
            return BitString._from_buffer(
                self._data + other._data, self._length + other._length
            )
        writer = BitWriter()
        writer.write_bits(self)
        writer.write_bits(other)
        return writer.finish()

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, BitString)
            and self._length == other._length
            and self._data == other._data
        )

    def __hash__(self) -> int:
        return hash((self._data, self._length))

    def __str__(self) -> str:
        return format(self.value, f"0{self._length}b") if self._length else ""

    def __repr__(self) -> str:
        if self._length <= 64:
            return f"BitString('{self}')"
        return f"BitString(<{self._length} bits>)"


class BitWriter:
    """Accumulates bits into a :class:`BitString`.

    A ``bytearray`` of completed bytes plus a sub-byte cursor (``_acc``
    holds the 0-7 pending bits).  Appends never touch completed bytes, so
    assembling an ``L``-bit message is ``O(L)`` total -- the engine's
    message builders share one writer per combined message instead of
    concatenating :class:`BitString` chains.

    >>> w = BitWriter()
    >>> w.write_uint(5, width=4)
    >>> str(w.finish())
    '0101'
    """

    __slots__ = ("_buf", "_acc", "_accbits")

    def __init__(self) -> None:
        self._buf = bytearray()
        self._acc = 0  # pending bits, MSB-first, < 2**_accbits
        self._accbits = 0  # in [0, 8)

    def write_bit(self, bit: int) -> None:
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        acc = (self._acc << 1) | bit
        n = self._accbits + 1
        if n == 8:
            self._buf.append(acc)
            acc = 0
            n = 0
        self._acc = acc
        self._accbits = n

    def write_uint(self, value: int, width: int) -> None:
        """Write ``value`` as exactly ``width`` big-endian bits."""
        if width < 0:
            raise ValueError(f"width must be >= 0, got {width}")
        if value < 0 or value >> width:
            raise ValueError(f"value {value} does not fit in {width} bits")
        acc = (self._acc << width) | value
        n = self._accbits + width
        if n >= 8:
            rem = n & 7
            self._buf += (acc >> rem).to_bytes(n >> 3, "big")
            acc &= (1 << rem) - 1
            n = rem
        self._acc = acc
        self._accbits = n

    def write_run(self, values: Sequence[int], width: int) -> None:
        """Write a run of fixed-width ints in bulk.

        Equivalent to ``for v in values: write_uint(v, width)`` but packs
        ``~_RUN_CHUNK_BITS``-bit groups with small-int shifts before they
        hit the buffer -- one buffer operation per group instead of one
        per value.  This is the fast path under every sorted-hash-list
        message (`Basic-Intersection`, the tree protocol's re-runs) and
        every fingerprint sweep.
        """
        if width < 0:
            raise ValueError(f"width must be >= 0, got {width}")
        if width == 0:
            for value in values:
                if value != 0:
                    raise ValueError(f"value {value} does not fit in 0 bits")
            return
        limit = 1 << width
        count = len(values)
        if count * width <= _RUN_CHUNK_BITS:
            # Single group (the common case: per-leaf hash lists are a
            # handful of values) -- no slicing, one buffer operation.
            acc = 0
            for value in values:
                if not 0 <= value < limit:
                    raise ValueError(
                        f"value {value} does not fit in {width} bits"
                    )
                acc = (acc << width) | value
            self.write_uint(acc, width * count)
            return
        group = max(1, _RUN_CHUNK_BITS // width)
        for start in range(0, count, group):
            chunk = values[start : start + group]
            acc = 0
            for value in chunk:
                if not 0 <= value < limit:
                    raise ValueError(
                        f"value {value} does not fit in {width} bits"
                    )
                acc = (acc << width) | value
            self.write_uint(acc, width * len(chunk))

    def write_bits(self, bits: BitString) -> None:
        """Append an entire :class:`BitString` (zero-copy when aligned)."""
        length = len(bits)
        if length == 0:
            return
        data = bits.data
        if self._accbits == 0:
            # Aligned: completed bytes transfer as one buffer extend.
            nfull = length >> 3
            self._buf += data[:nfull]
            rem = length & 7
            if rem:
                self._acc = data[nfull] >> (8 - rem)
                self._accbits = rem
            return
        # Unaligned: stream bytes through the cursor, one small int each.
        for i in range(length >> 3):
            self.write_uint(data[i], 8)
        rem = length & 7
        if rem:
            self.write_uint(data[length >> 3] >> (8 - rem), rem)

    def write_gamma(self, value: int) -> None:
        """Write a nonnegative integer with the Elias gamma code.

        Encodes ``value + 1`` (gamma natively codes positive integers) as
        ``floor(log2(v))`` zeros followed by the binary expansion of ``v``:
        ``2 * floor(log2(value + 1)) + 1`` bits total, self-delimiting.
        """
        if value < 0:
            raise ValueError(f"gamma code requires value >= 0, got {value}")
        shifted = value + 1
        width = shifted.bit_length()
        # The (width - 1) leading zeros and the payload are one write.
        self.write_uint(shifted, 2 * width - 1)

    def write_gamma_run(self, values: Sequence[int]) -> None:
        """Write a run of gamma codes in bulk.

        Bit-identical to ``for v in values: write_gamma(v)`` but packs the
        variable-width codes into ``~_RUN_CHUNK_BITS``-bit groups first --
        one buffer operation per group.  This is the codec under the tree
        protocol's per-failed-leaf size exchange, where hundreds of tiny
        gamma codes share one message.
        """
        acc = 0
        nbits = 0
        for value in values:
            if value < 0:
                raise ValueError(f"gamma code requires value >= 0, got {value}")
            shifted = value + 1
            width = 2 * shifted.bit_length() - 1
            acc = (acc << width) | shifted
            nbits += width
            if nbits >= _RUN_CHUNK_BITS:
                self.write_uint(acc, nbits)
                acc = 0
                nbits = 0
        if nbits:
            self.write_uint(acc, nbits)

    def write_chunk_frame(self, chunks: Sequence[BitString]) -> None:
        """Write the batching combinator's per-instance framing: a gamma
        chunk count, then each chunk as a gamma length plus its bits."""
        self.write_gamma(len(chunks))
        for chunk in chunks:
            self.write_gamma(len(chunk))
            self.write_bits(chunk)

    def finish(self) -> BitString:
        """Return the accumulated bits as an immutable :class:`BitString`.

        Non-destructive: the writer can keep appending afterwards (the
        returned string snapshots the current state).
        """
        rem = self._accbits
        if rem:
            data = bytes(self._buf) + bytes(((self._acc << (8 - rem)) & 0xFF,))
        else:
            data = bytes(self._buf)
        return BitString._from_buffer(data, len(self._buf) * 8 + rem)

    def __len__(self) -> int:
        return len(self._buf) * 8 + self._accbits


class BitReader:
    """Sequentially consumes a :class:`BitString`.

    Reads are served straight off the string's backing byte buffer (no
    big-int materialization of the message); a ``width``-bit read touches
    only the ``ceil(width/8) + 1`` bytes it spans.  Raises
    :class:`ValueError` on attempts to read past the end; protocols call
    :meth:`expect_exhausted` after decoding a message to assert the message
    contained exactly what the codec expected.
    """

    __slots__ = ("_bits", "_data", "_length", "_pos")

    def __init__(self, bits: BitString) -> None:
        self._bits = bits
        self._data = bits.data
        self._length = len(bits)
        self._pos = 0

    def read_bit(self) -> int:
        pos = self._pos
        if pos >= self._length:
            raise ValueError("BitReader: read past end of message")
        self._pos = pos + 1
        return (self._data[pos >> 3] >> (7 - (pos & 7))) & 1

    def read_uint(self, width: int) -> int:
        """Read ``width`` bits as a big-endian unsigned integer."""
        if width < 0:
            raise ValueError(f"width must be >= 0, got {width}")
        pos = self._pos
        end = pos + width
        if end > self._length:
            raise ValueError(
                f"BitReader: requested {width} bits with only "
                f"{self._length - pos} remaining"
            )
        if width == 0:
            return 0
        first = pos >> 3
        last = (end + 7) >> 3
        chunk = int.from_bytes(self._data[first:last], "big")
        value = (chunk >> ((last << 3) - end)) & ((1 << width) - 1)
        self._pos = end
        return value

    def read_run(self, count: int, width: int) -> List[int]:
        """Read ``count`` fixed-width ints in bulk (inverse of
        :meth:`BitWriter.write_run`): values are extracted from
        ``~_RUN_CHUNK_BITS``-bit groups with small-int shifts, one buffer
        read per group instead of one per value."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if width == 0:
            if count and self._pos > self._length:  # pragma: no cover
                raise ValueError("BitReader: read past end of message")
            return [0] * count
        values: List[int] = []
        append = values.append
        mask = (1 << width) - 1
        group = max(1, _RUN_CHUNK_BITS // width)
        remaining = count
        while remaining:
            g = group if remaining >= group else remaining
            acc = self.read_uint(g * width)
            shift = (g - 1) * width
            for _ in range(g):
                append((acc >> shift) & mask)
                shift -= width
            remaining -= g
        return values

    def read_bits(self, width: int) -> BitString:
        """Read ``width`` bits as a :class:`BitString`.

        Byte-aligned reads hand back a slice of the backing buffer; the
        batching combinator uses this to de-frame sub-protocol chunks
        without re-encoding them.
        """
        pos = self._pos
        if width >= 0 and (pos & 7) == 0:
            end = pos + width
            if end > self._length:
                raise ValueError(
                    f"BitReader: requested {width} bits with only "
                    f"{self._length - pos} remaining"
                )
            data = self._data[pos >> 3 : (end + 7) >> 3]
            rem = end & 7
            if rem:
                data = data[:-1] + bytes((data[-1] & (0xFF << (8 - rem)) & 0xFF,))
            self._pos = end
            return BitString._from_buffer(data, width)
        return BitString._from_value(self.read_uint(width), width)

    def read_gamma(self) -> int:
        """Read one Elias-gamma-coded nonnegative integer.

        The run of leading zeros is found by scanning whole bytes of the
        backing buffer (padding bits are zero, so the scan cannot
        overshoot into garbage) -- gamma headers are on every framed
        message, so this is a protocol-wide hot path.
        """
        pos = self._pos
        length = self._length
        if pos >= length:
            raise ValueError("BitReader: read past end of message")
        data = self._data
        byte_idx = pos >> 3
        current = data[byte_idx] & (0xFF >> (pos & 7))
        while current == 0:
            byte_idx += 1
            if byte_idx << 3 >= length:
                # All-zero suffix: the terminating 1 bit never arrives.
                raise ValueError("BitReader: read past end of message")
            current = data[byte_idx]
        first_one = (byte_idx << 3) + (8 - current.bit_length())
        if first_one >= length:
            raise ValueError("BitReader: read past end of message")
        zeros = first_one - pos
        self._pos = first_one + 1
        # The leading 1 just consumed is the top bit of the payload.
        rest = self.read_uint(zeros)
        return ((1 << zeros) | rest) - 1

    def read_gamma_run(self, count: int) -> List[int]:
        """Read ``count`` gamma codes in bulk (inverse of
        :meth:`BitWriter.write_gamma_run`): the cursor and buffer live in
        locals across the whole run instead of being re-fetched per code."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        values: List[int] = []
        append = values.append
        data = self._data
        length = self._length
        pos = self._pos
        for _ in range(count):
            if pos >= length:
                self._pos = pos
                raise ValueError("BitReader: read past end of message")
            byte_idx = pos >> 3
            current = data[byte_idx] & (0xFF >> (pos & 7))
            while current == 0:
                byte_idx += 1
                if byte_idx << 3 >= length:
                    self._pos = pos
                    raise ValueError("BitReader: read past end of message")
                current = data[byte_idx]
            first_one = (byte_idx << 3) + (8 - current.bit_length())
            if first_one >= length:
                self._pos = pos
                raise ValueError("BitReader: read past end of message")
            zeros = first_one - pos
            pos = first_one + 1
            end = pos + zeros
            if end > length:
                self._pos = pos
                raise ValueError(
                    f"BitReader: requested {zeros} bits with only "
                    f"{length - pos} remaining"
                )
            if zeros:
                last = (end + 7) >> 3
                chunk = int.from_bytes(data[pos >> 3 : last], "big")
                rest = (chunk >> ((last << 3) - end)) & ((1 << zeros) - 1)
                append(((1 << zeros) | rest) - 1)
            else:
                append(0)
            pos = end
        self._pos = pos
        return values

    def read_chunk_frame(self) -> List[BitString]:
        """Read one instance's framing written by
        :meth:`BitWriter.write_chunk_frame`: a gamma chunk count, then each
        chunk de-framed straight off the buffer via :meth:`read_bits`."""
        read_gamma = self.read_gamma
        read_bits = self.read_bits
        return [read_bits(read_gamma()) for _ in range(read_gamma())]

    @property
    def remaining(self) -> int:
        """Number of unread bits."""
        return self._length - self._pos

    def expect_exhausted(self) -> None:
        """Assert the whole message has been consumed."""
        if self.remaining:
            raise ValueError(
                f"BitReader: {self.remaining} unconsumed bits in message"
            )


def encode_uint(value: int, width: int) -> BitString:
    """Encode ``value`` as exactly ``width`` bits."""
    writer = BitWriter()
    writer.write_uint(value, width)
    return writer.finish()


def decode_uint(bits: BitString, width: int) -> int:
    """Decode a :func:`encode_uint` message; the message must be exact."""
    reader = BitReader(bits)
    value = reader.read_uint(width)
    reader.expect_exhausted()
    return value


def encode_elias_gamma(value: int) -> BitString:
    """Encode a single nonnegative integer with the Elias gamma code."""
    writer = BitWriter()
    writer.write_gamma(value)
    return writer.finish()


def decode_elias_gamma(bits: BitString) -> int:
    """Decode a single :func:`encode_elias_gamma` message."""
    reader = BitReader(bits)
    value = reader.read_gamma()
    reader.expect_exhausted()
    return value


def encode_fixed_list(values: Sequence[int], width: int) -> BitString:
    """Encode a list of integers: gamma-coded count, then fixed-width items.

    This is the codec used for lists of hash values: ``O(log m)`` bits of
    header plus ``width`` bits per element, so a list of ``m`` hashes into
    ``[t]`` costs ``m * ceil_log2(t) + O(log m)`` bits -- exactly the
    ``O(m log t)`` the paper charges for exchanging ``h(S)``.
    """
    writer = BitWriter()
    writer.write_gamma(len(values))
    writer.write_run(values, width)
    return writer.finish()


def decode_fixed_list(bits: BitString, width: int) -> List[int]:
    """Decode a :func:`encode_fixed_list` message."""
    reader = BitReader(bits)
    count = reader.read_gamma()
    values = reader.read_run(count, width)
    reader.expect_exhausted()
    return values


def write_fixed_list(writer: BitWriter, values: Sequence[int], width: int) -> None:
    """In-place variant of :func:`encode_fixed_list` for composite messages."""
    writer.write_gamma(len(values))
    writer.write_run(values, width)


def read_fixed_list(reader: BitReader, width: int) -> List[int]:
    """In-place variant of :func:`decode_fixed_list` for composite messages."""
    count = reader.read_gamma()
    return reader.read_run(count, width)


def encode_delta_sorted_set(elements: Iterable[int]) -> BitString:
    """Gap-encode a set of nonnegative integers.

    The elements are sorted and the consecutive gaps (first element, then
    successive differences minus one) are Elias-gamma coded.  For a k-subset
    of ``[n]`` the expected cost is ``O(k log(n/k))`` bits -- within a
    constant factor of the information-theoretic optimum ``log2 C(n, k)``.
    This is the wire format of the trivial deterministic protocol
    (``D^(1)(INT_k) = O(k log(n/k))``).
    """
    sorted_elements = sorted(elements)
    for element in sorted_elements:
        if element < 0:
            raise ValueError(f"set elements must be >= 0, got {element}")
    writer = BitWriter()
    writer.write_gamma(len(sorted_elements))
    previous = -1
    for element in sorted_elements:
        if element == previous:
            raise ValueError(f"duplicate element {element} in set encoding")
        writer.write_gamma(element - previous - 1)
        previous = element
    return writer.finish()


def decode_delta_sorted_set(bits: BitString) -> List[int]:
    """Decode a :func:`encode_delta_sorted_set` message into a sorted list."""
    reader = BitReader(bits)
    count = reader.read_gamma()
    elements: List[int] = []
    previous = -1
    for _ in range(count):
        previous = previous + 1 + reader.read_gamma()
        elements.append(previous)
    reader.expect_exhausted()
    return elements
