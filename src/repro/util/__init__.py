"""Foundational utilities shared by every protocol.

This subpackage contains the three substrates that everything else is built
on:

* :mod:`repro.util.iterlog` -- the iterated-logarithm arithmetic
  (``log^(r) k``, ``log* k``) that parameterizes the paper's
  communication/round tradeoff.
* :mod:`repro.util.bits` -- bit-exact message encoding.  Every message a
  protocol puts on the wire is a :class:`~repro.util.bits.BitString`, so the
  simulator can report communication in actual bits.
* :mod:`repro.util.rng` -- the randomness model: a shared random string
  (common-coin model) plus per-party private coins, all reproducible from
  seeds.
"""

from repro.util.bits import (
    BitReader,
    BitString,
    BitWriter,
    decode_delta_sorted_set,
    decode_elias_gamma,
    decode_fixed_list,
    decode_uint,
    encode_delta_sorted_set,
    encode_elias_gamma,
    encode_fixed_list,
    encode_uint,
)
from repro.util.iterlog import (
    ceil_log2,
    ilog2,
    iterated_log,
    log_star,
    tower,
)
from repro.util.rng import PrivateRandomness, SharedRandomness

__all__ = [
    "BitReader",
    "BitString",
    "BitWriter",
    "decode_delta_sorted_set",
    "decode_elias_gamma",
    "decode_fixed_list",
    "decode_uint",
    "encode_delta_sorted_set",
    "encode_elias_gamma",
    "encode_fixed_list",
    "encode_uint",
    "ceil_log2",
    "ilog2",
    "iterated_log",
    "log_star",
    "tower",
    "PrivateRandomness",
    "SharedRandomness",
]
