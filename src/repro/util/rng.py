"""The randomness model: shared and private random strings.

The paper's protocols live in the *common random string* model: Alice and
Bob (and in Section 4, all ``m`` players) see one infinite shared string of
unbiased coin flips and are otherwise deterministic.  The private-randomness
variants additionally give each party its own coins.

:class:`SharedRandomness` models the common random string as a family of
independent, lazily generated streams addressed by string labels.  Both
parties hold the *same* ``SharedRandomness`` (same seed), so when Alice
derives "the hash function at tree node (3, 7), repetition 2" she gets bit
for bit the same function Bob derives -- without any communication, exactly
as the common-coin model prescribes.  Labels make the independence structure
explicit and keep repeated sub-protocol invocations from reusing coins.

:class:`PrivateRandomness` is a per-party stream for the private-coin model
(Section 3.1's constructive protocols exchange ``O(log k + log log n)`` seed
bits drawn from it).

Everything is deterministic given the seeds, which is what makes every
protocol run in the test suite replayable.
"""

from __future__ import annotations

import hashlib
import random
from functools import lru_cache
from typing import Iterator

from repro.util import hotcache
from repro.util.bits import BitString

__all__ = ["SharedRandomness", "PrivateRandomness"]


def _derive_seed_impl(seed: int, label: str) -> int:
    digest = hashlib.sha256(f"{seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:16], "big")


_derive_seed_cached = hotcache.register(
    "util.rng.derive_seed", lru_cache(maxsize=1 << 16)(_derive_seed_impl)
)


def _derive_seed(seed: int, label: str) -> int:
    """Derive a stream seed from a master seed and a label, collision-free
    for all practical purposes (SHA-256 of the pair).

    Memoized (bounded): both parties derive every shared label once per
    run, so the second derivation is always a cache hit.
    """
    if hotcache.enabled():
        return _derive_seed_cached(seed, label)
    return _derive_seed_impl(seed, label)


class RandomStream:
    """One addressable stream of coin flips.

    A thin, deterministic wrapper over :class:`random.Random` exposing the
    draw shapes protocols need.  Streams with different labels (or different
    master seeds) behave as independent random sources.
    """

    def __init__(self, seed: int, label: str) -> None:
        self._label = label
        self._derived_seed = _derive_seed(seed, label)
        # The underlying random.Random is constructed lazily: seeding the
        # Mersenne twister is the dominant cost of stream creation, and the
        # hottest streams (fingerprint salts, pairwise-hash samples) are
        # fully served from hot caches keyed on the derived seed, never
        # touching the twister at all.
        self._rng = None
        self._pending_replay = None

    @property
    def label(self) -> str:
        """The label this stream was derived for."""
        return self._label

    @property
    def derived_seed(self) -> int:
        """The label-derived seed.

        This value determines the stream's entire coin sequence, which makes
        it the cache key for hot caches over deterministic draws (see
        :meth:`untouched` / :meth:`skip_draws`).
        """
        return self._derived_seed

    @property
    def untouched(self) -> bool:
        """True while no coins have been drawn from this stream object."""
        return self._rng is None and self._pending_replay is None

    def skip_draws(self, replay) -> None:
        """Declare that the stream's opening draws were served from a cache.

        ``replay`` must re-perform exactly those draws on a fresh
        ``random.Random``; it runs if (and only if) someone later draws from
        this stream object, so the observable coin sequence is bit for bit
        the same as if the draws had happened here.  Callers must hold
        :attr:`untouched` when serving from a cache.
        """
        if not self.untouched:
            raise RuntimeError("skip_draws requires an untouched stream")
        self._pending_replay = replay

    def _random(self) -> random.Random:
        rng = self._rng
        if rng is None:
            rng = self._rng = random.Random(self._derived_seed)
            replay = self._pending_replay
            if replay is not None:
                self._pending_replay = None
                replay(rng)
        return rng

    def bit(self) -> int:
        """One unbiased coin flip."""
        return self._random().getrandbits(1)

    def bits(self, count: int) -> BitString:
        """``count`` unbiased coin flips as a :class:`BitString`."""
        if count < 0:
            raise ValueError(f"cannot draw {count} bits")
        if count == 0:
            return BitString.empty()
        return BitString._from_value(self._random().getrandbits(count), count)

    def uint_below(self, bound: int) -> int:
        """A uniform integer in ``[0, bound)``."""
        if bound <= 0:
            raise ValueError(f"uint_below requires bound >= 1, got {bound}")
        return self._random().randrange(bound)

    def uniform(self) -> float:
        """A uniform float in ``[0, 1)`` (used only by workload generators)."""
        return self._random().random()

    def sample_without_replacement(self, population: int, size: int) -> list:
        """A uniform ``size``-subset of ``[population]`` as a sorted list."""
        if size > population:
            raise ValueError(
                f"cannot sample {size} elements from a universe of {population}"
            )
        return sorted(self._random().sample(range(population), size))


class SharedRandomness:
    """The common random string, addressable by labels.

    Both parties construct a ``SharedRandomness`` from the same seed; calling
    :meth:`stream` with the same label on either side yields identical coin
    flips.  Protocols use hierarchical labels such as
    ``"tree/stage3/node17/eq"`` so that every hash function and equality test
    in a run draws fresh, independent shared coins.
    """

    def __init__(self, seed: int) -> None:
        self._seed = seed

    @property
    def seed(self) -> int:
        """The master seed (for replay / reporting)."""
        return self._seed

    def cache_key(self) -> tuple:
        """Hashable identity of this view of the common random string.

        Two views with equal cache keys produce bit-identical streams for
        every label, which makes the key usable as the randomness component
        of hot-cache keys over derived objects (hash functions, salts).
        """
        return (self._seed, "")

    def stream(self, label: str) -> RandomStream:
        """The shared stream addressed by ``label``.

        Calling this twice with the same label returns a *fresh iterator
        over the same coin flips* -- which is exactly the semantics both
        parties need to independently derive the same hash function.
        """
        return RandomStream(self._seed, label)

    def sub(self, prefix: str) -> "SharedRandomness":
        """A namespaced view: ``sub(p).stream(l)`` equals ``stream(p + '/' + l)``.

        Used to give nested sub-protocol invocations disjoint regions of the
        common random string without threading label prefixes by hand.
        """
        return _NamespacedSharedRandomness(self, prefix)


class _NamespacedSharedRandomness(SharedRandomness):
    """A view of a parent :class:`SharedRandomness` under a label prefix."""

    def __init__(self, parent: SharedRandomness, prefix: str) -> None:
        super().__init__(parent.seed)
        self._parent = parent
        self._prefix = prefix

    def cache_key(self) -> tuple:
        return (self._parent.seed, self._prefix)

    def stream(self, label: str) -> RandomStream:
        return self._parent.stream(f"{self._prefix}/{label}")

    def sub(self, prefix: str) -> "SharedRandomness":
        return _NamespacedSharedRandomness(self._parent, f"{self._prefix}/{prefix}")


class PrivateRandomness:
    """One party's private coins (private-randomness model).

    Structurally identical to :class:`SharedRandomness` but held by a single
    party; the constructive private-coin protocols draw hash-function seeds
    here and *transmit* them (that transmission is the ``O(log k +
    log log n)`` additive cost of Section 3.1).
    """

    def __init__(self, seed: int) -> None:
        self._seed = seed

    @property
    def seed(self) -> int:
        """The party's private seed."""
        return self._seed

    def stream(self, label: str) -> RandomStream:
        """The private stream addressed by ``label``."""
        return RandomStream(self._seed, f"private/{label}")


def independent_labels(base: str, count: int) -> Iterator[str]:
    """Yield ``count`` distinct labels under ``base`` (helper for loops that
    need a fresh stream per iteration)."""
    for index in range(count):
        yield f"{base}/{index}"
