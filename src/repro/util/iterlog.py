"""Iterated-logarithm arithmetic.

The paper's central tradeoff is parameterized by the iterated logarithm:
an ``r``-round protocol achieves communication ``O(k * log^(r) k)`` where

* ``log^(0) k = k``,
* ``log^(i) k = log2(log^(i-1) k)`` for ``i >= 1``,

and ``log* k`` is the number of iterations needed to drive the value down to
at most 1.  Protocol code needs an integer-friendly, total version of these
functions (the mathematical ``log^(i)`` becomes undefined or negative once
the argument drops below 1), so every function here is defined for all
integers ``k >= 0`` and clamps at a floor of ``1.0`` exactly where the paper
treats quantities like ``log^(r-1) k`` as "at least a constant".
"""

from __future__ import annotations

import math

__all__ = ["ilog2", "ceil_log2", "iterated_log", "log_star", "tower"]


def ilog2(value: int) -> int:
    """Floor of ``log2(value)`` for a positive integer, computed exactly.

    Uses ``int.bit_length`` so it is exact for arbitrarily large integers
    (unlike ``math.log2``, which goes through a float).

    >>> ilog2(1), ilog2(2), ilog2(1023), ilog2(1024)
    (0, 1, 9, 10)
    """
    if value <= 0:
        raise ValueError(f"ilog2 requires a positive integer, got {value!r}")
    return value.bit_length() - 1


def ceil_log2(value: int) -> int:
    """Ceiling of ``log2(value)`` for a positive integer, computed exactly.

    ``ceil_log2(t)`` is the number of bits needed to address ``t`` distinct
    values -- the width used throughout the protocols to transmit a hash
    value in ``[t]``.

    >>> ceil_log2(1), ceil_log2(2), ceil_log2(3), ceil_log2(1024)
    (0, 1, 2, 10)
    """
    if value <= 0:
        raise ValueError(f"ceil_log2 requires a positive integer, got {value!r}")
    return (value - 1).bit_length()


def iterated_log(k: int, r: int) -> float:
    """The ``r``-times iterated logarithm ``log^(r) k``, clamped below at 1.

    ``iterated_log(k, 0) == k`` and ``iterated_log(k, i) ==
    log2(iterated_log(k, i - 1))`` while the value stays above 2; once the
    value reaches 1 it stays there.  The clamp mirrors the paper's usage:
    quantities such as the degree ``log^(r-i) k / log^(r-i+1) k`` or the
    equality-test confidence ``1/(log^(r-i-1) k)^4`` are only meaningful
    while the iterated log is ``>= 1``, and the protocols treat deeper
    iterates as "a constant".

    :param k: the problem-size parameter (``k >= 0``).
    :param r: how many times to apply ``log2`` (``r >= 0``).
    :returns: a float ``>= 1.0`` (unless ``r == 0``, when it returns ``k``
        itself, which may be 0).
    """
    if k < 0:
        raise ValueError(f"iterated_log requires k >= 0, got {k!r}")
    if r < 0:
        raise ValueError(f"iterated_log requires r >= 0, got {r!r}")
    value = float(k)
    for _ in range(r):
        if value <= 2.0:
            return 1.0
        value = math.log2(value)
    return max(value, 1.0) if r > 0 else value


def log_star(k: int) -> int:
    """The iterated-logarithm count ``log* k``.

    The number of times ``log2`` must be applied to ``k`` before the result
    is at most 1.  ``log_star(k)`` is the round parameter at which the tree
    protocol's communication bound ``O(k * log^(r) k)`` bottoms out at
    ``O(k)``.

    >>> [log_star(k) for k in (1, 2, 4, 16, 65536)]
    [0, 1, 2, 3, 4]
    """
    if k < 0:
        raise ValueError(f"log_star requires k >= 0, got {k!r}")
    count = 0
    value = float(k)
    while value > 1.0:
        value = math.log2(value)
        count += 1
    return count


def tower(height: int) -> int:
    """The power tower ``2^2^...^2`` of the given height.

    ``tower(h)`` is the largest ``k`` with ``log* k == h``; it is the inverse
    of :func:`log_star` and is used by tests to probe the boundaries of the
    tradeoff (``tower(4) == 65536`` is the last ``k`` needing only 4
    rounds at the optimal point).

    >>> [tower(h) for h in range(5)]
    [1, 2, 4, 16, 65536]
    """
    if height < 0:
        raise ValueError(f"tower requires height >= 0, got {height!r}")
    value = 1
    for _ in range(height):
        value = 2**value
    return value
