"""Registry and kill-switch for the library's hot-path caches.

Several pure functions sit on the per-trial hot path (primality testing,
prime search, hash-parameter setup, stream-seed derivation, canonical
serialization) and are memoized with :func:`functools.lru_cache`.  The
caches are *semantically invisible* -- every cached function is a pure
function of its arguments -- but benchmarks need to measure the uncached
baseline, and long-running services may want to bound or reset cache
memory.  This module is the single control surface:

* modules that add an ``lru_cache`` to a hot function call
  :func:`register` at import time;
* the cached wrappers consult :func:`enabled` and fall through to the
  uncached implementation while :func:`disabled` is active;
* :func:`clear_all` / :func:`stats` reset and introspect every registered
  cache at once.

``repro.perf.cache`` re-exports this surface under the public API; keeping
the state here (a leaf module with no repro dependencies) avoids import
cycles between :mod:`repro.hashing` and :mod:`repro.perf`.
"""

from __future__ import annotations

import contextlib
import functools
from typing import Callable, Dict, Iterator

__all__ = [
    "register",
    "memoize",
    "enabled",
    "disabled",
    "clear_all",
    "stats",
    "registered_names",
]

# name -> the lru_cache-wrapped callable (exposes cache_clear/cache_info).
_REGISTRY: Dict[str, Callable] = {}


class _State:
    """Mutable on/off switch shared by every cached wrapper."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = True


_STATE = _State()


def register(name: str, cached_fn: Callable) -> Callable:
    """Record a cache under ``name`` (module-qualified) and return it.

    Called once at import time by the module that owns the cache; the
    returned function is the same object, so this composes as
    ``cached = register("mod.fn", lru_cache()(impl))``.
    """
    if not hasattr(cached_fn, "cache_clear"):
        raise TypeError(f"{name}: registered object has no cache_clear()")
    _REGISTRY[name] = cached_fn
    return cached_fn


def memoize(
    name: str, *, maxsize: int = 1 << 12, typed: bool = False
) -> Callable[[Callable], Callable]:
    """Decorator: register an ``lru_cache`` memo under ``name`` and return
    a wrapper that respects the kill-switch.

    The shared form of the pattern every hot-path memo hand-rolled before::

        @hotcache.memoize("module.fn")
        def fn(...): ...

    is equivalent to registering ``lru_cache(maxsize)(impl)`` and
    dispatching on :func:`enabled` at every call: while the switch is on,
    calls hit the cache; inside :func:`disabled` they fall through to the
    undecorated implementation (which stays reachable as
    ``fn.__wrapped__``; the cache itself as ``fn.cache`` for tests that
    inspect hit counters directly).
    """

    def decorate(impl: Callable) -> Callable:
        cached = register(name, functools.lru_cache(maxsize=maxsize, typed=typed)(impl))

        @functools.wraps(impl)
        def wrapper(*args):
            if _STATE.enabled:
                return cached(*args)
            return impl(*args)

        wrapper.cache = cached  # type: ignore[attr-defined]
        return wrapper

    return decorate


def enabled() -> bool:
    """True while hot-path caches should be consulted (the default)."""
    return _STATE.enabled


@contextlib.contextmanager
def disabled() -> Iterator[None]:
    """Context manager: bypass every registered cache inside the block.

    Entering also clears the caches, so timings taken inside the block
    measure the genuinely uncached code path; the caches re-enable (empty)
    on exit.  Used by the perf microbenchmarks to time the seed-equivalent
    baseline.  Not thread-safe: toggling is process-global, so don't run
    measurements concurrently with other work.
    """
    _STATE.enabled = False
    clear_all()
    try:
        yield
    finally:
        _STATE.enabled = True


def clear_all() -> None:
    """Empty every registered cache (memory reset / measurement hygiene)."""
    for cached_fn in _REGISTRY.values():
        cached_fn.cache_clear()


def stats() -> Dict[str, Dict[str, int]]:
    """Snapshot ``cache_info()`` for every registered cache, by name."""
    report: Dict[str, Dict[str, int]] = {}
    for name, cached_fn in sorted(_REGISTRY.items()):
        info = cached_fn.cache_info()
        report[name] = {
            "hits": info.hits,
            "misses": info.misses,
            "maxsize": info.maxsize,
            "currsize": info.currsize,
        }
    return report


def registered_names() -> list:
    """The sorted names of all registered caches."""
    return sorted(_REGISTRY)
