"""Reductions between the paper's problems.

* :mod:`repro.reductions.eq_to_int` -- Fact 2.1: ``EQ^n_k`` reduces to
  ``INT_k`` by pair-tagging (an instance ``(x_1..x_k, y_1..y_k)`` becomes
  the sets ``{(i, x_i)}`` and ``{(i, y_i)}``; the intersection is exactly
  the set of equal coordinates).  Because the tree protocol solves
  ``INT_k`` with ``O(k)`` bits in ``O(log* k)`` rounds, the reduction
  *significantly improves the round complexity of Feder et al.* -- the
  paper's closing observation in Section 1.
* Disjointness via intersection lives in
  :mod:`repro.protocols.disjointness`
  (:class:`~repro.protocols.disjointness.DisjointnessViaIntersection`).
"""

from repro.reductions.eq_to_int import EqualityViaIntersection

__all__ = ["EqualityViaIntersection"]
