"""Fact 2.1: solving ``EQ^n_k`` with an ``INT_k`` protocol.

"For an instance ``(x_1,...,x_k, y_1,...,y_k)`` of ``EQ^n_k`` an instance of
``INT_k`` is constructed by creating two sets of pairs ``(1,x_1)...(k,x_k)``
and ``(1,y_1)...(k,y_k)``.  The size of the intersection between these two
sets is exactly equal to the number of equal ``(x_i, y_i)`` pairs."

We encode the pair ``(i, x_i)`` as the integer ``i * 2^n + x_i`` over the
universe ``[k * 2^n]``.  The intersection protocol's hashing immediately
compresses these huge identifiers to ``O(log k)``-bit values, so the
communication is exactly the ``INT_k`` cost -- ``O(k log^(r) k)`` bits in
``O(r)`` rounds -- which improves the ``O(sqrt(k))`` round complexity of
Feder et al. [FKNN95] to ``O(log* k)`` at the same ``O(k)`` bits (the
paper's Section 1 closing observation; Fact 2.1's universe requirement
``N >= k^c`` is met whenever ``2^n >= k^{c-1}``, i.e. any non-toy string
length).
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence, Tuple

from repro.comm.engine import PartyContext, run_two_party
from repro.core.tree_protocol import TreeProtocol
from repro.protocols.base import SetIntersectionProtocol

__all__ = ["EqualityViaIntersection"]


class EqualityViaIntersection:
    """``EQ^n_k`` solved by pair-tagging into an ``INT_k`` protocol.

    :param num_instances: ``k``, the number of string pairs.
    :param string_bits: ``n``, the length of each binary string (strings
        are passed as integers below ``2^n``).
    :param protocol_factory: callable ``(universe_size, k) ->
        SetIntersectionProtocol``; defaults to the tree protocol at
        ``r = log* k``.
    """

    name = "equality-via-intersection"

    def __init__(
        self,
        num_instances: int,
        string_bits: int,
        *,
        protocol_factory=None,
    ) -> None:
        if num_instances < 1:
            raise ValueError(f"num_instances must be >= 1, got {num_instances}")
        if string_bits < 1:
            raise ValueError(f"string_bits must be >= 1, got {string_bits}")
        self.num_instances = num_instances
        self.string_bits = string_bits
        self.universe_size = num_instances << string_bits
        if protocol_factory is None:
            protocol_factory = TreeProtocol
        self.protocol: SetIntersectionProtocol = protocol_factory(
            self.universe_size, num_instances
        )

    def _tag(self, strings: Sequence[int]) -> frozenset:
        """The pair-tagged set ``{(i, x_i)} = {i * 2^n + x_i}``."""
        if len(strings) != self.num_instances:
            raise ValueError(
                f"expected {self.num_instances} strings, got {len(strings)}"
            )
        tagged = []
        for index, value in enumerate(strings):
            if not 0 <= value < (1 << self.string_bits):
                raise ValueError(
                    f"string {index} = {value} does not fit in "
                    f"{self.string_bits} bits"
                )
            tagged.append((index << self.string_bits) | value)
        return frozenset(tagged)

    def _untag(self, intersection) -> Optional[Tuple[bool, ...]]:
        if intersection is None:
            return None
        equal_indices = {element >> self.string_bits for element in intersection}
        return tuple(
            index in equal_indices for index in range(self.num_instances)
        )

    def alice(self, ctx: PartyContext) -> Generator:
        """Alice's coroutine over her string tuple."""
        inner_ctx = PartyContext(
            role=ctx.role,
            input=self._tag(ctx.input),
            shared=ctx.shared,
            private=ctx.private,
        )
        result = yield from self.protocol.alice(inner_ctx)
        return self._untag(result)

    def bob(self, ctx: PartyContext) -> Generator:
        """Bob's coroutine over his string tuple."""
        inner_ctx = PartyContext(
            role=ctx.role,
            input=self._tag(ctx.input),
            shared=ctx.shared,
            private=ctx.private,
        )
        result = yield from self.protocol.bob(inner_ctx)
        return self._untag(result)

    def run(
        self,
        alice_strings: Sequence[int],
        bob_strings: Sequence[int],
        *,
        seed: int = 0,
    ):
        """Execute on one ``EQ^n_k`` instance; outputs are boolean tuples
        (``True`` at coordinate ``i`` iff ``x_i == y_i``)."""
        return run_two_party(
            self.alice,
            self.bob,
            alice_input=tuple(alice_strings),
            bob_input=tuple(bob_strings),
            shared_seed=seed,
        )
