"""Section 3.1's constructive private-randomness translation.

The paper's protocols live in the common-random-string model.  Newman's
theorem converts them to the private-coin model at an additive
``O(log log T)`` cost but non-constructively; the paper instead describes a
constructive route, which this module implements:

1. **FKS universe reduction** ([FKS84], Section 3.1): Alice samples a random
   prime ``q = O~(k^2 log n)`` from her *private* coins and transmits it --
   ``O(log k + log log n)`` bits.  ``x -> x mod q`` is injective on
   ``S u T`` except with probability ``1/poly(k)``, so the protocol may run
   over the reduced universe ``[q]``, shrinking every subsequent hash-value
   width from ``O(log n)`` to ``O(log k + log log n)``.
2. **Transmitted seed**: Alice samples a master seed from her private coins
   and sends it in the same first message; both parties then deterministically
   expand it into all the hash functions and fingerprint salts the inner
   protocol draws.  In the paper's standard-model accounting each
   pairwise-independent function over ``[q]`` costs ``O(log k + log log n)``
   seed bits and the per-stage functions can be shared across leaves; we
   transmit one ``Theta(log k + log log n)``-bit seed and expand it with a
   PRG, the usual simulation-faithful stand-in (DESIGN.md, substitution S1
   discussion applies: the inner protocol is unchanged, only the source of
   its shared coins moves onto the wire).

Total overhead: one additive ``O(log k + log log n)``-bit prefix on Alice's
first message -- no extra rounds, matching "incurring an additive
``O(log log n)`` bits of communication with no increase in the number of
rounds" (the ``log k`` part is absorbed since ``k <= n``).
"""

from __future__ import annotations

import math
from typing import Dict, Generator, List

from repro.comm.engine import PartyContext, Recv, Send
from repro.hashing.fks import FKSReduction, sample_fks_reduction
from repro.protocols.base import SetIntersectionProtocol
from repro.util.bits import BitReader, BitWriter
from repro.util.iterlog import ceil_log2
from repro.util.rng import SharedRandomness

__all__ = ["PrivateCoinIntersection"]


class PrivateCoinIntersection(SetIntersectionProtocol):
    """Run an inner shared-randomness ``INT_k`` protocol using only private
    coins plus a transmitted seed (the Section 3.1 construction).

    :param universe_size: the *original* universe ``[n]``.
    :param max_set_size: bound ``k``.
    :param inner_factory: callable ``(reduced_universe_size) ->
        SetIntersectionProtocol`` building the inner protocol over the
        reduced universe; the default builds a
        :class:`~repro.core.tree_protocol.TreeProtocol`.
    :param seed_bits: width of the transmitted master seed; the default is
        the paper-shaped ``2 (ceil(log2 k) + ceil(log2 log2 n)) + 16``.
    """

    name = "private-coin-intersection"

    def __init__(
        self,
        universe_size: int,
        max_set_size: int,
        *,
        inner_factory=None,
        seed_bits: int = 0,
    ) -> None:
        super().__init__(universe_size, max_set_size)
        if inner_factory is None:
            from repro.core.tree_protocol import TreeProtocol

            def inner_factory(reduced_universe: int) -> SetIntersectionProtocol:
                return TreeProtocol(reduced_universe, max_set_size)

        self.inner_factory = inner_factory
        if seed_bits <= 0:
            log_k = ceil_log2(max(max_set_size, 2))
            log_log_n = ceil_log2(max(2, math.ceil(math.log2(max(universe_size, 4)))))
            seed_bits = 2 * (log_k + log_log_n) + 16
        self.seed_bits = seed_bits

    def _run_inner(
        self,
        ctx: PartyContext,
        reduction: FKSReduction,
        shared: SharedRandomness,
    ) -> Generator:
        """Reduce the input, run the inner protocol over ``[q]``, map back."""
        back_map: Dict[int, List[int]] = {}
        for element in sorted(ctx.input):
            back_map.setdefault(reduction(element), []).append(element)
        inner = self.inner_factory(reduction.reduced_universe_size)
        reduced_ctx = PartyContext(
            role=ctx.role,
            input=frozenset(back_map),
            shared=shared,
            private=ctx.private,
        )
        inner_role = inner.alice if ctx.role == "alice" else inner.bob
        reduced_result = yield from inner_role(reduced_ctx)
        if reduced_result is None:
            return None
        return frozenset(
            original
            for image in reduced_result
            for original in back_map.get(image, ())
        )

    def alice(self, ctx: PartyContext) -> Generator:
        """Alice samples the FKS prime and master seed privately, transmits
        both as a prefix, then runs the inner protocol."""
        prime_stream = ctx.private.stream("fks-prime")
        reduction = sample_fks_reduction(
            self.universe_size, 2 * self.max_set_size, prime_stream
        )
        seed_value = ctx.private.stream("master-seed").bits(self.seed_bits).value
        prime_width = ceil_log2(reduction.prime + 1)
        writer = BitWriter()
        writer.write_gamma(prime_width)
        writer.write_uint(reduction.prime, prime_width)
        writer.write_uint(seed_value, self.seed_bits)
        yield Send(writer.finish())
        shared = SharedRandomness(seed_value)
        return (yield from self._run_inner(ctx, reduction, shared))

    def bob(self, ctx: PartyContext) -> Generator:
        """Bob receives the prime and seed, then runs the inner protocol."""
        reader = BitReader((yield Recv()))
        prime_width = reader.read_gamma()
        prime = reader.read_uint(prime_width)
        seed_value = reader.read_uint(self.seed_bits)
        reader.expect_exhausted()
        reduction = FKSReduction(universe_size=self.universe_size, prime=prime)
        shared = SharedRandomness(seed_value)
        return (yield from self._run_inner(ctx, reduction, shared))
