"""The verification tree of Section 3.3.

A tree over ``k`` leaves (one per hash bucket) with ``r`` levels above the
leaves.  The paper prescribes the shape through the leaf-coverage of each
level: a node ``v`` in level ``L_i`` has ``|C(v)| = log^(r-i) k`` leaves in
its subtree, which pins the degrees to ``d_1 = log^(r-1) k`` at level 1 and
``d_i = log^(r-i) k / log^(r-i+1) k`` higher up, and makes the number of
level-``i`` nodes ``|L_i| ~= k / log^(r-i) k``.

The intuition: each level's equality tests get *cheaper per leaf*
(``4 log log^(r-i-1) k`` bits spread over ``log^(r-i) k`` leaves) while
failures get rarer, so the total verification cost telescopes to
``O(k log^(r) k)`` and a failure at any scale is caught by the next level
up.

We build the tree top-down with integer rounding: a node at level ``j``
covering a leaf interval splits it into chunks of
``ceil(log^(r-j+1) k)`` leaves.  The exact paper shape emerges when the
iterated logs are integers; otherwise coverage is within a factor 2 of
prescription (asserted by tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

from repro.util.iterlog import iterated_log

__all__ = ["TreeNode", "VerificationTree"]


@dataclass
class TreeNode:
    """One node of the verification tree.

    :param index: position of this node within its level (0-based).
    :param level: 0 for leaves, ``r`` for the root.
    :param leaf_start: first leaf (bucket id) covered by this subtree.
    :param leaf_end: one past the last covered leaf.
    :param children: indices (within level ``level - 1``) of the children.
    """

    index: int
    level: int
    leaf_start: int
    leaf_end: int
    children: List[int] = field(default_factory=list)

    @property
    def num_leaves(self) -> int:
        """Number of leaves covered, the paper's ``|C(v)|``."""
        return self.leaf_end - self.leaf_start

    @property
    def leaves(self) -> range:
        """The covered leaf (bucket) ids."""
        return range(self.leaf_start, self.leaf_end)


class VerificationTree:
    """The level-indexed verification tree for ``num_leaves`` buckets and
    ``rounds`` stages.

    :param num_leaves: ``k``, the number of hash buckets (leaves).
    :param rounds: ``r``, the number of stages / levels above the leaves.

    Attributes:
        levels: ``levels[i]`` is the list of :class:`TreeNode` at level
            ``i`` (``levels[0]`` are the ``k`` leaves; ``levels[rounds]``
            is ``[root]``).
    """

    def __init__(self, num_leaves: int, rounds: int) -> None:
        if num_leaves < 1:
            raise ValueError(f"num_leaves must be >= 1, got {num_leaves}")
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        self.num_leaves = num_leaves
        self.rounds = rounds
        self.levels: List[List[TreeNode]] = []
        self._build()

    def coverage_target(self, level: int) -> int:
        """The paper's ``|C(v)| = log^(r - level) k`` for level >= 1 nodes
        (1 for leaves), rounded up to an integer."""
        if level <= 0:
            return 1
        return max(
            1, math.ceil(iterated_log(self.num_leaves, self.rounds - level))
        )

    def _build(self) -> None:
        # Level 0: the leaves.
        leaves = [
            TreeNode(index=i, level=0, leaf_start=i, leaf_end=i + 1)
            for i in range(self.num_leaves)
        ]
        self.levels.append(leaves)
        # Levels 1..r: chunk the previous level so each new node covers
        # ~coverage_target(level) leaves.
        for level in range(1, self.rounds + 1):
            target = self.coverage_target(level)
            previous = self.levels[level - 1]
            nodes: List[TreeNode] = []
            cursor = 0
            while cursor < len(previous):
                start_child = cursor
                leaf_start = previous[cursor].leaf_start
                covered = 0
                while cursor < len(previous) and covered < target:
                    covered += previous[cursor].num_leaves
                    cursor += 1
                nodes.append(
                    TreeNode(
                        index=len(nodes),
                        level=level,
                        leaf_start=leaf_start,
                        leaf_end=previous[cursor - 1].leaf_end,
                        children=list(range(start_child, cursor)),
                    )
                )
            # The top level must be a single root even when rounding left
            # several chunks; merge them (only possible at small k).
            if level == self.rounds and len(nodes) > 1:
                nodes = [
                    TreeNode(
                        index=0,
                        level=level,
                        leaf_start=0,
                        leaf_end=self.num_leaves,
                        children=list(range(len(previous))),
                    )
                ]
            self.levels.append(nodes)

    @property
    def root(self) -> TreeNode:
        """The root node (covers every leaf)."""
        return self.levels[self.rounds][0]

    def num_nodes(self, level: int) -> int:
        """``|L_level|``."""
        return len(self.levels[level])

    def __repr__(self) -> str:
        shape = " / ".join(str(len(level)) for level in self.levels)
        return (
            f"VerificationTree(leaves={self.num_leaves}, "
            f"rounds={self.rounds}, shape=[{shape}])"
        )
