"""The paper's primary contribution: the verification-tree protocol.

* :mod:`repro.core.verification_tree` -- the tree ``T`` of Section 3.3:
  ``k`` leaves, ``r`` levels, level-``i`` nodes covering ``log^(r-i) k``
  leaves.
* :mod:`repro.core.tree_protocol` -- Theorem 1.1 / 3.6: the ``6r``-round
  protocol with expected communication ``O(k log^(r) k)``.
* :mod:`repro.core.amplify` -- the Section 4 amplification wrapper
  (repeat until a ``k``-bit equality check passes): success ``1 - 2^-k``
  with ``O(1)`` expected repetitions.
* :mod:`repro.core.private_model` -- the constructive private-randomness
  translation of Section 3.1 (FKS universe reduction + transmitted seeds,
  additive ``O(log k + log log n)`` bits).
* :mod:`repro.core.tradeoff` -- protocol selection along the
  communication/round tradeoff curve.
* :mod:`repro.core.api` -- the user-facing entry points
  (:func:`~repro.core.api.compute_intersection` and friends).
"""

from repro.core.amplify import AmplifiedIntersection
from repro.core.api import IntersectionResult, compute_intersection
from repro.core.private_model import PrivateCoinIntersection
from repro.core.tradeoff import communication_bound, select_protocol
from repro.core.tree_protocol import TreeProtocol, expected_bits_bound
from repro.core.verification_tree import TreeNode, VerificationTree

__all__ = [
    "AmplifiedIntersection",
    "IntersectionResult",
    "compute_intersection",
    "PrivateCoinIntersection",
    "communication_bound",
    "select_protocol",
    "TreeProtocol",
    "expected_bits_bound",
    "TreeNode",
    "VerificationTree",
]
