"""The user-facing API.

:func:`compute_intersection` is the library's front door: give it two sets,
optionally a round budget and a randomness model, and it returns the
intersection together with an exact :class:`IntersectionResult` report of
what the exchange cost.  The applications layer
(:mod:`repro.applications`) builds every derived statistic (Jaccard, union
size, rarity, joins, ...) on top of this function, mirroring how the paper
derives them from the core protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional

from repro.core.amplify import AmplifiedIntersection
from repro.core.private_model import PrivateCoinIntersection
from repro.core.tradeoff import optimal_rounds, select_protocol
from repro.protocols.base import IntersectionOutcome, validate_set_pair

__all__ = ["IntersectionResult", "compute_intersection"]


@dataclass(frozen=True)
class IntersectionResult:
    """What :func:`compute_intersection` returns.

    :param intersection: the computed ``S n T`` (both parties agreed on it
        unless the run hit its probabilistic failure event -- exactness
        holds with probability ``1 - 1/poly(k)``, or ``1 - 2^-k`` when
        amplified).
    :param bits: total communication in bits.
    :param messages: number of messages exchanged (the round complexity).
    :param protocol: name of the protocol that ran.
    :param rounds_parameter: the tradeoff parameter ``r`` in effect.
    :param parties_agree: whether both simulated parties produced the same
        set (diagnostic; disagreement is itself a low-probability event).
    """

    intersection: FrozenSet[int]
    bits: int
    messages: int
    protocol: str
    rounds_parameter: int
    parties_agree: bool


def compute_intersection(
    alice_set: Iterable[int],
    bob_set: Iterable[int],
    *,
    universe_size: Optional[int] = None,
    max_set_size: Optional[int] = None,
    rounds: Optional[int] = None,
    model: str = "shared",
    amplified: bool = False,
    deterministic: bool = False,
    seed: int = 0,
) -> IntersectionResult:
    """Compute ``S n T`` with communication on the paper's tradeoff curve.

    :param alice_set: the first server's set ``S``.
    :param bob_set: the second server's set ``T``.
    :param universe_size: universe ``[n]``; inferred as the next power of
        two above the largest element when omitted.
    :param max_set_size: the bound ``k``; inferred as ``max(|S|, |T|)``
        when omitted.
    :param rounds: round-budget parameter ``r`` (communication
        ``O(k log^(r) k)``); ``None`` selects the optimal ``log* k``.
    :param model: ``"shared"`` (common random string) or ``"private"``
        (private coins; constructive Section 3.1 translation, additive
        ``O(log k + log log n)`` bits).
    :param amplified: wrap in the Section 4 amplification for success
        probability ``1 - 2^-k``.
    :param deterministic: use the zero-error trivial exchange instead
        (``O(k log(n/k))`` bits; incompatible with ``model="private"``
        pointlessly but allowed).
    :param seed: replay seed for all randomness.
    """
    s = frozenset(alice_set)
    t = frozenset(bob_set)
    if universe_size is None:
        largest = max(list(s) + list(t) + [1])
        universe_size = 1 << (largest.bit_length() + 1)
    if max_set_size is None:
        max_set_size = max(len(s), len(t), 1)
    validate_set_pair(s, t, universe_size, max_set_size)

    effective_rounds = (
        rounds if rounds is not None else optimal_rounds(max_set_size)
    )
    if model not in ("shared", "private"):
        raise ValueError(f"model must be 'shared' or 'private', got {model!r}")

    if deterministic:
        protocol = select_protocol(universe_size, max_set_size, deterministic=True)
    elif model == "private":
        from repro.core.tree_protocol import TreeProtocol

        clamped = min(effective_rounds, optimal_rounds(max_set_size))
        protocol = PrivateCoinIntersection(
            universe_size,
            max_set_size,
            inner_factory=lambda reduced: TreeProtocol(
                reduced, max_set_size, rounds=clamped
            ),
        )
    elif amplified:
        protocol = AmplifiedIntersection(
            universe_size, max_set_size, rounds=effective_rounds
        )
    else:
        protocol = select_protocol(
            universe_size, max_set_size, rounds=effective_rounds
        )

    outcome: IntersectionOutcome = protocol.run(s, t, seed=seed)
    answer = outcome.alice_output
    if answer is None:
        answer = outcome.bob_output
    return IntersectionResult(
        intersection=frozenset(answer) if answer is not None else frozenset(),
        bits=outcome.total_bits,
        messages=outcome.num_messages,
        protocol=outcome.protocol_name,
        rounds_parameter=effective_rounds,
        parties_agree=outcome.agreed,
    )
