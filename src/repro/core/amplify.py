"""Success amplification: repeat until a ``k``-bit equality check passes.

Section 4, first paragraph: "we can amplify the success probability of the
two-party protocol in Theorem 1.1 to ``1 - 1/2^k`` while keeping the
expected total communication ``O(k log^(r) k)`` and only incurring a penalty
in the number of rounds: the protocol will have expected ``O(r)`` rounds
instead of worst-case ``6r`` rounds.  This follows by repeating the protocol
if it hasn't succeeded.  The latter condition can be checked by exchanging
``k``-bit equality checks after the protocol terminates."

The check is sound because of the one-sided invariant (Corollary 3.4 /
Proposition 3.9): the two candidate outputs can only be *equal and wrong*
if they are equal, and equal candidates are necessarily the true
intersection.  So a passed ``k``-bit equality check certifies correctness up
to the ``2^-k`` fingerprint error, and a failed one triggers a fresh retry
with new shared randomness.

The wrapper also applies the worst-case bit cutoff to each attempt (the
inner protocol outputs ``None`` at a stage boundary once over budget, which
both parties detect symmetrically and treat as a failed attempt).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.comm.engine import PartyContext
from repro.comm.errors import ProtocolAborted
from repro.core.tree_protocol import TreeProtocol, expected_bits_bound
from repro.protocols.base import SetIntersectionProtocol, subcontext
from repro.protocols.equality import run_equality

__all__ = ["AmplifiedIntersection"]


class AmplifiedIntersection(SetIntersectionProtocol):
    """Wrap an ``INT_k`` protocol to success probability ``1 - 2^-k``.

    :param inner: the protocol to amplify; defaults (``None``) to a
        :class:`~repro.core.tree_protocol.TreeProtocol` at the given
        parameters with the standard worst-case bit budget.
    :param universe_size: universe ``[n]`` (used when ``inner`` is None and
        for validation).
    :param max_set_size: bound ``k``; also the equality-check width.
    :param rounds: forwarded to the default inner protocol.
    :param budget_factor: each attempt's bit budget is ``budget_factor *
        expected_bits_bound(k, rounds)`` (only applied to the default inner
        protocol; pass an explicit ``inner`` to control its budget
        yourself).
    :param max_attempts: hard cap on repetitions; exceeding it raises
        :class:`ProtocolAborted` (probability exponentially small in the
        cap).
    """

    name = "amplified-intersection"

    def __init__(
        self,
        universe_size: int,
        max_set_size: int,
        *,
        inner: Optional[SetIntersectionProtocol] = None,
        rounds: Optional[int] = None,
        budget_factor: int = 8,
        max_attempts: int = 64,
        check_width: Optional[int] = None,
    ) -> None:
        super().__init__(universe_size, max_set_size)
        if inner is None:
            from repro.util.iterlog import log_star

            effective_rounds = (
                rounds if rounds is not None else max(1, log_star(max_set_size))
            )
            inner = TreeProtocol(
                universe_size,
                max_set_size,
                rounds=effective_rounds,
                bit_budget=budget_factor
                * expected_bits_bound(max_set_size, effective_rounds),
            )
        self.inner = inner
        self.max_attempts = max_attempts
        # Section 4 uses 2k-bit checks in group settings; the default is the
        # two-party k-bit check of the amplification paragraph.
        self.check_width = (
            check_width if check_width is not None else max(8, max_set_size)
        )

    def _party(self, ctx: PartyContext) -> Generator:
        inner_role = self.inner.alice if ctx.role == "alice" else self.inner.bob
        for attempt in range(self.max_attempts):
            attempt_ctx = subcontext(ctx, f"amp/attempt{attempt}", ctx.input)
            candidate = yield from inner_role(attempt_ctx)
            if candidate is None:
                continue  # symmetric budget abort; retry with fresh coins
            verified = yield from run_equality(
                ctx,
                candidate,
                width=self.check_width,
                label=f"amp/check{attempt}",
            )
            if verified:
                return candidate
        raise ProtocolAborted(
            f"amplified intersection failed {self.max_attempts} attempts",
            bits_used=0,
            budget=self.max_attempts,
        )

    def alice(self, ctx: PartyContext) -> Generator:
        """Alice: run attempts of the inner protocol until verified."""
        return (yield from self._party(ctx))

    def bob(self, ctx: PartyContext) -> Generator:
        """Bob: run attempts of the inner protocol until verified."""
        return (yield from self._party(ctx))
