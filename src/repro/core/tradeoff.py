"""Protocol selection along the communication/round tradeoff curve.

The paper's landscape for ``INT_k`` (two parties):

==========================  =====================  ======================
protocol                    rounds                 communication
==========================  =====================  ======================
trivial deterministic       1                      ``O(k log(n/k))``
one-round hashing           1 (each way)           ``O(k log k)``
tree protocol, given ``r``  ``6r``                 ``O(k log^(r) k)``
tree protocol, ``r=log*k``  ``O(log* k)``          ``O(k)``  (optimal)
==========================  =====================  ======================

matching the ``Omega(k log^(r) k)`` lower bound for ``r``-round protocols
[ST13] and the ``Omega(k)`` unbounded-round bound [KS92].
:func:`select_protocol` picks the best protocol for a round budget, and
:func:`communication_bound` evaluates the theoretical curve the benchmarks
normalize against.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.tree_protocol import TreeProtocol
from repro.protocols.base import SetIntersectionProtocol
from repro.protocols.one_round import OneRoundHashingProtocol
from repro.protocols.trivial import TrivialExchangeProtocol
from repro.util.iterlog import iterated_log, log_star

__all__ = ["select_protocol", "communication_bound", "optimal_rounds"]


def optimal_rounds(max_set_size: int) -> int:
    """The round parameter at which communication bottoms out: ``log* k``."""
    return max(1, log_star(max_set_size))


def communication_bound(max_set_size: int, rounds: int) -> float:
    """The theory curve ``k * log^(rounds) k`` (in "units", constants
    elided); benchmarks divide measured bits by this and check flatness."""
    k = max(max_set_size, 2)
    return k * max(iterated_log(k, rounds), 1.0)


def select_protocol(
    universe_size: int,
    max_set_size: int,
    *,
    rounds: Optional[int] = None,
    deterministic: bool = False,
) -> SetIntersectionProtocol:
    """Pick the protocol for a round budget.

    :param universe_size: universe ``[n]``.
    :param max_set_size: bound ``k``.
    :param rounds: the tradeoff parameter ``r``; ``None`` selects the
        communication-optimal ``log* k``.  ``rounds=1`` selects the
        one-round hashing protocol (``O(k log k)``, matching the one-round
        lower bound) unless ``deterministic``.
    :param deterministic: require a zero-error protocol (forces the trivial
        ``O(k log(n/k))`` exchange).
    """
    if deterministic:
        return TrivialExchangeProtocol(universe_size, max_set_size)
    if rounds is None:
        rounds = optimal_rounds(max_set_size)
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    if rounds == 1:
        # At r = 1 the tree protocol degenerates to exactly this exchange;
        # prefer the explicitly-named implementation.
        return OneRoundHashingProtocol(universe_size, max_set_size)
    effective = min(rounds, optimal_rounds(max_set_size))
    return TreeProtocol(universe_size, max_set_size, rounds=effective)


def trivial_bound(universe_size: int, max_set_size: int) -> float:
    """The deterministic baseline curve ``k * log(n/k)`` (plus the gamma
    constant), for benchmark normalization."""
    k = max(max_set_size, 1)
    ratio = max(universe_size / k, 2.0)
    return k * (math.log2(ratio) + 2.0)
