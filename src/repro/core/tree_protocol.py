"""Theorem 1.1 / 3.6: the verification-tree protocol for ``INT_k``.

For every ``r > 0``, a ``6r``-round protocol with expected communication
``O(k log^(r) k)`` and success probability ``1 - 1/poly(k)``.

**r = 1** (base case, Theorem 3.6): the parties share ``h: [n] -> [N]``
with ``N = k^c`` (``c > 2``) and exchange the sorted lists ``h(S)``,
``h(T)`` -- ``2 c k log k`` bits, 2 messages; each keeps its elements whose
hash the other also sent.  Failure only on an ``h`` collision over
``S u T``: probability ``O(1/k^{c-2})``.

**r > 1** (Algorithm 1): a shared ``h: [n] -> [k]`` assigns elements to the
``k`` leaves of a :class:`~repro.core.verification_tree.VerificationTree`;
the protocol runs ``r`` stages, each taking 6 messages:

1. *Equality sweep* (2 messages): for every node ``v`` in level ``L_i``,
   Alice sends a fingerprint of her current induced assignment ``S_v``
   (the union of her candidate sets over the leaves of ``v``) with error
   ``1/(log^(r-i-1) k)^4``; Bob replies per-node verdict bits.  By the
   Corollary 3.4 invariant, assignments that compare equal *are* the
   intersections of the original buckets, so passed subtrees are settled
   (until a higher level re-examines them, which can only re-run leaves
   that actually drifted).
2. *Basic-Intersection re-runs* (4 messages): every leaf under a failed
   node re-runs Lemma 3.3 with fresh shared hashing at the same
   ``1/(log^(r-i-1) k)^4`` failure level: sizes each way, then sorted hash
   lists each way, all leaves batched into the same four messages.

After stage ``r - 1`` every leaf candidate pair agrees with probability
``1 - 1/(log^(0) k)^4 = 1 - 1/k^4`` (Lemma 3.7), so a union bound over the
``k`` leaves makes the root correct with probability ``1 - 1/k^3``
(Corollary 3.8); each party outputs the union of its leaf candidates.

Cost accounting mirrors the paper: the stage-``i`` equality sweep costs
``|L_i| * Theta(log log^(r-i-1) k) = Theta(k)`` bits for ``i >= 1`` and
``Theta(k log^(r) k)`` at ``i = 0``; Basic-Intersection re-runs cost
``O(1)`` expected per leaf (Lemma 3.10's geometric failure rates), giving
``O(k log^(r) k)`` expected bits overall.

The optional ``bit_budget`` implements the paper's expected-to-worst-case
conversion: both parties track the (common-knowledge) running bit count and
abandon the run at a stage boundary once it exceeds the budget, outputting
``None``; the amplification wrapper retries such runs.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, FrozenSet, Generator, List, Optional, Tuple

from repro.comm.engine import PartyContext, Recv, Send
from repro.core.verification_tree import VerificationTree
from repro.obs.state import STATE as _OBS
from repro.hashing.pairwise import PairwiseHash, sample_pairwise_hash
from repro.kernels import affine_image_segments, sort_ints
from repro.protocols.base import SetIntersectionProtocol
from repro.protocols.basic_intersection import range_for_inverse_failure
from repro.protocols.equality import bulk_verdicts, equality_error_exponent
from repro.protocols.fingerprint import Fingerprinter
from repro.util import hotcache
from repro.util.bits import BitReader, BitWriter
from repro.util.iterlog import ceil_log2, iterated_log, log_star
from repro.util.rng import RandomStream

__all__ = [
    "TreeProtocol",
    "StageStats",
    "expected_bits_bound",
    "AffineSweepRequest",
    "FingerprintSweepRequest",
    "resolve_sweeps",
]


def _leaf_plans_impl(
    shared_key: tuple,
    stage: int,
    universe_size: int,
    inverse_failure: float,
    leaf_totals: Tuple[Tuple[int, int], ...],
) -> Tuple[Tuple[PairwiseHash, int], ...]:
    """The per-leaf re-run plan for one stage: ``(hash function, wire
    width)`` for every failed leaf, in ``leaf_totals`` order.

    ``leaf_totals`` pairs each failed leaf with ``|S_u| + |T_u|`` (the
    combined candidate sizes, which both parties know after the size
    exchange and which fix the Lemma 3.3 range).  Together with the shared
    randomness identity and the stage this determines the plan exactly, so
    the whole stage's derivation is one cacheable unit: both parties compute
    the identical plan within a run, and replayed runs hit outright.
    """
    seed, prefix = shared_key
    label_fmt = f"{prefix}/tree/bi/s{stage}/u{{}}" if prefix else f"tree/bi/s{stage}/u{{}}"
    plans = []
    for leaf, total in leaf_totals:
        range_size = range_for_inverse_failure(total, inverse_failure)
        stream = RandomStream(seed, label_fmt.format(leaf))
        plans.append(
            (
                sample_pairwise_hash(universe_size, range_size, stream),
                ceil_log2(range_size),
            )
        )
    return tuple(plans)


_leaf_plans_cached = hotcache.register(
    "core.tree_protocol.leaf_plans",
    lru_cache(maxsize=1 << 12)(_leaf_plans_impl),
)


#: The (immutable) empty candidate set, shared by every leaf that starts or
#: ends up empty.
_EMPTY_SET: FrozenSet[int] = frozenset()


def _node_union_impl(parts: Tuple[FrozenSet[int], ...]) -> FrozenSet[int]:
    """Union of a node's per-leaf candidate sets (the induced assignment
    ``S_v`` fingerprinted by the equality sweep)."""
    out: set = set()
    for part in parts:
        out |= part
    return frozenset(out)


# frozensets cache their hash, so the key costs O(#leaves) per node while a
# miss costs O(#elements); within one run the two parties build every
# union twice, and replayed runs (amplification retries, benchmarks) hit
# outright.  Value-transparent like every hot cache: the union is a pure
# function of the parts.
_node_union_cached = hotcache.register(
    "core.tree_protocol.node_union",
    lru_cache(maxsize=1 << 14)(_node_union_impl),
)


from dataclasses import dataclass


@dataclass(frozen=True)
class StageStats:
    """Per-stage cost breakdown, collected when a ``stage_stats_sink`` list
    is passed to :class:`TreeProtocol` (appended by Alice's coroutine; one
    entry per stage per run).

    :param stage: stage index ``i`` (0-based).
    :param num_nodes: ``|L_i|``, nodes equality-tested this stage.
    :param eq_width: fingerprint width used by this stage's tests.
    :param equality_bits: fingerprints + verdict bits.
    :param failed_nodes: nodes whose equality test failed.
    :param failed_leaves: leaves re-running Basic-Intersection.
    :param rerun_bits: size headers + hash lists, both directions.
    """

    stage: int
    num_nodes: int
    eq_width: int
    equality_bits: int
    failed_nodes: int
    failed_leaves: int
    rerun_bits: int


@dataclass(frozen=True)
class AffineSweepRequest:
    """Pending-sweep effect: evaluate many Carter-Wegman sweeps at once.

    Yielded by :meth:`TreeProtocol.party_with_pending_sweeps` wherever the
    inline party would call a hash kernel -- the leaf-bucket assignment and
    the per-failed-leaf re-run sweeps.  The resumer answers with
    ``affine_image_segments(segments)``: one image list per segment, in
    segment order.  The engine never sees this effect; the inline wrapper
    (:func:`resolve_sweeps`) resolves it on the spot, and the serve layer's
    round-barrier scheduler pools requests from many lockstepped sessions
    into a single segmented dispatch instead.

    :param segments: ``(elements, mult, shift, prime, range_size)`` per
        sweep, exactly the :func:`repro.kernels.affine_image_segments`
        contract.
    """

    segments: tuple


@dataclass(frozen=True)
class FingerprintSweepRequest:
    """Pending-sweep effect: one equality-sweep's bulk fingerprints.

    The resumer answers with ``printer.values_of(values)`` -- or anything
    value-identical, e.g. the pooled
    :func:`repro.kernels.fingerprint_sweep_segments` path keyed by
    ``printer.salt`` / ``printer.width``, which is how the round-barrier
    scheduler evaluates every lockstepped session's level sweep in one
    dispatch.

    :param printer: the stage's :class:`~repro.protocols.fingerprint.
        Fingerprinter` (already constructed, so the salt coins are drawn
        identically on every execution path).
    :param values: the level's node values (hashable, in node order).
    """

    printer: Fingerprinter
    values: tuple


def resolve_sweeps(gen: Generator) -> Generator:
    """The scalar oracle for a pending-sweep party generator.

    Forwards ``Send`` / ``Recv`` effects to the caller unchanged and
    answers sweep requests inline with the very kernels the inline protocol
    used before the seam existed -- so wrapping a party in
    ``resolve_sweeps`` is bit-identical (coins, wire bytes, outputs) to the
    pre-seam party, and the engine only ever sees engine effects.
    """
    try:
        effect = next(gen)
        while True:
            if type(effect) is AffineSweepRequest:
                effect = gen.send(affine_image_segments(effect.segments))
            elif type(effect) is FingerprintSweepRequest:
                effect = gen.send(effect.printer.values_of(effect.values))
            else:
                value = yield effect
                effect = gen.send(value)
    except StopIteration as stop:
        return stop.value


def expected_bits_bound(max_set_size: int, rounds: int) -> int:
    """A generous concrete instantiation of the ``O(k log^(r) k)`` expected
    communication bound, used as the default worst-case cutoff by the
    amplification wrapper: four times the analytic upper model of
    :func:`repro.analysis.predictions.predict_tree_bits_upper` plus slack,
    so exceeding it is a genuine tail event (E12a shows measurements sit
    *below* the model)."""
    from repro.analysis.predictions import predict_tree_bits_upper

    return int(4 * predict_tree_bits_upper(max_set_size, rounds) + 4096)


class TreeProtocol(SetIntersectionProtocol):
    """The main protocol of the paper (Theorem 1.1).

    :param universe_size: universe ``[n]``.
    :param max_set_size: bound ``k`` (also the number of leaves).
    :param rounds: the tradeoff parameter ``r``; default ``log* k`` (the
        communication-optimal point, ``O(k)`` bits).
    :param confidence_exponent: the paper's ``4`` in the per-stage failure
        target ``1/(log^(r-i-1) k)^4``; exposed for the ablation benches.
    :param universe_exponent: the ``c > 2`` of the ``r = 1`` base case.
    :param bit_budget: optional worst-case communication cutoff; on breach
        both parties output ``None`` at the next stage boundary.
    :param num_leaves: number of hash buckets / tree leaves; default ``k``
        (the paper's choice).  Exposed for the DESIGN.md ablation against
        the toy protocol's ``k / log k`` bucketing: fewer buckets mean
        bigger buckets (costlier re-runs) but fewer stage-0 equality tests.
    """

    name = "verification-tree"

    def __init__(
        self,
        universe_size: int,
        max_set_size: int,
        *,
        rounds: Optional[int] = None,
        confidence_exponent: int = 4,
        universe_exponent: int = 3,
        bit_budget: Optional[int] = None,
        stage_stats_sink: Optional[list] = None,
        num_leaves: Optional[int] = None,
    ) -> None:
        super().__init__(universe_size, max_set_size)
        if rounds is None:
            rounds = max(1, log_star(max_set_size))
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        if confidence_exponent < 1:
            raise ValueError(
                f"confidence_exponent must be >= 1, got {confidence_exponent}"
            )
        if universe_exponent <= 2:
            raise ValueError(
                f"universe_exponent must be > 2, got {universe_exponent}"
            )
        self.rounds = rounds
        self.confidence_exponent = confidence_exponent
        self.universe_exponent = universe_exponent
        self.bit_budget = bit_budget
        self.stage_stats_sink = stage_stats_sink
        if num_leaves is None:
            num_leaves = max_set_size
        if num_leaves < 1:
            raise ValueError(f"num_leaves must be >= 1, got {num_leaves}")
        self.num_leaves = num_leaves
        if rounds > 1:
            self.tree = VerificationTree(num_leaves, rounds)
            # Per-level (leaf_start, leaf_end) pairs, extracted once: the
            # equality sweep walks every node of a level each stage, and
            # plain int pairs beat dataclass attribute access in that loop.
            self._level_spans = [
                [(node.leaf_start, node.leaf_end) for node in level]
                for level in self.tree.levels
            ]
        else:
            self.tree = None
            self._level_spans = None

    # -- r = 1 base case ----------------------------------------------------

    def _party_one_round(self, ctx: PartyContext) -> Generator:
        """Exchange ``h(S)`` and ``h(T)`` for ``h: [n] -> [k^c]``."""
        is_alice = ctx.role == "alice"
        own = frozenset(ctx.input)
        reduced = max(self.max_set_size, 2) ** self.universe_exponent
        hash_fn = sample_pairwise_hash(
            self.universe_size, reduced, ctx.shared.stream("tree/r1")
        )
        width = hash_fn.output_bits
        writer = BitWriter()
        # One batch-kernel sweep for the whole set, then a bulk sort -- the
        # r = 1 message is a single sorted hash list of up to k images.
        values = sort_ints(hash_fn.images(list(own)))
        writer.write_gamma(len(values))
        writer.write_run(values, width)
        if is_alice:
            yield Send(writer.finish())
            reader = BitReader((yield Recv()))
        else:
            reader = BitReader((yield Recv()))
            yield Send(writer.finish())
        count = reader.read_gamma()
        other = set(reader.read_run(count, width))
        reader.expect_exhausted()
        own_list = list(own)
        return frozenset(
            x
            for x, image in zip(own_list, hash_fn.images(own_list))
            if image in other
        )

    # -- r > 1 stages ---------------------------------------------------------

    def _stage_failure_inverse(self, stage: int) -> float:
        """``(log^(r-stage-1) k)^confidence_exponent``, the inverse failure
        probability for this stage's equality tests and re-runs."""
        level_value = max(
            iterated_log(self.max_set_size, self.rounds - stage - 1), 2.0
        )
        return level_value**self.confidence_exponent

    def _party_tree(self, ctx: PartyContext) -> Generator:
        # The inline path: the pending-sweep generator with every sweep
        # request resolved on the spot (the scalar oracle the batch
        # executors are pinned against).
        return (yield from resolve_sweeps(self.party_with_pending_sweeps(ctx)))

    def party_with_pending_sweeps(self, ctx: PartyContext) -> Generator:
        """One party of Algorithm 1 with its kernel sweeps left *pending*.

        Identical to the engine-facing party except that every hash /
        fingerprint sweep is yielded as an :class:`AffineSweepRequest` or
        :class:`FingerprintSweepRequest` instead of computed inline; the
        resumer sends the sweep results back into the generator.  All coins
        are drawn inside the generator in the usual order, so any
        value-faithful resumer -- :func:`resolve_sweeps` inline, or the
        serve layer's round-barrier scheduler pooling many sessions per
        dispatch -- produces bit-identical transcripts and outputs.

        Only the ``r > 1`` tree shape is exposed this way (the ``r = 1``
        base case already has a closed-form batch executor in
        :mod:`repro.serve.coalescer`).
        """
        if self.rounds == 1:
            raise ValueError(
                "party_with_pending_sweeps requires rounds > 1; the r=1 "
                "base case has its own closed-form batch executor"
            )
        is_alice = ctx.role == "alice"
        own = frozenset(ctx.input)
        num_leaves = self.num_leaves
        bucket_hash = sample_pairwise_hash(
            self.universe_size, num_leaves, ctx.shared.stream("tree/h")
        )
        # Leaves are 0..num_leaves-1, so the per-leaf candidate sets live in
        # a flat list: node unions become C-speed slices and every leaf
        # access skips dict hashing.
        assignment: List[FrozenSet[int]] = [_EMPTY_SET] * num_leaves
        grouped: Dict[int, set] = {}
        own_list = list(own)
        # Leaf assignment is the Theorem 3.1-style bucket-hashing step: one
        # pooled kernel sweep for every element's bucket, then pure-Python
        # grouping.
        (bucket_images,) = yield AffineSweepRequest(
            (
                (
                    own_list,
                    bucket_hash.mult,
                    bucket_hash.shift,
                    bucket_hash.prime,
                    bucket_hash.range_size,
                ),
            )
        )
        for element, leaf in zip(own_list, bucket_images):
            grouped.setdefault(leaf, set()).add(element)
        for leaf, elements in grouped.items():
            assignment[leaf] = frozenset(elements)

        bits_seen = 0  # symmetric: bits sent + received so far (both agree)

        for stage in range(self.rounds):
            if self.bit_budget is not None and bits_seen > self.bit_budget:
                return None
            inverse_failure = self._stage_failure_inverse(stage)
            eq_width = equality_error_exponent(inverse_failure)
            spans = self._level_spans[stage]
            stage_start_bits = bits_seen

            # 1-2: equality sweep over level `stage`.
            printer = Fingerprinter(
                ctx.shared.stream(f"tree/eq/s{stage}"), eq_width
            )
            # Single-leaf nodes (all of level 0) fingerprint their bucket
            # directly; real unions go through the node-union cache, so a
            # replayed stage costs one lookup per node instead of
            # rebuilding every induced assignment.  The fingerprints
            # themselves go through one bulk sweep (node values are
            # frozensets, always hashable).
            union = _node_union_cached if hotcache.enabled() else _node_union_impl
            prints = yield FingerprintSweepRequest(
                printer,
                tuple(
                    assignment[start]
                    if end - start == 1
                    else union(tuple(assignment[start:end]))
                    for start, end in spans
                ),
            )
            if is_alice:
                # All of this level's fingerprints assemble into one shared
                # writer -- a single bulk run, not a BitString concat chain.
                writer = BitWriter()
                writer.write_run(prints, eq_width)
                payload = writer.finish()
                bits_seen += len(payload)
                yield Send(payload)
                verdict_payload = yield Recv()
                bits_seen += len(verdict_payload)
                reader = BitReader(verdict_payload)
                verdicts = reader.read_run(len(spans), 1)
                reader.expect_exhausted()
            else:
                payload = yield Recv()
                bits_seen += len(payload)
                reader = BitReader(payload)
                received = reader.read_run(len(spans), eq_width)
                reader.expect_exhausted()
                verdicts = bulk_verdicts(received, prints)
                writer = BitWriter()
                writer.write_run(verdicts, 1)
                reply = writer.finish()
                bits_seen += len(reply)
                yield Send(reply)

            equality_bits = bits_seen - stage_start_bits
            failed_nodes = sum(1 for verdict in verdicts if not verdict)
            # A level's nodes partition the leaves in increasing order, so
            # concatenating failed nodes' ranges is already sorted+unique.
            failed_leaves: List[int] = [
                leaf
                for (start, end), verdict in zip(spans, verdicts)
                if not verdict
                for leaf in range(start, end)
            ]

            def record_stage() -> None:
                if is_alice and self.stage_stats_sink is not None:
                    self.stage_stats_sink.append(
                        StageStats(
                            stage=stage,
                            num_nodes=len(spans),
                            eq_width=eq_width,
                            equality_bits=equality_bits,
                            failed_nodes=failed_nodes,
                            failed_leaves=len(failed_leaves),
                            rerun_bits=bits_seen - stage_start_bits - equality_bits,
                        )
                    )
                # Alice-only so each stage traces once per run, mirroring
                # the stage_stats_sink convention.
                if is_alice and _OBS.active:
                    _OBS.tracer.emit(
                        "bucket.phase",
                        protocol=self.name,
                        phase=f"stage{stage}",
                        num_nodes=len(spans),
                        eq_width=eq_width,
                        equality_bits=equality_bits,
                        failed_leaves=len(failed_leaves),
                        rerun_bits=bits_seen - stage_start_bits - equality_bits,
                    )
                    _OBS.tracer.emit(
                        "verify.outcome",
                        protocol=self.name,
                        context=f"stage{stage}",
                        passed=len(spans) - failed_nodes,
                        failed=failed_nodes,
                    )

            if not failed_leaves:
                record_stage()
                continue

            # 3-4: exchange per-leaf sizes for the failed leaves (one bulk
            # gamma run: hundreds of tiny codes, one shared message).
            writer = BitWriter()
            writer.write_gamma_run(
                [len(assignment[leaf]) for leaf in failed_leaves]
            )
            size_payload = writer.finish()
            if is_alice:
                bits_seen += len(size_payload)
                yield Send(size_payload)
                other_payload = yield Recv()
                bits_seen += len(other_payload)
            else:
                other_payload = yield Recv()
                bits_seen += len(other_payload)
                bits_seen += len(size_payload)
                yield Send(size_payload)
            reader = BitReader(other_payload)
            other_sizes = reader.read_gamma_run(len(failed_leaves))
            reader.expect_exhausted()

            # Both parties now derive, per failed leaf, the same fresh
            # Lemma 3.3 hash with range m^2 * (log^(r-stage-1) k)^4.  The
            # whole stage's plan is one (cached) derivation; see
            # _leaf_plans_impl.
            leaf_totals = tuple(
                (leaf, len(assignment[leaf]) + other_size)
                for leaf, other_size in zip(failed_leaves, other_sizes)
            )
            plan_fn = (
                _leaf_plans_cached if hotcache.enabled() else _leaf_plans_impl
            )
            plans = plan_fn(
                ctx.shared.cache_key(),
                stage,
                self.universe_size,
                inverse_failure,
                leaf_totals,
            )

            # 5-6: exchange the sorted hash lists -- every failed leaf's
            # run appended to the same shared writer in bulk.  Each element
            # is hashed exactly once, all leaves in one pooled sweep; the
            # (image, element) pairs feed both the outgoing sorted list and
            # the post-exchange filter.
            leaf_elements = [list(assignment[leaf]) for leaf in failed_leaves]
            image_runs = yield AffineSweepRequest(
                tuple(
                    (
                        xs,
                        hash_fn.mult,
                        hash_fn.shift,
                        hash_fn.prime,
                        hash_fn.range_size,
                    )
                    for xs, (hash_fn, _) in zip(leaf_elements, plans)
                )
            )
            leaf_images: List[list] = []
            writer = BitWriter()
            for xs, run_images, (_, width) in zip(
                leaf_elements, image_runs, plans
            ):
                images = list(zip(run_images, xs))
                leaf_images.append(images)
                if len(images) > 1:
                    run = sorted(run_images)
                else:
                    # Most failed leaves carry 0 or 1 candidates by the
                    # later stages; skip the generator + sort machinery.
                    run = [run_images[0]] if images else []
                writer.write_run(run, width)
            hash_payload = writer.finish()
            if is_alice:
                bits_seen += len(hash_payload)
                yield Send(hash_payload)
                other_payload = yield Recv()
                bits_seen += len(other_payload)
            else:
                other_payload = yield Recv()
                bits_seen += len(other_payload)
                bits_seen += len(hash_payload)
                yield Send(hash_payload)
            reader = BitReader(other_payload)
            for leaf, other_size, (_, width), images in zip(
                failed_leaves, other_sizes, plans, leaf_images
            ):
                # Empty intersections dominate the later stages: when
                # either side has nothing, the survivor set is empty, but
                # the peer's run bits must still be consumed exactly.
                if other_size == 0 or not images:
                    if other_size:
                        reader.read_uint(other_size * width)
                    assignment[leaf] = _EMPTY_SET
                    continue
                other_values = reader.read_run(other_size, width)
                if len(images) == 1:
                    image, x = images[0]
                    assignment[leaf] = (
                        frozenset((x,)) if image in other_values else _EMPTY_SET
                    )
                    continue
                other_set = set(other_values)
                assignment[leaf] = frozenset(
                    x for image, x in images if image in other_set
                )
            reader.expect_exhausted()
            record_stage()

        return frozenset(x for candidate in assignment for x in candidate)

    # -- coroutines -----------------------------------------------------------

    def _party(self, ctx: PartyContext) -> Generator:
        if self.rounds == 1:
            return (yield from self._party_one_round(ctx))
        return (yield from self._party_tree(ctx))

    def alice(self, ctx: PartyContext) -> Generator:
        """Alice's side of Algorithm 1 (fingerprint sender)."""
        return (yield from self._party(ctx))

    def bob(self, ctx: PartyContext) -> Generator:
        """Bob's side of Algorithm 1 (verdict sender)."""
        return (yield from self._party(ctx))
