"""repro: communication-optimal set-intersection protocols.

A faithful, bit-exact reproduction of

    Brody, Chakrabarti, Kondapally, Woodruff, Yaroslavtsev.
    "Beyond Set Disjointness: The Communication Complexity of Finding the
    Intersection."  PODC 2014.

Two (or ``m``) servers hold sets of at most ``k`` elements and want the
*entire* intersection -- not just to know whether it is empty.  The paper's
verification-tree protocol achieves the optimal ``O(k)`` bits of
communication in only ``O(log* k)`` rounds, with a smooth tradeoff
``O(k log^(r) k)`` bits at ``6r`` rounds; this library implements every
protocol in the paper on a bit-exact two-party/multi-party simulator,
together with the baselines, reductions, and applications the paper
discusses.

Quick start::

    from repro import compute_intersection

    result = compute_intersection({1, 5, 9, 200}, {5, 9, 77})
    result.intersection   # frozenset({5, 9})
    result.bits           # exact communication cost in bits
    result.messages       # number of messages (rounds)

See :mod:`repro.core` for the main protocol, :mod:`repro.protocols` for the
building blocks and baselines, :mod:`repro.multiparty` for the Section 4
message-passing protocols, and :mod:`repro.applications` for the derived
statistics (Jaccard similarity, rarity, distributed joins, ...).
"""

from repro.core.api import IntersectionResult, compute_intersection
from repro.core.tradeoff import communication_bound, optimal_rounds, select_protocol
from repro.core.tree_protocol import TreeProtocol
from repro.perf import derive_seed, run_trials
from repro.session import IntersectionSession

__version__ = "1.0.0"

__all__ = [
    "IntersectionResult",
    "compute_intersection",
    "communication_bound",
    "optimal_rounds",
    "select_protocol",
    "TreeProtocol",
    "IntersectionSession",
    "derive_seed",
    "run_trials",
    "__version__",
]
