"""Verification-driven retry with budget accounting and graceful degradation.

The paper's one-sided invariants are exactly what a system needs to detect
and repair channel damage: Lemma 3.3 / Corollary 3.4 guarantee each
party's candidate always lies inside its own input and contains
``S n T``, and *equal candidates are necessarily the true intersection* --
so output agreement is a sound end-to-end verification, and any observable
damage (a strict-codec decode error, a desynchronized channel, a budget
abort, or plain disagreement) can be answered by re-running with fresh
shared randomness.

:func:`run_with_retry` packages that loop:

* each attempt runs the wrapped protocol under the active fault plan with
  an attempt-derived seed (fresh hash functions per retry, the same
  repair the paper's own verification loops use) and an optional
  per-attempt bit budget (the "timeout" of the policy);
* all attempts share one transcript, so ``total_bits`` is the *exact*
  across-attempt spend -- including bits paid before a mid-run failure;
* failed attempts emit ``retry.attempt`` events and accrue deterministic
  simulated backoff; an exhausted budget emits ``retry.exhausted`` +
  ``degraded.output`` and returns the **degradation contract**: each party
  outputs its own input set, the only candidate that is certifiably a
  superset of ``S n T`` from within that party's input without any trusted
  communication.  Nothing raises mid-protocol on channel damage.

One subtlety makes the loop converge under fire: agreement certifies
exactness *on a reliable channel only*.  A single corrupted hash message
can remove the same true element from **both** candidates (the peer filters
against the corrupted list, then the sender filters against the peer's
already-filtered reply), so the parties agree on a wrong set and no
agreement check can tell.  The loop therefore treats an attempt that
reached agreement *while faults fired* as a **suspect** candidate: it is
accepted only once an independent attempt -- fresh shared randomness, so a
consistent corruption cannot replicate -- reproduces the same set (or an
attempt completes with no faults fired at all).  Attempts untouched by
faults accept immediately, so the reliable fast path pays nothing.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional, Tuple

from repro.comm.errors import (
    ProtocolAborted,
    ProtocolDeadlock,
    ProtocolError,
    ProtocolViolation,
)
from repro.comm.transcript import Transcript
from repro.faults.plan import FaultPlan
from repro.faults.state import STATE as _FAULTS
from repro.obs.state import STATE as _OBS
from repro.protocols.base import validate_set_pair

__all__ = ["RetryPolicy", "RobustOutcome", "attempt_seed", "run_with_retry"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry policy: attempts, per-attempt budget, backoff.

    :param max_attempts: total attempts (>= 1) before degrading.
    :param attempt_bit_budget: per-attempt communication cutoff in bits
        (the policy's "timeout"; ``None`` = no cutoff).  An attempt over
        budget aborts symmetrically and counts as failed.
    :param backoff_base: simulated delay units charged before retry ``i``
        (0 disables backoff accounting).
    :param backoff_factor: exponential growth of the simulated delay.
    :param adaptive_budget: when True (and a budget is set), later
        attempts' budgets grow with the fault pressure the session has
        actually observed (see :meth:`effective_budget`) instead of
        re-using the static per-attempt constant.  A budget sized for the
        reliable channel is systematically too tight once faults are
        firing -- retransmissions and re-verification legitimately cost
        bits -- so the static policy converts recoverable damage into
        budget aborts; the adaptive policy widens exactly in proportion to
        the observed damage while leaving the fault-free fast path (and
        attempt 0) at the original bound.
    """

    max_attempts: int = 5
    attempt_bit_budget: Optional[int] = None
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    adaptive_budget: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0:
            raise ValueError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def delay(self, attempt: int) -> float:
        """Simulated backoff charged before retry number ``attempt``
        (0-based: the delay between attempt ``attempt`` and the next)."""
        if self.backoff_base <= 0:
            return 0.0
        return self.backoff_base * self.backoff_factor**attempt

    def effective_budget(
        self, attempt: int, observed_faults: int
    ) -> Optional[int]:
        """The bit budget for ``attempt`` given the session's observed
        fault count so far.

        Static policies (and attempt 0, where nothing has been observed
        yet) use ``attempt_bit_budget`` unchanged; adaptive policies scale
        it by ``1 + observed_faults / attempt`` -- the average fault
        pressure per completed attempt -- so a session seeing one fault per
        attempt doubles its headroom while a fault-free session never pays
        for slack it does not need.  Deterministic: a pure function of the
        policy and the two counters, so retry sessions stay replayable.
        """
        if (
            self.attempt_bit_budget is None
            or not self.adaptive_budget
            or attempt <= 0
        ):
            return self.attempt_bit_budget
        return int(self.attempt_bit_budget * (1.0 + observed_faults / attempt))


@dataclass
class RobustOutcome:
    """Result of a retry-wrapped protocol session.

    On success (``degraded`` False) the outputs are the agreeing candidate
    sets -- by Corollary 3.4, the exact intersection up to the protocol's
    own fingerprint error.  On degradation each party outputs its full
    input (guaranteed ``output_A ⊇ S n T`` and ``output_A ⊆ S``) and
    ``degraded_mode`` says so.
    """

    alice_output: FrozenSet[int]
    bob_output: FrozenSet[int]
    protocol_name: str
    attempts: int
    total_bits: int
    #: Messages across all attempts (the shared transcript's count) -- the
    #: across-attempt round cost, same accounting basis as ``total_bits``.
    total_messages: int
    degraded: bool
    degraded_mode: Optional[str] = None
    simulated_delay: float = 0.0
    failure_reasons: List[str] = field(default_factory=list)
    #: Last completed-but-unverified candidate pair (diagnostics only; not
    #: certified supersets, which is why degradation does not return them).
    last_candidates: Optional[Tuple] = None

    @property
    def agreed(self) -> bool:
        """True when both outputs are the same set."""
        return self.alice_output == self.bob_output

    def correct_for(
        self, alice_set: Iterable[int], bob_set: Iterable[int]
    ) -> bool:
        """True when both outputs equal the true intersection."""
        truth = frozenset(alice_set) & frozenset(bob_set)
        return self.alice_output == truth and self.bob_output == truth


def attempt_seed(seed: int, attempt: int) -> int:
    """Derive attempt ``attempt``'s master seed from the session seed.

    SHA-256 based like :mod:`repro.util.rng`'s label derivation, so
    attempts get independent shared randomness (retrying with the same
    hash functions would deterministically re-hit a collision) while the
    whole session stays a pure function of ``seed``.
    """
    digest = hashlib.sha256(f"repro.faults.retry:{seed}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def _failure_reason(exc: Exception) -> str:
    if isinstance(exc, ProtocolAborted):
        return "aborted"
    if isinstance(exc, ProtocolDeadlock):
        return "deadlock"
    if isinstance(exc, ProtocolViolation):
        return "violation"
    if isinstance(exc, ProtocolError):  # future subclasses
        return "protocol-error"
    return "decode-error"


def run_with_retry(
    protocol,
    alice_set: Iterable[int],
    bob_set: Iterable[int],
    *,
    seed: int = 0,
    policy: Optional[RetryPolicy] = None,
    plan: Optional[FaultPlan] = None,
) -> RobustOutcome:
    """Run a two-party intersection protocol to a verified (or gracefully
    degraded) result over a possibly-faulty channel.

    :param protocol: a :class:`~repro.protocols.base.SetIntersectionProtocol`.
    :param alice_set: Alice's input ``S``.
    :param bob_set: Bob's input ``T``.
    :param seed: session seed; attempt seeds derive from it.
    :param policy: retry policy (default :class:`RetryPolicy()`).
    :param plan: explicit fault plan for this session.  ``None`` uses the
        process-global plan if one is installed (``REPRO_FAULTS`` /
        :func:`repro.faults.plan.install`), else a reliable channel.
    :returns: a :class:`RobustOutcome`; never raises on channel damage
        (input-validation errors still raise -- those are caller bugs,
        checked before any attempt runs).
    """
    policy = policy if policy is not None else RetryPolicy()
    # Validate up-front so a malformed instance raises as a caller bug
    # instead of being mistaken for channel damage inside the loop.
    s, t = validate_set_pair(
        alice_set, bob_set, protocol.universe_size, protocol.max_set_size
    )
    if plan is None and _FAULTS.active:
        # Resolve the global plan here (rather than letting the engine do
        # it) so the confirmation rule below can read its fault counters.
        plan = _FAULTS.plan
    injector = plan.inject_two_party if plan is not None else None
    record = Transcript()
    reasons: List[str] = []
    last_candidates: Optional[Tuple] = None
    suspect: Optional[FrozenSet[int]] = None
    delay = 0.0
    session_fault_base = plan.injected if plan is not None else 0
    for attempt in range(policy.max_attempts):
        faults_before = plan.injected if plan is not None else 0
        observed_faults = faults_before - session_fault_base
        try:
            outcome = protocol.run(
                s,
                t,
                seed=attempt_seed(seed, attempt),
                max_total_bits=policy.effective_budget(attempt, observed_faults),
                transcript=record,
                fault_injector=injector,
            )
        except ProtocolError as exc:
            reason = _failure_reason(exc)
        except ValueError:
            # Strict codecs refuse corrupted payloads; treat as a failed
            # verification exchange, not a crash.
            reason = "decode-error"
        else:
            complete = (
                outcome.alice_output is not None
                and outcome.bob_output is not None
            )
            if complete and outcome.alice_output == outcome.bob_output:
                faults_during = (
                    plan.injected - faults_before if plan is not None else 0
                )
                candidate = outcome.alice_output
                # Corollary 3.4: agreement certifies exactness -- over a
                # reliable channel.  An attempt faults actually touched can
                # agree on a consistently corrupted set, so it is accepted
                # only as confirmation of (or once confirmed by) an
                # independent attempt reproducing the same set.
                if faults_during == 0 or candidate == suspect:
                    return RobustOutcome(
                        alice_output=outcome.alice_output,
                        bob_output=outcome.bob_output,
                        protocol_name=protocol.name,
                        attempts=attempt + 1,
                        total_bits=record.total_bits,
                        total_messages=record.num_messages,
                        degraded=False,
                        simulated_delay=delay,
                        failure_reasons=reasons,
                    )
                suspect = candidate
                last_candidates = (outcome.alice_output, outcome.bob_output)
                reason = "unconfirmed"
            else:
                if complete:
                    last_candidates = (
                        outcome.alice_output,
                        outcome.bob_output,
                    )
                reason = "disagreement" if complete else "incomplete"
        reasons.append(reason)
        delay += policy.delay(attempt)
        if _OBS.active:
            _OBS.tracer.emit(
                "retry.attempt",
                protocol=protocol.name,
                attempt=attempt,
                reason=reason,
            )
    if _OBS.active:
        _OBS.tracer.emit(
            "retry.exhausted",
            protocol=protocol.name,
            attempts=policy.max_attempts,
        )
        _OBS.tracer.emit(
            "degraded.output", protocol=protocol.name, mode="superset"
        )
    return RobustOutcome(
        alice_output=s,
        bob_output=t,
        protocol_name=protocol.name,
        attempts=policy.max_attempts,
        total_bits=record.total_bits,
        total_messages=record.num_messages,
        degraded=True,
        degraded_mode="superset",
        simulated_delay=delay,
        failure_reasons=reasons,
        last_candidates=last_candidates,
    )
