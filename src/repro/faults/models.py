"""Composable channel fault models.

The library's protocols assume a reliable channel; this module is the
vocabulary for breaking that assumption *deterministically*.  A
:class:`FaultModel` is a pure description of one kind of channel damage --
flip a bit, truncate a payload, drop or duplicate a message, reorder a
round's inbox, crash a player -- with all randomness supplied by the caller
(a :class:`~repro.faults.plan.FaultPlan` owns one seeded stream), so the
same seed always reproduces the same fault schedule.

The model API has three hooks, each a no-op on the base class:

* :meth:`FaultModel.perturb` -- per-payload damage.  Returns ``None`` for
  "deliver unchanged" (the common case, kept allocation-free) or a
  ``(kind, deliveries)`` pair where ``deliveries`` is the tuple of payloads
  actually delivered: ``()`` models a drop, two entries a duplication, a
  modified single entry a corruption.
* :meth:`FaultModel.maybe_reorder` -- per-destination inbox shuffle within
  one multiparty superstep (the BSP model delivers a round's messages as a
  list; reordering within the round is the only reordering that exists).
* :meth:`FaultModel.maybe_crash` -- per-player, per-superstep crash
  decision for the multiparty scheduler.

Structural faults (drop / duplicate) are representable on the two-party
engine too: the engine detects the resulting desynchronization and raises
its usual typed errors (:class:`~repro.comm.errors.ProtocolDeadlock` for a
message the peer waits on forever, :class:`~repro.comm.errors.ProtocolViolation`
for an undelivered surplus), which the retry layer treats as failed
attempts.  ``flip_bit``, :class:`FlipEveryMessage`, and :class:`FlipOnce`
are the historical helpers promoted out of the failure-injection test
suite; the two classes keep their raw injector ``__call__`` signature so
they remain directly usable as ``run_two_party(..., fault_injector=...)``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.util.bits import BitString

__all__ = [
    "FaultConfigError",
    "flip_bit",
    "FaultModel",
    "BitFlip",
    "Truncate",
    "Drop",
    "Duplicate",
    "ReorderWithinRound",
    "PlayerCrash",
    "Churn",
    "Compose",
    "FlipEveryMessage",
    "FlipOnce",
    "MODEL_FACTORIES",
    "smoke_model",
    "parse_fault_spec",
]

#: A perturbation outcome: the fault kind plus the payloads delivered.
Perturbation = Tuple[str, Tuple[BitString, ...]]


class FaultConfigError(ValueError):
    """A fault spec or model parameter is malformed (caller bug, raised at
    construction/parse time, never mid-protocol)."""


def flip_bit(payload: BitString, position: int) -> BitString:
    """Flip one bit of a payload (position taken mod the length).

    Zero-length payloads are returned unchanged -- there is no bit to flip,
    and the empty payload's delivery semantics must stay intact.
    """
    if len(payload) == 0:
        return payload
    position %= len(payload)
    return BitString(
        payload.value ^ (1 << (len(payload) - 1 - position)), len(payload)
    )


class FaultModel:
    """Base class: a named, rate-free description of channel damage.

    Subclasses override the hooks they implement; every hook draws coins
    only from the ``rng`` argument so the owning plan controls determinism.
    """

    name = "abstract"

    def perturb(
        self, sender: str, payload: BitString, rng: random.Random
    ) -> Optional[Perturbation]:
        """Damage one payload, or ``None`` to deliver it unchanged."""
        return None

    def maybe_reorder(self, inbox: List, rng: random.Random) -> bool:
        """Shuffle a round's per-destination inbox in place; True if it did."""
        return False

    def maybe_crash(
        self, player: str, round_index: int, rng: random.Random
    ) -> bool:
        """True to crash ``player`` at the top of superstep ``round_index``."""
        return False

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class _RateModel(FaultModel):
    """Shared rate validation for the per-message Bernoulli models."""

    def __init__(self, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise FaultConfigError(
                f"{type(self).__name__} rate must be in [0, 1], got {rate}"
            )
        self.rate = rate

    def _fires(self, rng: random.Random) -> bool:
        # Rate 0 must not consume coins: the smoke plan runs the full hook
        # path on every send and must leave schedules (and costs) alone.
        return self.rate > 0.0 and rng.random() < self.rate

    def __repr__(self) -> str:
        return f"{type(self).__name__}(rate={self.rate})"


class BitFlip(_RateModel):
    """Flip one uniformly random bit of a payload with probability ``rate``."""

    name = "bitflip"

    def perturb(self, sender, payload, rng):
        if len(payload) == 0 or not self._fires(rng):
            return None
        return self.name, (flip_bit(payload, rng.randrange(len(payload))),)


class Truncate(_RateModel):
    """Cut a payload to a uniformly random proper prefix with probability
    ``rate`` (models a torn write; the strict codecs surface it as a decode
    error on the receiving side)."""

    name = "truncate"

    def perturb(self, sender, payload, rng):
        if len(payload) == 0 or not self._fires(rng):
            return None
        return self.name, (payload[: rng.randrange(len(payload))],)


class Drop(_RateModel):
    """Silently drop a payload with probability ``rate``."""

    name = "drop"

    def perturb(self, sender, payload, rng):
        if not self._fires(rng):
            return None
        return self.name, ()


class Duplicate(_RateModel):
    """Deliver a payload twice with probability ``rate``."""

    name = "duplicate"

    def perturb(self, sender, payload, rng):
        if not self._fires(rng):
            return None
        return self.name, (payload, payload)


class ReorderWithinRound(_RateModel):
    """Shuffle one destination's superstep inbox with probability ``rate``.

    Only meaningful on the multiparty scheduler: the two-party channel has
    one FIFO lane per direction and delivers eagerly, so within-round
    reordering does not exist there (the hook simply never fires).
    """

    name = "reorder"

    def maybe_reorder(self, inbox, rng):
        if len(inbox) < 2 or not self._fires(rng):
            return False
        rng.shuffle(inbox)
        return True


class PlayerCrash(_RateModel):
    """Crash a live player with probability ``rate`` per superstep
    (multiparty only).

    :param rate: per-player, per-superstep crash probability.
    :param max_crashes: hard cap on total crashes (default 1 -- a single
        fail-stop fault, the classical model).
    :param target: restrict crashes to this player name (``None`` = any).
    """

    name = "crash"

    def __init__(
        self,
        rate: float,
        *,
        max_crashes: int = 1,
        target: Optional[str] = None,
    ) -> None:
        super().__init__(rate)
        if max_crashes < 0:
            raise FaultConfigError(
                f"max_crashes must be >= 0, got {max_crashes}"
            )
        self.max_crashes = max_crashes
        self.target = target
        self.crashes = 0

    def maybe_crash(self, player, round_index, rng):
        if self.crashes >= self.max_crashes:
            return False
        if self.target is not None and player != self.target:
            return False
        if not self._fires(rng):
            return False
        self.crashes += 1
        return True


#: Sentinel distinguishing "fate not yet drawn" from "spared" in Churn.
_FATE_UNSET = object()


class Churn(FaultModel):
    """Whole-run churn: each player independently crashes with probability
    ``rate`` (multiparty only).

    Where :class:`PlayerCrash` models the classical single fail-stop fault
    (a per-superstep hazard with a hard crash cap), churn is the *survival
    sweep's* model: the rate is a **per-player, per-run** crash
    probability, so sweeping it at large ``m`` directly measures how many
    simultaneous departures the recovery layer can absorb.  The first time
    a player is seen by the crash sweep its fate is drawn -- spared, or
    doomed to crash at a seeded superstep within the next ``horizon``
    supersteps -- and the fate persists for the rest of the plan's life:
    a player spared once stays up across every recovery attempt, which is
    what lets ``repro.multiparty.recovery`` converge instead of facing a
    fresh extinction coin each re-run.

    :param rate: per-player whole-run crash probability.
    :param horizon: doomed players crash within this many supersteps of
        first being observed (uniform, seeded).
    """

    name = "churn"

    def __init__(self, rate: float, *, horizon: int = 12) -> None:
        if not 0.0 <= rate <= 1.0:
            raise FaultConfigError(
                f"Churn rate must be in [0, 1], got {rate}"
            )
        if horizon < 1:
            raise FaultConfigError(f"horizon must be >= 1, got {horizon}")
        self.rate = rate
        self.horizon = horizon
        #: player name -> crash superstep (int) or None (spared).
        self._fate: Dict[str, Optional[int]] = {}

    def maybe_crash(self, player, round_index, rng):
        fate = self._fate.get(player, _FATE_UNSET)
        if fate is _FATE_UNSET:
            # Rate 0 draws no coins, matching the _RateModel contract.
            if self.rate > 0.0 and rng.random() < self.rate:
                fate = round_index + rng.randrange(self.horizon)
            else:
                fate = None
            self._fate[player] = fate
        return fate is not None and round_index >= fate

    def __repr__(self) -> str:
        return f"Churn(rate={self.rate}, horizon={self.horizon})"


class Compose(FaultModel):
    """Apply several models in sequence (each sees the previous one's
    deliveries, so e.g. a duplicate's second copy can itself be corrupted).

    The reported kind of a multi-model hit joins the fired kinds with
    ``+``.
    """

    name = "compose"

    def __init__(self, *models: FaultModel) -> None:
        if not models:
            raise FaultConfigError("Compose needs at least one model")
        self.models = tuple(models)

    def perturb(self, sender, payload, rng):
        deliveries: Tuple[BitString, ...] = (payload,)
        kinds: List[str] = []
        for model in self.models:
            next_deliveries: List[BitString] = []
            fired = None
            for delivery in deliveries:
                outcome = model.perturb(sender, delivery, rng)
                if outcome is None:
                    next_deliveries.append(delivery)
                else:
                    fired, damaged = outcome
                    next_deliveries.extend(damaged)
            if fired is not None:
                kinds.append(fired)
            deliveries = tuple(next_deliveries)
        if not kinds:
            return None
        return "+".join(kinds), deliveries

    def maybe_reorder(self, inbox, rng):
        fired = False
        for model in self.models:
            if model.maybe_reorder(inbox, rng):
                fired = True
        return fired

    def maybe_crash(self, player, round_index, rng):
        return any(
            model.maybe_crash(player, round_index, rng)
            for model in self.models
        )

    def __repr__(self) -> str:
        inner = ", ".join(repr(model) for model in self.models)
        return f"Compose({inner})"


class FlipEveryMessage(FaultModel):
    """Flip a pseudo-random bit of every payload from one sender.

    Promoted from the failure-injection test suite.  Carries its own seeded
    stream (so the historical raw-injector usage stays reproducible) and
    counts ``faults_injected``; usable both as a raw
    ``fault_injector(sender, payload)`` callable and as a
    :class:`FaultModel`.
    """

    name = "flip-every-message"

    def __init__(self, target_sender: str, seed: int = 0) -> None:
        self.target_sender = target_sender
        self.rng = random.Random(seed)
        self.faults_injected = 0

    def __call__(self, sender: str, payload: BitString) -> BitString:
        if sender != self.target_sender or len(payload) == 0:
            return payload
        self.faults_injected += 1
        return flip_bit(payload, self.rng.randrange(len(payload)))

    def perturb(self, sender, payload, rng):
        if sender != self.target_sender or len(payload) == 0:
            return None
        return "bitflip", (self(sender, payload),)

    def __repr__(self) -> str:
        return f"FlipEveryMessage(target_sender={self.target_sender!r})"


class FlipOnce(FaultModel):
    """Corrupt only the first nonempty payload (a transient fault).

    Promoted from the failure-injection test suite; same dual interface as
    :class:`FlipEveryMessage`.
    """

    name = "flip-once"

    def __init__(self) -> None:
        self.done = False

    def __call__(self, sender: str, payload: BitString) -> BitString:
        if self.done or len(payload) == 0:
            return payload
        self.done = True
        return flip_bit(payload, len(payload) // 2)

    def perturb(self, sender, payload, rng):
        if self.done or len(payload) == 0:
            return None
        return "bitflip", (self(sender, payload),)


#: Spec/CLI name -> rate-parameterized factory.
MODEL_FACTORIES: Dict[str, object] = {
    "bitflip": BitFlip,
    "truncate": Truncate,
    "drop": Drop,
    "duplicate": Duplicate,
    "reorder": ReorderWithinRound,
    "crash": PlayerCrash,
    "churn": Churn,
}


def smoke_model() -> Compose:
    """Every channel model armed at rate 0: the full fault plumbing runs on
    each send without ever changing a delivered bit (the ``REPRO_FAULTS=1``
    CI leg's configuration)."""
    return Compose(
        BitFlip(0.0),
        Truncate(0.0),
        Drop(0.0),
        Duplicate(0.0),
        ReorderWithinRound(0.0),
    )


def parse_fault_spec(spec: str) -> Tuple[FaultModel, int]:
    """Parse a ``REPRO_FAULTS`` spec into ``(model, seed)``.

    Grammar: ``1`` / ``smoke`` / ``on`` for the smoke plan, otherwise
    ``name@rate`` terms joined by ``+`` with an optional ``:seed=N``
    suffix, e.g. ``bitflip@0.01`` or ``drop@0.02+duplicate@0.01:seed=7``.

    :raises FaultConfigError: unknown model name, malformed rate or seed.
    """
    seed = 0
    body = spec.strip()
    if ":" in body:
        body, _, suffix = body.partition(":")
        if not suffix.startswith("seed="):
            raise FaultConfigError(
                f"unrecognized fault spec suffix {suffix!r} (want seed=N)"
            )
        try:
            seed = int(suffix[len("seed="):])
        except ValueError:
            raise FaultConfigError(f"bad fault seed in {spec!r}")
    if body in ("1", "smoke", "on"):
        return smoke_model(), seed
    models: List[FaultModel] = []
    for term in body.split("+"):
        name, sep, rate_text = term.strip().partition("@")
        factory = MODEL_FACTORIES.get(name)
        if factory is None:
            raise FaultConfigError(
                f"unknown fault model {name!r} "
                f"(know: {', '.join(sorted(MODEL_FACTORIES))})"
            )
        if not sep:
            raise FaultConfigError(
                f"fault term {term!r} needs a rate (e.g. {name}@0.01)"
            )
        try:
            rate = float(rate_text)
        except ValueError:
            raise FaultConfigError(f"bad rate in fault term {term!r}")
        models.append(factory(rate))
    if len(models) == 1:
        return models[0], seed
    return Compose(*models), seed
