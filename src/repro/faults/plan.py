"""The fault plan: a model bound to a seeded coin stream = a schedule.

A :class:`FaultPlan` is the object the engines actually talk to.  It owns
one :class:`random.Random` derived from its seed, feeds it to the model's
hooks in engine-call order (which is deterministic for both engines), and
records every fired fault -- so *the same seed always produces the same
fault schedule*, the property the seeded-determinism tests pin.

The plan is also the observability bridge: each fired fault emits one
``fault.injected`` event (kind, sender, model) through the process tracer
when observability is on, which is how the trace rollup attributes faults
to protocol runs and the prediction checker knows a run's bits were
measured under fire.

Plans reach the engines two ways:

* explicitly -- ``run_two_party(..., fault_injector=plan.inject_two_party)``
  or ``run_message_passing(..., fault_plan=plan)``;
* globally -- :func:`install` (or the ``REPRO_FAULTS`` environment
  bootstrap in :mod:`repro.faults`) sets the process-wide plan that both
  engines consult when no explicit injector is given.
"""

from __future__ import annotations

import contextlib
import random
from typing import Dict, Iterator, List, Optional, Tuple

from repro.faults.models import FaultModel, parse_fault_spec
from repro.faults.state import STATE
from repro.obs.state import STATE as _OBS
from repro.util.bits import BitString

__all__ = [
    "FaultPlan",
    "plan_from_spec",
    "install",
    "uninstall",
    "inject",
]


class FaultPlan:
    """One deterministic fault schedule over a channel model.

    :param model: the :class:`~repro.faults.models.FaultModel` to drive.
    :param seed: schedule seed; two plans with equal ``(model parameters,
        seed)`` fire identically against identical traffic.
    """

    def __init__(self, model: FaultModel, seed: int = 0) -> None:
        self.model = model
        self.seed = seed
        self._rng = random.Random(f"repro.faults:{seed}")
        #: Total faults fired (all kinds).
        self.injected = 0
        #: Per-kind fired counts.
        self.counts: Dict[str, int] = {}
        #: The fired schedule, in order: ``(kind, sender)`` pairs.  This is
        #: the artifact the determinism tests compare across runs.
        self.log: List[Tuple[str, str]] = []

    # -- two-party ---------------------------------------------------------

    def inject_two_party(self, sender: str, payload: BitString):
        """Engine injector hook: original payload in, deliveries out.

        Returns the payload itself when the model does not fire (the
        allocation-free common case) or the list of payloads to deliver --
        possibly empty (drop) or longer than one (duplication); the engine
        surfaces the resulting desynchronization through its usual typed
        errors.
        """
        outcome = self.model.perturb(sender, payload, self._rng)
        if outcome is None:
            return payload
        kind, deliveries = outcome
        self._note(kind, sender)
        return list(deliveries)

    # -- multiparty --------------------------------------------------------

    def deliver_multiparty(
        self, sender: str, destination: str, payload: BitString
    ) -> Tuple[BitString, ...]:
        """Per-addressed-message hook for the BSP scheduler."""
        outcome = self.model.perturb(sender, payload, self._rng)
        if outcome is None:
            return (payload,)
        kind, deliveries = outcome
        self._note(kind, sender, destination=destination)
        return deliveries

    def maybe_reorder(self, destination: str, inbox: List) -> None:
        """Per-destination within-round reorder hook."""
        if self.model.maybe_reorder(inbox, self._rng):
            self._note("reorder", destination)

    def crash_sweep(self, live: List[str], round_index: int) -> List[str]:
        """Players crashing at the top of this superstep, in player order."""
        crashed = [
            name
            for name in live
            if self.model.maybe_crash(name, round_index, self._rng)
        ]
        for name in crashed:
            self._note("crash", name, round=round_index)
        return crashed

    # -- bookkeeping -------------------------------------------------------

    def _note(self, kind: str, sender: str, **fields) -> None:
        self.injected += 1
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.log.append((kind, sender))
        if _OBS.active:
            _OBS.tracer.emit(
                "fault.injected",
                kind=kind,
                sender=sender,
                model=self.model.name,
                **fields,
            )

    def __repr__(self) -> str:
        return (
            f"FaultPlan(model={self.model!r}, seed={self.seed}, "
            f"injected={self.injected})"
        )


def plan_from_spec(spec: str) -> FaultPlan:
    """Build a plan from a ``REPRO_FAULTS``-style spec string."""
    model, seed = parse_fault_spec(spec)
    return FaultPlan(model, seed=seed)


def install(model: FaultModel, seed: int = 0) -> FaultPlan:
    """Install a process-global fault plan; returns it (for its counters)."""
    plan = FaultPlan(model, seed=seed)
    STATE.install(plan)
    return plan


def uninstall() -> None:
    """Remove the process-global fault plan (channels back to reliable)."""
    STATE.install(None)


@contextlib.contextmanager
def inject(model: FaultModel, seed: int = 0) -> Iterator[FaultPlan]:
    """Run a block under a fault plan; restore the previous plan on exit.

    The canonical test fixture::

        with faults.inject(BitFlip(0.05), seed=3) as plan:
            outcome = protocol.run(S, T, seed=0)
        assert plan.injected >= 0
    """
    previous: Optional[object] = STATE.plan
    plan = FaultPlan(model, seed=seed)
    STATE.install(plan)
    try:
        yield plan
    finally:
        STATE.install(previous)
