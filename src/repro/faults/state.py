"""The fault-injection kill-switch: one module-level flag, zero hot-path cost.

Exactly the pattern of the observability switch (:mod:`repro.obs.state`),
the hot-cache switch (:mod:`repro.util.hotcache`), and the scalar-kernel
switch (:mod:`repro.kernels.backend`): every fault hook in the engines is
guarded by a single check of :data:`STATE.active <FaultState.active>`.
With ``REPRO_FAULTS`` unset (the default) the reliable-channel fast path is
untouched -- one slotted-attribute load and a falsy branch per send -- so
benchmark throughput and the E1 ``counters_sha256`` stay bit for bit.

This module is a leaf (stdlib imports only) so :mod:`repro.comm.engine` and
:mod:`repro.multiparty.network` can import it without cycles; plan
construction from the environment happens in :mod:`repro.faults` (which
bootstraps on first import, mirroring :mod:`repro.obs`).

Environment contract:

* ``REPRO_FAULTS`` -- unset, empty, or ``"0"`` leaves fault injection off.
  ``"1"`` / ``"smoke"`` installs the *smoke plan*: every channel model is
  armed at rate 0, so the fault plumbing runs on every send but never
  changes a delivered bit (the CI fault-matrix leg runs the tier-1 suite
  this way to prove the wrapped path is value-transparent).  Any other
  value is parsed as a fault spec, e.g. ``bitflip@0.01`` or
  ``drop@0.02+duplicate@0.01:seed=7`` -- see
  :func:`repro.faults.models.parse_fault_spec`.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = ["FaultState", "STATE", "FAULTS_ENV_VAR", "fault_spec_from_env"]

#: Environment kill-switch: unset / "" / "0" keeps fault injection off.
FAULTS_ENV_VAR = "REPRO_FAULTS"


class FaultState:
    """Mutable on/off switch plus the installed fault plan.

    ``active`` is the *only* thing the engine hot paths read; it is ``True``
    iff a plan is installed, so guarded sites may use ``STATE.plan``
    without a second ``None`` check.
    """

    __slots__ = ("active", "plan")

    def __init__(self) -> None:
        self.active = False
        self.plan: Optional[object] = None

    def install(self, plan: Optional[object]) -> None:
        """Install (or, with ``None``, remove) the process-global plan."""
        self.plan = plan
        self.active = plan is not None


STATE = FaultState()


def fault_spec_from_env() -> Optional[str]:
    """The ``REPRO_FAULTS`` spec string, or ``None`` when faults are off
    (read at call time)."""
    value = os.environ.get(FAULTS_ENV_VAR, "0")
    if value in ("", "0"):
        return None
    return value
