"""repro.faults: deterministic fault injection and verification-driven retry.

The paper's protocols assume a reliable channel; production systems do not
get one.  This package is the robustness layer grown from that gap:

* :mod:`repro.faults.models` -- composable channel fault models (bit flip,
  truncation, drop, duplication, within-round reorder, player crash) plus
  the promoted test helpers (``flip_bit``, ``FlipEveryMessage``,
  ``FlipOnce``);
* :mod:`repro.faults.plan` -- :class:`FaultPlan`, a model bound to a
  seeded coin stream: the deterministic fault *schedule* both engines
  consult, and the emitter of ``fault.injected`` trace events;
* :mod:`repro.faults.retry` -- :func:`run_with_retry`, the bounded
  verification-driven retry loop with budget accounting and the graceful
  degradation contract (imported lazily; it sits above the protocol
  layer);
* :mod:`repro.faults.state` -- the process-global kill-switch, off by
  default and costing one bool check per send while off.

Fault injection is **off by default**; set ``REPRO_FAULTS`` (``1`` for the
rate-0 smoke plan, or a spec like ``bitflip@0.01:seed=3``) or call
:func:`install` / :func:`inject` to switch it on.  Like
:mod:`repro.obs`, the environment is honored at first import.
"""

from __future__ import annotations

from repro.faults.models import (
    MODEL_FACTORIES,
    BitFlip,
    Compose,
    Drop,
    Duplicate,
    FaultConfigError,
    FaultModel,
    FlipEveryMessage,
    FlipOnce,
    PlayerCrash,
    ReorderWithinRound,
    Truncate,
    flip_bit,
    parse_fault_spec,
    smoke_model,
)
from repro.faults.plan import (
    FaultPlan,
    inject,
    install,
    plan_from_spec,
    uninstall,
)
from repro.faults.state import (
    FAULTS_ENV_VAR,
    STATE,
    fault_spec_from_env,
)

__all__ = [
    "STATE",
    "FAULTS_ENV_VAR",
    "fault_spec_from_env",
    "FaultConfigError",
    "FaultModel",
    "BitFlip",
    "Truncate",
    "Drop",
    "Duplicate",
    "ReorderWithinRound",
    "PlayerCrash",
    "Compose",
    "FlipEveryMessage",
    "FlipOnce",
    "MODEL_FACTORIES",
    "flip_bit",
    "smoke_model",
    "parse_fault_spec",
    "FaultPlan",
    "plan_from_spec",
    "install",
    "uninstall",
    "inject",
    "RetryPolicy",
    "RobustOutcome",
    "run_with_retry",
    "attempt_seed",
]

# retry sits above the protocol layer (it imports repro.protocols.base,
# which imports the engine, which imports repro.faults.state -- and thus
# this package); exposing it lazily keeps that chain acyclic.
_RETRY_EXPORTS = ("RetryPolicy", "RobustOutcome", "run_with_retry", "attempt_seed")


def __getattr__(name: str):
    if name in _RETRY_EXPORTS:
        from repro.faults import retry as _retry

        return getattr(_retry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _bootstrap_from_env() -> None:
    """Honor ``REPRO_FAULTS`` at first import (idempotent: a plan already
    installed -- e.g. by a test fixture that imported us explicitly --
    wins over the environment)."""
    if STATE.active:
        return
    spec = fault_spec_from_env()
    if spec is None:
        return
    model, seed = parse_fault_spec(spec)
    install(model, seed=seed)


_bootstrap_from_env()
