"""Structured protocol tracing: typed events, spans, pluggable sinks.

A :class:`Tracer` turns instrumented points in the library into *typed
records* -- plain dicts with ``ts`` (wall-clock seconds), ``seq`` (a
per-tracer monotone counter), ``type`` (one of the taxonomy in
:mod:`repro.obs.schema`), and type-specific fields -- and hands each record
to every attached sink.  Three sinks ship:

* :class:`RingBufferSink` -- bounded in-memory deque; the default for
  interactive use and what :func:`capture` hands to tests;
* :class:`JsonlSink` -- append-only JSON-lines file, one event per line,
  flushed per event so concurrent processes (the parallel trial executor's
  workers inherit ``REPRO_TRACE_FILE``) interleave at line granularity;
* :class:`NullSink` -- swallows everything; useful to measure the cost of
  the *enabled* hook path itself.

The module deliberately knows nothing about protocols: emitting sites pass
whatever fields their event type requires, and :mod:`repro.obs.schema`
is the contract that keeps them honest.

Usage::

    from repro import obs

    with obs.capture() as sink:
        protocol.run(S, T, seed=0)
    events = sink.events()           # list of dicts, in emit order

or, for a persistent trace::

    tracer = obs.enable(jsonl_path="run.jsonl")
    ...                              # traced workload
    obs.disable()
"""

from __future__ import annotations

import contextlib
import json
import time
from collections import deque
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.obs.state import STATE

__all__ = [
    "Sink",
    "RingBufferSink",
    "JsonlSink",
    "NullSink",
    "Tracer",
    "enable",
    "disable",
    "capture",
    "get_tracer",
]


class Sink:
    """Sink contract: receive one event dict per :meth:`emit` call.

    Implementations must treat the record as immutable (it is shared by
    every sink attached to the tracer) and must not raise from ``emit`` on
    well-formed records -- a sink failure would otherwise abort the traced
    protocol itself.
    """

    def emit(self, record: Dict[str, Any]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; further emits are undefined."""


class NullSink(Sink):
    """Swallows every event (cost floor of the enabled path)."""

    def emit(self, record: Dict[str, Any]) -> None:
        pass


class RingBufferSink(Sink):
    """Keeps the most recent ``capacity`` events in memory.

    :param capacity: maximum retained events; older ones are dropped
        silently (``dropped`` counts them so rollups can tell a truncated
        window from a complete one).
    """

    def __init__(self, capacity: int = 1 << 16) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self.dropped = 0

    def emit(self, record: Dict[str, Any]) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(record)

    def events(self) -> List[Dict[str, Any]]:
        """The retained events, oldest first (a fresh list)."""
        return list(self._events)

    def clear(self) -> None:
        """Drop all retained events and reset the dropped counter."""
        self._events.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)


class JsonlSink(Sink):
    """Appends events to a JSON-lines file, one event per line.

    The file opens lazily on the first event (so merely enabling tracing
    never touches the filesystem) in append mode, and every event is
    written as a single ``write`` call followed by a flush: concurrent
    appenders -- e.g. process-executor workers that inherited
    ``REPRO_TRACE_FILE`` -- interleave at line granularity, never inside a
    line.  Within one process ``seq`` orders the lines; across processes
    only ``ts`` is comparable.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = None

    def emit(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class Tracer:
    """Emit typed trace records to one or more sinks.

    :param sinks: the attached sinks; every event goes to each, in order.
    """

    def __init__(self, sinks: Sequence[Sink]) -> None:
        self.sinks: List[Sink] = list(sinks)
        self._seq = 0

    def emit(self, event_type: str, **fields: Any) -> Dict[str, Any]:
        """Record one event; returns the record (handy in tests)."""
        self._seq += 1
        record: Dict[str, Any] = {
            "ts": time.time(),
            "seq": self._seq,
            "type": event_type,
        }
        record.update(fields)
        for sink in self.sinks:
            sink.emit(record)
        return record

    # ``event`` reads better at call sites that are not on a hot path.
    event = emit

    @contextlib.contextmanager
    def span(self, name: str, **fields: Any) -> Iterator[None]:
        """Bracket a phase with ``span.start`` / ``span.end`` events.

        The ``span.end`` event carries ``duration_s`` (perf-counter
        elapsed) plus the same identifying fields, so a rollup can pair
        them by ``name`` without a span-id protocol.
        """
        self.emit("span.start", name=name, **fields)
        started = time.perf_counter()
        try:
            yield
        finally:
            self.emit(
                "span.end",
                name=name,
                duration_s=time.perf_counter() - started,
                **fields,
            )

    def close(self) -> None:
        """Close every attached sink."""
        for sink in self.sinks:
            sink.close()


def enable(
    *,
    sinks: Optional[Sequence[Sink]] = None,
    jsonl_path: Optional[str] = None,
    ring_capacity: int = 1 << 16,
) -> Tracer:
    """Install a process-global tracer and flip the hooks on.

    :param sinks: explicit sinks; when given, ``jsonl_path`` and
        ``ring_capacity`` are ignored.
    :param jsonl_path: convenience -- attach a :class:`JsonlSink` at this
        path (alongside nothing else unless ``sinks`` says so).
    :param ring_capacity: capacity of the default ring buffer used when
        neither ``sinks`` nor ``jsonl_path`` is given.
    :returns: the installed tracer.
    """
    if sinks is None:
        if jsonl_path is not None:
            sinks = [JsonlSink(jsonl_path)]
        else:
            sinks = [RingBufferSink(ring_capacity)]
    tracer = Tracer(sinks)
    STATE.install(tracer)
    return tracer


def disable() -> None:
    """Remove the process-global tracer (hooks return to the free path)."""
    tracer = STATE.tracer
    STATE.install(None)
    if tracer is not None:
        tracer.close()


def get_tracer() -> Optional[Tracer]:
    """The installed tracer, or ``None`` while observability is off."""
    return STATE.tracer  # type: ignore[return-value]


@contextlib.contextmanager
def capture(capacity: int = 1 << 16) -> Iterator[RingBufferSink]:
    """Trace the block into a fresh ring buffer; restore the previous
    tracer (or the disabled state) on exit.

    The canonical test fixture::

        with obs.capture() as sink:
            protocol.run(S, T, seed=0)
        assert any(e["type"] == "protocol.finish" for e in sink.events())
    """
    previous = STATE.tracer
    sink = RingBufferSink(capacity)
    STATE.install(Tracer([sink]))
    try:
        yield sink
    finally:
        STATE.install(previous)
