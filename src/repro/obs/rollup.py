"""Trace rollups: from raw event streams to per-run accounting tables.

A trace is a flat event stream; analyses want *runs* -- everything between
one ``protocol.start`` and its matching ``protocol.finish`` -- with bits
attributed to rounds (message indices) and senders.  This module does that
segmentation once so the prediction checker, the CLI's rollup table, and
tests all read the same derived structure.

The per-round totals are rebuilt purely from ``message.open`` /
``message.merge`` events, *not* copied from ``protocol.finish``: that makes
``sum(round_bits) == reported_total_bits`` a genuine cross-check between
the transcript's incremental counters and the event stream, which is
exactly the accounting invariant the checker asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["ProtocolRun", "rollup_runs"]


@dataclass
class ProtocolRun:
    """One protocol execution reconstructed from its trace segment.

    :param protocol: the protocol's :attr:`name`.
    :param params: the ``protocol.start`` payload (``universe_size``,
        ``max_set_size``, optional ``rounds`` / ``seed``).
    :param round_bits: bits of round ``i`` at ``round_bits[i]``, summed
        from the message events (missing indices count 0 -- cannot happen
        for transcripts built through ``record_send``, but the rollup does
        not assume it).
    :param sender_bits: per-sender bit totals from the same events.
    :param reported_total_bits: the ``protocol.finish`` totals (``None``
        while a run is unclosed -- e.g. a protocol aborted mid-trace).
    :param fault_events: ``fault.injected`` events observed during the run
        -- nonzero means every bit/round figure was measured *under fire*
        and the prediction checker treats the paper's bounds as
        informational for this run.
    :param retry_attempts: failed ``retry.attempt`` events attributed to
        this run (the retry wrapper emits them right after the attempt's
        trace segment, so they attach to the most recent run).
    :param recovery_attempts: failed multiparty ``recovery.attempt``
        events attributed to this run, same attachment rule -- nonzero
        means the bit/round figures include recovery re-runs charged to
        the session.
    :param degraded: a ``degraded.output`` event followed this run.
    """

    protocol: str
    params: Dict[str, Any]
    round_bits: List[int] = field(default_factory=list)
    sender_bits: Dict[str, int] = field(default_factory=dict)
    reported_total_bits: Optional[int] = None
    reported_num_messages: Optional[int] = None
    fault_events: int = 0
    retry_attempts: int = 0
    recovery_attempts: int = 0
    degraded: bool = False

    @property
    def total_bits(self) -> int:
        """Sum of the per-round totals (the event-stream side of the
        accounting cross-check)."""
        return sum(self.round_bits)

    @property
    def num_rounds(self) -> int:
        """Rounds observed via message events."""
        return len(self.round_bits)

    @property
    def closed(self) -> bool:
        """True once the matching ``protocol.finish`` was seen."""
        return self.reported_total_bits is not None

    def _record_message(self, index: int, sender: str, bits: int) -> None:
        while len(self.round_bits) <= index:
            self.round_bits.append(0)
        self.round_bits[index] += bits
        self.sender_bits[sender] = self.sender_bits.get(sender, 0) + bits


def rollup_runs(events: List[Dict[str, Any]]) -> List[ProtocolRun]:
    """Segment an event stream into protocol runs.

    Message events outside any open run (raw engine users, multiparty
    traffic) are ignored; runs the stream never closes are returned with
    ``closed == False`` so callers can flag truncated traces instead of
    silently checking partial totals.  Runs do not nest in the shipped
    protocols (sub-protocols compose on one transcript below ``run``), so
    a second ``protocol.start`` before a finish simply opens the next run.
    """
    runs: List[ProtocolRun] = []
    current: Optional[ProtocolRun] = None
    for event in events:
        event_type = event.get("type")
        if event_type == "protocol.start":
            current = ProtocolRun(
                protocol=event.get("protocol", "?"),
                params={
                    key: value
                    for key, value in event.items()
                    if key not in ("ts", "seq", "type", "protocol")
                },
            )
            runs.append(current)
        elif event_type in ("message.open", "message.merge"):
            if current is not None and not current.closed:
                current._record_message(
                    event["index"], event["sender"], event["bits"]
                )
        elif event_type == "protocol.finish":
            if current is not None and not current.closed:
                current.reported_total_bits = event.get("total_bits")
                current.reported_num_messages = event.get("num_messages")
        elif event_type == "fault.injected":
            if current is not None and not current.closed:
                current.fault_events += 1
        elif event_type == "retry.attempt":
            # Emitted by the retry wrapper just after the failed attempt's
            # segment (closed or aborted), so it belongs to the latest run.
            if current is not None:
                current.retry_attempts += 1
        elif event_type == "recovery.attempt":
            # Same attachment rule as retry.attempt, for the multiparty
            # recovery layer's failed BSP attempts.
            if current is not None:
                current.recovery_attempts += 1
        elif event_type == "degraded.output":
            if current is not None:
                current.degraded = True
    return runs
