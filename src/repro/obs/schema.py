"""The trace event taxonomy and JSONL schema validator.

Every record a :class:`~repro.obs.trace.Tracer` emits carries the envelope
fields ``ts`` (wall-clock seconds), ``seq`` (per-tracer monotone int), and
``type``; the type fixes which payload fields are required.  The taxonomy
is *closed*: an unknown type is a schema violation, so adding an event kind
means adding it here (and its semantics to DESIGN.md) first.

Event types
-----------

==================  ====================================================
``protocol.start``   a :class:`SetIntersectionProtocol` run begins
                     (``protocol``, ``universe_size``, ``max_set_size``,
                     optional ``rounds``, ``seed``)
``protocol.finish``  the run's exact totals (``protocol``, ``total_bits``,
                     ``num_messages``)
``engine.start``     ``run_two_party`` entered (below protocol level --
                     also fires for raw engine users)
``engine.finish``    engine-level totals for the run
``message.open``     a send opened message ``index`` (= a round boundary
                     under the paper's message-counting convention)
``message.merge``    a send merged into the current message ``index``
``round.boundary``   one multiparty superstep carried traffic
                     (``round``, ``bits``, ``live``)
``multiparty.start`` / ``multiparty.finish``  BSP run bracket
``kernel.route``     first time a kernel dispatches via a route in this
                     process (per-dispatch counts live in the metrics
                     registry, not the event stream)
``bucket.phase``     one phase of a bucketed protocol (a tree stage, a
                     bucket-verify iteration)
``verify.outcome``   a verification step's verdict tallies
``fault.injected``   the active fault plan fired (``kind``, ``sender``;
                     emitters add ``model`` and multiparty
                     ``destination`` / ``round``)
``retry.attempt``    one failed attempt of the verification-driven retry
                     loop (``protocol``, ``attempt``, ``reason``)
``retry.exhausted``  the retry budget ran out (``protocol``, ``attempts``)
``recovery.attempt`` one multiparty recovery attempt ended without an
                     accepted result (``protocol``, ``attempt``,
                     ``reason``; emitters add ``crashed`` / ``survivors``
                     counts)
``recovery.outcome`` the recovery wrapper settled a multiparty session
                     (``protocol``, ``status``, ``attempts``; emitters
                     add the ``recovery_bits`` / ``recovery_rounds``
                     charged to the recovery phase)
``degraded.output``  the retry wrapper returned the degradation contract
                     (``protocol``, ``mode``)
``plan.compile``     a declarative plan compiled to shards
                     (``plan``, ``shards``; emitters add ``plan_key``)
``serve.batch``      the serving layer's coalescer dispatched one
                     cross-session batch (``ops``, ``lanes``, ``groups``
                     -- operations batched, total kernel lanes, distinct
                     (protocol, round-shape) groups)
``shard.start``      the scheduler dispatched one shard (``shard`` = its
                     content key; emitters add ``cell``)
``shard.finish``     one shard completed (``shard``, ``status`` --
                     ``"executed"`` or ``"cached"``)
``span.start`` / ``span.end``  user-defined phase brackets
==================  ====================================================

The validator is deliberately tolerant of *extra* fields (instrumentation
may enrich events without a schema bump) and of cross-process ``seq``
collisions (a JSONL file appended by executor workers holds several
independent sequences); it is strict about the envelope, the closed type
set, and each type's required payload.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "EVENT_TYPES",
    "validate_trace_events",
    "parse_jsonl",
    "load_trace",
]

#: Bump when the envelope or a type's required fields change.
#: History: 1 = initial taxonomy; 2 = plan.compile / shard.start /
#: shard.finish (the declarative-plans scheduler); 3 = serve.batch (the
#: serving layer's cross-session coalescer); 4 = recovery.attempt /
#: recovery.outcome (the multiparty crash-recovery layer).
TRACE_SCHEMA_VERSION = 4

#: type -> required payload fields (envelope fields are implicit).
EVENT_TYPES: Dict[str, tuple] = {
    "protocol.start": ("protocol", "universe_size", "max_set_size"),
    "protocol.finish": ("protocol", "total_bits", "num_messages"),
    "engine.start": (),
    "engine.finish": ("total_bits", "num_messages"),
    "message.open": ("sender", "index", "bits"),
    "message.merge": ("sender", "index", "bits"),
    "round.boundary": ("round", "bits", "live"),
    "multiparty.start": ("players",),
    "multiparty.finish": ("rounds", "total_bits"),
    "kernel.route": ("kernel", "route"),
    "bucket.phase": ("protocol", "phase"),
    "verify.outcome": ("protocol", "context"),
    "fault.injected": ("kind", "sender"),
    "retry.attempt": ("protocol", "attempt", "reason"),
    "retry.exhausted": ("protocol", "attempts"),
    "recovery.attempt": ("protocol", "attempt", "reason"),
    "recovery.outcome": ("protocol", "status", "attempts"),
    "degraded.output": ("protocol", "mode"),
    "plan.compile": ("plan", "shards"),
    "serve.batch": ("ops", "lanes", "groups"),
    "shard.start": ("shard",),
    "shard.finish": ("shard", "status"),
    "span.start": ("name",),
    "span.end": ("name", "duration_s"),
}

_ENVELOPE = ("ts", "seq", "type")


def validate_trace_events(events: List[Dict[str, Any]]) -> List[str]:
    """Check a list of event records; returns problems (empty = valid).

    Problems are human-readable strings prefixed with the offending event's
    position, mirroring :func:`repro.perf.schema.validate_bench_report`'s
    convention so CLI output stays uniform across the two validators.
    """
    problems: List[str] = []
    for position, event in enumerate(events):
        where = f"event[{position}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for field in _ENVELOPE:
            if field not in event:
                problems.append(f"{where}: missing envelope field {field!r}")
        ts = event.get("ts")
        if "ts" in event and not isinstance(ts, (int, float)):
            problems.append(f"{where}: ts must be a number, got {ts!r}")
        seq = event.get("seq")
        if "seq" in event and (not isinstance(seq, int) or seq < 1):
            problems.append(f"{where}: seq must be a positive int, got {seq!r}")
        event_type = event.get("type")
        if event_type is None:
            continue
        required = EVENT_TYPES.get(event_type)
        if required is None:
            problems.append(f"{where}: unknown event type {event_type!r}")
            continue
        for field in required:
            if field not in event:
                problems.append(
                    f"{where} ({event_type}): missing field {field!r}"
                )
        if event_type in ("message.open", "message.merge"):
            bits = event.get("bits")
            if isinstance(bits, int) and bits < 0:
                problems.append(f"{where} ({event_type}): negative bits {bits}")
            if event_type == "message.open" and event.get("bits") == 0:
                problems.append(
                    f"{where}: message.open with 0 bits -- empty payloads "
                    f"must not open messages"
                )
    return problems


def parse_jsonl(text: str) -> List[Dict[str, Any]]:
    """Parse JSONL text into event records.

    :raises ValueError: on a line that is not valid JSON (with its line
        number) -- a torn line means a sink bug, not a tolerable blemish.
    """
    events: List[Dict[str, Any]] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            events.append(json.loads(stripped))
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {line_number}: not valid JSON ({exc})")
    return events


def load_trace(path: str) -> List[Dict[str, Any]]:
    """Read and parse a JSONL trace file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_jsonl(handle.read())
