"""The metrics registry: counters and histograms behind the obs switch.

Quantities the paper bounds in aggregate -- bits per round, rounds per
trial -- and operational rates the perf work cares about -- kernel route
hits, hot-cache hits -- accumulate here while observability is enabled.
Hook sites guard on :data:`repro.obs.state.STATE.active` *before* touching
the registry, so the disabled path costs one bool check and the registry
itself never needs locking tricks on the hot path.

Metrics are process-global and cumulative; :func:`reset_metrics` starts a
fresh window (the ``repro trace`` CLI resets before its workload so the
printed snapshot covers exactly the traced run).  :func:`snapshot` renders
everything JSON-ready, optionally merging the hot-cache counters from
:func:`repro.util.hotcache.stats` so one call answers "what did the caches
do during this window" alongside the protocol-level rates.
"""

from __future__ import annotations

from typing import Any, Dict

__all__ = [
    "Counter",
    "Histogram",
    "counter",
    "histogram",
    "snapshot",
    "reset_metrics",
    "metric_names",
]


class Counter:
    """A monotone event counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": "counter", "value": self.value}


class Histogram:
    """Streaming summary of a nonnegative sample: count/total/min/max/mean.

    Deliberately moment-based rather than bucketed: the quantities the
    bounds speak about (expected bits, worst-case rounds) need exactly the
    mean and the extremes, and a fixed-bucket scheme would bake in a scale
    the workloads (k from 4 to millions) do not share.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": "histogram",
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean if self.count else None,
        }


_REGISTRY: Dict[str, Any] = {}


def counter(name: str) -> Counter:
    """Get or create the counter registered under ``name``."""
    metric = _REGISTRY.get(name)
    if metric is None:
        metric = _REGISTRY[name] = Counter()
    elif not isinstance(metric, Counter):
        raise TypeError(f"{name} is registered as {type(metric).__name__}")
    return metric


def histogram(name: str) -> Histogram:
    """Get or create the histogram registered under ``name``."""
    metric = _REGISTRY.get(name)
    if metric is None:
        metric = _REGISTRY[name] = Histogram()
    elif not isinstance(metric, Histogram):
        raise TypeError(f"{name} is registered as {type(metric).__name__}")
    return metric


def snapshot(*, include_hotcache: bool = False) -> Dict[str, Dict[str, Any]]:
    """JSON-ready view of every metric, by name (sorted).

    :param include_hotcache: also merge the registered hot-cache hit/miss
        counters (:func:`repro.util.hotcache.stats`) under
        ``hotcache.<cache-name>`` keys, so cache behavior shows up in the
        same report as the protocol metrics.
    """
    report: Dict[str, Dict[str, Any]] = {
        name: metric.as_dict() for name, metric in sorted(_REGISTRY.items())
    }
    if include_hotcache:
        from repro.util import hotcache

        for cache_name, info in hotcache.stats().items():
            report[f"hotcache.{cache_name}"] = {
                "kind": "cache",
                "hits": info["hits"],
                "misses": info["misses"],
                "currsize": info["currsize"],
            }
    return report


def reset_metrics() -> None:
    """Drop every registered metric (a fresh measurement window)."""
    _REGISTRY.clear()


def metric_names() -> list:
    """The sorted names of all live metrics."""
    return sorted(_REGISTRY)
