"""repro.obs: structured tracing and metrics for protocol executions.

The paper's guarantees are quantitative (``6r`` rounds, ``O(k log^(r) k)``
expected bits, one-sided superset invariants), and checking them requires
looking *inside* a run -- per-round bit breakdowns, per-stage verification
verdicts, which kernel route actually executed.  This package is the
library's one window in:

* :mod:`repro.obs.trace` -- the :class:`Tracer` (events + spans) and the
  sink implementations (ring buffer, JSONL file, null);
* :mod:`repro.obs.metrics` -- counters and histograms (bits per round,
  rounds per trial, kernel route hits, hot-cache hit/miss);
* :mod:`repro.obs.schema` -- the closed event taxonomy and the JSONL
  validator behind ``repro trace --validate``;
* :mod:`repro.obs.rollup` / :mod:`repro.obs.checker` -- per-run
  segmentation and the prediction checker that replays a trace against
  the Theorem 1.1 / 3.6 bounds (imported lazily; see their docstrings).

Observability is **off by default** and costs one module-level bool check
per instrumented site while off (see :mod:`repro.obs.state`); set
``REPRO_TRACE=1`` (optionally with ``REPRO_TRACE_FILE=/path/run.jsonl``)
or call :func:`enable` / :func:`capture` to switch it on.
"""

from __future__ import annotations

from repro.obs import metrics
from repro.obs.metrics import (
    counter,
    histogram,
    metric_names,
    reset_metrics,
    snapshot,
)
from repro.obs.schema import (
    EVENT_TYPES,
    TRACE_SCHEMA_VERSION,
    load_trace,
    parse_jsonl,
    validate_trace_events,
)
from repro.obs.state import (
    STATE,
    TRACE_ENV_VAR,
    TRACE_FILE_ENV_VAR,
    trace_requested_by_env,
)
from repro.obs.trace import (
    JsonlSink,
    NullSink,
    RingBufferSink,
    Sink,
    Tracer,
    capture,
    disable,
    enable,
    get_tracer,
)

__all__ = [
    "STATE",
    "TRACE_ENV_VAR",
    "TRACE_FILE_ENV_VAR",
    "TRACE_SCHEMA_VERSION",
    "EVENT_TYPES",
    "Sink",
    "RingBufferSink",
    "JsonlSink",
    "NullSink",
    "Tracer",
    "enable",
    "disable",
    "capture",
    "get_tracer",
    "counter",
    "histogram",
    "snapshot",
    "reset_metrics",
    "metric_names",
    "metrics",
    "validate_trace_events",
    "parse_jsonl",
    "load_trace",
    "trace_requested_by_env",
]


def _bootstrap_from_env() -> None:
    """Honor ``REPRO_TRACE`` at first import (idempotent: a tracer already
    installed -- e.g. by a test fixture that imported us explicitly --
    wins over the environment)."""
    if STATE.active or not trace_requested_by_env():
        return
    import os

    path = os.environ.get(TRACE_FILE_ENV_VAR)
    if path:
        enable(jsonl_path=path)
    else:
        enable()


_bootstrap_from_env()
