"""The observability kill-switch: one module-level flag, zero hot-path cost.

Every tracing/metrics hook in the library is guarded by a single check of
:data:`STATE.active <ObsState.active>` -- the same pattern as the hot-cache
(:mod:`repro.util.hotcache`) and scalar-kernel
(:mod:`repro.kernels.backend`) kill-switches.  With ``REPRO_TRACE`` unset
(the default) the guard is one slotted-attribute load and a falsy branch,
so the instrumented hot paths (``Transcript.record_send``, the engine's
send loop, the BSP round scheduler, kernel dispatch) keep their benchmark
throughput and the E1 ``counters_sha256`` bit for bit.

This module is a leaf (stdlib imports only) so that :mod:`repro.comm`,
:mod:`repro.multiparty`, and :mod:`repro.kernels` can all import it without
cycles; the actual :class:`~repro.obs.trace.Tracer` installation happens in
:mod:`repro.obs` (which bootstraps from the environment on first import).

Environment contract:

* ``REPRO_TRACE`` -- unset, empty, or ``"0"`` leaves observability off;
  anything else enables it at import time;
* ``REPRO_TRACE_FILE`` -- with tracing enabled, append JSONL events to
  this path (safe for concurrent appenders: one line per ``write``);
  without it events go to an in-memory ring buffer.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = ["ObsState", "STATE", "TRACE_ENV_VAR", "TRACE_FILE_ENV_VAR"]

#: Environment kill-switch: unset / "" / "0" keeps observability off.
TRACE_ENV_VAR = "REPRO_TRACE"

#: With tracing enabled, the JSONL sink path (optional).
TRACE_FILE_ENV_VAR = "REPRO_TRACE_FILE"


class ObsState:
    """Mutable on/off switch plus the installed tracer.

    ``active`` is the *only* thing hot paths read; it is ``True`` iff a
    tracer is installed, so guarded sites may call ``STATE.tracer.emit``
    without a second ``None`` check.
    """

    __slots__ = ("active", "tracer")

    def __init__(self) -> None:
        self.active = False
        self.tracer: Optional[object] = None

    def install(self, tracer: Optional[object]) -> None:
        """Install (or, with ``None``, remove) the process-global tracer."""
        self.tracer = tracer
        self.active = tracer is not None


STATE = ObsState()


def trace_requested_by_env() -> bool:
    """True when ``REPRO_TRACE`` asks for tracing (read at call time)."""
    return os.environ.get(TRACE_ENV_VAR, "0") not in ("", "0")
