"""The prediction checker: replay a trace against the paper's bounds.

Theorem 1.1 / 3.6 promises, for the verification-tree protocol at round
parameter ``r``, at most ``6r`` messages and ``O(k log^(r) k)`` expected
bits.  A trace captured by :mod:`repro.obs` contains everything needed to
*check* a concrete run against concrete instantiations of those bounds:

* **accounting** -- the per-round bit totals rebuilt from the message
  events must sum exactly to the run's reported ``total_bits`` (the
  transcript's incremental counters and the event stream agree bit for
  bit), and the observed round count must equal ``num_messages``;
* **rounds** -- ``num_messages <= 6r`` (an *exact* worst-case bound: the
  protocol takes 6 messages per stage, 2 for ``r = 1``);
* **bits** -- ``total_bits`` at or below the library's concrete
  expected-bits cutoff (:func:`repro.core.tree_protocol.expected_bits_bound`,
  four times the Theorem 3.6 upper model plus slack) -- a single run above
  it is a genuine tail event worth flagging.  Runs measured under injected
  faults get the *retry-aware* form instead: ``total_bits <= attempts x
  cutoff`` (with ``attempts`` = the run's attributed ``retry.attempt``
  events + 1), enforced as a real pass/fail check rather than demoted to
  informational.

Protocols other than the verification tree get the accounting check only;
their bound formulas live in :mod:`repro.analysis.predictions` and can be
added per-protocol as they are needed.

This module is imported lazily (by the CLI and tests), never by the hook
sites, so the observability hot path stays free of protocol imports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from repro.obs.rollup import ProtocolRun, rollup_runs

__all__ = ["CheckResult", "TraceCheckReport", "check_trace", "check_runs"]

#: The paper's messages-per-stage constant (Algorithm 1: 2 for the
#: equality sweep + 4 for the Basic-Intersection re-runs).
MESSAGES_PER_STAGE = 6


@dataclass(frozen=True)
class CheckResult:
    """One bound checked against one run."""

    run_index: int
    protocol: str
    check: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        return f"[{verdict}] run {self.run_index} {self.protocol} {self.check}: {self.detail}"


@dataclass
class TraceCheckReport:
    """Every check over every run of a trace."""

    results: List[CheckResult]

    @property
    def passed(self) -> bool:
        """True when every check passed (vacuously true for no runs is
        *not* allowed -- an empty trace fails, see :func:`check_trace`)."""
        return all(result.passed for result in self.results) and bool(
            self.results
        )

    @property
    def failures(self) -> List[CheckResult]:
        return [result for result in self.results if not result.passed]

    def __str__(self) -> str:
        return "\n".join(str(result) for result in self.results)


def check_runs(runs: List[ProtocolRun]) -> TraceCheckReport:
    """Check already-rolled-up runs (see :func:`check_trace`)."""
    results: List[CheckResult] = []
    for index, run in enumerate(runs):
        if not run.closed:
            results.append(
                CheckResult(
                    run_index=index,
                    protocol=run.protocol,
                    check="accounting",
                    passed=False,
                    detail="run has no protocol.finish (truncated trace)",
                )
            )
            continue
        event_total = run.total_bits
        reported = run.reported_total_bits
        rounds_seen = run.num_rounds
        reported_rounds = run.reported_num_messages
        accounting_ok = (
            event_total == reported and rounds_seen == reported_rounds
        )
        results.append(
            CheckResult(
                run_index=index,
                protocol=run.protocol,
                check="accounting",
                passed=accounting_ok,
                detail=(
                    f"per-round bits sum {event_total} vs reported {reported}; "
                    f"rounds {rounds_seen} vs reported {reported_rounds}"
                ),
            )
        )
        if run.protocol != "verification-tree":
            continue
        r = run.params.get("rounds")
        k = run.params.get("max_set_size")
        if not isinstance(r, int) or not isinstance(k, int):
            results.append(
                CheckResult(
                    run_index=index,
                    protocol=run.protocol,
                    check="rounds<=6r",
                    passed=False,
                    detail=f"protocol.start lacks rounds/max_set_size ({run.params!r})",
                )
            )
            continue
        # A run with injected faults was measured under fire.  The paper's
        # *round* bound assumes a reliable channel (drop/duplicate models
        # change the message count arbitrarily), so that check stays
        # informational under faults.  The *bit* bound, though, has a
        # retry-aware form that is still enforceable: the retry wrapper
        # re-runs whole attempts with fresh randomness, so a faulted
        # session's spend is bounded by ``attempts x`` the per-attempt
        # cutoff (duplicate is the only model that adds bits within an
        # attempt, and the cutoff's built-in slack absorbs it) -- a run
        # above even that is a genuine accounting bug, not fault noise.
        under_faults = run.fault_events > 0
        suffix = (
            f" [under {run.fault_events} injected fault(s); informational]"
            if under_faults
            else ""
        )
        round_budget = MESSAGES_PER_STAGE * r
        results.append(
            CheckResult(
                run_index=index,
                protocol=run.protocol,
                check="rounds<=6r",
                passed=under_faults or reported_rounds <= round_budget,
                detail=(
                    f"{reported_rounds} messages vs budget {round_budget} "
                    f"(r={r}){suffix}"
                ),
            )
        )
        # Imported here, not at module scope: expected_bits_bound lives with
        # the protocol and pulls the whole comm stack in.
        from repro.core.tree_protocol import expected_bits_bound

        bit_budget = expected_bits_bound(k, r)
        if under_faults:
            attempts = run.retry_attempts + 1
            retry_budget = attempts * bit_budget
            results.append(
                CheckResult(
                    run_index=index,
                    protocol=run.protocol,
                    check="bits<=attempts*bound",
                    passed=reported <= retry_budget,
                    detail=(
                        f"{reported} bits vs {attempts} attempt(s) x "
                        f"cutoff {bit_budget} = {retry_budget} (k={k}, "
                        f"r={r}) [under {run.fault_events} injected "
                        f"fault(s)]"
                    ),
                )
            )
        else:
            results.append(
                CheckResult(
                    run_index=index,
                    protocol=run.protocol,
                    check="bits<=O(k log^(r) k)",
                    passed=reported <= bit_budget,
                    detail=(
                        f"{reported} bits vs expected-bits cutoff "
                        f"{bit_budget} (k={k}, r={r})"
                    ),
                )
            )
    return TraceCheckReport(results=results)


def check_trace(events: List[Dict[str, Any]]) -> TraceCheckReport:
    """Roll up an event stream and check every run it contains.

    A trace with no protocol runs yields a report that fails (one synthetic
    result): silently "passing" on an empty trace is how accounting bugs
    hide.
    """
    runs = rollup_runs(events)
    if not runs:
        return TraceCheckReport(
            results=[
                CheckResult(
                    run_index=0,
                    protocol="-",
                    check="nonempty",
                    passed=False,
                    detail="trace contains no protocol runs",
                )
            ]
        )
    return check_runs(runs)
