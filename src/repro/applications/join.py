"""Distributed relational join on intersecting keys.

The paper's opening motivation: "a quite basic problem, such as computing
the join of two databases held by different servers, requires computing an
intersection, which one would like to do with as little communication and
as few messages as possible."

:func:`distributed_join` implements that workflow for two servers holding
keyed relations:

1. run the intersection protocol on the two key sets (``O(k log^(r) k)``
   bits, ``O(r)`` rounds) -- both servers learn exactly the matching keys;
2. each server ships only the rows whose keys matched (counted at 8 bits
   per serialized byte), instead of its whole relation.

The savings over "ship everything" is the point: when few keys match, step
1's cost is near-optimal and step 2 transfers only the join's actual
payload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Tuple

from repro.core.api import compute_intersection
from repro.protocols.fingerprint import canonical_bytes

__all__ = ["Relation", "JoinResult", "distributed_join"]


class Relation:
    """A keyed relation held by one server.

    :param rows: mapping from integer key to the row payload (any value
        :func:`~repro.protocols.fingerprint.canonical_bytes` serializes --
        tuples of ints/strings cover the usual cases).  One row per key;
        model multi-rows as tuples of rows.
    """

    def __init__(self, rows: Mapping[int, Any]) -> None:
        for key in rows:
            if not isinstance(key, int) or key < 0:
                raise ValueError(f"keys must be nonnegative ints, got {key!r}")
        self._rows: Dict[int, Any] = dict(rows)

    @property
    def keys(self) -> FrozenSet[int]:
        """The key set this server contributes to the intersection."""
        return frozenset(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __getitem__(self, key: int) -> Any:
        return self._rows[key]

    def row_bits(self, keys: Iterable[int]) -> int:
        """Wire cost (8 bits/byte of canonical serialization) of shipping
        the rows for the given keys."""
        return sum(
            8 * len(canonical_bytes((key, self._rows[key]))) for key in keys
        )


@dataclass(frozen=True)
class JoinResult:
    """Result of a two-server join.

    :param rows: ``{key: (left_row, right_row)}`` for every matching key.
    :param matching_keys: the key intersection.
    :param key_bits: communication spent finding the matching keys.
    :param row_bits: communication spent shipping the matched rows
        (both directions).
    :param messages: messages used by the key-intersection protocol (row
        shipping adds one message each way).
    :param protocol: the intersection protocol used for the keys.
    """

    rows: Dict[int, Tuple[Any, Any]]
    matching_keys: FrozenSet[int]
    key_bits: int
    row_bits: int
    messages: int
    protocol: str

    @property
    def total_bits(self) -> int:
        """Total communication: key discovery plus row shipping."""
        return self.key_bits + self.row_bits


def distributed_join(
    left: Relation, right: Relation, **options
) -> JoinResult:
    """Join two relations held by different servers.

    ``options`` are forwarded to
    :func:`~repro.core.api.compute_intersection` (``rounds``, ``model``,
    ``amplified``, ``seed``, ...).
    """
    result = compute_intersection(left.keys, right.keys, **options)
    matched: List[int] = sorted(result.intersection)
    rows = {key: (left[key], right[key]) for key in matched}
    return JoinResult(
        rows=rows,
        matching_keys=result.intersection,
        key_bits=result.bits,
        row_bits=left.row_bits(matched) + right.row_bits(matched),
        messages=result.messages + (2 if matched else 0),
        protocol=result.protocol,
    )
