"""Exact alpha-rarity (Datar-Muthukrishnan [DM02]).

For a multiset seen as two servers' sets ``S`` and ``T``, the
``alpha``-rarity is the fraction of distinct elements occurring exactly
``alpha`` times:

* 1-rarity: ``|S delta T| / |S u T|`` -- elements held by exactly one
  server;
* 2-rarity: ``|S n T| / |S u T|`` -- elements held by both.

[DM02] estimates these over data-stream windows; the paper's point is that
with a communication-optimal intersection protocol the two-server rarity is
computable *exactly* with ``O(k log^(r) k)`` bits in ``O(r)`` rounds.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable

from repro.applications.cardinality import set_statistics

__all__ = ["rarity"]


def rarity(
    alpha: int, alice_set: Iterable[int], bob_set: Iterable[int], **options
) -> Fraction:
    """Exact ``alpha``-rarity for two servers.

    :param alpha: occurrence count; with two servers only ``alpha`` in
        ``{1, 2}`` is meaningful (higher ``alpha`` has rarity 0).
    :param alice_set: the first server's elements.
    :param bob_set: the second server's elements.
    :returns: the exact fraction of distinct elements held by exactly
        ``alpha`` servers (0 by convention when both sets are empty).
    """
    if alpha < 1:
        raise ValueError(f"alpha must be >= 1, got {alpha}")
    report = set_statistics(alice_set, bob_set, **options)
    if report.union_size == 0:
        return Fraction(0)
    if alpha == 1:
        return Fraction(report.symmetric_difference_size, report.union_size)
    if alpha == 2:
        return Fraction(report.intersection_size, report.union_size)
    return Fraction(0)
