"""Exact cardinality statistics from one intersection-protocol run.

The paper (Section 1, Applications): prior to this work it was not even
known how to compute ``|S n T|`` with ``O(k)`` communication in fewer than
``O(log k)`` rounds.  Here every statistic below inherits the
``O(k log^(r) k)``-bits / ``O(r)``-rounds tradeoff: the parties run the
intersection protocol once, exchange their set sizes in one round
(``2 ceil(log2(k + 1))`` bits, counted), and derive

* ``|S n T|``  -- directly;
* ``|S u T|  = |S| + |T| - |S n T|``  (= number of distinct elements);
* ``|S delta T| = |S| + |T| - 2 |S n T|``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable

from repro.core.api import IntersectionResult, compute_intersection
from repro.util.iterlog import ceil_log2

__all__ = [
    "CardinalityReport",
    "set_statistics",
    "intersection_size",
    "union_size",
    "distinct_elements",
    "symmetric_difference_size",
]


@dataclass(frozen=True)
class CardinalityReport:
    """All cardinality statistics of one instance, with exact accounting.

    :param intersection: the recovered ``S n T``.
    :param intersection_size: ``|S n T|``.
    :param union_size: ``|S u T|``.
    :param symmetric_difference_size: ``|S delta T|``.
    :param bits: total communication, including the one-round size exchange.
    :param messages: total messages (the size exchange piggybacks on the
        protocol's first two messages, matching the paper's "communicating
        |S| and |T| can be done in one round").
    :param protocol: name of the underlying intersection protocol.
    """

    intersection: FrozenSet[int]
    intersection_size: int
    union_size: int
    symmetric_difference_size: int
    bits: int
    messages: int
    protocol: str


def set_statistics(
    alice_set: Iterable[int], bob_set: Iterable[int], **options
) -> CardinalityReport:
    """Run the intersection protocol once and derive every cardinality
    statistic.  ``options`` are forwarded to
    :func:`~repro.core.api.compute_intersection` (``rounds``, ``model``,
    ``seed``, ...)."""
    s = frozenset(alice_set)
    t = frozenset(bob_set)
    result: IntersectionResult = compute_intersection(s, t, **options)
    size_exchange_bits = 2 * ceil_log2(max(len(s), len(t), 1) + 1)
    common = len(result.intersection)
    return CardinalityReport(
        intersection=result.intersection,
        intersection_size=common,
        union_size=len(s) + len(t) - common,
        symmetric_difference_size=len(s) + len(t) - 2 * common,
        bits=result.bits + size_exchange_bits,
        messages=result.messages,
        protocol=result.protocol,
    )


def intersection_size(
    alice_set: Iterable[int], bob_set: Iterable[int], **options
) -> int:
    """Exact ``|S n T|`` at the intersection protocol's cost."""
    return set_statistics(alice_set, bob_set, **options).intersection_size


def union_size(alice_set: Iterable[int], bob_set: Iterable[int], **options) -> int:
    """Exact ``|S u T|`` at the intersection protocol's cost."""
    return set_statistics(alice_set, bob_set, **options).union_size


def distinct_elements(
    alice_set: Iterable[int], bob_set: Iterable[int], **options
) -> int:
    """Exact number of distinct elements across both servers (``= |S u T|``)."""
    return union_size(alice_set, bob_set, **options)


def symmetric_difference_size(
    alice_set: Iterable[int], bob_set: Iterable[int], **options
) -> int:
    """Exact ``|S delta T|`` at the intersection protocol's cost."""
    return set_statistics(alice_set, bob_set, **options).symmetric_difference_size
