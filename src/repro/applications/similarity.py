"""Exact similarity measures from one intersection-protocol run.

* **Jaccard similarity** ``|S n T| / |S u T|`` -- the paper's headline
  application ("the first protocol for computing the exact Jaccard
  similarity" with the ``O(k log^(r) k)`` / ``O(r)`` tradeoff).  Returned as
  an exact :class:`fractions.Fraction` -- "exact" is the point.
* **Hamming distance** between the characteristic vectors of ``S`` and
  ``T`` (equivalently between two sparse binary strings given by their
  supports): ``|S delta T|``.
* **Overlap (Szymkiewicz-Simpson) and containment coefficients** -- the
  standard database-similarity variants, included because the
  set-intersection papers the introduction cites ([DK11, ZBW+12]) use them
  interchangeably with Jaccard.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable

from repro.applications.cardinality import set_statistics

__all__ = ["jaccard", "hamming_distance", "overlap_coefficient", "containment"]


def jaccard(alice_set: Iterable[int], bob_set: Iterable[int], **options) -> Fraction:
    """Exact Jaccard similarity ``|S n T| / |S u T|``.

    ``options`` are forwarded to
    :func:`~repro.core.api.compute_intersection`.  Two empty sets have
    Jaccard similarity 1 by convention.
    """
    report = set_statistics(alice_set, bob_set, **options)
    if report.union_size == 0:
        return Fraction(1)
    return Fraction(report.intersection_size, report.union_size)


def hamming_distance(
    alice_support: Iterable[int], bob_support: Iterable[int], **options
) -> int:
    """Exact Hamming distance between two sparse binary vectors, given by
    the supports (positions of ones): ``|S delta T|``."""
    return set_statistics(
        alice_support, bob_support, **options
    ).symmetric_difference_size


def overlap_coefficient(
    alice_set: Iterable[int], bob_set: Iterable[int], **options
) -> Fraction:
    """Exact Szymkiewicz-Simpson overlap ``|S n T| / min(|S|, |T|)``
    (1 by convention when either set is empty)."""
    s = frozenset(alice_set)
    t = frozenset(bob_set)
    report = set_statistics(s, t, **options)
    smaller = min(len(s), len(t))
    if smaller == 0:
        return Fraction(1)
    return Fraction(report.intersection_size, smaller)


def containment(
    alice_set: Iterable[int], bob_set: Iterable[int], **options
) -> Fraction:
    """Exact containment ``|S n T| / |S|`` of Alice's set in Bob's
    (1 by convention when Alice's set is empty)."""
    s = frozenset(alice_set)
    report = set_statistics(s, bob_set, **options)
    if not s:
        return Fraction(1)
    return Fraction(report.intersection_size, len(s))
