"""Section 1 applications: everything the intersection protocol buys you.

"Given our upper bound for set intersection ... this gives the first
protocol for computing the size ``|S u T|`` of the union with our
communication/round tradeoff.  This in turn gives the first protocol for
computing the exact Jaccard similarity, exact Hamming distance, exact number
of distinct elements, and exact 1-rarity and 2-rarity."

Every function here runs the intersection protocol once (plus the one-round
size exchange, ``O(log k)`` bits) and derives the statistic exactly:

* :mod:`repro.applications.cardinality` -- ``|S n T|``, ``|S u T|``,
  distinct elements, symmetric difference.
* :mod:`repro.applications.similarity` -- Jaccard similarity, Hamming
  distance, overlap/containment coefficients.
* :mod:`repro.applications.rarity` -- Datar-Muthukrishnan 1-rarity and
  2-rarity.
* :mod:`repro.applications.join` -- a two-server relational join on
  intersecting keys (the database motivation of the introduction).
"""

from repro.applications.cardinality import (
    CardinalityReport,
    distinct_elements,
    intersection_size,
    set_statistics,
    symmetric_difference_size,
    union_size,
)
from repro.applications.dedup import (
    DuplicateReport,
    find_duplicates,
    find_global_duplicates,
)
from repro.applications.join import JoinResult, Relation, distributed_join
from repro.applications.rarity import rarity
from repro.applications.similarity import (
    containment,
    hamming_distance,
    jaccard,
    overlap_coefficient,
)
from repro.applications.union_set import (
    SetExchangeReport,
    recover_symmetric_difference,
    recover_union,
)

__all__ = [
    "DuplicateReport",
    "find_duplicates",
    "find_global_duplicates",
    "CardinalityReport",
    "distinct_elements",
    "intersection_size",
    "set_statistics",
    "symmetric_difference_size",
    "union_size",
    "JoinResult",
    "Relation",
    "distributed_join",
    "rarity",
    "containment",
    "hamming_distance",
    "jaccard",
    "overlap_coefficient",
    "SetExchangeReport",
    "recover_symmetric_difference",
    "recover_union",
]
