"""Duplicate detection across servers.

One of the paper's listed database applications: "finding duplicates".
Records live on different servers; a record is a *duplicate* if another
server also holds it.  With content-addressed records (each record keyed by
an integer fingerprint of its content), duplicates across two servers are
exactly the key-set intersection; across ``m`` servers, the pairwise or
global intersections, computed here with the Section 4 machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.core.api import compute_intersection
from repro.multiparty.coordinator import CoordinatorIntersection

__all__ = ["DuplicateReport", "find_duplicates", "find_global_duplicates"]


@dataclass(frozen=True)
class DuplicateReport:
    """Duplicates between two servers, with exact accounting.

    :param duplicates: record keys present on both servers.
    :param bits: communication spent.
    :param messages: messages exchanged.
    :param protocol: underlying intersection protocol.
    """

    duplicates: FrozenSet[int]
    bits: int
    messages: int
    protocol: str

    @property
    def count(self) -> int:
        """Number of duplicated records."""
        return len(self.duplicates)


def find_duplicates(
    server_a: Iterable[int], server_b: Iterable[int], **options
) -> DuplicateReport:
    """Find records held by both servers (two-server deduplication).

    ``options`` forward to :func:`~repro.core.api.compute_intersection`.
    """
    result = compute_intersection(server_a, server_b, **options)
    return DuplicateReport(
        duplicates=result.intersection,
        bits=result.bits,
        messages=result.messages,
        protocol=result.protocol,
    )


def find_global_duplicates(
    servers: Sequence[Iterable[int]],
    *,
    universe_size: int,
    max_set_size: int,
    rounds: Optional[int] = None,
    seed: int = 0,
) -> Tuple[FrozenSet[int], Dict[str, int]]:
    """Records present on *every* server (globally replicated records).

    Uses the Corollary 4.1 coordinator protocol; returns the global
    duplicate set and an accounting dict (``total_bits``, ``rounds``,
    ``max_player_bits``).
    """
    protocol = CoordinatorIntersection(
        universe_size, max_set_size, rounds=rounds
    )
    result = protocol.run([frozenset(server) for server in servers], seed=seed)
    return result.intersection, {
        "total_bits": result.total_bits,
        "rounds": result.rounds,
        "max_player_bits": result.outcome.max_player_bits,
    }


def pairwise_duplicate_matrix(
    servers: Sequence[Iterable[int]], **options
) -> List[List[int]]:
    """All-pairs duplicate counts (the deduplication planner's heat map).

    Runs the two-party protocol for every server pair; entry ``[i][j]`` is
    the number of records servers ``i`` and ``j`` share (diagonal = server
    sizes).  Costs ``C(m, 2)`` protocol runs -- quadratic by design; use
    :func:`find_global_duplicates` for the global set.
    """
    normalized = [frozenset(server) for server in servers]
    matrix: List[List[int]] = [
        [0] * len(normalized) for _ in range(len(normalized))
    ]
    seed = options.pop("seed", 0)
    for i, left in enumerate(normalized):
        matrix[i][i] = len(left)
        for j in range(i + 1, len(normalized)):
            report = find_duplicates(
                left, normalized[j], seed=seed + i * 1000 + j, **options
            )
            matrix[i][j] = matrix[j][i] = report.count
    return matrix
