"""Recovering the union / symmetric difference -- the paper's counterpoint.

Abstract: "This is in contrast to other basic problems such as computing
the union or symmetric difference, for which ``Omega(k log(n/k))`` bits of
communication is required for any number of rounds."

Intuition for the bound: Alice's output must *contain her partner's
private elements* -- ``T \\ S`` for the union, likewise for the symmetric
difference -- so the transcript must effectively transmit an arbitrary
``k``-subset of ``[n]``, which costs ``log2 C(n, k) = Theta(k log(n/k))``
bits no matter how many rounds are used.  (The intersection escapes this
because its output is a subset of *both* inputs: hashing can name common
elements by reference to what the receiver already holds.)

Accordingly the implementations here are the information-theoretically
tight ones -- gap-coded set exchange -- and the E13 benchmark exhibits the
contrast: union cost rises linearly in ``log(n/k)`` while the intersection
protocols stay flat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Generator, Iterable

from repro.comm.engine import PartyContext, Recv, Send, run_two_party
from repro.protocols.base import validate_set_pair
from repro.util.bits import decode_delta_sorted_set, encode_delta_sorted_set

__all__ = ["SetExchangeReport", "recover_union", "recover_symmetric_difference"]


@dataclass(frozen=True)
class SetExchangeReport:
    """Result of a union / symmetric-difference recovery.

    :param result: the recovered set (both parties hold it).
    :param bits: exact communication cost -- ``Theta(k log(n/k))``,
        unavoidably.
    :param messages: messages exchanged (2: one set each way).
    """

    result: FrozenSet[int]
    bits: int
    messages: int


def _exchange_party(ctx: PartyContext, combine) -> Generator:
    """Both parties send their whole set; output = combine(own, other)."""
    own = frozenset(ctx.input)
    if ctx.role == "alice":
        yield Send(encode_delta_sorted_set(own))
        received = yield Recv()
    else:
        received = yield Recv()
        yield Send(encode_delta_sorted_set(own))
    other = frozenset(decode_delta_sorted_set(received))
    return combine(own, other)


def _run_exchange(
    alice_set: Iterable[int],
    bob_set: Iterable[int],
    combine,
    universe_size: int,
    max_set_size: int,
    seed: int,
) -> SetExchangeReport:
    s, t = validate_set_pair(alice_set, bob_set, universe_size, max_set_size)
    outcome = run_two_party(
        lambda ctx: _exchange_party(ctx, combine),
        lambda ctx: _exchange_party(ctx, combine),
        alice_input=s,
        bob_input=t,
        shared_seed=seed,
    )
    assert outcome.alice_output == outcome.bob_output
    return SetExchangeReport(
        result=outcome.alice_output,
        bits=outcome.total_bits,
        messages=outcome.num_messages,
    )


def recover_union(
    alice_set: Iterable[int],
    bob_set: Iterable[int],
    *,
    universe_size: int,
    max_set_size: int,
    seed: int = 0,
) -> SetExchangeReport:
    """Both parties recover ``S u T`` exactly.

    Deterministic, ``Theta(k log(n/k))`` bits -- information-theoretically
    tight for this problem (see module docstring); contrast with
    :func:`~repro.applications.cardinality.union_size`, which needs only
    the *size* and inherits the intersection protocol's ``O(k)`` cost.
    """
    return _run_exchange(
        alice_set, bob_set, lambda a, b: a | b, universe_size, max_set_size, seed
    )


def recover_symmetric_difference(
    alice_set: Iterable[int],
    bob_set: Iterable[int],
    *,
    universe_size: int,
    max_set_size: int,
    seed: int = 0,
) -> SetExchangeReport:
    """Both parties recover ``S delta T`` exactly (same tight cost)."""
    return _run_exchange(
        alice_set, bob_set, lambda a, b: a ^ b, universe_size, max_set_size, seed
    )
