"""Two-party instance generators.

An :class:`WorkloadSpec` fixes the universe, set size, overlap fraction,
and element *distribution*; :func:`generate_pair` draws a seeded instance.
The distributions model the paper's application domains:

* ``UNIFORM`` -- uniform random ids (hash-friendly; the default in the
  benchmark suite).
* ``CLUSTERED`` -- ids concentrated in a few dense runs, as in
  auto-increment database keys: stresses the hash families' ability to
  spread structured inputs.
* ``ZIPF`` -- ids drawn from a Zipf-like popularity ranking, as in word
  shingles or social graphs: elements cluster at small ids.
* ``ARITHMETIC`` -- an adversarial arithmetic progression ``a*i + b``:
  the worst case for the multiply-shift-style hashing this library uses
  (linear structure can survive one linear hash), exercised by tests to
  confirm the protocols' guarantees don't secretly rely on benign inputs.
"""

from __future__ import annotations

import enum
import random
import zlib
from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Tuple

__all__ = [
    "Distribution",
    "WorkloadSpec",
    "generate_pair",
    "generate_stream",
    "make_instance",
]


class Distribution(enum.Enum):
    """Element-placement distributions for generated instances."""

    UNIFORM = "uniform"
    CLUSTERED = "clustered"
    ZIPF = "zipf"
    ARITHMETIC = "arithmetic"


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a two-party workload.

    :param universe_size: the universe ``[n]``.
    :param set_size: ``k`` -- both sets have exactly this size.
    :param overlap_fraction: ``|S n T| / k`` (0 = disjoint, 1 = identical).
    :param distribution: element placement (see :class:`Distribution`).
    """

    universe_size: int
    set_size: int
    overlap_fraction: float
    distribution: Distribution = Distribution.UNIFORM

    def __post_init__(self) -> None:
        if self.set_size < 1:
            raise ValueError(f"set_size must be >= 1, got {self.set_size}")
        if not 0.0 <= self.overlap_fraction <= 1.0:
            raise ValueError(
                f"overlap_fraction must be in [0, 1], got {self.overlap_fraction}"
            )
        if self.universe_size < 2 * self.set_size:
            raise ValueError(
                "universe must hold two disjoint sets: need "
                f"universe_size >= {2 * self.set_size}, got {self.universe_size}"
            )


def _draw_distinct(rng: random.Random, spec: WorkloadSpec, count: int) -> List[int]:
    """Draw ``count`` distinct universe elements per the spec's distribution."""
    n = spec.universe_size
    if spec.distribution is Distribution.UNIFORM:
        return rng.sample(range(n), count)
    chosen: set = set()
    if spec.distribution is Distribution.CLUSTERED:
        # A handful of dense runs, like auto-increment key ranges.  Extra
        # cluster starts are added if overlapping runs leave too few
        # distinct slots (guarantees termination).
        starts = [rng.randrange(n) for _ in range(max(1, count // 32))]
        stall = 0
        while len(chosen) < count:
            before = len(chosen)
            chosen.add((rng.choice(starts) + rng.randrange(64)) % n)
            stall = stall + 1 if len(chosen) == before else 0
            if stall > 256:
                starts.append(rng.randrange(n))
                stall = 0
        return list(chosen)
    if spec.distribution is Distribution.ZIPF:
        # Inverse-CDF-ish Zipf over ranks; heavy mass at small ids.
        while len(chosen) < count:
            rank = int(n ** rng.random()) % n
            chosen.add(rank)
        return list(chosen)
    if spec.distribution is Distribution.ARITHMETIC:
        stride = rng.randrange(1, max(2, n // (4 * count)) + 1)
        base = rng.randrange(n)
        value = base
        while len(chosen) < count:
            chosen.add(value % n)
            value += stride
        return list(chosen)
    raise AssertionError(f"unhandled distribution {spec.distribution}")


def _spec_fingerprint(spec: WorkloadSpec) -> int:
    """A stable 32-bit fingerprint of a spec.

    Deliberately *not* ``hash(spec)``: enum members hash through their name
    string, and string hashing is randomized per process (PYTHONHASHSEED),
    which would make instances differ between a parent and a spawned worker
    and between repeated invocations.  CRC32 of the canonical repr is
    stable everywhere, which is what lets the parallel trial executor
    guarantee bit-identical runs across processes.
    """
    key = (
        f"{spec.universe_size}:{spec.set_size}:{spec.overlap_fraction!r}:"
        f"{spec.distribution.value}"
    )
    return zlib.crc32(key.encode("utf-8"))


def generate_pair(
    spec: WorkloadSpec, seed: int
) -> Tuple[FrozenSet[int], FrozenSet[int]]:
    """Draw one seeded instance ``(S, T)`` with
    ``|S| = |T| = spec.set_size`` and
    ``|S n T| = round(overlap_fraction * set_size)``."""
    rng = random.Random((seed << 16) ^ _spec_fingerprint(spec))
    overlap = int(round(spec.overlap_fraction * spec.set_size))
    needed = 2 * spec.set_size - overlap
    elements = _draw_distinct(rng, spec, needed)
    common = elements[:overlap]
    s_only = elements[overlap : spec.set_size]
    t_only = elements[spec.set_size :]
    return frozenset(common + s_only), frozenset(common + t_only)


def make_instance(
    rng: random.Random,
    universe_size: int,
    set_size: int,
    overlap_fraction: float,
) -> Tuple[FrozenSet[int], FrozenSet[int]]:
    """Build ``(S, T)`` with ``|S| = |T| = set_size`` and
    ``|S n T| = round(overlap_fraction * set_size)`` from a caller-owned RNG.

    This is the uniform-instance generator shared by the test suite
    (``tests/conftest.py``) and the benchmark harness
    (``benchmarks/_harness.py``) -- the single source of truth for what "a
    random instance with planted overlap" means.  Callers that want
    non-uniform element placement use :class:`WorkloadSpec` +
    :func:`generate_pair` instead.
    """
    overlap = int(round(overlap_fraction * set_size))
    sample = rng.sample(range(universe_size), 2 * set_size - overlap)
    common = sample[:overlap]
    s_only = sample[overlap:set_size]
    t_only = sample[set_size:]
    return frozenset(common + s_only), frozenset(common + t_only)


def generate_stream(
    spec: WorkloadSpec, first_seed: int = 0
) -> Iterator[Tuple[FrozenSet[int], FrozenSet[int]]]:
    """An infinite stream of independent instances (for trial loops)."""
    seed = first_seed
    while True:
        yield generate_pair(spec, seed)
        seed += 1
