"""Workload generators for experiments, examples, and tests.

The paper's motivating workloads are database-shaped: joins between
relations, near-duplicate documents, distributed logs.  This subpackage
provides seeded generators for those shapes so benchmarks and downstream
users exercise the protocols on realistic input distributions, not just
uniform random sets:

* :mod:`repro.workloads.twoparty` -- pairs ``(S, T)`` with controlled
  overlap under several element distributions (uniform, Zipf-clustered,
  contiguous runs, adversarial arithmetic progressions).
* :mod:`repro.workloads.multiparty` -- ``m``-player families with a
  planted common core and per-player noise.
"""

from repro.workloads.multiparty import (
    MultipartySpec,
    generate_multiparty,
    make_multiparty_instance,
)
from repro.workloads.twoparty import (
    Distribution,
    WorkloadSpec,
    generate_pair,
    make_instance,
)

__all__ = [
    "Distribution",
    "WorkloadSpec",
    "generate_pair",
    "make_instance",
    "MultipartySpec",
    "generate_multiparty",
    "make_multiparty_instance",
]
