"""Multi-party instance generators.

A :class:`MultipartySpec` plants a common core held by every player plus
independent per-player noise -- the shape of Section 4's motivating
workloads (sessions active in every region, records present on every
replica).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import FrozenSet, List

__all__ = ["MultipartySpec", "generate_multiparty", "make_multiparty_instance"]


@dataclass(frozen=True)
class MultipartySpec:
    """Parameters of an ``m``-player workload.

    :param universe_size: the universe ``[n]``.
    :param set_size: ``k`` -- every player's set has exactly this size.
    :param num_players: ``m``.
    :param common_size: the planted ``|S_1 n ... n S_m|`` (the true
        intersection can only exceed this by coincidental noise overlap,
        which is negligible for sparse workloads).
    """

    universe_size: int
    set_size: int
    num_players: int
    common_size: int

    def __post_init__(self) -> None:
        if self.num_players < 1:
            raise ValueError(f"num_players must be >= 1: {self.num_players}")
        if not 0 <= self.common_size <= self.set_size:
            raise ValueError(
                f"common_size must be in [0, set_size]: {self.common_size}"
            )
        if self.universe_size < self.set_size * (self.num_players + 1):
            raise ValueError(
                "universe too small for disjoint per-player noise: need "
                f">= {self.set_size * (self.num_players + 1)}, got "
                f"{self.universe_size}"
            )


def generate_multiparty(
    spec: MultipartySpec, seed: int
) -> List[FrozenSet[int]]:
    """Draw one seeded ``m``-player instance.

    Noise elements are drawn *without replacement across players*, so the
    true intersection equals the planted core exactly.
    """
    rng = random.Random((seed << 20) ^ hash(spec) & 0xFFFFFFFF)
    noise_per_player = spec.set_size - spec.common_size
    total = spec.common_size + spec.num_players * noise_per_player
    elements = rng.sample(range(spec.universe_size), total)
    common = elements[: spec.common_size]
    sets = []
    cursor = spec.common_size
    for _ in range(spec.num_players):
        noise = elements[cursor : cursor + noise_per_player]
        cursor += noise_per_player
        sets.append(frozenset(common + noise))
    return sets


def make_multiparty_instance(
    rng: random.Random,
    universe_size: int,
    set_size: int,
    num_players: int,
    common_size: int,
) -> List[FrozenSet[int]]:
    """``m`` player sets sharing a planted common core, from a caller-owned
    RNG.

    The benchmark harness's multiparty generator, hoisted here as the single
    source of truth (noise elements may coincide across players, so the true
    intersection can exceed the planted core by chance; use
    :func:`generate_multiparty` for an exact core).
    """
    common = set(rng.sample(range(universe_size), common_size))
    sets = []
    for _ in range(num_players):
        extra = set(rng.sample(range(universe_size), set_size - common_size))
        sets.append(frozenset(common | extra))
    return sets
