"""Control surface for the library's hot-path caches.

The memoized hot paths live next to the code they accelerate
(:mod:`repro.hashing.primes`, :mod:`repro.hashing.pairwise`,
:mod:`repro.hashing.families`, :mod:`repro.util.rng`,
:mod:`repro.protocols.fingerprint`) and register themselves with
:mod:`repro.util.hotcache` at import time.  This module is the public face:

* :func:`hot_caches_disabled` -- context manager that clears and bypasses
  every cache inside the block.  The microbenchmarks use it to time the
  seed-equivalent uncached baseline against the cached paths.
* :func:`clear_hot_caches` -- drop all memoized entries (memory hygiene in
  long-running processes; measurement hygiene between benchmark phases).
* :func:`hot_cache_stats` -- per-cache hit/miss/size counters, handy for
  verifying a workload actually exercises the caches.

All cached functions are pure, so none of this ever changes results --
only wall time and memory.  The caches are per-process: forked worker
processes inherit the parent's warm entries, spawned workers start cold,
and either way the computed values are identical.
"""

from __future__ import annotations

from repro.util import hotcache

# Import the cache-owning modules for their registration side effects, so
# `hot_cache_stats()` is complete no matter which parts of the library the
# caller has touched.
import repro.hashing.families  # noqa: F401
import repro.hashing.pairwise  # noqa: F401
import repro.hashing.primes  # noqa: F401
import repro.protocols.fingerprint  # noqa: F401
import repro.util.rng  # noqa: F401

__all__ = [
    "hot_caches_disabled",
    "clear_hot_caches",
    "hot_cache_stats",
    "hot_cache_names",
]

hot_caches_disabled = hotcache.disabled
clear_hot_caches = hotcache.clear_all
hot_cache_stats = hotcache.stats
hot_cache_names = hotcache.registered_names
