"""The ``BENCH_core.json`` schema and its validator.

``BENCH_core.json`` is the repo's perf trajectory: one file per commit (or
CI run) with comparable numbers, so a regression between PRs is a diff of
two JSON files rather than an archaeology project.  The schema is versioned
and validated hand-rolled (no external jsonschema dependency); CI runs the
validator against every freshly produced file and fails on drift.

Top-level document::

    {
      "schema_version": 3,
      "suite": "repro.perf.core",
      "created_unix": 1754000000.0,
      "host": {
        "python": "3.11.7", "platform": "...",
        "cpu_count": 1,            # os.cpu_count(): logical CPUs
        "cpu_count_affinity": 1    # CPUs this process may actually use;
                                   # null where the host cannot say
                                   # (no os.sched_getaffinity)
      },
      "config": {"workers": 4, "quick": false},
      "micro": {"<name>": {"ops_per_s": ..., "wall_s": ..., "iterations": ...,
                           "backend": "numpy"}},  # backend optional: which
                                                  # kernel backend timed it
      "e1_trial_loop": {
        "trials": ..., "k": ..., "rounds": ...,
        "serial_uncached_s": ...,   # seed-equivalent baseline (caches bypassed)
        "serial_cached_s": ...,     # hot caches on, workers=1
        "parallel_s": ...,          # hot caches on, executor with `workers`
        "workers": ...,
        "speedup_vs_serial": ...,   # serial_uncached_s / parallel_s
        "speedup_cached_only": ..., # serial_uncached_s / serial_cached_s
        "bit_identical": true,      # serial vs parallel counters compared
        "counters_sha256": "..."    # fingerprint of the (bits, messages) list
      }
    }

Comparing runs across PRs: ratios within one file (the ``speedup_*``
fields, ``ops_per_s`` between two commits on the same machine) are
meaningful; absolute seconds across different machines are not.
``repro bench --compare OLD.json`` (see :mod:`repro.perf.compare`)
automates the between-commit diff with a tolerance band.

Schema history:

* **v3** -- the kernel layer: three kernel micros (``pairwise_batch``,
  ``bucket_assign``, ``multiparty_round``) become required; micro entries
  may carry an optional ``backend`` string (``"numpy"`` / ``"scalar"``)
  naming the kernel backend that produced the timing, so the regression
  gate can skip throughput comparisons across different backends;
  ``host.cpu_count_affinity`` may be ``null`` on hosts without
  ``os.sched_getaffinity`` (macOS/Windows) instead of fabricating a count.
  Later v3 reports add an *optional* ``plan_resume`` micro (the
  declarative-plan shard cache: ``cold_s`` / ``warm_s`` / ``speedup`` /
  ``resume_identical`` alongside the standard timing fields) -- optional
  rather than required so older v3 baselines still validate and
  ``--compare`` against them stays green (the compare gate reports a
  missing-on-one-side micro as ``"new"``, never a regression).  The
  serving layer adds a second optional micro on the same terms,
  ``serve_throughput`` (the cross-session batch coalescer:
  ``sessions_per_s`` / ``p99_ms`` / ``coalesce_speedup`` /
  ``batch_identical`` / ``shed``, measured by replaying one seeded
  traffic mix against an in-process server with coalescing on and off).
  The round-barrier scheduler adds a third optional micro,
  ``serve_throughput_multiround`` (same fields plus ``rounds``): the
  identical measurement over multi-round verification-tree sessions,
  where the coalesced leg is the lockstep barrier driver.  Its speedup
  warning threshold is a 0.8x parity floor rather than 2x -- the barrier pools
  kernel dispatches but the per-level sweeps are cheap on warm caches,
  so the micro's job is pinning honesty and the three-way
  ``batch_identical`` contract, not advertising a multiple.  The
  transport layer adds two more optional micros on the same terms:
  ``serve_socket_throughput`` (the same mix through in-process clients
  vs a 2-worker multi-process fleet over a Unix-domain socket;
  ``socket_vs_inproc`` is the wall ratio with **no** target claimed --
  the syscall layer's price is watched, not advertised -- and
  ``batch_identical`` extends the fingerprint contract across the
  process boundary) and ``serve_cold_cache`` (warm vs cold hot-caches on
  a rounds=2 mix; ``cold_coalesce_speedup`` is the pooled-dispatch
  payoff in the one regime it exists for -- measured at parity to a few
  percent on the reference host, so its floor is the same 0.8x parity
  bar as the multi-round micro, not an invented multiple -- and
  ``profile_identical`` pins cache value-transparency).
* **v2** -- honest host parallelism: ``host.cpu_count_affinity`` (the CPUs
  the process is actually allowed to schedule on, which on pinned CI
  runners is smaller than ``os.cpu_count()``) joins ``host.cpu_count``;
  three engine micros (``bitwriter_bulk``, ``bitstring_concat``,
  ``transcript_append``) become required.
* **v1** -- initial shape.
"""

from __future__ import annotations

from typing import Any, Dict, List

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "SUITE_NAME",
    "validate_bench_report",
    "bench_report_warnings",
]

BENCH_SCHEMA_VERSION = 3
SUITE_NAME = "repro.perf.core"


class _IntOrNull:
    """Marker type for fields that are an int where the host can say and
    ``null`` where it cannot (see ``host.cpu_count_affinity``)."""

    __name__ = "int or null"


_MICRO_FIELDS = {"ops_per_s": float, "wall_s": float, "iterations": int}
#: Extra fields the (optional) plan_resume micro must carry when present.
_PLAN_RESUME_FIELDS = {
    "cold_s": float,
    "warm_s": float,
    "speedup": float,
    "cache_hits": int,
    "cache_misses": int,
    "resume_identical": bool,
}
#: Extra fields the (optional) serve_throughput micro must carry when
#: present.  ``coalesce_speedup`` is scalar-mode wall over coalesced-mode
#: wall on the same seeded mix (best-of-N each); ``batch_identical`` is
#: the coalesced-vs-scalar-vs-serial aggregate-fingerprint comparison.
_SERVE_THROUGHPUT_FIELDS = {
    "sessions_per_s": float,
    "ops_per_s": float,
    "p50_ms": float,
    "p99_ms": float,
    "scalar_wall_s": float,
    "coalesced_wall_s": float,
    "coalesce_speedup": float,
    "lanes_per_batch": float,
    "batch_identical": bool,
    "shed": int,
}
#: Extra fields the (optional) serve_throughput_multiround micro must
#: carry when present.  Same measurement as ``serve_throughput`` but the
#: sessions run the verification-tree protocol at the recorded ``rounds``,
#: so the coalesced leg is the round-barrier lockstep driver.  The honest
#: target for ``coalesce_speedup`` here is parity (the barrier pools
#: kernel dispatches but pays a locality tax interleaving generator
#: frames), so the warning floor is 0.8x (parity minus host noise), not the one-round 2x.
_SERVE_THROUGHPUT_MULTIROUND_FIELDS = {
    "rounds": int,
    "sessions_per_s": float,
    "ops_per_s": float,
    "p50_ms": float,
    "p99_ms": float,
    "scalar_wall_s": float,
    "coalesced_wall_s": float,
    "coalesce_speedup": float,
    "lanes_per_batch": float,
    "batch_identical": bool,
    "shed": int,
}
#: Extra fields the (optional) serve_socket_throughput micro must carry
#: when present.  ``socket_vs_inproc`` is the socket-fleet wall over the
#: in-process wall on the same seeded mix (best-of-N each) -- the honest
#: price of real process boundaries, with no target claimed either way.
#: ``batch_identical`` extends the fingerprint contract across the
#: process boundary (serial == in-process == socket fleet).
_SERVE_SOCKET_THROUGHPUT_FIELDS = {
    "transport": str,
    "fleet": int,
    "sessions_per_s": float,
    "p50_ms": float,
    "p99_ms": float,
    "inproc_wall_s": float,
    "socket_wall_s": float,
    "socket_vs_inproc": float,
    "batch_identical": bool,
    "shed": int,
}
#: Extra fields the (optional) serve_cold_cache micro must carry when
#: present.  ``cold_coalesce_speedup`` is cold-scalar wall over
#: cold-coalesced wall at the recorded ``rounds`` -- the pooled-dispatch
#: payoff in the regime it was built for (hot caches disabled);
#: ``cold_penalty`` is cold over warm coalesced wall (the honest cost of
#: losing the caches); ``profile_identical`` pins the kill switch's
#: value-transparency (warm == cold == serial fingerprints).
_SERVE_COLD_CACHE_FIELDS = {
    "rounds": int,
    "sessions_per_s": float,
    "p50_ms": float,
    "p99_ms": float,
    "warm_wall_s": float,
    "cold_wall_s": float,
    "cold_scalar_wall_s": float,
    "cold_penalty": float,
    "cold_coalesce_speedup": float,
    "profile_identical": bool,
    "shed": int,
}
_E1_FIELDS = {
    "trials": int,
    "k": int,
    "rounds": int,
    "serial_uncached_s": float,
    "serial_cached_s": float,
    "parallel_s": float,
    "workers": int,
    "speedup_vs_serial": float,
    "speedup_cached_only": float,
    "bit_identical": bool,
    "counters_sha256": str,
}
_HOST_FIELDS = {
    "python": str,
    "platform": str,
    "cpu_count": int,
    "cpu_count_affinity": _IntOrNull,
}
_CONFIG_FIELDS = {"workers": int, "quick": bool}

#: Microbenchmarks every report must contain (the suite may add more).
REQUIRED_MICRO = (
    "engine_round_trip",
    "batched_equality",
    "tree_protocol",
    "bit_codec_gamma",
    "bit_codec_uint",
    "bitwriter_bulk",
    "bitstring_concat",
    "transcript_append",
    "pairwise_batch",
    "bucket_assign",
    "multiparty_round",
)


def _check_fields(
    errors: List[str], where: str, section: Any, fields: Dict[str, type]
) -> None:
    if not isinstance(section, dict):
        errors.append(f"{where}: expected object, got {type(section).__name__}")
        return
    for name, expected in fields.items():
        if name not in section:
            errors.append(f"{where}.{name}: missing")
            continue
        value = section[name]
        if expected is float:
            ok = isinstance(value, (int, float)) and not isinstance(value, bool)
        elif expected is int:
            ok = isinstance(value, int) and not isinstance(value, bool)
        elif expected is _IntOrNull:
            ok = value is None or (
                isinstance(value, int) and not isinstance(value, bool)
            )
        else:
            ok = isinstance(value, expected)
        if not ok:
            errors.append(
                f"{where}.{name}: expected {expected.__name__}, "
                f"got {type(value).__name__}"
            )


def validate_bench_report(report: Any) -> List[str]:
    """Validate a parsed ``BENCH_core.json`` document.

    :returns: a list of human-readable problems; empty means valid.
    """
    errors: List[str] = []
    if not isinstance(report, dict):
        return [f"top level: expected object, got {type(report).__name__}"]

    if report.get("schema_version") != BENCH_SCHEMA_VERSION:
        errors.append(
            f"schema_version: expected {BENCH_SCHEMA_VERSION}, "
            f"got {report.get('schema_version')!r}"
        )
    if report.get("suite") != SUITE_NAME:
        errors.append(f"suite: expected {SUITE_NAME!r}, got {report.get('suite')!r}")
    created = report.get("created_unix")
    if not isinstance(created, (int, float)) or isinstance(created, bool):
        errors.append("created_unix: missing or not a number")

    _check_fields(errors, "host", report.get("host"), _HOST_FIELDS)
    _check_fields(errors, "config", report.get("config"), _CONFIG_FIELDS)

    micro = report.get("micro")
    if not isinstance(micro, dict):
        errors.append("micro: missing or not an object")
    else:
        for required in REQUIRED_MICRO:
            if required not in micro:
                errors.append(f"micro.{required}: missing")
        for name, entry in micro.items():
            _check_fields(errors, f"micro.{name}", entry, _MICRO_FIELDS)
            if name == "plan_resume":
                _check_fields(
                    errors, f"micro.{name}", entry, _PLAN_RESUME_FIELDS
                )
            if name == "serve_throughput":
                _check_fields(
                    errors, f"micro.{name}", entry, _SERVE_THROUGHPUT_FIELDS
                )
            if name == "serve_throughput_multiround":
                _check_fields(
                    errors,
                    f"micro.{name}",
                    entry,
                    _SERVE_THROUGHPUT_MULTIROUND_FIELDS,
                )
            if name == "serve_socket_throughput":
                _check_fields(
                    errors,
                    f"micro.{name}",
                    entry,
                    _SERVE_SOCKET_THROUGHPUT_FIELDS,
                )
            if name == "serve_cold_cache":
                _check_fields(
                    errors, f"micro.{name}", entry, _SERVE_COLD_CACHE_FIELDS
                )
            if isinstance(entry, dict) and "backend" in entry:
                if not isinstance(entry["backend"], str):
                    errors.append(
                        f"micro.{name}.backend: expected str, got "
                        f"{type(entry['backend']).__name__}"
                    )

    _check_fields(errors, "e1_trial_loop", report.get("e1_trial_loop"), _E1_FIELDS)
    return errors


def bench_report_warnings(report: Any) -> List[str]:
    """Non-fatal honesty checks on a (structurally valid) report.

    Six today:

    * a parallel-speedup claim made with more workers than the host can
      actually schedule is noise, not parallelism -- the classic way to
      produce an impressive-looking but meaningless ``speedup_vs_serial``
      on a single-CPU CI runner;
    * a ``plan_resume`` micro whose warm-cache run is under 5x faster than
      cold, or whose killed-then-resumed fingerprint diverged -- the shard
      cache's two load-bearing promises, surfaced on every bench run;
    * a ``serve_throughput`` micro whose coalescing speedup fell below the
      2x target, or whose coalesced fingerprint diverged from the scalar
      and serial paths -- the serving layer's two load-bearing promises;
    * a ``serve_throughput_multiround`` micro whose barrier-coalesced leg
      fell below the 0.8x parity floor (the honest multi-round target:
      pooled dispatches minus the locality tax should at worst break
      even) or whose three-way fingerprint diverged;
    * a ``serve_socket_throughput`` micro whose fingerprint diverged
      across the process boundary or that shed under the bench bounds
      (no floor on the wall ratio itself: syscall overhead is a price,
      not a speedup);
    * a ``serve_cold_cache`` micro whose cold-cache pooled dispatch lost
      outright to cold-cache scalar (below the 0.8x parity floor in the
      one regime the pooling exists for), or whose fingerprint changed
      when the caches were disabled.

    :returns: human-readable warnings; empty means nothing suspicious.
    """
    warnings: List[str] = []
    if not isinstance(report, dict):
        return warnings
    host = report.get("host")
    config = report.get("config")
    if isinstance(host, dict) and isinstance(config, dict):
        workers = config.get("workers")
        cpus = host.get("cpu_count_affinity", host.get("cpu_count"))
        if (
            isinstance(workers, int)
            and isinstance(cpus, int)
            and not isinstance(workers, bool)
            and not isinstance(cpus, bool)
            and workers > cpus > 0
        ):
            warnings.append(
                f"config.workers = {workers} exceeds the {cpus} CPU(s) this "
                f"process may schedule on; parallel timings oversubscribe the "
                f"host and speedup figures are not meaningful"
            )
    micro = report.get("micro")
    plan_resume = micro.get("plan_resume") if isinstance(micro, dict) else None
    if isinstance(plan_resume, dict):
        speedup = plan_resume.get("speedup")
        if (
            isinstance(speedup, (int, float))
            and not isinstance(speedup, bool)
            and speedup < 5.0
        ):
            warnings.append(
                f"micro.plan_resume.speedup = {speedup:.2f} is below the "
                f"5x warm-cache target; the shard cache is not paying for "
                f"itself on this host"
            )
        if plan_resume.get("resume_identical") is False:
            warnings.append(
                "micro.plan_resume.resume_identical is false: a "
                "killed-then-resumed plan produced a different aggregate "
                "fingerprint than the uninterrupted run"
            )
    serve = micro.get("serve_throughput") if isinstance(micro, dict) else None
    if isinstance(serve, dict):
        speedup = serve.get("coalesce_speedup")
        if (
            isinstance(speedup, (int, float))
            and not isinstance(speedup, bool)
            and speedup < 2.0
        ):
            warnings.append(
                f"micro.serve_throughput.coalesce_speedup = {speedup:.2f} "
                f"is below the 2x target; cross-session batching is not "
                f"paying for itself on this host"
            )
        if serve.get("batch_identical") is False:
            warnings.append(
                "micro.serve_throughput.batch_identical is false: the "
                "coalesced run's aggregate fingerprint diverged from the "
                "scalar/serial reference paths"
            )
    multiround = (
        micro.get("serve_throughput_multiround")
        if isinstance(micro, dict)
        else None
    )
    if isinstance(multiround, dict):
        speedup = multiround.get("coalesce_speedup")
        if (
            isinstance(speedup, (int, float))
            and not isinstance(speedup, bool)
            and speedup < 0.8
        ):
            warnings.append(
                f"micro.serve_throughput_multiround.coalesce_speedup = "
                f"{speedup:.2f} is below the 0.8x parity floor; the "
                f"round-barrier driver is slowing multi-round traffic down "
                f"on this host"
            )
        if multiround.get("batch_identical") is False:
            warnings.append(
                "micro.serve_throughput_multiround.batch_identical is "
                "false: the barrier-coalesced run's aggregate fingerprint "
                "diverged from the scalar/serial reference paths"
            )
    socket = (
        micro.get("serve_socket_throughput") if isinstance(micro, dict) else None
    )
    if isinstance(socket, dict):
        # No floor on socket_vs_inproc: the syscall overhead is a price to
        # watch, not a speedup to advertise.  The load-bearing claims are
        # determinism across the process boundary and zero untyped loss.
        if socket.get("batch_identical") is False:
            warnings.append(
                "micro.serve_socket_throughput.batch_identical is false: "
                "the socket-fleet run's aggregate fingerprint diverged "
                "from the in-process/serial reference paths"
            )
        shed = socket.get("shed")
        if isinstance(shed, int) and not isinstance(shed, bool) and shed > 0:
            warnings.append(
                f"micro.serve_socket_throughput.shed = {shed}: the bench "
                f"mix should run entirely under the admission bounds; "
                f"shedding here means the walls compare different work"
            )
    cold = micro.get("serve_cold_cache") if isinstance(micro, dict) else None
    if isinstance(cold, dict):
        speedup = cold.get("cold_coalesce_speedup")
        if (
            isinstance(speedup, (int, float))
            and not isinstance(speedup, bool)
            and speedup < 0.8
        ):
            warnings.append(
                f"micro.serve_cold_cache.cold_coalesce_speedup = "
                f"{speedup:.2f} is below the 0.8x parity floor; pooled "
                f"dispatch is losing outright to the scalar path even "
                f"with cold caches -- the one regime it exists for"
            )
        if cold.get("profile_identical") is False:
            warnings.append(
                "micro.serve_cold_cache.profile_identical is false: "
                "disabling the hot caches changed the aggregate "
                "fingerprint -- a cache is leaking values into results"
            )
    return warnings
