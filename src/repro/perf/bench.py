"""The core microbenchmark suite behind ``BENCH_core.json``.

Times the simulator's hot layers -- engine round-trips, batched equality,
full tree-protocol runs, bit-codec operations -- plus the headline number:
the E1 tree-tradeoff trial loop, run three ways (seed-equivalent uncached
serial, hot-cached serial, hot-cached parallel via
:func:`repro.perf.run_trials`).  The parallel and serial loops are checked
bit-identical on their communication counters before any speedup is
reported; a speedup that changed the counters would be a bug, not an
optimization.

Usage::

    from repro.perf.bench import run_core_benchmarks
    report = run_core_benchmarks(workers=4)

or ``python -m repro bench --workers 4 --out BENCH_core.json``.

Every timed trial function is a module-level callable so the process
executor can pickle it; see :mod:`repro.perf.executor` for the contract.
"""

from __future__ import annotations

import functools
import hashlib
import json
import platform
import os
import random
import time
from pathlib import Path
from typing import Any, Callable, Dict, Optional

from repro.comm.engine import PartyContext, Recv, Send, run_two_party
from repro.comm.parallel import run_batched
from repro.core.tree_protocol import TreeProtocol
from repro.hashing.pairwise import PairwiseHash
from repro.hashing.primes import next_prime
from repro.kernels import backend_name, bucket_assign
from repro.multiparty.coordinator import CoordinatorIntersection
from repro.perf.cache import clear_hot_caches, hot_caches_disabled
from repro.perf.executor import run_trials
from repro.perf.schema import BENCH_SCHEMA_VERSION, SUITE_NAME, validate_bench_report
from repro.comm.transcript import Transcript
from repro.protocols.equality import run_equality
from repro.util.bits import BitReader, BitString, BitWriter
from repro.workloads import Distribution, WorkloadSpec, make_instance

__all__ = ["run_core_benchmarks", "DEFAULT_OUTPUT"]

DEFAULT_OUTPUT = "BENCH_core.json"

_E1_UNIVERSE = 1 << 24
_E1_K = 256
_E1_ROUNDS = 2


# -- module-level protocol parties / trial functions (picklable) ----------


def _ping(ctx: PartyContext):
    value = 0
    for _ in range(4):
        yield Send(_uint_bits(value))
        reply = yield Recv()
        value = (reply.value + 1) & 0xFFFFFFFF
    return value


def _pong(ctx: PartyContext):
    value = 0
    for _ in range(4):
        got = yield Recv()
        value = (got.value + 1) & 0xFFFFFFFF
        yield Send(_uint_bits(value))
    return value


def _uint_bits(value: int):
    writer = BitWriter()
    writer.write_uint(value, 32)
    return writer.finish()


# Hoisted so the micro times the protocol machinery, not f-string assembly.
_BATCHED_EQ_ARGS = [((index, index % 7), f"bench/eq/{index}") for index in range(32)]


def _batched_equality_party(ctx: PartyContext):
    coroutines = [
        run_equality(ctx, value, width=16, label=label)
        for value, label in _BATCHED_EQ_ARGS
    ]
    verdicts = yield from run_batched(ctx, coroutines, num_messages=2)
    return verdicts


def _op_engine_round_trip() -> None:
    run_two_party(_ping, _pong, alice_input=None, bob_input=None, shared_seed=0)


def _op_batched_equality() -> None:
    run_two_party(
        _batched_equality_party,
        _batched_equality_party,
        alice_input=None,
        bob_input=None,
        shared_seed=0,
    )


def _op_tree_protocol(protocol: TreeProtocol, alice_set, bob_set, seed: int) -> None:
    protocol.run(alice_set, bob_set, seed=seed)


def _op_bit_codec_gamma() -> None:
    writer = BitWriter()
    for value in range(512):
        writer.write_gamma(value * 7 % 1021)
    reader = BitReader(writer.finish())
    for _ in range(512):
        reader.read_gamma()
    reader.expect_exhausted()


def _op_bit_codec_uint() -> None:
    writer = BitWriter()
    for value in range(512):
        writer.write_uint((value * 2654435761) & 0xFFFFFF, 24)
    reader = BitReader(writer.finish())
    for _ in range(512):
        reader.read_uint(24)
    reader.expect_exhausted()


_BULK_RUN_VALUES = [(index * 2654435761) & 0xFFFFFF for index in range(4096)]


def _op_bitwriter_bulk() -> None:
    """Bulk message assembly: one 4096-value fixed-width run, write + read.

    This is the shape under every sorted-hash-list exchange; the byte-backed
    engine makes it O(total bits) where the big-int writer re-shifted the
    whole prefix per append."""
    writer = BitWriter()
    writer.write_run(_BULK_RUN_VALUES, 24)
    reader = BitReader(writer.finish())
    reader.read_run(4096, 24)
    reader.expect_exhausted()


# Mixed widths on purpose: byte-aligned pieces exercise the buffer-join
# path, the others the sub-byte cursor.
_CONCAT_PIECES = [
    BitString((index * 0x9E3779B1) & ((1 << width) - 1), width)
    for index, width in enumerate([8, 24, 19, 32, 5, 16] * 85)
]


def _op_bitstring_concat() -> None:
    """Chunk concatenation: 510 BitStrings streamed into one message."""
    writer = BitWriter()
    write_bits = writer.write_bits
    for piece in _CONCAT_PIECES:
        write_bits(piece)
    writer.finish()


_TRANSCRIPT_PAYLOAD = BitString(0xBEEF, 24)


def _op_transcript_append() -> None:
    """Transcript accounting: 2048 sends, alternating sender every 8, and a
    final recount through the running counters."""
    transcript = Transcript()
    record_send = transcript.record_send
    for index in range(2048):
        record_send(
            "alice" if (index >> 3) & 1 == 0 else "bob", _TRANSCRIPT_PAYLOAD
        )
    assert transcript.total_bits == 2048 * 24


# -- kernel micros ---------------------------------------------------------

# 4096 keys in [2**24): big enough that the lane path engages (>= MIN_LANES)
# and representative of a full tree-protocol hash sweep.
_KERNEL_KEYS = [(index * 2654435761) & 0xFFFFFF for index in range(4096)]
_KERNEL_HASH = PairwiseHash(
    universe_size=1 << 24,
    range_size=1 << 20,
    prime=next_prime(1 << 24),
    mult=48271,
    shift=11,
)


def _op_pairwise_batch() -> None:
    """Bulk Carter-Wegman images through the kernel dispatch (whatever
    backend is active -- recorded in the micro's ``backend`` field)."""
    _KERNEL_HASH.images(_KERNEL_KEYS)


def _op_pairwise_batch_scalar() -> None:
    """The same sweep as one ``h(x)`` call per key -- the seed-equivalent
    per-key path the kernel replaces; the ``pairwise_batch`` /
    ``pairwise_batch_scalar`` ratio is the kernel's speedup evidence."""
    h = _KERNEL_HASH
    [h(x) for x in _KERNEL_KEYS]


def _op_bucket_assign() -> None:
    """The Theorem 3.1 bucket-hashing step over the same key array."""
    bucket_assign(
        _KERNEL_KEYS,
        _KERNEL_HASH.mult,
        _KERNEL_HASH.shift,
        _KERNEL_HASH.prime,
        257,
    )


_MP_UNIVERSE = 1 << 16
_MP_K = 16


def _make_mp_sets():
    rng = random.Random(11)
    core = rng.sample(range(_MP_UNIVERSE), 4)
    return [
        frozenset(core) | frozenset(rng.sample(range(_MP_UNIVERSE), _MP_K - 4))
        for _ in range(8)
    ]


_MP_SETS = _make_mp_sets()
_MP_PROTOCOL = CoordinatorIntersection(
    _MP_UNIVERSE, _MP_K, rounds=2, group_size=8
)


def _op_multiparty_round() -> None:
    """One 8-player coordinator-protocol run: times the batched BSP round
    scheduler plus the pairwise-adapter plumbing end to end."""
    _MP_PROTOCOL.run(_MP_SETS, seed=5)


# -- plan-scheduler micro --------------------------------------------------


def _plan_resume_micro(quick: bool) -> Dict[str, Any]:
    """Cold vs warm shard-cache runs of a small declarative plan.

    Four legs through :func:`repro.plans.run_plan`, all serial so the
    ratio measures the cache, not the pool:

    1. **cold** -- every shard executes, cache A fills;
    2. **halted** -- a fresh cache B stops after half the shards
       (the deterministic kill point);
    3. **resumed** -- the same plan in cache B finishes the rest;
    4. **warm** -- the plan re-runs against the full cache A: zero shards
       execute.

    ``speedup`` is ``cold_s / warm_s`` (the content-addressed cache's
    payoff) and ``resume_identical`` asserts the killed-then-resumed
    aggregate fingerprint matches the uninterrupted one -- the
    bit-identical-resume contract, measured on every bench run.
    """
    import tempfile

    from repro.plans import Plan, ProtocolSpec, ShardCache, run_plan

    plan = Plan(
        name="bench-plan-resume",
        protocols=(ProtocolSpec("bucket"),),
        instances=(
            WorkloadSpec(
                universe_size=1 << 16,
                set_size=32,
                overlap_fraction=0.5,
                distribution=Distribution.UNIFORM,
            ),
        ),
        trials=8 if quick else 24,
        seed=17,
        shard_size=4,
    )
    with tempfile.TemporaryDirectory(prefix="repro-plan-bench-") as root:
        cache_a = ShardCache(Path(root) / "a")
        cold = run_plan(plan, cache=cache_a, workers=1, executor="serial")

        half = max(1, cold.shards_total // 2)
        cache_b_root = Path(root) / "b"
        run_plan(
            plan,
            cache=ShardCache(cache_b_root),
            workers=1,
            executor="serial",
            halt_after=half,
        )
        resumed = run_plan(
            plan, cache=ShardCache(cache_b_root), workers=1, executor="serial"
        )

        warm_cache = ShardCache(Path(root) / "a")
        warm = run_plan(plan, cache=warm_cache, workers=1, executor="serial")

    warm_s = max(warm.wall_s, 1e-9)
    return {
        "ops_per_s": 1.0 / warm_s,
        "wall_s": cold.wall_s + warm.wall_s,
        "iterations": 2,
        "shards": cold.shards_total,
        "cold_s": cold.wall_s,
        "warm_s": warm.wall_s,
        "speedup": cold.wall_s / warm_s,
        "cache_hits": warm_cache.hits,
        "cache_misses": warm_cache.misses,
        "resume_identical": (
            resumed.counters_sha256 == cold.counters_sha256 == warm.counters_sha256
        ),
    }


# -- serve-layer micro -----------------------------------------------------


def _serve_throughput_micro(quick: bool) -> Dict[str, Any]:
    """The cross-session coalescer's payoff, measured end to end.

    One seeded :class:`~repro.serve.loadgen.LoadMix` is replayed against
    an in-process server twice per trial -- coalescing off (every
    operation takes the scalar engine path) and on (one-round hash sweeps
    batched across sessions into single kernel calls) -- and
    ``coalesce_speedup`` is the best-of-N scalar wall over the best-of-N
    coalesced wall.  Best-of-N per mode because a single socket-bound
    wall on a shared host carries scheduler noise that would swamp the
    ratio; the best wall is the least-disturbed run of each mode.

    ``batch_identical`` compares three aggregate fingerprints -- serial
    reference, scalar server, coalesced server -- and is the contract
    that makes the speedup claim meaningful: the batch path must be
    bit-identical to the path it replaces.
    """
    from repro.serve import LoadMix, run_load, run_mix_serial

    mix = LoadMix(
        name="bench",
        seed=11,
        sessions=24 if quick else 64,
        ops_per_session=8 if quick else 16,
        set_sizes=(64,),
    )
    trials = 2 if quick else 3
    run = functools.partial(run_load, mix, tick_s=0.001, pipeline=64)

    scalar_walls, coalesced_walls = [], []
    scalar_best = coalesced_best = None
    for _ in range(trials):
        scalar = run(coalesce=False)
        scalar_walls.append(scalar.wall_s)
        if scalar_best is None or scalar.wall_s < scalar_best.wall_s:
            scalar_best = scalar
        coalesced = run(coalesce=True)
        coalesced_walls.append(coalesced.wall_s)
        if coalesced_best is None or coalesced.wall_s < coalesced_best.wall_s:
            coalesced_best = coalesced

    serial_fingerprint = run_mix_serial(mix)["fingerprint"]
    batch_identical = (
        scalar_best.shed == coalesced_best.shed == 0
        and not scalar_best.errors
        and not coalesced_best.errors
        and serial_fingerprint
        == scalar_best.fingerprint
        == coalesced_best.fingerprint
    )
    coalesced_wall = max(coalesced_best.wall_s, 1e-9)
    lanes = coalesced_best.lanes_per_batch
    return {
        "ops_per_s": coalesced_best.ops_total / coalesced_wall,
        "wall_s": sum(scalar_walls) + sum(coalesced_walls),
        "iterations": 2 * trials,
        "sessions_per_s": mix.sessions / coalesced_wall,
        "p50_ms": coalesced_best.p50_ms,
        "p99_ms": coalesced_best.p99_ms,
        "scalar_wall_s": scalar_best.wall_s,
        "coalesced_wall_s": coalesced_best.wall_s,
        "coalesce_speedup": scalar_best.wall_s / coalesced_wall,
        "lanes_per_batch": lanes if lanes is not None else 0.0,
        "batch_identical": batch_identical,
        "shed": scalar_best.shed + coalesced_best.shed,
    }


def _serve_throughput_multiround_micro(quick: bool) -> Dict[str, Any]:
    """The round-barrier driver's payoff on multi-round tree sessions.

    Same methodology as :func:`_serve_throughput_micro` -- one seeded mix
    replayed with coalescing off and on, best-of-N walls per mode,
    three-way fingerprint comparison -- but the sessions run the
    verification-tree protocol at ``rounds=2``, so the coalesced path is
    the lockstep barrier scheduler pooling per-level hash sweeps across
    lanes rather than the one-round closed-form batch.

    Unlike the one-round micro, the honest expectation here is parity to
    a modest gain, not a multiple: the barrier path pools the kernel
    dispatches but pays a cache-locality tax for interleaving many
    generator frames through each tree level, and on warm hot-caches the
    per-level sweeps are already cheap.  The micro exists to keep that
    number honest and pinned, and to extend the ``batch_identical``
    contract (serial == scalar == coalesced) to the multi-round ops.
    """
    from repro.serve import LoadMix, run_load, run_mix_serial

    mix = LoadMix(
        name="bench-multiround",
        seed=13,
        sessions=24 if quick else 64,
        ops_per_session=4 if quick else 8,
        set_sizes=(64,),
        rounds=2,
    )
    trials = 2 if quick else 3
    run = functools.partial(run_load, mix, tick_s=0.001, pipeline=64)

    scalar_walls, coalesced_walls = [], []
    scalar_best = coalesced_best = None
    for _ in range(trials):
        scalar = run(coalesce=False)
        scalar_walls.append(scalar.wall_s)
        if scalar_best is None or scalar.wall_s < scalar_best.wall_s:
            scalar_best = scalar
        coalesced = run(coalesce=True)
        coalesced_walls.append(coalesced.wall_s)
        if coalesced_best is None or coalesced.wall_s < coalesced_best.wall_s:
            coalesced_best = coalesced

    serial_fingerprint = run_mix_serial(mix)["fingerprint"]
    batch_identical = (
        scalar_best.shed == coalesced_best.shed == 0
        and not scalar_best.errors
        and not coalesced_best.errors
        and serial_fingerprint
        == scalar_best.fingerprint
        == coalesced_best.fingerprint
    )
    coalesced_wall = max(coalesced_best.wall_s, 1e-9)
    lanes = coalesced_best.lanes_per_batch
    return {
        "ops_per_s": coalesced_best.ops_total / coalesced_wall,
        "wall_s": sum(scalar_walls) + sum(coalesced_walls),
        "iterations": 2 * trials,
        "rounds": 2,
        "sessions_per_s": mix.sessions / coalesced_wall,
        "p50_ms": coalesced_best.p50_ms,
        "p99_ms": coalesced_best.p99_ms,
        "scalar_wall_s": scalar_best.wall_s,
        "coalesced_wall_s": coalesced_best.wall_s,
        "coalesce_speedup": scalar_best.wall_s / coalesced_wall,
        "lanes_per_batch": lanes if lanes is not None else 0.0,
        "batch_identical": batch_identical,
        "shed": scalar_best.shed + coalesced_best.shed,
    }


def _serve_socket_throughput_micro(quick: bool) -> Dict[str, Any]:
    """What the syscall layer costs: in-process clients vs a real socket.

    The same seeded one-round mix is replayed twice per trial -- through
    the in-process harness (clients share the server's event loop over
    loopback TCP) and through a 2-worker multi-process fleet over a
    Unix-domain socket -- with best-of-N walls per mode.
    ``socket_vs_inproc`` is the socket wall over the in-process wall: a
    ratio above 1 is the honest price of real process boundaries
    (syscalls, scheduling, pickling the results back), below 1 means the
    fleet's client-side parallelism outweighed it on this host.  No
    target is claimed either way; the number exists to be watched, not
    advertised.

    ``batch_identical`` extends the determinism contract across the
    process boundary: serial reference, in-process run, and socket-fleet
    run must agree on the aggregate fingerprint with zero shed and zero
    errors -- the load-bearing claim of the fleet mode.
    """
    from repro.serve import LoadMix, run_load, run_mix_serial

    mix = LoadMix(
        name="bench-socket",
        seed=17,
        sessions=16 if quick else 32,
        ops_per_session=8 if quick else 16,
        set_sizes=(64,),
    )
    trials = 2 if quick else 3
    run = functools.partial(run_load, mix, tick_s=0.001, pipeline=64)

    inproc_best = socket_best = None
    total_wall = 0.0
    for _ in range(trials):
        inproc = run()
        total_wall += inproc.wall_s
        if inproc_best is None or inproc.wall_s < inproc_best.wall_s:
            inproc_best = inproc
        socket = run(transport="uds", fleet=2)
        total_wall += socket.wall_s
        if socket_best is None or socket.wall_s < socket_best.wall_s:
            socket_best = socket

    serial_fingerprint = run_mix_serial(mix)["fingerprint"]
    batch_identical = (
        inproc_best.shed == socket_best.shed == 0
        and not inproc_best.errors
        and not socket_best.errors
        and serial_fingerprint
        == inproc_best.fingerprint
        == socket_best.fingerprint
    )
    socket_wall = max(socket_best.wall_s, 1e-9)
    return {
        "ops_per_s": socket_best.ops_total / socket_wall,
        "wall_s": total_wall,
        "iterations": 2 * trials,
        "transport": socket_best.transport,
        "fleet": socket_best.fleet,
        "sessions_per_s": mix.sessions / socket_wall,
        "p50_ms": socket_best.p50_ms,
        "p99_ms": socket_best.p99_ms,
        "inproc_wall_s": inproc_best.wall_s,
        "socket_wall_s": socket_best.wall_s,
        "socket_vs_inproc": socket_best.wall_s / max(inproc_best.wall_s, 1e-9),
        "batch_identical": batch_identical,
        "shed": inproc_best.shed + socket_best.shed,
    }


def _serve_cold_cache_micro(quick: bool) -> Dict[str, Any]:
    """The cold-cache serving profile: where pooled dispatch finally wins.

    On warm hot-caches the multi-round barrier driver's pooled
    ``fingerprint_sweep_segments`` dispatch is mostly redundant -- the
    per-level sweeps it pools are already cached -- which is why the
    ``serve_throughput_multiround`` micro holds a parity floor, not a
    speedup.  This micro measures the regime the pooling was built for:
    hot caches disabled for the whole run (``profile="cold"``, the
    :mod:`repro.util.hotcache` kill switch), where every sweep is
    recomputed and batching them into one kernel call is the only
    amortization left.

    ``cold_coalesce_speedup`` is cold-scalar wall over cold-coalesced
    wall on the same rounds=2 mix (best-of-N each).  The honest finding
    on the reference host: parity to a few percent, not a multiple --
    recomputing the sweeps is still cheap relative to the generator-frame
    machinery around them -- so the micro pins that number against
    regression (0.8x parity floor) instead of advertising a win.
    ``cold_penalty`` is cold-coalesced over warm-coalesced -- the honest
    price of losing the caches (~4x here), reported rather than hidden.
    ``profile_identical`` pins the kill switch's value-transparency:
    warm, cold, and serial-reference fingerprints must be bit-identical
    (cold changes wall time, never bits).
    """
    from repro.serve import LoadMix, run_load, run_mix_serial

    mix = LoadMix(
        name="bench-cold",
        seed=19,
        sessions=16 if quick else 32,
        ops_per_session=4 if quick else 8,
        set_sizes=(64,),
        rounds=2,
    )
    trials = 2 if quick else 3
    run = functools.partial(run_load, mix, tick_s=0.001, pipeline=64)

    warm_best = cold_best = cold_scalar_best = None
    total_wall = 0.0
    for _ in range(trials):
        warm = run()
        total_wall += warm.wall_s
        if warm_best is None or warm.wall_s < warm_best.wall_s:
            warm_best = warm
        cold = run(profile="cold")
        total_wall += cold.wall_s
        if cold_best is None or cold.wall_s < cold_best.wall_s:
            cold_best = cold
        cold_scalar = run(profile="cold", coalesce=False)
        total_wall += cold_scalar.wall_s
        if (
            cold_scalar_best is None
            or cold_scalar.wall_s < cold_scalar_best.wall_s
        ):
            cold_scalar_best = cold_scalar

    serial_fingerprint = run_mix_serial(mix)["fingerprint"]
    profile_identical = (
        warm_best.shed == cold_best.shed == cold_scalar_best.shed == 0
        and not warm_best.errors
        and not cold_best.errors
        and not cold_scalar_best.errors
        and serial_fingerprint
        == warm_best.fingerprint
        == cold_best.fingerprint
        == cold_scalar_best.fingerprint
    )
    cold_wall = max(cold_best.wall_s, 1e-9)
    return {
        "ops_per_s": cold_best.ops_total / cold_wall,
        "wall_s": total_wall,
        "iterations": 3 * trials,
        "rounds": 2,
        "sessions_per_s": mix.sessions / cold_wall,
        "p50_ms": cold_best.p50_ms,
        "p99_ms": cold_best.p99_ms,
        "warm_wall_s": warm_best.wall_s,
        "cold_wall_s": cold_best.wall_s,
        "cold_scalar_wall_s": cold_scalar_best.wall_s,
        "cold_penalty": cold_best.wall_s / max(warm_best.wall_s, 1e-9),
        "cold_coalesce_speedup": cold_scalar_best.wall_s / cold_wall,
        "profile_identical": profile_identical,
        "shed": warm_best.shed + cold_best.shed + cold_scalar_best.shed,
    }


def _tree_trial(protocol: TreeProtocol, alice_set, bob_set, seed: int):
    """One E1-style trial: exact counters + correctness for one seed."""
    outcome = protocol.run(alice_set, bob_set, seed=seed)
    return (
        outcome.total_bits,
        outcome.num_messages,
        outcome.correct_for(alice_set, bob_set),
    )


def _host_facts() -> Dict[str, Any]:
    """The host section: honest CPU counts.

    ``cpu_count`` is the logical CPU count; ``cpu_count_affinity`` is how
    many of them this process may actually schedule on (cgroup/affinity
    pinning makes these differ on CI runners), which is the number any
    parallel-speedup claim should be read against.  Hosts without
    ``os.sched_getaffinity`` (macOS, Windows) report ``None`` -- an honest
    "cannot say" rather than a fabricated count (schema v3).
    """
    logical = os.cpu_count() or 1
    try:
        affinity = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        affinity = None
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": logical,
        "cpu_count_affinity": affinity,
    }


# -- timing helpers -------------------------------------------------------


def _time_op(op: Callable[[], Any], target_s: float) -> Dict[str, Any]:
    """Time ``op`` for roughly ``target_s`` seconds of repetitions.

    ``ops_per_s`` is the throughput of the *fastest* of four equal blocks
    (the pytest-benchmark ``min`` convention): the best block estimates
    steady-state cost, where a single contiguous average would fold
    cold-start effects (frequency ramp, cache warm-up, a stray scheduler
    preemption) into the number in proportion to how short the run is --
    which is exactly what made ``--quick`` runs read systematically slower
    than full runs of identical code.  ``wall_s`` stays the total measured
    wall time over ``iterations`` total calls.
    """
    start = time.perf_counter()
    op()
    once = max(time.perf_counter() - start, 1e-9)
    block_iters = max(1, int(target_s / once) // 4)
    best = float("inf")
    total_wall = 0.0
    for _ in range(4):
        start = time.perf_counter()
        for _ in range(block_iters):
            op()
        wall = max(time.perf_counter() - start, 1e-9)
        total_wall += wall
        best = min(best, wall)
    return {
        "ops_per_s": block_iters / best,
        "wall_s": total_wall,
        "iterations": 4 * block_iters,
    }


def _counters_sha256(values) -> str:
    return hashlib.sha256(repr(values).encode("utf-8")).hexdigest()


def _e1_trial_loop(workers: int, trials: int) -> Dict[str, Any]:
    """The headline comparison: the E1 trial loop three ways."""
    rng = random.Random(1)
    alice_set, bob_set = make_instance(rng, _E1_UNIVERSE, _E1_K, 0.5)
    protocol = TreeProtocol(_E1_UNIVERSE, _E1_K, rounds=_E1_ROUNDS)
    fn = functools.partial(_tree_trial, protocol, alice_set, bob_set)
    seeds = list(range(trials))

    with hot_caches_disabled():
        uncached = run_trials(fn, seeds, workers=1, executor="serial")

    clear_hot_caches()
    cached = run_trials(fn, seeds, workers=1, executor="serial")

    parallel = run_trials(fn, seeds, workers=workers, executor="process")

    serial_values = cached.values()
    parallel_values = parallel.values()
    bit_identical = (
        serial_values == parallel_values == uncached.values()
    )

    return {
        "trials": trials,
        "k": _E1_K,
        "rounds": _E1_ROUNDS,
        "serial_uncached_s": uncached.wall_time_s,
        "serial_cached_s": cached.wall_time_s,
        "parallel_s": parallel.wall_time_s,
        "workers": parallel.workers,
        "speedup_vs_serial": uncached.wall_time_s / parallel.wall_time_s,
        "speedup_cached_only": uncached.wall_time_s / cached.wall_time_s,
        "bit_identical": bit_identical,
        "counters_sha256": _counters_sha256(parallel_values),
    }


def run_core_benchmarks(
    *,
    workers: int = 4,
    quick: bool = False,
    trials: Optional[int] = None,
    out_path: Optional[str] = None,
) -> Dict[str, Any]:
    """Run the core suite and (optionally) write ``BENCH_core.json``.

    :param workers: worker count for the parallel leg of the E1 loop.
    :param quick: CI smoke mode -- fewer repetitions and trials, same
        schema.
    :param trials: override the E1 trial count (default 96, quick 8).
    :param out_path: write the JSON report here; parent directories are
        created.  ``None`` skips writing.
    :returns: the validated report dictionary.
    :raises ValueError: if the produced report fails its own schema check
        (guards against schema drift at the source).
    """
    target = 0.08 if quick else 0.4
    if trials is None:
        trials = 8 if quick else 96
    if trials < 1:
        raise ValueError(
            f"the e1 trial loop needs at least 1 trial, got {trials} "
            "(a 0-trial loop times nothing and its speedup is noise)"
        )

    rng = random.Random(3)
    tree_alice, tree_bob = make_instance(rng, _E1_UNIVERSE, 512, 0.5)
    tree_protocol = TreeProtocol(_E1_UNIVERSE, 512)

    clear_hot_caches()
    # Kernel-routed micros carry the backend that timed them so the
    # regression gate never compares numpy throughput against scalar.
    kernel_backend = backend_name()
    micro = {
        "engine_round_trip": _time_op(_op_engine_round_trip, target),
        "batched_equality": _time_op(_op_batched_equality, target),
        "tree_protocol": dict(
            _time_op(
                functools.partial(
                    _op_tree_protocol, tree_protocol, tree_alice, tree_bob, 0
                ),
                target,
            ),
            backend=kernel_backend,
        ),
        "bit_codec_gamma": _time_op(_op_bit_codec_gamma, target),
        "bit_codec_uint": _time_op(_op_bit_codec_uint, target),
        "bitwriter_bulk": _time_op(_op_bitwriter_bulk, target),
        "bitstring_concat": _time_op(_op_bitstring_concat, target),
        "transcript_append": _time_op(_op_transcript_append, target),
        "pairwise_batch": dict(
            _time_op(_op_pairwise_batch, target), backend=kernel_backend
        ),
        "pairwise_batch_scalar": dict(
            _time_op(_op_pairwise_batch_scalar, target), backend="scalar"
        ),
        "bucket_assign": dict(
            _time_op(_op_bucket_assign, target), backend=kernel_backend
        ),
        "multiparty_round": dict(
            _time_op(_op_multiparty_round, target), backend=kernel_backend
        ),
        "plan_resume": _plan_resume_micro(quick),
        "serve_throughput": _serve_throughput_micro(quick),
        "serve_throughput_multiround": _serve_throughput_multiround_micro(
            quick
        ),
        "serve_socket_throughput": _serve_socket_throughput_micro(quick),
        "serve_cold_cache": _serve_cold_cache_micro(quick),
    }

    report: Dict[str, Any] = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "suite": SUITE_NAME,
        "created_unix": time.time(),
        "host": _host_facts(),
        "config": {"workers": workers, "quick": quick},
        "micro": micro,
        "e1_trial_loop": _e1_trial_loop(workers, trials),
    }

    problems = validate_bench_report(report)
    if problems:
        raise ValueError(
            "benchmark report failed its own schema: " + "; ".join(problems)
        )

    if out_path is not None:
        path = Path(out_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return report
