"""Deterministic parallel trial executor.

Every experiment in this reproduction aggregates Monte Carlo trials over
seeds; the protocols themselves are deterministic functions of their seed,
which makes the trial loop embarrassingly parallel *and* lets parallelism
be bit-exact: run the same pure ``fn`` on the same per-trial seeds and the
results are identical whether the trials execute serially, on threads, or
across processes.  This module is the one place that loop lives:

* :func:`derive_seed` -- the per-trial seed schedule.  SHA-256 of
  ``(root_seed, trial_index)``, so trial seeds are collision-free and
  independent of execution order, chunking, and worker count.
* :func:`run_trials` -- drive ``fn(seed)`` over many trials with chunked
  dispatch to a process pool (or thread pool, or a plain serial loop),
  capturing per-trial wall time and failures, and returning outcomes in
  trial order regardless of completion order.

Determinism contract: ``fn`` must be a *pure function of its seed
argument* -- no reads of mutable globals, no ambient RNG (module-level
``random``), no dependence on ``hash()`` of strings (PYTHONHASHSEED).
Every protocol in this library satisfies this (seeded
:class:`~repro.util.rng.SharedRandomness` everywhere); the guarantee is
exercised by ``tests/test_perf_executor.py``, which checks serial and
4-process runs produce identical transcripts and counters.

Process dispatch requires ``fn`` (and its return values) to be picklable:
module-level functions, ``functools.partial`` over module-level functions,
and protocol instances all qualify; closures do not.  ``run_trials``
detects unpicklable functions up front and falls back to the serial path
(recorded in :attr:`TrialRun.fallback_reason`) rather than failing -- the
results are the same either way, only the wall clock differs.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import os
import pickle
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "derive_seed",
    "resolve_workers",
    "TrialOutcome",
    "TrialRun",
    "TrialFailure",
    "run_trials",
    "WORKERS_ENV_VAR",
]

#: Environment variable consulted when ``workers`` is not given explicitly.
WORKERS_ENV_VAR = "REPRO_WORKERS"


def derive_seed(root_seed: int, trial_index: int) -> int:
    """The seed for trial ``trial_index`` of a run rooted at ``root_seed``.

    SHA-256 of the pair, truncated to 63 bits: collision-free for all
    practical purposes (birthday bound ``~ trials^2 / 2^64``), stable
    across processes and Python versions, and independent of how trials
    are chunked across workers.

    >>> derive_seed(0, 0) == derive_seed(0, 0)
    True
    >>> derive_seed(0, 1) != derive_seed(1, 0)
    True
    """
    digest = hashlib.sha256(
        f"repro.perf.trial:{root_seed}:{trial_index}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve a worker count: explicit argument > ``$REPRO_WORKERS`` > 1.

    The default is serial (1): trials are usually short and this library
    runs everywhere from CI containers to laptops, so parallelism is opt-in
    via the knob rather than silently grabbing every core.
    """
    if workers is not None:
        return max(1, int(workers))
    env = os.environ.get(WORKERS_ENV_VAR, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"${WORKERS_ENV_VAR} must be an integer, got {env!r}"
            ) from None
    return 1


@dataclass(frozen=True)
class TrialOutcome:
    """One trial's result.

    :param index: the trial's position in the run (0-based).
    :param seed: the seed the trial function received.
    :param value: the function's return value (``None`` if it raised).
    :param error: formatted traceback when the trial raised, else ``None``.
    :param duration_s: the trial's own wall time (excludes dispatch).
    :param exception: the raised exception object, when it survives a
        pickle round-trip (so the field behaves identically in serial and
        process runs); ``None`` otherwise -- ``error`` always has the
        traceback text.
    """

    index: int
    seed: int
    value: Any
    error: Optional[str]
    duration_s: float
    exception: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        """True when the trial completed without raising."""
        return self.error is None


class TrialFailure(RuntimeError):
    """Raised by :meth:`TrialRun.values` when trials failed under
    ``strict=True``; carries the failing outcomes."""

    def __init__(self, failures: Sequence[TrialOutcome]) -> None:
        self.failures = list(failures)
        preview = self.failures[0].error or ""
        last_line = preview.strip().splitlines()[-1] if preview else "?"
        super().__init__(
            f"{len(self.failures)} of the trials failed; first error: {last_line}"
        )


@dataclass
class TrialRun:
    """The full, ordered record of one :func:`run_trials` call."""

    outcomes: List[TrialOutcome]
    wall_time_s: float
    workers: int
    chunk_size: int
    executor: str
    fallback_reason: Optional[str] = None
    root_seed: Optional[int] = None
    labels: dict = field(default_factory=dict)

    @property
    def trials(self) -> int:
        """Number of trials executed."""
        return len(self.outcomes)

    @property
    def failures(self) -> List[TrialOutcome]:
        """The outcomes that raised, in trial order."""
        return [outcome for outcome in self.outcomes if not outcome.ok]

    @property
    def trial_time_s(self) -> float:
        """Sum of per-trial durations (CPU-ish time, vs. wall time)."""
        return sum(outcome.duration_s for outcome in self.outcomes)

    def values(self, *, strict: bool = True) -> List[Any]:
        """The trial return values in trial order.

        :param strict: when True (default), re-raise the first failed
            trial's original exception (when it was transportable), or a
            :class:`TrialFailure` otherwise; when False, failed trials
            contribute ``None``.
        """
        if strict:
            failed = self.failures
            if failed:
                if failed[0].exception is not None:
                    raise failed[0].exception
                raise TrialFailure(failed)
        return [outcome.value for outcome in self.outcomes]


def _transportable(exc: BaseException) -> Optional[BaseException]:
    """The exception if it survives a pickle round-trip, else ``None``.

    Checked in every execution mode (not just process dispatch) so an
    outcome's ``exception`` field does not depend on how the trial was
    scheduled.
    """
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:  # noqa: BLE001 - any transport failure disqualifies
        return None


def _timed_call(
    fn: Callable[[int], Any], index: int, seed: int
) -> TrialOutcome:
    start = time.perf_counter()
    try:
        value = fn(seed)
        error = None
        exception = None
    except Exception as exc:  # noqa: BLE001 - captured and reported per trial
        value = None
        error = traceback.format_exc()
        exception = _transportable(exc)
    return TrialOutcome(
        index=index,
        seed=seed,
        value=value,
        error=error,
        duration_s=time.perf_counter() - start,
        exception=exception,
    )


def _run_chunk(
    fn: Callable[[int], Any], chunk: Sequence[Tuple[int, int]]
) -> List[TrialOutcome]:
    """Worker entry point: run one chunk of ``(index, seed)`` pairs."""
    return [_timed_call(fn, index, seed) for index, seed in chunk]


def _picklable(obj: Any) -> Optional[str]:
    """None if ``obj`` pickles, else a one-line reason."""
    try:
        pickle.dumps(obj)
        return None
    except Exception as exc:  # noqa: BLE001 - any pickle failure counts
        return f"{type(exc).__name__}: {exc}"


def _chunked(
    pairs: Sequence[Tuple[int, int]], chunk_size: int
) -> List[Sequence[Tuple[int, int]]]:
    return [
        pairs[start : start + chunk_size]
        for start in range(0, len(pairs), chunk_size)
    ]


def run_trials(
    fn: Callable[[int], Any],
    seeds: Union[int, Sequence[int]],
    *,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    root_seed: int = 0,
    executor: str = "process",
) -> TrialRun:
    """Run ``fn`` over many trial seeds, serially or in parallel.

    :param fn: the trial function, called as ``fn(seed)``.  Must be pure in
        its seed (see the module docstring); must be picklable for process
        dispatch.
    :param seeds: either an explicit sequence of seeds (used verbatim, in
        order), or an integer trial count -- in which case trial ``i`` runs
        with ``derive_seed(root_seed, i)``.
    :param workers: worker count; ``None`` reads ``$REPRO_WORKERS`` and
        defaults to 1 (serial).
    :param chunk_size: trials per dispatched task.  Default: enough to give
        each worker ~4 chunks (amortizes dispatch overhead while keeping
        the pool load-balanced).
    :param root_seed: root of the derived seed schedule (ignored when
        ``seeds`` is an explicit sequence).
    :param executor: ``"process"`` (default), ``"thread"``, or ``"serial"``.
        Results are identical in all three; threads exist for trial
        functions that cannot pickle, ``serial`` forces the in-process loop.
    :returns: a :class:`TrialRun`; ``run.values()`` gives the per-trial
        results in trial order.
    """
    if executor not in ("process", "thread", "serial"):
        raise ValueError(f"unknown executor {executor!r}")
    if isinstance(seeds, int):
        if seeds < 0:
            raise ValueError(f"trial count must be >= 0, got {seeds}")
        seed_list = [derive_seed(root_seed, index) for index in range(seeds)]
        recorded_root: Optional[int] = root_seed
    else:
        seed_list = [int(seed) for seed in seeds]
        recorded_root = None

    worker_count = resolve_workers(workers)
    pairs = list(enumerate(seed_list))
    fallback_reason: Optional[str] = None

    mode = executor
    if mode == "serial" or worker_count <= 1 or len(pairs) <= 1:
        mode = "serial"
    elif mode == "process":
        reason = _picklable(fn)
        if reason is not None:
            mode = "thread"
            fallback_reason = f"fn not picklable ({reason}); using threads"

    if chunk_size is None:
        chunk_size = max(1, -(-len(pairs) // (worker_count * 4)))

    start = time.perf_counter()
    if mode == "serial":
        outcomes = _run_chunk(fn, pairs)
        effective_workers = 1
    else:
        pool_cls = (
            concurrent.futures.ProcessPoolExecutor
            if mode == "process"
            else concurrent.futures.ThreadPoolExecutor
        )
        effective_workers = min(worker_count, max(1, len(pairs)))
        outcomes = []
        with pool_cls(max_workers=effective_workers) as pool:
            futures = [
                pool.submit(_run_chunk, fn, chunk)
                for chunk in _chunked(pairs, chunk_size)
            ]
            for future in futures:
                outcomes.extend(future.result())
        # Chunks were submitted in order, but make the ordering contract
        # explicit: outcomes are always sorted by trial index.
        outcomes.sort(key=lambda outcome: outcome.index)
    wall = time.perf_counter() - start

    return TrialRun(
        outcomes=outcomes,
        wall_time_s=wall,
        workers=effective_workers,
        chunk_size=chunk_size,
        executor=mode,
        fallback_reason=fallback_reason,
        root_seed=recorded_root,
    )
