"""Performance subsystem: deterministic parallel execution + hot caches.

The simulator's protocols are deterministic functions of their seeds, so
performance work here never trades correctness: the same seeds produce the
same transcripts and counters no matter how the trials are scheduled or
which caches are warm.  Three pieces:

* :mod:`repro.perf.executor` -- ``run_trials``/``derive_seed``, the
  deterministic trial executor (serial, threads, or a chunked process
  pool; per-trial timing and failure capture; results in trial order).
* :mod:`repro.perf.cache` -- control surface over the hot-path memo caches
  (prime search, hash-parameter setup, stream-seed derivation, canonical
  serialization).
* :mod:`repro.perf.bench` / :mod:`repro.perf.schema` -- the core
  microbenchmark suite and the versioned ``BENCH_core.json`` it emits,
  the repo's perf trajectory across PRs.

Quick start::

    from repro.perf import run_trials

    run = run_trials(my_trial_fn, 1000, workers=4)
    results = run.values()          # in trial order, identical to serial

The worker count can also come from the environment (``REPRO_WORKERS``),
which is how the benchmark suite and ``measure_protocol`` expose the knob
without threading it through every call site.
"""

from repro.perf.cache import (
    clear_hot_caches,
    hot_cache_names,
    hot_cache_stats,
    hot_caches_disabled,
)
from repro.perf.executor import (
    WORKERS_ENV_VAR,
    TrialFailure,
    TrialOutcome,
    TrialRun,
    derive_seed,
    resolve_workers,
    run_trials,
)
from repro.perf.schema import BENCH_SCHEMA_VERSION, validate_bench_report

__all__ = [
    "derive_seed",
    "run_trials",
    "resolve_workers",
    "TrialOutcome",
    "TrialRun",
    "TrialFailure",
    "WORKERS_ENV_VAR",
    "clear_hot_caches",
    "hot_caches_disabled",
    "hot_cache_stats",
    "hot_cache_names",
    "BENCH_SCHEMA_VERSION",
    "validate_bench_report",
]
