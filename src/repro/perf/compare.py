"""The bench regression gate: diff two ``BENCH_core.json`` reports.

``repro bench --compare OLD.json`` runs (or loads) a fresh report and
compares its microbenchmark throughputs against a committed baseline.  A
micro *regresses* when its new ``ops_per_s`` falls more than the tolerance
below the old value; a micro present in the baseline but missing from the
new report regresses by definition (renaming a micro does not get to erase
its history).  The E1 trial loop is gated on correctness, not speed: the
new report must claim ``bit_identical`` and -- when both reports ran the
same loop configuration -- reproduce the same ``counters_sha256``
(identical trial counters across commits is the wire-format invariant the
whole perf effort rides on).

Micros that record a kernel ``backend`` (schema v3) are only compared when
both reports used the same backend -- a scalar run on a numpy-less host
against a numpy baseline is a configuration difference, not a regression.

Throughput comparisons are only meaningful between runs on the same
machine; the tolerance band exists because even same-machine runs wobble.
CI uses a generous band (``--tolerance 25``) for its ``--quick`` smoke
run; local full runs can afford a tighter one (default 10).
"""

from __future__ import annotations

from typing import Any, Dict, List

__all__ = ["compare_reports", "format_comparison", "DEFAULT_TOLERANCE_PCT"]

#: Default allowed per-micro slowdown, percent.
DEFAULT_TOLERANCE_PCT = 10.0

#: E1 fields that identify "the same loop" for counters comparison.
_E1_IDENTITY = ("trials", "k", "rounds")


def compare_reports(
    old: Dict[str, Any],
    new: Dict[str, Any],
    *,
    tolerance_pct: float = DEFAULT_TOLERANCE_PCT,
) -> Dict[str, Any]:
    """Compare two parsed bench reports; the old one is the baseline.

    :param old: the baseline report (e.g. the committed ``BENCH_core.json``).
    :param new: the candidate report.
    :param tolerance_pct: allowed slowdown per micro, in percent of the old
        throughput (``new_ops >= old_ops * (1 - tolerance_pct / 100)``
        passes).
    :returns: a JSON-serializable result::

        {
          "tolerance_pct": 10.0,
          "ok": false,
          "micro": [{"name", "old_ops_per_s", "new_ops_per_s",
                     "ratio", "status"}, ...],   # status: ok|improved|
                                                 # regressed|missing|new
          "e1": [{"check", "status", "detail"}, ...],
          "regressions": ["<human-readable>", ...],
        }

    :raises ValueError: if ``tolerance_pct`` is negative or >= 100.
    """
    if not 0 <= tolerance_pct < 100:
        raise ValueError(
            f"tolerance_pct must be in [0, 100), got {tolerance_pct}"
        )
    floor = 1.0 - tolerance_pct / 100.0
    regressions: List[str] = []
    micro_rows: List[Dict[str, Any]] = []

    old_micro = old.get("micro") or {}
    new_micro = new.get("micro") or {}
    for name in sorted(set(old_micro) | set(new_micro)):
        old_entry = old_micro.get(name)
        new_entry = new_micro.get(name)
        row: Dict[str, Any] = {
            "name": name,
            "old_ops_per_s": old_entry["ops_per_s"] if old_entry else None,
            "new_ops_per_s": new_entry["ops_per_s"] if new_entry else None,
            "ratio": None,
        }
        if old_entry is None:
            row["status"] = "new"
        elif new_entry is None:
            row["status"] = "missing"
            regressions.append(
                f"micro.{name}: present in baseline but missing from the "
                f"new report"
            )
        elif old_entry.get("backend") != new_entry.get("backend"):
            # Same rule as the counters hash: only compare like with like.
            # A scalar-backend run (no numpy on the host) against a
            # numpy-backend baseline is a backend diff, not a regression.
            row["status"] = "skipped"
            row["detail"] = (
                f"backends differ: {old_entry.get('backend')!r} -> "
                f"{new_entry.get('backend')!r}"
            )
        else:
            old_ops = float(old_entry["ops_per_s"])
            new_ops = float(new_entry["ops_per_s"])
            ratio = new_ops / old_ops if old_ops > 0 else float("inf")
            row["ratio"] = ratio
            if new_ops < old_ops * floor:
                row["status"] = "regressed"
                regressions.append(
                    f"micro.{name}: {new_ops:.2f} ops/s is "
                    f"{(1 - ratio) * 100:.1f}% below baseline "
                    f"{old_ops:.2f} ops/s (tolerance {tolerance_pct:.0f}%)"
                )
            else:
                row["status"] = "improved" if ratio > 1.0 else "ok"
        micro_rows.append(row)

    e1_rows: List[Dict[str, Any]] = []
    old_e1 = old.get("e1_trial_loop") or {}
    new_e1 = new.get("e1_trial_loop") or {}

    bit_identical = new_e1.get("bit_identical")
    if bit_identical is True:
        e1_rows.append(
            {"check": "bit_identical", "status": "ok", "detail": "true"}
        )
    else:
        e1_rows.append(
            {
                "check": "bit_identical",
                "status": "regressed",
                "detail": repr(bit_identical),
            }
        )
        regressions.append(
            "e1_trial_loop.bit_identical: new report does not certify "
            "serial/cached/parallel counter identity"
        )

    same_loop = all(
        old_e1.get(field) == new_e1.get(field) for field in _E1_IDENTITY
    ) and all(field in old_e1 and field in new_e1 for field in _E1_IDENTITY)
    if not same_loop:
        e1_rows.append(
            {
                "check": "counters_sha256",
                "status": "skipped",
                "detail": "loop configs differ "
                + repr(
                    {
                        field: (old_e1.get(field), new_e1.get(field))
                        for field in _E1_IDENTITY
                    }
                ),
            }
        )
    elif old_e1.get("counters_sha256") == new_e1.get("counters_sha256"):
        e1_rows.append(
            {
                "check": "counters_sha256",
                "status": "ok",
                "detail": str(new_e1.get("counters_sha256")),
            }
        )
    else:
        e1_rows.append(
            {
                "check": "counters_sha256",
                "status": "regressed",
                "detail": f"{old_e1.get('counters_sha256')} -> "
                f"{new_e1.get('counters_sha256')}",
            }
        )
        regressions.append(
            "e1_trial_loop.counters_sha256: trial counters changed for an "
            "identical loop config -- the wire format drifted"
        )

    return {
        "tolerance_pct": tolerance_pct,
        "ok": not regressions,
        "micro": micro_rows,
        "e1": e1_rows,
        "regressions": regressions,
    }


def format_comparison(result: Dict[str, Any]) -> str:
    """Render a :func:`compare_reports` result as an aligned text table."""
    lines: List[str] = []
    header = f"{'micro':<20} {'old ops/s':>14} {'new ops/s':>14} {'ratio':>8}  status"
    lines.append(header)
    lines.append("-" * len(header))
    for row in result["micro"]:
        old_ops = row["old_ops_per_s"]
        new_ops = row["new_ops_per_s"]
        ratio = row["ratio"]
        old_cell = f"{old_ops:>14.2f}" if old_ops is not None else f"{'-':>14}"
        new_cell = f"{new_ops:>14.2f}" if new_ops is not None else f"{'-':>14}"
        ratio_cell = f"{ratio:>8.3f}" if ratio is not None else f"{'-':>8}"
        lines.append(
            f"{row['name']:<20} {old_cell} {new_cell} {ratio_cell}  "
            f"{row['status']}"
        )
    for row in result["e1"]:
        lines.append(f"e1.{row['check']}: {row['status']} ({row['detail']})")
    if result["ok"]:
        lines.append(
            f"PASS: no regressions beyond {result['tolerance_pct']:.0f}% tolerance"
        )
    else:
        lines.append(f"FAIL: {len(result['regressions'])} regression(s)")
        for reason in result["regressions"]:
            lines.append(f"  - {reason}")
    return "\n".join(lines)
