"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo`` -- run the headline protocol on a random instance and print the
  cost report.
* ``intersect FILE_A FILE_B`` -- intersect two files of integers (one id
  per line), printing the result and the exact wire cost the exchange
  would have taken.
* ``tradeoff`` -- print the measured communication/round tradeoff curve
  (Theorem 1.1) for a chosen ``k`` and universe.
* ``protocols`` -- list every implemented protocol with its paper
  reference and guarantee.
* ``bench`` -- run the repro.perf core microbenchmark suite and write
  ``BENCH_core.json`` (or validate an existing report against the schema).
* ``trace`` -- run a traced workload, write a schema-validated JSONL event
  trace, print the per-round/per-sender rollup, and check the run against
  the paper's bounds (or validate an existing trace with ``--validate``).
* ``faults`` -- sweep fault models x rates x protocols under the
  verification-driven retry loop (``repro.faults``) and print a
  survival/degradation table.  Compiled through the declarative plan
  layer, so an active ``REPRO_PLAN_CACHE`` makes repeated sweeps
  incremental.
* ``plan`` -- the declarative sweep driver (``repro.plans``): ``plan
  show`` compiles a grid and prints its shards; ``plan run`` executes it
  with content-addressed shard caching and bit-identical resume.
* ``serve`` -- the asyncio intersection server (``repro.serve``):
  ``serve run`` boots it on a socket; ``serve load`` replays a seeded
  traffic mix against an in-process server and prints the capacity report
  (p50/p99/p999, sessions/sec, coalesced-lane occupancy, shed count);
  ``serve mix`` writes a mix-document template to edit.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from repro.core.api import compute_intersection
from repro.core.tradeoff import communication_bound, optimal_rounds
from repro.core.tree_protocol import TreeProtocol

__all__ = ["main", "build_parser"]

_PROTOCOL_CATALOG = [
    ("trivial-exchange", "Section 1, D^(1)", "deterministic, O(k log(n/k)) bits, 1-2 messages"),
    ("one-round-hashing", "Section 1, R^(1)", "O(k log k) bits, 2 messages, error 1/k^C"),
    ("bucket-verify", "Section 1 toy protocol", "O(k log log k) expected bits, O(1) iterations"),
    ("basic-intersection", "Lemma 3.3", "4 messages, O(i m log m) bits, one-sided supersets"),
    ("equality", "Fact 3.5", "2 messages, b+1 bits, one-sided error 2^-b"),
    ("amortized-equality", "Theorem 3.2 (FKNN interface)", "EQ^n_k: O(k) expected bits, <= O(sqrt k) rounds"),
    ("sqrt-k", "Theorem 3.1", "O(k) expected bits within O(sqrt k) rounds"),
    ("verification-tree", "Theorem 1.1 / 3.6 (MAIN)", "O(k log^(r) k) expected bits, 6r rounds, 1 - 1/poly(k)"),
    ("amplified-intersection", "Section 4", "success 1 - 2^-k, expected O(1) repetitions"),
    ("private-coin-intersection", "Section 3.1", "private coins, +O(log k + log log n) bits"),
    ("halving-disjointness", "[HW07] baseline", "DISJ: O(k) bits, O(log k) rounds"),
    ("minhash-sketch", "[PSW14] comparator", "1-way APPROXIMATE |S n T|, t hashes"),
    ("coordinator-multiparty", "Corollary 4.1", "m players, O(k log^(r) k) avg bits/player"),
    ("binary-tree-multiparty", "Corollary 4.2", "m players, worst-case per-player bounded"),
    ("equality-via-intersection", "Fact 2.1", "EQ^n_k at the INT_k cost, O(log* k) rounds"),
]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Communication-optimal set intersection (PODC 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run the tree protocol on a random instance")
    demo.add_argument("--k", type=int, default=1000, help="set-size bound k")
    demo.add_argument(
        "--log-universe", type=int, default=32, help="universe is 2^THIS"
    )
    demo.add_argument("--overlap", type=float, default=0.3, help="overlap fraction")
    demo.add_argument("--rounds", type=int, default=None, help="round parameter r")
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument(
        "--model", choices=("shared", "private"), default="shared"
    )
    demo.add_argument("--amplified", action="store_true")

    intersect = sub.add_parser(
        "intersect", help="intersect two files of integer ids (one per line)"
    )
    intersect.add_argument("file_a")
    intersect.add_argument("file_b")
    intersect.add_argument("--rounds", type=int, default=None)
    intersect.add_argument("--seed", type=int, default=0)
    intersect.add_argument("--quiet", action="store_true", help="ids only")

    tradeoff = sub.add_parser(
        "tradeoff", help="print the measured tradeoff curve for a given k"
    )
    tradeoff.add_argument("--k", type=int, default=1024)
    tradeoff.add_argument("--log-universe", type=int, default=32)
    tradeoff.add_argument("--seeds", type=int, default=3)

    sub.add_parser("protocols", help="list implemented protocols")

    conformance = sub.add_parser(
        "conformance",
        help="run the protocol contract checks (repro.testing) on a protocol",
    )
    conformance.add_argument(
        "--protocol",
        choices=("tree", "one-round", "trivial", "bucket", "sqrt-k", "amplified"),
        default="tree",
    )
    conformance.add_argument("--k", type=int, default=64)
    conformance.add_argument("--log-universe", type=int, default=18)
    conformance.add_argument("--failure-budget", type=int, default=1)

    exact = sub.add_parser(
        "exact-cc",
        help="exhaustive-search ground truth for tiny communication problems",
    )
    exact.add_argument(
        "--problem", choices=("eq", "disj", "int", "gt"), default="disj"
    )
    exact.add_argument("--size", type=int, default=2, help="universe / string count")
    exact.add_argument(
        "--max-set-size", type=int, default=2, help="k (disj/int only)"
    )

    render = sub.add_parser(
        "render",
        help="run the tree protocol on a random instance and draw its "
        "message sequence chart",
    )
    render.add_argument("--k", type=int, default=256)
    render.add_argument("--log-universe", type=int, default=24)
    render.add_argument("--rounds", type=int, default=None)
    render.add_argument("--seed", type=int, default=0)

    bench = sub.add_parser(
        "bench",
        help="run the perf core benchmarks and write BENCH_core.json",
    )
    bench.add_argument(
        "--workers",
        type=int,
        default=None,
        help="trial parallelism for the e1 loop (default: $REPRO_WORKERS or 4)",
    )
    bench.add_argument(
        "--out", default="BENCH_core.json", help="output JSON path"
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="short calibration + few trials (CI smoke; numbers are noisy)",
    )
    bench.add_argument(
        "--trials", type=int, default=None, help="e1 trial-loop trial count"
    )
    bench.add_argument(
        "--validate",
        metavar="PATH",
        default=None,
        help="validate an existing report against the schema instead of running",
    )
    bench.add_argument(
        "--compare",
        metavar="OLD_JSON",
        default=None,
        help="regression gate: compare the fresh report against this "
        "baseline report and exit nonzero on regression",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed per-micro slowdown for --compare, percent "
        "(default 10)",
    )
    bench.add_argument(
        "--report",
        metavar="NEW_JSON",
        default=None,
        help="with --compare: load the new-side report from this file "
        "instead of running the benchmarks",
    )
    bench.add_argument(
        "--compare-out",
        metavar="PATH",
        default=None,
        help="with --compare: also write the comparison result as JSON",
    )

    trace = sub.add_parser(
        "trace",
        help="run a traced tree-protocol workload, write a JSONL event "
        "trace, and check it against the paper's bounds",
    )
    trace.add_argument("--k", type=int, default=256, help="set-size bound k")
    trace.add_argument(
        "--log-universe", type=int, default=24, help="universe is 2^THIS"
    )
    trace.add_argument(
        "--rounds", type=int, default=None, help="round parameter r (default log* k)"
    )
    trace.add_argument("--overlap", type=float, default=0.3, help="overlap fraction")
    trace.add_argument("--seed", type=int, default=0, help="first trial seed")
    trace.add_argument("--trials", type=int, default=1, help="number of traced runs")
    trace.add_argument(
        "--out", default="trace.jsonl", help="JSONL trace output path"
    )
    trace.add_argument(
        "--no-check",
        action="store_true",
        help="skip the prediction checker (write + validate + rollup only)",
    )
    trace.add_argument(
        "--validate",
        metavar="PATH",
        default=None,
        help="validate an existing JSONL trace against the event schema "
        "instead of running",
    )

    faults = sub.add_parser(
        "faults",
        help="sweep fault models x rates x protocols under the "
        "verification-driven retry loop; print a survival table",
    )
    faults.add_argument("--k", type=int, default=64, help="set-size bound k")
    faults.add_argument(
        "--log-universe", type=int, default=16, help="universe is 2^THIS"
    )
    faults.add_argument(
        "--trials", type=int, default=100, help="trials per (protocol, model, rate) cell"
    )
    faults.add_argument("--seed", type=int, default=0, help="sweep master seed")
    faults.add_argument(
        "--overlap", type=float, default=0.5, help="overlap fraction"
    )
    faults.add_argument(
        "--rates",
        default="0.01,0.05,0.2",
        help="comma-separated per-message fault probabilities",
    )
    faults.add_argument(
        "--models",
        default="bitflip",
        help="comma-separated channel models "
        "(bitflip, truncate, drop, duplicate)",
    )
    faults.add_argument(
        "--protocols",
        default="bucket,amplified",
        help="comma-separated protocols "
        "(bucket, basic, tree, amplified, one-round, trivial)",
    )
    faults.add_argument(
        "--max-attempts",
        type=int,
        default=5,
        help="retry budget per trial before degrading",
    )
    faults.add_argument(
        "--attempt-bit-budget",
        type=int,
        default=None,
        help="per-attempt communication cutoff in bits (the retry timeout)",
    )
    faults.add_argument(
        "--adaptive-budget",
        action="store_true",
        help="scale later attempts' bit budgets with observed fault "
        "pressure instead of re-using the static cutoff",
    )
    faults.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shard parallelism (default: $REPRO_WORKERS or serial)",
    )
    faults.add_argument(
        "--multiparty",
        action="store_true",
        help="sweep the m-player protocols under crash churn instead: "
        "rates become per-player whole-run crash probabilities, "
        "--protocols defaults to coordinator,binary-tree, --models to "
        "churn, and --max-attempts (default 8 here) bounds the recovery "
        "layer's BSP attempts",
    )
    faults.add_argument(
        "--players",
        default="17",
        help="comma-separated player counts m (multiparty mode only)",
    )
    faults.add_argument(
        "--common",
        type=int,
        default=None,
        help="planted common-core size per multiparty instance "
        "(default max(1, k//8))",
    )
    faults.add_argument(
        "--table-out",
        metavar="PATH",
        default=None,
        help="also write the survival table (cells + cache stats) as JSON",
    )

    plan = sub.add_parser(
        "plan",
        help="compile and run declarative experiment plans "
        "(content-addressed shard cache, bit-identical resume)",
    )
    plan_sub = plan.add_subparsers(dest="plan_command", required=True)
    for name, description in (
        ("show", "compile a plan and print its cells and shards"),
        ("run", "execute a plan (cache-aware, resumable)"),
    ):
        plan_cmd = plan_sub.add_parser(name, help=description)
        plan_cmd.add_argument(
            "--file",
            default=None,
            help="JSON plan file (repro.plans.plan_to_dict form); "
            "overrides the inline grid flags below",
        )
        plan_cmd.add_argument("--name", default="cli", help="plan name")
        plan_cmd.add_argument(
            "--analysis", choices=("cost", "survival"), default="cost"
        )
        plan_cmd.add_argument(
            "--protocols",
            default="bucket",
            help="comma-separated protocol registry names "
            "(bucket, basic, tree, amplified, one-round, trivial, sqrt-k)",
        )
        plan_cmd.add_argument("--k", type=int, default=64)
        plan_cmd.add_argument("--log-universe", type=int, default=16)
        plan_cmd.add_argument("--overlap", type=float, default=0.5)
        plan_cmd.add_argument(
            "--distribution",
            choices=("uniform", "clustered", "zipf", "arithmetic"),
            default="uniform",
        )
        plan_cmd.add_argument("--trials", type=int, default=16)
        plan_cmd.add_argument("--seed", type=int, default=0)
        plan_cmd.add_argument("--shard-size", type=int, default=32)
        plan_cmd.add_argument(
            "--fault-specs",
            default=None,
            help="comma-separated fault specs for survival analysis "
            '(e.g. "bitflip@0.05,drop@0.1")',
        )
        plan_cmd.add_argument("--max-attempts", type=int, default=5)
        plan_cmd.add_argument("--attempt-bit-budget", type=int, default=None)
        plan_cmd.add_argument("--adaptive-budget", action="store_true")
        if name == "run":
            plan_cmd.add_argument(
                "--workers",
                type=int,
                default=None,
                help="shard parallelism (default: $REPRO_WORKERS or serial)",
            )
            plan_cmd.add_argument(
                "--executor",
                choices=("process", "thread", "serial"),
                default="process",
            )
            plan_cmd.add_argument(
                "--cache",
                default=None,
                help="shard-cache directory (overrides $REPRO_PLAN_CACHE; "
                '"0" disables caching for this run)',
            )
            plan_cmd.add_argument(
                "--halt-after",
                type=int,
                default=None,
                help="stop after N shards execute (deterministic kill "
                "point for resume testing); exits 3",
            )
            plan_cmd.add_argument(
                "--out",
                default=None,
                help="write the deterministic aggregate document (JSON) "
                "here -- byte-identical across resumes",
            )
            plan_cmd.add_argument(
                "--stats-out",
                default=None,
                help="write cache/scheduler statistics (JSON) here",
            )

    serve = sub.add_parser(
        "serve",
        help="the asyncio intersection server: run it, load-test it, "
        "or write a traffic-mix template",
    )
    serve_sub = serve.add_subparsers(dest="serve_command", required=True)

    serve_run = serve_sub.add_parser(
        "run", help="boot the server and serve until interrupted"
    )
    serve_run.add_argument("--host", default="127.0.0.1")
    serve_run.add_argument(
        "--port", type=int, default=0, help="0 picks a free port"
    )
    serve_run.add_argument(
        "--transport",
        choices=("tcp", "uds"),
        default="tcp",
        help="listener socket family; both carry the identical wire "
        "protocol and typed-error taxonomy",
    )
    serve_run.add_argument(
        "--uds",
        metavar="PATH",
        default=None,
        help="Unix-domain socket path (required with --transport uds)",
    )
    serve_run.add_argument(
        "--master-seed",
        type=int,
        default=0,
        help="seed-lineage root for sessions opened without a seed",
    )

    serve_load = serve_sub.add_parser(
        "load",
        help="replay a seeded traffic mix against an in-process server "
        "and print the capacity report",
    )
    serve_load.add_argument(
        "--mix",
        metavar="FILE",
        default=None,
        help="JSON mix document (see 'serve mix'); overrides the inline "
        "mix flags below",
    )
    serve_load.add_argument("--seed", type=int, default=0, help="mix seed")
    serve_load.add_argument("--sessions", type=int, default=32)
    serve_load.add_argument("--ops", type=int, default=16, help="ops per session")
    serve_load.add_argument(
        "--log-universe", type=int, default=32, help="universe is 2^THIS"
    )
    serve_load.add_argument(
        "--set-sizes",
        default="64",
        help="comma-separated k values, assigned round-robin to sessions",
    )
    serve_load.add_argument("--overlap", type=float, default=0.3)
    serve_load.add_argument(
        "--rounds",
        type=int,
        default=1,
        help="session round budget r: 1 is the one-round coalescible "
        "shape (default), >= 2 the multi-round verification tree, "
        "0 means the optimal log* k",
    )
    serve_load.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="fault-spec string (name@rate+...:seed=N) applied to every "
        "session: operations run the verification-driven retry loop and "
        "the report prices retries and degraded replies",
    )
    serve_load.add_argument(
        "--transport",
        choices=("inproc", "tcp", "uds"),
        default="inproc",
        help="how clients reach the server: inproc (clients share the "
        "server's event loop; the default, and the old behavior) or "
        "tcp/uds (a multi-process client fleet over a real socket)",
    )
    serve_load.add_argument(
        "--fleet",
        type=int,
        default=2,
        help="worker processes for the tcp/uds transports (ignored for "
        "inproc)",
    )
    serve_load.add_argument(
        "--profile",
        choices=("warm", "cold"),
        default="warm",
        help="serving cache profile: warm (hot caches on) or cold (hot "
        "caches disabled in the server for the whole run; wall time "
        "changes, the fingerprint never does)",
    )
    serve_load.add_argument(
        "--uds-path",
        metavar="PATH",
        default=None,
        help="socket path for --transport uds (default: a fresh tempdir)",
    )
    serve_load.add_argument("--connections", type=int, default=8)
    serve_load.add_argument(
        "--pipeline", type=int, default=32, help="in-flight ops per connection"
    )
    serve_load.add_argument(
        "--tick",
        type=float,
        default=0.002,
        help="coalescer scheduling tick, seconds",
    )
    serve_load.add_argument(
        "--max-pending-global", type=int, default=4096
    )
    serve_load.add_argument(
        "--max-pending-per-session", type=int, default=512
    )
    serve_load.add_argument(
        "--no-coalesce",
        action="store_true",
        help="scalar baseline: one engine run per operation",
    )
    serve_load.add_argument(
        "--check-serial",
        action="store_true",
        help="also replay the mix serially and compare aggregate "
        "fingerprints (the determinism gate); exits nonzero on mismatch",
    )
    serve_load.add_argument(
        "--require-no-shed",
        action="store_true",
        help="exit nonzero if any operation was shed",
    )
    serve_load.add_argument(
        "--expect-shed",
        action="store_true",
        help="exit nonzero unless at least one operation was shed AND "
        "every shed got a typed overloaded reply (the backpressure gate)",
    )
    serve_load.add_argument(
        "--expect-degraded",
        action="store_true",
        help="exit nonzero unless at least one operation degraded AND "
        "every degradation was a typed ok/degraded reply with zero "
        "untyped errors (the fault-mix gate)",
    )
    serve_load.add_argument(
        "--hist-out",
        metavar="PATH",
        default=None,
        help="write the latency histogram (JSON) here",
    )
    serve_load.add_argument(
        "--report-out",
        metavar="PATH",
        default=None,
        help="write the full load report (JSON) here",
    )

    serve_mix = serve_sub.add_parser(
        "mix", help="write a traffic-mix document template"
    )
    serve_mix.add_argument(
        "--out", default="mix.json", help="where to write the template"
    )
    return parser


def _cmd_demo(args, out) -> int:
    rng = random.Random(args.seed)
    universe = 1 << args.log_universe
    overlap = int(args.overlap * args.k)
    sample = rng.sample(range(universe), 2 * args.k - overlap)
    alice = frozenset(sample[: args.k])
    bob = frozenset(sample[:overlap] + sample[args.k :])
    result = compute_intersection(
        alice,
        bob,
        universe_size=universe,
        max_set_size=args.k,
        rounds=args.rounds,
        model=args.model,
        amplified=args.amplified,
        seed=args.seed,
    )
    truth = alice & bob
    print(f"protocol      : {result.protocol}", file=out)
    print(f"k             : {args.k}  (universe 2^{args.log_universe})", file=out)
    print(f"|S n T|       : {len(result.intersection)} "
          f"(correct: {result.intersection == truth})", file=out)
    print(f"communication : {result.bits} bits "
          f"({result.bits / args.k:.1f} per element)", file=out)
    print(f"messages      : {result.messages}", file=out)
    return 0


def _read_id_file(path: str) -> frozenset:
    with open(path, "r", encoding="utf-8") as handle:
        return frozenset(
            int(line) for line in handle if line.strip()
        )


def _cmd_intersect(args, out) -> int:
    alice = _read_id_file(args.file_a)
    bob = _read_id_file(args.file_b)
    result = compute_intersection(
        alice, bob, rounds=args.rounds, seed=args.seed
    )
    if not args.quiet:
        print(
            f"# {len(result.intersection)} common ids, {result.bits} bits, "
            f"{result.messages} messages ({result.protocol})",
            file=out,
        )
    for element in sorted(result.intersection):
        print(element, file=out)
    return 0


def _cmd_tradeoff(args, out) -> int:
    universe = 1 << args.log_universe
    k = args.k
    rng = random.Random(1)
    sample = rng.sample(range(universe), 2 * k - k // 2)
    alice = frozenset(sample[:k])
    bob = frozenset(sample[k // 2 :])
    print(f"k = {k}, universe = 2^{args.log_universe}, "
          f"log* k = {optimal_rounds(k)}", file=out)
    print(f"{'r':>3}  {'messages':>8}  {'mean bits':>10}  "
          f"{'theory k*log^(r)k':>18}", file=out)
    for rounds in range(1, optimal_rounds(k) + 1):
        protocol = TreeProtocol(universe, k, rounds=rounds)
        bits = []
        messages = []
        for seed in range(args.seeds):
            outcome = protocol.run(alice, bob, seed=seed)
            bits.append(outcome.total_bits)
            messages.append(outcome.num_messages)
        print(
            f"{rounds:>3}  {max(messages):>8}  "
            f"{sum(bits) / len(bits):>10.0f}  "
            f"{communication_bound(k, rounds):>18.0f}",
            file=out,
        )
    return 0


def _cmd_protocols(out) -> int:
    name_width = max(len(name) for name, _, _ in _PROTOCOL_CATALOG)
    ref_width = max(len(ref) for _, ref, _ in _PROTOCOL_CATALOG)
    for name, ref, guarantee in _PROTOCOL_CATALOG:
        print(f"{name:<{name_width}}  {ref:<{ref_width}}  {guarantee}", file=out)
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "demo":
        return _cmd_demo(args, out)
    if args.command == "intersect":
        return _cmd_intersect(args, out)
    if args.command == "tradeoff":
        return _cmd_tradeoff(args, out)
    if args.command == "protocols":
        return _cmd_protocols(out)
    if args.command == "conformance":
        return _cmd_conformance(args, out)
    if args.command == "exact-cc":
        return _cmd_exact_cc(args, out)
    if args.command == "render":
        return _cmd_render(args, out)
    if args.command == "bench":
        return _cmd_bench(args, out)
    if args.command == "trace":
        return _cmd_trace(args, out)
    if args.command == "faults":
        return _cmd_faults(args, out)
    if args.command == "plan":
        return _cmd_plan(args, out)
    if args.command == "serve":
        return _cmd_serve(args, out)
    raise AssertionError(f"unhandled command {args.command!r}")


def _load_json_report(path: str, out):
    import json

    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except OSError as exc:
        print(f"cannot read {path}: {exc}", file=out)
        return None
    except json.JSONDecodeError as exc:
        print(f"{path}: not valid JSON ({exc})", file=out)
        return None


def _cmd_bench(args, out) -> int:
    import json

    from repro.perf.schema import bench_report_warnings, validate_bench_report

    if args.validate is not None:
        report = _load_json_report(args.validate, out)
        if report is None:
            return 1
        problems = validate_bench_report(report)
        if problems:
            for problem in problems:
                print(f"schema: {problem}", file=out)
            return 1
        for warning in bench_report_warnings(report):
            print(f"warning: {warning}", file=out)
        print(f"{args.validate}: OK (schema v{report['schema_version']})", file=out)
        return 0

    if args.report is not None and args.compare is None:
        print("--report only makes sense together with --compare", file=out)
        return 2
    if args.tolerance is not None and args.compare is None:
        print("--tolerance only makes sense together with --compare", file=out)
        return 2

    if args.report is not None:
        report = _load_json_report(args.report, out)
        if report is None:
            return 1
    else:
        from repro.perf.bench import run_core_benchmarks
        from repro.perf.executor import resolve_workers

        workers = (
            args.workers if args.workers is not None else max(resolve_workers(), 4)
        )
        report = run_core_benchmarks(
            workers=workers,
            quick=args.quick,
            trials=args.trials,
            out_path=args.out,
        )
        loop = report["e1_trial_loop"]
        print(f"wrote {args.out}", file=out)
        print(
            f"e1 loop: {loop['trials']} trials, "
            f"speedup {loop['speedup_vs_serial']:.2f}x vs serial-uncached "
            f"({loop['speedup_cached_only']:.2f}x from caching alone), "
            f"bit_identical={loop['bit_identical']}",
            file=out,
        )
    for warning in bench_report_warnings(report):
        print(f"warning: {warning}", file=out)

    if args.compare is None:
        return 0

    from repro.perf.compare import (
        DEFAULT_TOLERANCE_PCT,
        compare_reports,
        format_comparison,
    )

    baseline = _load_json_report(args.compare, out)
    if baseline is None:
        return 1
    tolerance = (
        args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE_PCT
    )
    try:
        result = compare_reports(baseline, report, tolerance_pct=tolerance)
    except ValueError as exc:
        print(f"compare: {exc}", file=out)
        return 2
    print(format_comparison(result), file=out)
    if args.compare_out is not None:
        with open(args.compare_out, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.compare_out}", file=out)
    return 0 if result["ok"] else 1


def _cmd_trace(args, out) -> int:
    from repro.obs.schema import (
        TRACE_SCHEMA_VERSION,
        load_trace,
        validate_trace_events,
    )

    if args.validate is not None:
        try:
            events = load_trace(args.validate)
        except (OSError, ValueError) as exc:
            print(f"cannot read {args.validate}: {exc}", file=out)
            return 1
        problems = validate_trace_events(events)
        if problems:
            for problem in problems:
                print(f"schema: {problem}", file=out)
            return 1
        print(
            f"{args.validate}: OK ({len(events)} events, "
            f"trace schema v{TRACE_SCHEMA_VERSION})",
            file=out,
        )
        return 0

    from repro.obs import metrics as _metrics
    from repro.obs import state as _obs_state
    from repro.obs.checker import check_runs
    from repro.obs.rollup import rollup_runs
    from repro.obs.trace import JsonlSink, RingBufferSink, Tracer
    from repro.workloads import make_instance

    universe = 1 << args.log_universe
    protocol = TreeProtocol(universe, args.k, rounds=args.rounds)
    # A private tracer for the workload: ring buffer for the in-process
    # rollup plus the JSONL file; whatever tracer the environment installed
    # is restored afterwards.  Metrics reset so the final snapshot covers
    # exactly the traced runs.
    ring = RingBufferSink()
    tracer = Tracer([ring, JsonlSink(args.out)])
    previous = _obs_state.STATE.tracer
    _metrics.reset_metrics()
    _obs_state.STATE.install(tracer)
    try:
        rng = random.Random(args.seed)
        for trial in range(args.trials):
            alice, bob = make_instance(rng, universe, args.k, args.overlap)
            outcome = protocol.run(alice, bob, seed=args.seed + trial)
            if outcome.alice_output != alice & bob:
                print(f"trial {trial}: protocol output INCORRECT", file=out)
                return 1
    finally:
        _obs_state.STATE.install(previous)
        tracer.close()

    events = ring.events()
    if ring.dropped:
        print(
            f"warning: ring buffer dropped {ring.dropped} events; "
            f"rollup below is partial (the JSONL file is complete)",
            file=out,
        )
    problems = validate_trace_events(load_trace(args.out))
    if problems:
        for problem in problems:
            print(f"schema: {problem}", file=out)
        return 1
    print(
        f"wrote {args.out} ({len(events)} events, "
        f"trace schema v{TRACE_SCHEMA_VERSION})",
        file=out,
    )

    runs = rollup_runs(events)
    for index, run in enumerate(runs):
        r = run.params.get("rounds", "?")
        fault_note = ""
        if run.fault_events or run.retry_attempts or run.degraded:
            fault_note = (
                f" [faults={run.fault_events} retries={run.retry_attempts}"
                + (" degraded" if run.degraded else "")
                + "]"
            )
        print(
            f"\nrun {index}: {run.protocol} "
            f"(k={run.params.get('max_set_size')}, r={r}) -- "
            f"{run.total_bits} bits in {run.num_rounds} messages{fault_note}",
            file=out,
        )
        for round_index, bits in enumerate(run.round_bits):
            print(f"  round {round_index:>2}: {bits:>8} bits", file=out)
        for sender in sorted(run.sender_bits):
            print(
                f"  sender {sender}: {run.sender_bits[sender]} bits", file=out
            )

    metrics_snapshot = _metrics.snapshot(include_hotcache=True)
    if metrics_snapshot:
        print("\nmetrics:", file=out)
        for name, entry in metrics_snapshot.items():
            if entry["kind"] == "counter":
                print(f"  {name}: {entry['value']}", file=out)
            elif entry["kind"] == "histogram":
                print(
                    f"  {name}: n={entry['count']} mean={entry['mean']:.1f} "
                    f"min={entry['min']} max={entry['max']}",
                    file=out,
                )
            else:
                print(
                    f"  {name}: hits={entry['hits']} misses={entry['misses']}",
                    file=out,
                )

    if args.no_check:
        return 0
    report = check_runs(runs)
    print("", file=out)
    print(str(report), file=out)
    return 0 if report.passed else 1


def _write_table(path: str, result, out) -> None:
    """Write a sweep's cells + cache stats as a JSON artifact."""
    import json

    document = {
        "plan": result.plan.name,
        "analysis": result.plan.analysis,
        "counters_sha256": result.counters_sha256,
        "cells": result.cells,
        "stats": result.stats(),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nsurvival table written to {path}", file=out)


def _cmd_faults_multiparty(args, out) -> int:
    from repro.faults.models import MODEL_FACTORIES, FaultConfigError
    from repro.plans import Plan, ProtocolSpec, RetrySpec, run_plan
    from repro.plans.registry import MULTIPARTY_PROTOCOLS
    from repro.workloads import MultipartySpec

    universe = 1 << args.log_universe
    multiparty_models = (
        "churn",
        "crash",
        "bitflip",
        "truncate",
        "drop",
        "duplicate",
    )
    # Mode-sensitive defaults: argparse can't vary them per flag, so the
    # two-party defaults are re-read as "unset" here.
    model_names = [m.strip() for m in args.models.split(",") if m.strip()]
    if args.models == "bitflip":
        model_names = ["churn"]
    protocol_names = [p.strip() for p in args.protocols.split(",") if p.strip()]
    if args.protocols == "bucket,amplified":
        protocol_names = ["coordinator", "binary-tree"]
    max_attempts = 8 if args.max_attempts == 5 else args.max_attempts

    try:
        rates = [float(rate) for rate in args.rates.split(",") if rate.strip()]
    except ValueError:
        print(f"bad --rates value {args.rates!r}", file=out)
        return 2
    try:
        players = [
            int(count) for count in args.players.split(",") if count.strip()
        ]
    except ValueError:
        print(f"bad --players value {args.players!r}", file=out)
        return 2
    if not players or any(count < 2 for count in players):
        print(f"--players needs counts >= 2, got {args.players!r}", file=out)
        return 2
    for model_name in model_names:
        if model_name not in multiparty_models:
            print(
                f"unknown multiparty fault model {model_name!r} "
                f"(know: {', '.join(multiparty_models)})",
                file=out,
            )
            return 2
    for protocol_name in protocol_names:
        if protocol_name not in MULTIPARTY_PROTOCOLS:
            print(
                f"unknown multiparty protocol {protocol_name!r} "
                f"(know: {', '.join(sorted(MULTIPARTY_PROTOCOLS))})",
                file=out,
            )
            return 2
    for model_name in model_names:
        for rate in rates:
            try:
                MODEL_FACTORIES[model_name](rate)
            except FaultConfigError as exc:
                print(f"bad rate {rate} for {model_name}: {exc}", file=out)
                return 2
    common = args.common if args.common is not None else max(1, args.k // 8)
    try:
        instances = tuple(
            MultipartySpec(
                universe_size=universe,
                set_size=args.k,
                num_players=count,
                common_size=common,
            )
            for count in players
        )
    except ValueError as exc:
        print(f"bad multiparty instance: {exc}", file=out)
        return 2

    fault_specs = tuple(
        f"{model_name}@{rate!r}"
        for model_name in model_names
        for rate in rates
    )
    plan = Plan(
        name="multiparty-churn-sweep",
        analysis="multiparty-survival",
        protocols=tuple(ProtocolSpec(name) for name in protocol_names),
        instances=instances,
        fault_specs=fault_specs,
        trials=args.trials,
        seed=args.seed,
        shard_size=max(1, min(args.trials, 8)),
        retry=RetrySpec(max_attempts=max_attempts),
    )
    result = run_plan(plan, workers=args.workers)

    print(
        f"multiparty churn sweep: universe 2^{args.log_universe}, "
        f"k={args.k}, core={common}, {args.trials} trials/cell, recovery "
        f"budget {max_attempts} attempts (rate = per-player whole-run "
        f"crash probability)",
        file=out,
    )
    header = (
        f"{'protocol':<13}{'model':<9}{'rate':>6}{'m':>5}  "
        f"{'survived%':>9}  {'exact%':>7}  {'recovered%':>10}  "
        f"{'degraded%':>9}  {'crashed':>7}  {'attempts':>8}  "
        f"{'bits/trial':>11}  {'recovery%':>9}"
    )
    print(header, file=out)
    cell_rows = iter(result.cells)
    for protocol_name in protocol_names:
        for count in players:
            for model_name in model_names:
                for rate in rates:
                    aggregate = next(cell_rows)["aggregate"]
                    trials = aggregate["trials"]
                    bits = aggregate["bits"]
                    recovery_share = (
                        100.0 * aggregate["recovery_bits"] / bits
                        if bits
                        else 0.0
                    )
                    print(
                        f"{protocol_name:<13}{model_name:<9}{rate:>6.3f}"
                        f"{count:>5}  "
                        f"{100.0 * aggregate['survived'] / trials:>9.1f}  "
                        f"{100.0 * aggregate['exact'] / trials:>7.1f}  "
                        f"{100.0 * aggregate['recovered'] / trials:>10.1f}  "
                        f"{100.0 * aggregate['degraded'] / trials:>9.1f}  "
                        f"{aggregate['crashed'] / trials:>7.2f}  "
                        f"{aggregate['attempts'] / trials:>8.2f}  "
                        f"{bits / trials:>11.0f}  "
                        f"{recovery_share:>9.1f}",
                        file=out,
                    )
    if result.shards_cached:
        print(
            f"\nshard cache: {result.shards_cached}/{result.shards_total} "
            f"shards reused",
            file=out,
        )
    print(
        "\nsurvived: the session still produced the survivors' exact "
        "intersection (exact = nobody crashed,\nrecovered = re-run over "
        "survivors); degraded: recovery budget exhausted, a certified "
        "superset\n(one player's own input) returned instead.  recovery% "
        "is the share of bits spent on re-runs.",
        file=out,
    )
    if args.table_out:
        _write_table(args.table_out, result, out)
    return 0


def _cmd_faults(args, out) -> int:
    from repro.faults.models import MODEL_FACTORIES, FaultConfigError
    from repro.plans import Plan, ProtocolSpec, RetrySpec, run_plan
    from repro.plans.registry import PROTOCOLS, protocol_display_name
    from repro.workloads import Distribution, WorkloadSpec

    if args.multiparty:
        return _cmd_faults_multiparty(args, out)

    universe = 1 << args.log_universe
    # Reorder and crash are round/player faults of the multiparty network;
    # the two-party sweep covers the per-payload channel models.
    two_party_models = ("bitflip", "truncate", "drop", "duplicate")

    try:
        rates = [float(rate) for rate in args.rates.split(",") if rate.strip()]
    except ValueError:
        print(f"bad --rates value {args.rates!r}", file=out)
        return 2
    model_names = [m.strip() for m in args.models.split(",") if m.strip()]
    protocol_names = [p.strip() for p in args.protocols.split(",") if p.strip()]
    for model_name in model_names:
        if model_name not in two_party_models:
            print(
                f"unknown two-party fault model {model_name!r} "
                f"(know: {', '.join(two_party_models)})",
                file=out,
            )
            return 2
    for protocol_name in protocol_names:
        if protocol_name not in PROTOCOLS:
            print(
                f"unknown protocol {protocol_name!r} "
                f"(know: {', '.join(sorted(PROTOCOLS))})",
                file=out,
            )
            return 2
    for model_name in model_names:
        for rate in rates:
            try:
                MODEL_FACTORIES[model_name](rate)
            except FaultConfigError as exc:
                print(f"bad rate {rate} for {model_name}: {exc}", file=out)
                return 2

    # The sweep is one declarative plan: cells enumerate protocol (outer) x
    # fault spec (inner, models x rates), matching the table's row order.
    # Running through the plan layer means an active $REPRO_PLAN_CACHE
    # makes repeated sweeps incremental, for free.
    fault_specs = tuple(
        f"{model_name}@{rate!r}"
        for model_name in model_names
        for rate in rates
    )
    plan = Plan(
        name="faults-sweep",
        analysis="survival",
        protocols=tuple(ProtocolSpec(name) for name in protocol_names),
        instances=(
            WorkloadSpec(
                universe_size=universe,
                set_size=args.k,
                overlap_fraction=args.overlap,
                distribution=Distribution.UNIFORM,
            ),
        ),
        fault_specs=fault_specs,
        trials=args.trials,
        seed=args.seed,
        shard_size=max(1, min(args.trials, 32)),
        retry=RetrySpec(
            max_attempts=args.max_attempts,
            attempt_bit_budget=args.attempt_bit_budget,
            adaptive_budget=args.adaptive_budget,
        ),
    )
    result = run_plan(plan, workers=args.workers)

    print(
        f"fault sweep: universe 2^{args.log_universe}, k={args.k}, "
        f"{args.trials} trials/cell, retry budget {args.max_attempts} "
        f"attempts (rate = per-message fault probability)",
        file=out,
    )
    header = (
        f"{'protocol':<24}{'model':<11}{'rate':>6}  {'exact%':>7}  "
        f"{'inexact%':>8}  {'degraded%':>9}  {'attempts':>8}  "
        f"{'faults/trial':>12}  {'bits/trial':>11}"
    )
    print(header, file=out)
    cell_rows = iter(result.cells)
    for protocol_name in protocol_names:
        display = protocol_display_name(
            ProtocolSpec(protocol_name), universe, args.k
        )
        for model_name in model_names:
            for rate in rates:
                aggregate = next(cell_rows)["aggregate"]
                trials = aggregate["trials"]
                print(
                    f"{display:<24}{model_name:<11}{rate:>6.3f}  "
                    f"{100.0 * aggregate['exact'] / trials:>7.1f}  "
                    f"{100.0 * aggregate['inexact'] / trials:>8.1f}  "
                    f"{100.0 * aggregate['degraded'] / trials:>9.1f}  "
                    f"{aggregate['attempts'] / trials:>8.2f}  "
                    f"{aggregate['faults'] / trials:>12.1f}  "
                    f"{aggregate['bits'] / trials:>11.0f}",
                    file=out,
                )
    if result.shards_cached:
        print(
            f"\nshard cache: {result.shards_cached}/{result.shards_total} "
            f"shards reused",
            file=out,
        )
    # An *inexact* (agreed-but-wrong) cell is not an error exit: the
    # equality check certifies agreement, and agreement implies exactness
    # only over a reliable channel (DESIGN §9) -- at high fault rates both
    # parties can consistently lose the same element, and the sweep's whole
    # point is to measure how often.
    print(
        "\nexact: verified and equal to S ∩ T; inexact: verified but "
        "corrupted consistently on both sides;\ndegraded: retry budget "
        "exhausted, certified supersets (own inputs) returned instead.",
        file=out,
    )
    if args.table_out:
        _write_table(args.table_out, result, out)
    return 0


def _plan_from_args(args, out):
    """Build a Plan from ``--file`` or the inline grid flags.

    Returns ``None`` after printing the problem (callers exit 2).
    """
    import json

    from repro.plans import Plan, ProtocolSpec, RetrySpec, plan_from_dict
    from repro.workloads import Distribution, WorkloadSpec

    if args.file is not None:
        try:
            with open(args.file, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except OSError as exc:
            print(f"cannot read {args.file}: {exc}", file=out)
            return None
        except json.JSONDecodeError as exc:
            print(f"{args.file}: not valid JSON ({exc})", file=out)
            return None
        try:
            return plan_from_dict(document)
        except ValueError as exc:
            print(f"{args.file}: {exc}", file=out)
            return None

    protocol_names = [p.strip() for p in args.protocols.split(",") if p.strip()]
    if args.fault_specs is not None:
        fault_specs = tuple(
            spec.strip() for spec in args.fault_specs.split(",") if spec.strip()
        )
    else:
        fault_specs = (None,)
    try:
        return Plan(
            name=args.name,
            analysis=args.analysis,
            protocols=tuple(ProtocolSpec(name) for name in protocol_names),
            instances=(
                WorkloadSpec(
                    universe_size=1 << args.log_universe,
                    set_size=args.k,
                    overlap_fraction=args.overlap,
                    distribution=Distribution(args.distribution),
                ),
            ),
            fault_specs=fault_specs,
            trials=args.trials,
            seed=args.seed,
            shard_size=args.shard_size,
            retry=RetrySpec(
                max_attempts=args.max_attempts,
                attempt_bit_budget=args.attempt_bit_budget,
                adaptive_budget=args.adaptive_budget,
            ),
        )
    except ValueError as exc:
        print(f"bad plan: {exc}", file=out)
        return None


def _cmd_plan(args, out) -> int:
    import json

    from repro.plans import ShardCache, compile_plan, plan_to_dict, run_plan

    plan = _plan_from_args(args, out)
    if plan is None:
        return 2
    try:
        compiled = compile_plan(plan)
    except ValueError as exc:
        print(f"bad plan: {exc}", file=out)
        return 2

    if args.plan_command == "show":
        print(
            f"plan {plan.name!r}: {plan.num_cells} cells x {plan.trials} "
            f"trials = {compiled.total_trials} trials in "
            f"{len(compiled.shards)} shards (analysis={plan.analysis})",
            file=out,
        )
        print(f"plan key: {compiled.plan_key}", file=out)
        for shard in compiled.shards:
            print(
                f"  shard {shard.index:>3}  {shard.key[:16]}  "
                f"trials {shard.trial_start}"
                f"..{shard.trial_start + shard.trials - 1}  "
                f"{shard.cell.label()}",
                file=out,
            )
        return 0

    cache = None
    if args.cache is not None:
        cache = ShardCache(args.cache) if args.cache.strip() not in ("", "0") else None
    result = run_plan(
        plan,
        cache=cache,
        use_env_cache=args.cache is None,
        workers=args.workers,
        executor=args.executor,
        halt_after=args.halt_after,
        compiled=compiled,
    )

    if args.stats_out is not None:
        with open(args.stats_out, "w", encoding="utf-8") as handle:
            json.dump(result.stats(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    if result.interrupted:
        print(
            f"interrupted after {result.shards_executed} executed shard(s): "
            f"{result.shards_cached + result.shards_executed}/"
            f"{result.shards_total} shards done; re-run with the same cache "
            f"to resume",
            file=out,
        )
        return 3

    print(
        f"plan {plan.name!r}: {result.shards_total} shards "
        f"({result.shards_cached} cached, {result.shards_executed} executed) "
        f"in {result.wall_s:.2f}s",
        file=out,
    )
    print(f"counters_sha256: {result.counters_sha256}", file=out)
    for cell in result.cells:
        aggregate = ", ".join(
            f"{key}={value:.4g}" if isinstance(value, float) else f"{key}={value}"
            for key, value in cell["aggregate"].items()
        )
        instance = cell["instance"]
        fault = cell["fault_spec"] if cell["fault_spec"] is not None else "reliable"
        print(
            f"  {cell['protocol']['name']} "
            f"n={instance['universe_size']} k={instance['set_size']} "
            f"{fault}: {aggregate}",
            file=out,
        )

    if args.out is not None:
        # The aggregate document is deliberately timing-free so a resumed
        # run's file is byte-identical to an uninterrupted one (the CI
        # resumability gate compares with cmp).
        document = {
            "plan": plan_to_dict(plan),
            "plan_key": result.plan_key,
            "counters_sha256": result.counters_sha256,
            "cells": result.cells,
        }
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}", file=out)
    return 0


def _load_mix_from_args(args, out):
    """The mix under test: ``--mix FILE`` or the inline flags.

    Returns ``None`` after printing the problem (callers exit 2).
    """
    import json

    from repro.serve import LoadMix, mix_from_dict

    if args.mix is not None:
        document = _load_json_report(args.mix, out)
        if document is None:
            return None
        try:
            return mix_from_dict(document)
        except (TypeError, ValueError) as exc:
            print(f"{args.mix}: {exc}", file=out)
            return None
    try:
        set_sizes = tuple(
            int(value) for value in args.set_sizes.split(",") if value.strip()
        )
    except ValueError:
        print(f"bad --set-sizes value {args.set_sizes!r}", file=out)
        return None
    try:
        return LoadMix(
            name="cli",
            seed=args.seed,
            sessions=args.sessions,
            ops_per_session=args.ops,
            universe_size=1 << args.log_universe,
            set_sizes=set_sizes,
            rounds=args.rounds if args.rounds > 0 else None,
            overlap=args.overlap,
            faults=args.faults,
        )
    except ValueError as exc:
        print(f"bad mix: {exc}", file=out)
        return None


def _cmd_serve_load(args, out) -> int:
    import json

    from repro.serve import latency_histogram, run_load

    mix = _load_mix_from_args(args, out)
    if mix is None:
        return 2
    try:
        report = run_load(
            mix,
            coalesce=not args.no_coalesce,
            tick_s=args.tick,
            connections=args.connections,
            pipeline=args.pipeline,
            max_pending_global=args.max_pending_global,
            max_pending_per_session=args.max_pending_per_session,
            check_serial=args.check_serial,
            transport=args.transport,
            fleet=args.fleet,
            profile=args.profile,
            uds_path=args.uds_path,
        )
    except ValueError as exc:
        print(f"bad load options: {exc}", file=out)
        return 2
    except RuntimeError as exc:
        # FleetError: a worker process crashed or timed out.
        print(f"FAIL: {exc}", file=out)
        return 1

    mode = "coalesced" if report.coalesce else "scalar"
    if report.transport == "inproc":
        via = "inproc clients"
    else:
        via = f"{report.fleet}-worker fleet over {report.transport}"
    print(
        f"mix {mix.name!r}: {report.sessions} sessions x "
        f"{mix.ops_per_session} ops, {mode}, {via}, "
        f"{report.profile} caches",
        file=out,
    )
    degraded_note = (
        f", {report.degraded} degraded" if report.degraded else ""
    )
    print(
        f"  {report.ops_ok}/{report.ops_total} ok{degraded_note}, "
        f"{report.shed} shed, "
        f"{len(report.errors)} errors in {report.wall_s:.3f}s",
        file=out,
    )
    print(
        f"  {report.sessions_per_sec:.0f} sessions/s, "
        f"{report.ops_per_sec:.0f} ops/s",
        file=out,
    )
    print(
        f"  latency ms: p50={report.p50_ms:.2f} p99={report.p99_ms:.2f} "
        f"p999={report.p999_ms:.2f} (answered ops only)",
        file=out,
    )
    if report.shed:
        print(
            f"  shed latency ms: p50={report.shed_p50_ms:.2f} "
            f"p99={report.shed_p99_ms:.2f} ({report.shed} rejections)",
            file=out,
        )
    for worker in report.workers:
        print(
            f"  worker {worker['worker']}: {worker['ok']}/{worker['ops']} ok, "
            f"{worker['shed']} shed, {worker['connections']} conns, "
            f"p50={worker['p50_ms']:.2f}ms p99={worker['p99_ms']:.2f}ms",
            file=out,
        )
    if report.batches:
        print(
            f"  coalescer: {report.batches} batches, "
            f"{report.coalesced_ops} coalesced + {report.scalar_ops} scalar "
            f"ops, {report.lanes_per_batch:.0f} lanes/batch",
            file=out,
        )
    print(f"  fingerprint: {report.fingerprint}", file=out)
    if report.serial_match is not None:
        print(f"  serial_match: {report.serial_match}", file=out)

    if args.hist_out is not None:
        with open(args.hist_out, "w", encoding="utf-8") as handle:
            json.dump(latency_histogram(report.latencies_ms), handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.hist_out}", file=out)
    if args.report_out is not None:
        with open(args.report_out, "w", encoding="utf-8") as handle:
            json.dump(report.as_dict(), handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.report_out}", file=out)

    if args.check_serial and report.serial_match is not True:
        print("FAIL: async run diverged from the serial reference", file=out)
        return 1
    if args.require_no_shed and report.shed > 0:
        print(f"FAIL: {report.shed} operation(s) shed", file=out)
        return 1
    if args.expect_shed:
        # Every non-ok reply must be a typed overloaded shed; anything in
        # ``errors`` means an op was dropped without the typed contract.
        if report.shed == 0:
            print("FAIL: expected shedding, none happened", file=out)
            return 1
        if report.errors:
            print(
                f"FAIL: {len(report.errors)} non-overloaded error repl(ies) "
                f"under overload",
                file=out,
            )
            return 1
        if report.ops_ok + report.shed != report.ops_total:
            print("FAIL: some operations were never answered", file=out)
            return 1
        print(
            f"backpressure OK: every one of the {report.shed} shed op(s) "
            f"got a typed overloaded reply",
            file=out,
        )
    if args.expect_degraded:
        # The fault-mix gate: damage must surface as typed degradation
        # (ok replies carrying degraded=true), never as untyped errors or
        # silent drops.
        if report.degraded == 0:
            print("FAIL: expected degraded operations, none happened", file=out)
            return 1
        if report.errors:
            print(
                f"FAIL: {len(report.errors)} untyped error repl(ies) "
                f"under faults",
                file=out,
            )
            return 1
        if report.ops_ok + report.shed != report.ops_total:
            print("FAIL: some operations were never answered", file=out)
            return 1
        print(
            f"fault degradation OK: {report.degraded} op(s) degraded to "
            f"the typed certified-superset contract, zero untyped errors",
            file=out,
        )
    return 0


def _cmd_serve(args, out) -> int:
    import asyncio
    import json

    if args.serve_command == "load":
        return _cmd_serve_load(args, out)

    if args.serve_command == "mix":
        from repro.serve import DEFAULT_MIX, mix_to_dict

        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(mix_to_dict(DEFAULT_MIX), handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.out} (edit, then: repro serve load --mix {args.out})",
              file=out)
        return 0

    from repro.serve import IntersectionServer, ServeConfig

    if args.transport == "uds" and not args.uds:
        print("--transport uds requires --uds PATH", file=out)
        return 2

    async def _run_server() -> None:
        server = IntersectionServer(
            ServeConfig(
                host=args.host,
                port=args.port,
                transport=args.transport,
                uds_path=args.uds,
                master_seed=args.master_seed,
            )
        )
        await server.start()
        kind, where = server.endpoint
        if kind == "uds":
            print(f"serving on unix:{where} (ctrl-c to stop)", file=out)
        else:
            host, port = where
            print(f"serving on {host}:{port} (ctrl-c to stop)", file=out)
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(_run_server())
    except KeyboardInterrupt:
        print("stopped", file=out)
    return 0


def _cmd_render(args, out) -> int:
    from repro.comm.render import render_transcript
    from repro.core.tree_protocol import TreeProtocol

    rng = random.Random(args.seed)
    universe = 1 << args.log_universe
    sample = rng.sample(range(universe), 2 * args.k - args.k // 2)
    alice = frozenset(sample[: args.k])
    bob = frozenset(sample[args.k // 2 :])
    sink = []
    protocol = TreeProtocol(
        universe, args.k, rounds=args.rounds, stage_stats_sink=sink
    )
    outcome = protocol.run(alice, bob, seed=args.seed)
    print(render_transcript(outcome.transcript), file=out)
    if sink:
        print("", file=out)
        print("stage anatomy (stage: eq bits / re-run bits / failed leaves):",
              file=out)
        for stage in sink:
            print(
                f"  {stage.stage}: {stage.equality_bits} / "
                f"{stage.rerun_bits} / {stage.failed_leaves}",
                file=out,
            )
    print(
        f"\nresult: |S n T| = {len(outcome.alice_output)} "
        f"(correct: {outcome.correct_for(alice, bob)})",
        file=out,
    )
    return 0


def _cmd_conformance(args, out) -> int:
    from repro.core.amplify import AmplifiedIntersection
    from repro.protocols.bucket_verify import BucketVerifyProtocol
    from repro.protocols.one_round import OneRoundHashingProtocol
    from repro.protocols.sqrt_k import SqrtKProtocol
    from repro.protocols.trivial import TrivialExchangeProtocol
    from repro.testing import check_intersection_contract

    n = 1 << args.log_universe
    factories = {
        "tree": lambda: TreeProtocol(n, args.k),
        "one-round": lambda: OneRoundHashingProtocol(n, args.k),
        "trivial": lambda: TrivialExchangeProtocol(n, args.k),
        "bucket": lambda: BucketVerifyProtocol(n, args.k),
        "sqrt-k": lambda: SqrtKProtocol(n, args.k),
        "amplified": lambda: AmplifiedIntersection(n, args.k),
    }
    report = check_intersection_contract(
        factories[args.protocol](), failure_budget=args.failure_budget
    )
    print(str(report), file=out)
    return 0 if report.passed else 1


def _cmd_exact_cc(args, out) -> int:
    from repro.analysis.exact_cc import (
        disjointness_matrix,
        equality_matrix,
        exact_deterministic_cc,
        greater_than_matrix,
        intersection_matrix,
    )

    if args.problem == "eq":
        matrix = equality_matrix(args.size)
        description = f"EQ over [{args.size}]"
    elif args.problem == "gt":
        matrix = greater_than_matrix(args.size)
        description = f"GT over [{args.size}]"
    elif args.problem == "disj":
        matrix, subsets = disjointness_matrix(args.size, args.max_set_size)
        description = (
            f"DISJ, universe [{args.size}], k = {args.max_set_size} "
            f"({len(subsets)} input classes)"
        )
    else:
        matrix, subsets = intersection_matrix(args.size, args.max_set_size)
        description = (
            f"INT, universe [{args.size}], k = {args.max_set_size} "
            f"({len(subsets)} input classes)"
        )
    print(f"{description}: D(f) = {exact_deterministic_cc(matrix)}", file=out)
    return 0
