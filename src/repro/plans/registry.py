"""The protocol registry: plan-spec names to constructable protocols.

One mapping from short registry names (the strings plans and the CLI use)
to builder callables ``(universe_size, max_set_size, params) -> protocol``.
Both the ``repro faults`` sweep and ``repro plan run`` resolve protocols
here, so the two CLIs cannot drift apart on what ``"bucket"`` means.

Imports are deferred into the builders: the registry is consulted by the
CLI's argument validation before any protocol code needs to load.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping

from repro.plans.model import ProtocolSpec

__all__ = [
    "PROTOCOLS",
    "MULTIPARTY_PROTOCOLS",
    "build_protocol",
    "build_multiparty_protocol",
    "protocol_display_name",
]


def _tree(n: int, k: int, params: Mapping[str, Any]):
    from repro.core.tree_protocol import TreeProtocol

    return TreeProtocol(n, k, rounds=params.get("rounds"))


def _bucket(n: int, k: int, params: Mapping[str, Any]):
    from repro.protocols.bucket_verify import BucketVerifyProtocol

    return BucketVerifyProtocol(n, k)


def _basic(n: int, k: int, params: Mapping[str, Any]):
    from repro.protocols.basic_intersection import BasicIntersectionProtocol

    return BasicIntersectionProtocol(n, k)


def _amplified(n: int, k: int, params: Mapping[str, Any]):
    from repro.core.amplify import AmplifiedIntersection

    return AmplifiedIntersection(n, k)


def _one_round(n: int, k: int, params: Mapping[str, Any]):
    from repro.protocols.one_round import OneRoundHashingProtocol

    return OneRoundHashingProtocol(n, k)


def _trivial(n: int, k: int, params: Mapping[str, Any]):
    from repro.protocols.trivial import TrivialExchangeProtocol

    return TrivialExchangeProtocol(n, k)


def _sqrt_k(n: int, k: int, params: Mapping[str, Any]):
    from repro.protocols.sqrt_k import SqrtKProtocol

    return SqrtKProtocol(n, k)


#: Registry name -> builder.  Names match the historical ``repro faults``
#: CLI vocabulary so existing invocations keep working.
PROTOCOLS: Dict[str, Callable] = {
    "tree": _tree,
    "bucket": _bucket,
    "basic": _basic,
    "amplified": _amplified,
    "one-round": _one_round,
    "trivial": _trivial,
    "sqrt-k": _sqrt_k,
}


def _coordinator(n: int, k: int, params: Mapping[str, Any]):
    from repro.multiparty.coordinator import CoordinatorIntersection

    return CoordinatorIntersection(
        n,
        k,
        rounds=params.get("rounds"),
        group_size=params.get("group_size"),
        broadcast=bool(params.get("broadcast", False)),
    )


def _binary_tree(n: int, k: int, params: Mapping[str, Any]):
    from repro.multiparty.binary_tree import BinaryTreeIntersection

    return BinaryTreeIntersection(
        n,
        k,
        rounds=params.get("rounds"),
        group_size=params.get("group_size"),
        broadcast=bool(params.get("broadcast", False)),
    )


#: The m-player registry (the ``multiparty-survival`` analysis axis).
#: Kept separate from :data:`PROTOCOLS` because the builders produce
#: objects with a different ``run`` signature (``sets`` not
#: ``alice, bob``) -- mixing the namespaces would let a plan compile into
#: shards that can only fail at execution time.
MULTIPARTY_PROTOCOLS: Dict[str, Callable] = {
    "coordinator": _coordinator,
    "binary-tree": _binary_tree,
}


def build_protocol(spec: ProtocolSpec, universe_size: int, max_set_size: int):
    """Construct the protocol a spec names for one instance family.

    :raises ValueError: unknown registry name (callers surface this as a
        CLI usage error before any shard executes).
    """
    builder = PROTOCOLS.get(spec.name)
    if builder is None:
        raise ValueError(
            f"unknown protocol {spec.name!r} "
            f"(know: {', '.join(sorted(PROTOCOLS))})"
        )
    return builder(universe_size, max_set_size, dict(spec.params))


def build_multiparty_protocol(
    spec: ProtocolSpec, universe_size: int, max_set_size: int
):
    """Construct the m-player protocol a spec names.

    :raises ValueError: unknown registry name.
    """
    builder = MULTIPARTY_PROTOCOLS.get(spec.name)
    if builder is None:
        raise ValueError(
            f"unknown multiparty protocol {spec.name!r} "
            f"(know: {', '.join(sorted(MULTIPARTY_PROTOCOLS))})"
        )
    return builder(universe_size, max_set_size, dict(spec.params))


def protocol_display_name(
    spec: ProtocolSpec, universe_size: int, max_set_size: int
) -> str:
    """The protocol's own ``name`` attribute (e.g. ``"bucket-verify"``)."""
    return build_protocol(spec, universe_size, max_set_size).name
