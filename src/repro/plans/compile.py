"""The plan compiler: normalize a grid into content-addressed shards.

Compilation is deterministic and pure: the same plan always produces the
same cells in the same order, the same shard partition, the same per-trial
seed lineage, and therefore the same shard content hashes.  That is the
whole contract the cache and resume layers stand on:

* **cell seeds** -- each grid cell gets a 63-bit seed derived by SHA-256
  from the plan's root seed and the cell's canonical JSON, so cells are
  statistically independent and stable under re-ordering of the axes.
* **trial seeds** -- trial ``t`` of a cell runs with
  :func:`repro.perf.executor.derive_seed` ``(cell_seed, t)``.  The lineage
  is a function of the *cell and global trial index only*: re-partitioning
  the grid into different shard sizes never changes any trial's seed
  (pinned by ``tests/test_plans_compile.py``), which is what makes shard
  boundaries safe places to cut, cache, and resume.
* **shard keys** -- SHA-256 over canonical JSON of everything
  code-relevant to the shard's records: the plans schema version and cache
  epoch, the library version, the cell (protocol + params, instance,
  fault spec, analysis, retry policy), the trial range, and the first/last
  derived trial seeds (the seed lineage made explicit, so a change in seed
  derivation can never silently alias an old cache entry).

``CACHE_EPOCH`` is the manual invalidation lever: bump it whenever a
protocol/engine change alters trial *results* without touching any plan
field, and every previously cached shard misses.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import repro
from repro.perf.executor import derive_seed
from repro.plans.model import (
    Plan,
    ProtocolSpec,
    RetrySpec,
    canonical_json,
    instance_to_dict,
)
from repro.workloads import MultipartySpec

__all__ = [
    "PLAN_SCHEMA_VERSION",
    "CACHE_EPOCH",
    "Cell",
    "Shard",
    "CompiledPlan",
    "cell_seed",
    "compile_plan",
]

#: Bump when the compiled-shard record format changes shape.
PLAN_SCHEMA_VERSION = 1

#: Manual cache-invalidation epoch: bump when protocol/engine changes alter
#: trial results without changing any plan field.
CACHE_EPOCH = 1


@dataclass(frozen=True)
class Cell:
    """One grid cell: protocol x instance family x fault spec.

    ``instance`` is a :class:`~repro.workloads.WorkloadSpec` for the
    two-party analyses and a :class:`~repro.workloads.MultipartySpec`
    for ``multiparty-survival`` cells.
    """

    index: int
    protocol: ProtocolSpec
    instance: Any
    fault_spec: Optional[str]

    def canonical(self, plan: Plan) -> Dict[str, Any]:
        """The cell's code-relevant identity (excludes ``index`` -- the
        cell's position in the grid is presentation, not content)."""
        doc: Dict[str, Any] = {
            "protocol": self.protocol.as_dict(),
            "instance": instance_to_dict(self.instance),
            "fault_spec": self.fault_spec,
            "analysis": plan.analysis,
        }
        if plan.analysis in ("survival", "multiparty-survival"):
            doc["retry"] = plan.retry.as_dict()
        return doc

    def label(self) -> str:
        fault = self.fault_spec if self.fault_spec is not None else "reliable"
        if isinstance(self.instance, MultipartySpec):
            return (
                f"{self.protocol.name}/n={self.instance.universe_size}"
                f",k={self.instance.set_size}"
                f",m={self.instance.num_players}"
                f",common={self.instance.common_size}/{fault}"
            )
        return (
            f"{self.protocol.name}/n={self.instance.universe_size}"
            f",k={self.instance.set_size}"
            f",overlap={self.instance.overlap_fraction}"
            f",dist={self.instance.distribution.value}/{fault}"
        )


@dataclass(frozen=True)
class Shard:
    """One unit of execution, caching, and resume.

    :param index: position in the compiled shard list.
    :param cell: the grid cell the shard belongs to.
    :param trial_start: first global trial index (within the cell).
    :param seeds: the derived per-trial seeds, in trial order.
    :param key: the shard's content address (SHA-256 hex).
    :param analysis: the plan's analysis kind (carried so a shard is a
        self-contained work item on the worker side).
    :param retry: the plan's retry policy (survival analysis).
    """

    index: int
    cell: Cell
    trial_start: int
    seeds: Tuple[int, ...]
    key: str
    analysis: str
    retry: "RetrySpec"

    @property
    def trials(self) -> int:
        return len(self.seeds)


@dataclass(frozen=True)
class CompiledPlan:
    """A plan normalized into cells and content-addressed shards."""

    plan: Plan
    plan_key: str
    cells: Tuple[Cell, ...]
    shards: Tuple[Shard, ...]

    @property
    def total_trials(self) -> int:
        return sum(shard.trials for shard in self.shards)


def _sha256_hex(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def cell_seed(plan_seed: int, cell_canonical: Dict[str, Any]) -> int:
    """The 63-bit root seed of one cell's trial-seed lineage."""
    digest = hashlib.sha256(
        f"repro.plans.cell:{plan_seed}:{canonical_json(cell_canonical)}".encode(
            "utf-8"
        )
    ).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def _shard_key(
    plan: Plan, cell_doc: Dict[str, Any], trial_start: int, seeds: Tuple[int, ...]
) -> str:
    doc = {
        "plan_schema": PLAN_SCHEMA_VERSION,
        "cache_epoch": CACHE_EPOCH,
        "library": repro.__version__,
        "cell": cell_doc,
        "trial_start": trial_start,
        "trial_count": len(seeds),
        # Seed lineage made explicit: first and last derived seeds.  Any
        # drift in derive_seed or the cell-seed derivation changes the key
        # instead of silently aliasing stale cached records.
        "seed_lineage": [seeds[0], seeds[-1]],
    }
    return _sha256_hex("repro.plans.shard:" + canonical_json(doc))


def compile_plan(plan: Plan) -> CompiledPlan:
    """Normalize a plan into its deterministic shard list.

    Cells enumerate in axis order (protocols outer, instances middle,
    fault specs inner); each cell's trials are split into consecutive
    ``plan.shard_size`` chunks.

    :raises ValueError: when a protocol name is unknown or a fault spec
        does not parse -- compile-time errors, before anything executes.
    """
    from repro.faults.models import parse_fault_spec
    from repro.plans.registry import MULTIPARTY_PROTOCOLS, PROTOCOLS

    registry = (
        MULTIPARTY_PROTOCOLS
        if plan.analysis == "multiparty-survival"
        else PROTOCOLS
    )
    for spec in plan.protocols:
        if spec.name not in registry:
            raise ValueError(
                f"unknown protocol {spec.name!r} "
                f"(know: {', '.join(sorted(registry))})"
            )
    for fault_spec in plan.fault_specs:
        if fault_spec is not None:
            parse_fault_spec(fault_spec)  # raises FaultConfigError (ValueError)

    cells: List[Cell] = []
    shards: List[Shard] = []
    for protocol in plan.protocols:
        for instance in plan.instances:
            for fault_spec in plan.fault_specs:
                cell = Cell(
                    index=len(cells),
                    protocol=protocol,
                    instance=instance,
                    fault_spec=fault_spec,
                )
                cells.append(cell)
                cell_doc = cell.canonical(plan)
                root = cell_seed(plan.seed, cell_doc)
                for trial_start in range(0, plan.trials, plan.shard_size):
                    count = min(plan.shard_size, plan.trials - trial_start)
                    seeds = tuple(
                        derive_seed(root, trial_start + offset)
                        for offset in range(count)
                    )
                    shards.append(
                        Shard(
                            index=len(shards),
                            cell=cell,
                            trial_start=trial_start,
                            seeds=seeds,
                            key=_shard_key(plan, cell_doc, trial_start, seeds),
                            analysis=plan.analysis,
                            retry=plan.retry,
                        )
                    )

    plan_doc = {
        "plan_schema": PLAN_SCHEMA_VERSION,
        "cache_epoch": CACHE_EPOCH,
        "shards": [shard.key for shard in shards],
    }
    return CompiledPlan(
        plan=plan,
        plan_key=_sha256_hex("repro.plans.plan:" + canonical_json(plan_doc)),
        cells=tuple(cells),
        shards=tuple(shards),
    )
