"""Worker-side shard execution: pure functions of the shard payload.

Everything here is module-level and picklable so shards dispatch through
the :mod:`repro.perf.executor` process pool unchanged.  A shard's records
are a pure function of ``(cell, trial seeds, analysis, retry policy)``:

* instances come from :func:`repro.workloads.generate_pair` seeded by the
  trial seed (order-independent, unlike a shared sequential RNG);
* survival trials build their :class:`~repro.faults.plan.FaultPlan` with a
  seed derived from the trial seed (and the fault spec's own ``seed=N``
  suffix, when present), so fault schedules are also per-trial pure;
* records are JSON-native lists (ints, strings, bools only -- no floats),
  so a record read back from the shard cache is *byte-identically* the
  record execution would have produced, which is what lets the scheduler
  fingerprint aggregates across cached and executed shards alike.

Record shapes (versioned by ``repro.plans.compile.PLAN_SCHEMA_VERSION``):

* ``cost``     -- ``[total_bits, num_messages, correct]``
* ``survival`` -- ``[status, attempts, faults_injected, total_bits]`` with
  ``status`` one of ``"exact"`` / ``"inexact"`` / ``"degraded"``.
* ``multiparty-survival`` -- ``[status, attempts, crashed, faults_injected,
  total_bits, recovery_bits]`` with ``status`` one of ``"exact"`` /
  ``"recovered"`` / ``"degraded"`` / ``"inexact"`` (``inexact`` = the
  output was not even a superset of the true intersection -- the
  one-sided invariant broke, which the property suite treats as a bug).
"""

from __future__ import annotations

from typing import Any, List, Sequence

from repro.perf.executor import derive_seed
from repro.plans.compile import Shard
from repro.plans.registry import build_multiparty_protocol, build_protocol
from repro.workloads import generate_pair

__all__ = [
    "execute_shard",
    "SURVIVAL_STATUSES",
    "MULTIPARTY_SURVIVAL_STATUSES",
]

SURVIVAL_STATUSES = ("exact", "inexact", "degraded")

MULTIPARTY_SURVIVAL_STATUSES = ("exact", "recovered", "degraded", "inexact")


def _cost_records(shard: Shard, protocol) -> List[List[Any]]:
    records: List[List[Any]] = []
    for seed in shard.seeds:
        alice, bob = generate_pair(shard.cell.instance, seed)
        outcome = protocol.run(alice, bob, seed=seed)
        records.append(
            [
                int(outcome.total_bits),
                int(outcome.num_messages),
                bool(outcome.correct_for(alice, bob)),
            ]
        )
    return records


def _survival_records(shard: Shard, protocol, retry) -> List[List[Any]]:
    from repro.faults.models import parse_fault_spec
    from repro.faults.plan import FaultPlan
    from repro.faults.retry import RetryPolicy, run_with_retry

    model_spec = shard.cell.fault_spec
    policy = RetryPolicy(
        max_attempts=retry.max_attempts,
        attempt_bit_budget=retry.attempt_bit_budget,
        adaptive_budget=retry.adaptive_budget,
    )
    spec_seed = 0
    if model_spec is not None:
        _, spec_seed = parse_fault_spec(model_spec)
    records: List[List[Any]] = []
    for seed in shard.seeds:
        alice, bob = generate_pair(shard.cell.instance, seed)
        if model_spec is not None:
            # A fresh model per trial: rate models are stateless but the
            # promoted deterministic models (FlipOnce) are not, and a fresh
            # plan guarantees trial-order independence either way.
            model, _ = parse_fault_spec(model_spec)
            fault_plan = FaultPlan(model, seed=derive_seed(seed, spec_seed))
        else:
            fault_plan = None
        outcome = run_with_retry(
            protocol,
            alice,
            bob,
            seed=seed,
            policy=policy,
            plan=fault_plan,
        )
        if outcome.degraded:
            status = "degraded"
        elif outcome.correct_for(alice, bob):
            status = "exact"
        else:
            status = "inexact"
        records.append(
            [
                status,
                int(outcome.attempts),
                int(fault_plan.injected) if fault_plan is not None else 0,
                int(outcome.total_bits),
            ]
        )
    return records


def _multiparty_survival_records(shard: Shard, protocol, retry) -> List[List[Any]]:
    from repro.faults.models import parse_fault_spec
    from repro.faults.plan import FaultPlan
    from repro.multiparty.recovery import RecoveryPolicy, run_with_recovery
    from repro.workloads.multiparty import generate_multiparty

    model_spec = shard.cell.fault_spec
    policy = RecoveryPolicy(max_attempts=retry.max_attempts)
    spec_seed = 0
    if model_spec is not None:
        _, spec_seed = parse_fault_spec(model_spec)
    records: List[List[Any]] = []
    for seed in shard.seeds:
        sets = generate_multiparty(shard.cell.instance, seed)
        truth = frozenset.intersection(*sets)
        if model_spec is not None:
            # Fresh model per trial (Churn carries per-player fate state;
            # reusing it would couple trials through crash schedules).
            model, _ = parse_fault_spec(model_spec)
            fault_plan = FaultPlan(model, seed=derive_seed(seed, spec_seed))
        else:
            fault_plan = None
        outcome = run_with_recovery(
            protocol, sets, seed=seed, policy=policy, plan=fault_plan
        )
        if not truth <= outcome.intersection:
            status = "inexact"  # the one-sided invariant broke: a bug
        elif outcome.degraded:
            status = "degraded"
        elif outcome.status == "exact" and outcome.intersection != truth:
            status = "inexact"  # claimed exact but off: fingerprint slip
        else:
            status = outcome.status
        records.append(
            [
                status,
                int(outcome.attempts),
                len(outcome.crashed),
                int(fault_plan.injected) if fault_plan is not None else 0,
                int(outcome.total_bits),
                int(outcome.recovery_bits),
            ]
        )
    return records


def execute_shard(shards: Sequence[Shard], index: int) -> List[List[Any]]:
    """Execute shard ``shards[index]`` and return its per-trial records.

    Shaped as ``fn(collection, index)`` so the scheduler can dispatch it
    through :func:`repro.perf.executor.run_trials` with the pending shard
    indices as the "seed" sequence -- one pickled partial, many shards.
    """
    shard = shards[index]
    cell = shard.cell
    if shard.analysis == "multiparty-survival":
        protocol = build_multiparty_protocol(
            cell.protocol, cell.instance.universe_size, cell.instance.set_size
        )
        return _multiparty_survival_records(shard, protocol, shard.retry)
    protocol = build_protocol(
        cell.protocol, cell.instance.universe_size, cell.instance.set_size
    )
    if shard.analysis == "survival":
        return _survival_records(shard, protocol, shard.retry)
    return _cost_records(shard, protocol)
