"""The declarative plan model: a whole experiment grid as data.

A :class:`Plan` names everything a sweep needs -- protocols, instance
families, fault specs, trial count, retry policy, analysis kind -- as
plain frozen data with a canonical JSON form.  Nothing in a plan is
executable: the compiler (:mod:`repro.plans.compile`) turns it into
deterministic shards, and the scheduler (:mod:`repro.plans.scheduler`)
runs them.  Because the plan is data, two properties fall out for free:

* **content identity** -- the canonical JSON of a plan node is hashable,
  which is what lets completed shards be cached by content address and
  re-used across runs, processes, and machines;
* **declarative files** -- a plan round-trips through
  :func:`plan_to_dict` / :func:`plan_from_dict`, so sweeps can live in
  version-controlled JSON next to the experiments they drive
  (``repro plan run --file sweep.json``).

The grid a plan describes is the cross product

    protocols x instances x fault_specs   (each cell runs ``trials`` trials)

-- exactly the triple loop that ``repro bench``, ``repro faults``, and the
``benchmarks/`` harness used to each hand-roll.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.workloads import Distribution, MultipartySpec, WorkloadSpec

__all__ = [
    "ProtocolSpec",
    "RetrySpec",
    "Plan",
    "ANALYSES",
    "canonical_json",
    "instance_to_dict",
    "instance_from_dict",
    "plan_to_dict",
    "plan_from_dict",
]

#: The analysis kinds the trial runner knows how to execute.
ANALYSES = ("cost", "survival", "multiparty-survival")


def canonical_json(value: Any) -> str:
    """The one canonical JSON form used for every content hash.

    Sorted keys, no whitespace, no NaN: byte-identical for equal values
    across processes and Python versions, which is the property cache keys
    ride on.
    """
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


@dataclass(frozen=True)
class ProtocolSpec:
    """One protocol axis entry: a registry name plus canonical parameters.

    :param name: a :data:`repro.plans.registry.PROTOCOLS` key (e.g.
        ``"bucket"``, ``"tree"``).
    :param params: protocol-specific knobs as a sorted tuple of
        ``(key, value)`` pairs (e.g. ``(("rounds", 2),)``); kept as a
        tuple so the spec stays hashable and canonically ordered.
    """

    name: str
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "params", tuple(sorted((str(k), v) for k, v in self.params))
        )

    def as_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ProtocolSpec":
        return cls(
            name=str(data["name"]),
            params=tuple(sorted(dict(data.get("params") or {}).items())),
        )


@dataclass(frozen=True)
class RetrySpec:
    """The retry-policy slice of a plan (survival analysis only).

    Mirrors :class:`repro.faults.retry.RetryPolicy`'s code-relevant knobs;
    part of the shard content hash because changing any of them changes
    trial outcomes.
    """

    max_attempts: int = 5
    attempt_bit_budget: Optional[int] = None
    adaptive_budget: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.attempt_bit_budget is not None and self.attempt_bit_budget < 1:
            raise ValueError(
                "attempt_bit_budget must be >= 1 or None, got "
                f"{self.attempt_bit_budget}"
            )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "max_attempts": self.max_attempts,
            "attempt_bit_budget": self.attempt_bit_budget,
            "adaptive_budget": self.adaptive_budget,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RetrySpec":
        return cls(
            max_attempts=int(data.get("max_attempts", 5)),
            attempt_bit_budget=data.get("attempt_bit_budget"),
            adaptive_budget=bool(data.get("adaptive_budget", False)),
        )


def instance_to_dict(spec) -> Dict[str, Any]:
    """Canonical dict form of an instance-family spec.

    Two-party :class:`~repro.workloads.WorkloadSpec` dicts keep their
    original four-key shape with **no** discriminator -- those bytes feed
    every existing shard content hash, so adding a key would cold-miss
    every cache in the field.  Multiparty families carry an explicit
    ``"kind": "multiparty"`` marker instead.
    """
    if isinstance(spec, MultipartySpec):
        return {
            "kind": "multiparty",
            "universe_size": spec.universe_size,
            "set_size": spec.set_size,
            "num_players": spec.num_players,
            "common_size": spec.common_size,
        }
    return {
        "universe_size": spec.universe_size,
        "set_size": spec.set_size,
        "overlap_fraction": spec.overlap_fraction,
        "distribution": spec.distribution.value,
    }


def instance_from_dict(data: Mapping[str, Any]):
    if data.get("kind") == "multiparty":
        return MultipartySpec(
            universe_size=int(data["universe_size"]),
            set_size=int(data["set_size"]),
            num_players=int(data["num_players"]),
            common_size=int(data["common_size"]),
        )
    return WorkloadSpec(
        universe_size=int(data["universe_size"]),
        set_size=int(data["set_size"]),
        overlap_fraction=float(data["overlap_fraction"]),
        distribution=Distribution(data.get("distribution", "uniform")),
    )


@dataclass(frozen=True)
class Plan:
    """A declarative experiment grid.

    :param name: a human label (journal/file naming only; *not* part of
        shard content hashes, so renaming a plan keeps its cache warm).
    :param protocols: the protocol axis.
    :param instances: the instance-family axis.
    :param fault_specs: the fault axis -- ``None`` entries mean a reliable
        channel, strings are ``REPRO_FAULTS``-grammar specs such as
        ``"bitflip@0.05"`` (see :func:`repro.faults.models.parse_fault_spec`).
    :param trials: trials per grid cell.
    :param seed: the plan's root seed; every cell and trial seed derives
        from it (see :mod:`repro.plans.compile`).
    :param shard_size: trials per shard -- the unit of caching, dispatch,
        and resume.  Changing it re-partitions the grid (different shard
        hashes) but never changes any trial's seed or result.
    :param analysis: ``"cost"`` (bits/messages/correctness per trial),
        ``"survival"`` (verification-driven two-party retry under the
        cell's fault spec), or ``"multiparty-survival"`` (m-player
        crash-recovery: instances are
        :class:`~repro.workloads.MultipartySpec` families, protocols come
        from :data:`repro.plans.registry.MULTIPARTY_PROTOCOLS`, and
        ``retry.max_attempts`` bounds the recovery layer's BSP attempts).
    :param retry: retry policy for survival cells (recovery budget for
        multiparty-survival cells).
    """

    name: str
    protocols: Tuple[ProtocolSpec, ...]
    instances: Tuple[Any, ...]
    fault_specs: Tuple[Optional[str], ...] = (None,)
    trials: int = 16
    seed: int = 0
    shard_size: int = 32
    analysis: str = "cost"
    retry: RetrySpec = field(default_factory=RetrySpec)

    def __post_init__(self) -> None:
        if not self.protocols:
            raise ValueError("a plan needs at least one protocol")
        if not self.instances:
            raise ValueError("a plan needs at least one instance family")
        if not self.fault_specs:
            raise ValueError(
                "a plan needs at least one fault spec (use (None,) for a "
                "reliable channel)"
            )
        if self.trials < 1:
            raise ValueError(f"trials must be >= 1, got {self.trials}")
        if self.shard_size < 1:
            raise ValueError(
                f"shard_size must be >= 1, got {self.shard_size}"
            )
        if self.analysis not in ANALYSES:
            raise ValueError(
                f"unknown analysis {self.analysis!r} (know: {ANALYSES})"
            )
        if self.analysis == "cost" and any(
            spec is not None for spec in self.fault_specs
        ):
            raise ValueError(
                "cost analysis measures the reliable channel; use "
                "analysis='survival' for fault specs"
            )
        if self.analysis == "multiparty-survival":
            for instance in self.instances:
                if not isinstance(instance, MultipartySpec):
                    raise ValueError(
                        "multiparty-survival instances must be "
                        f"MultipartySpec, got {type(instance).__name__}"
                    )
        else:
            for instance in self.instances:
                if not isinstance(instance, WorkloadSpec):
                    raise ValueError(
                        f"{self.analysis} instances must be WorkloadSpec, "
                        f"got {type(instance).__name__}"
                    )

    @property
    def num_cells(self) -> int:
        return len(self.protocols) * len(self.instances) * len(self.fault_specs)


def plan_to_dict(plan: Plan) -> Dict[str, Any]:
    """The declarative (JSON-file) form of a plan."""
    return {
        "name": plan.name,
        "analysis": plan.analysis,
        "protocols": [spec.as_dict() for spec in plan.protocols],
        "instances": [instance_to_dict(spec) for spec in plan.instances],
        "fault_specs": list(plan.fault_specs),
        "trials": plan.trials,
        "seed": plan.seed,
        "shard_size": plan.shard_size,
        "retry": plan.retry.as_dict(),
    }


def plan_from_dict(data: Mapping[str, Any]) -> Plan:
    """Parse the declarative form back into a :class:`Plan`.

    :raises ValueError: on structural problems (missing axes, bad values);
        the messages are meant for CLI users editing plan files by hand.
    """
    if not isinstance(data, Mapping):
        raise ValueError(
            f"plan document must be an object, got {type(data).__name__}"
        )
    try:
        protocols = tuple(
            ProtocolSpec.from_dict(entry) for entry in data["protocols"]
        )
        instances = tuple(
            instance_from_dict(entry) for entry in data["instances"]
        )
    except KeyError as exc:
        raise ValueError(f"plan document missing {exc.args[0]!r}") from None
    fault_specs = tuple(data.get("fault_specs") or (None,))
    for spec in fault_specs:
        if spec is not None and not isinstance(spec, str):
            raise ValueError(
                f"fault_specs entries must be null or strings, got {spec!r}"
            )
    return Plan(
        name=str(data.get("name", "plan")),
        protocols=protocols,
        instances=instances,
        fault_specs=fault_specs,
        trials=int(data.get("trials", 16)),
        seed=int(data.get("seed", 0)),
        shard_size=int(data.get("shard_size", 32)),
        analysis=str(data.get("analysis", "cost")),
        retry=RetrySpec.from_dict(data.get("retry") or {}),
    )
