"""The content-addressed shard cache and its environment kill-switch.

Layout (all under one root directory)::

    <root>/objects/<key[:2]>/<key>.json    one completed shard's records
    <root>/journal/<plan_key>.jsonl        append-only replay log per plan

A cache object holds exactly one shard's per-trial records plus the key
that produced them; :meth:`ShardCache.get` re-checks the embedded key and
schema version and treats *any* unreadable, truncated, or mismatched file
as a miss (a killed writer can leave nothing worse than a re-executed
shard).  Writes are atomic -- temp file in the same directory, then
``os.replace`` -- so a reader never observes a half-written object and a
``kill -9`` mid-run leaves only whole shards behind, which is precisely
what makes resume bit-identical.

Environment contract (the same shape as ``REPRO_TRACE`` / ``REPRO_FAULTS``
/ the hotcache switch):

* ``REPRO_PLAN_CACHE`` -- unset, empty, or ``"0"`` disables the on-disk
  cache (shards always execute).  Any other value is the cache root
  directory, created on first write.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.obs import metrics as _metrics
from repro.plans.compile import PLAN_SCHEMA_VERSION

__all__ = [
    "PLAN_CACHE_ENV_VAR",
    "ShardCache",
    "cache_from_env",
]

#: Environment kill-switch: unset / "" / "0" keeps the shard cache off.
PLAN_CACHE_ENV_VAR = "REPRO_PLAN_CACHE"


class ShardCache:
    """Content-addressed store of completed shard records.

    :param root: cache directory (created lazily on first ``put``).
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        #: Lookup counters for this cache handle (process-lifetime cache
        #: hit/miss totals live in the metrics registry).
        self.hits = 0
        self.misses = 0

    def _object_path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[List[Any]]:
        """The cached records for ``key``, or ``None`` on any miss.

        Corrupt, truncated, or foreign files are misses, not errors: the
        scheduler re-executes the shard and overwrites the bad object.
        """
        path = self._object_path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            self._note_miss()
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("plan_schema") != PLAN_SCHEMA_VERSION
            or payload.get("key") != key
            or not isinstance(payload.get("records"), list)
        ):
            self._note_miss()
            return None
        self.hits += 1
        _metrics.counter("plans.shard.cache_hit").inc()
        return payload["records"]

    def put(self, key: str, records: List[Any]) -> None:
        """Atomically store one shard's records under its content key."""
        path = self._object_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "plan_schema": PLAN_SCHEMA_VERSION,
            "key": key,
            "records": records,
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def _note_miss(self) -> None:
        self.misses += 1
        _metrics.counter("plans.shard.cache_miss").inc()

    # -- replay journal ----------------------------------------------------

    def journal_path(self, plan_key: str) -> Path:
        return self.root / "journal" / f"{plan_key}.jsonl"

    def append_journal(self, plan_key: str, record: Dict[str, Any]) -> None:
        """Append one replay-log line (fsync-free: the journal is an audit
        trail; correctness rides on the content-addressed objects)."""
        path = self.journal_path(plan_key)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    def read_journal(self, plan_key: str) -> List[Dict[str, Any]]:
        """All journal lines for a plan (skipping any torn final line)."""
        try:
            with open(self.journal_path(plan_key), "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        except OSError:
            return []
        records = []
        for line in lines:
            try:
                records.append(json.loads(line))
            except ValueError:
                continue
        return records

    def stats(self) -> Dict[str, int]:
        """This handle's lookup counters."""
        return {"hits": self.hits, "misses": self.misses}

    def __repr__(self) -> str:
        return (
            f"ShardCache({str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses})"
        )


def cache_from_env() -> Optional[ShardCache]:
    """The environment-configured cache, or ``None`` when disabled.

    Read at call time (like the other kill-switches) so tests and
    long-lived processes can flip ``REPRO_PLAN_CACHE`` between runs.
    """
    value = os.environ.get(PLAN_CACHE_ENV_VAR, "").strip()
    if value in ("", "0"):
        return None
    return ShardCache(value)
