"""Declarative experiment plans: compile, cache, shard, replay.

The one sweep path for the repo: describe a grid as a :class:`Plan`,
compile it into content-addressed shards (:func:`compile_plan`), and run
it through the cache-aware scheduler (:func:`run_plan`).  ``repro bench``,
``repro faults``, and the ``benchmarks/`` harness all ride this layer.

See ``DESIGN.md`` for the full contract (content identity, seed lineage,
bit-identical resume) and ``EXPERIMENTS.md`` for a kill-and-resume
walkthrough.
"""

from repro.plans.cache import PLAN_CACHE_ENV_VAR, ShardCache, cache_from_env
from repro.plans.compile import (
    CACHE_EPOCH,
    PLAN_SCHEMA_VERSION,
    Cell,
    CompiledPlan,
    Shard,
    cell_seed,
    compile_plan,
)
from repro.plans.model import (
    ANALYSES,
    Plan,
    ProtocolSpec,
    RetrySpec,
    canonical_json,
    instance_from_dict,
    instance_to_dict,
    plan_from_dict,
    plan_to_dict,
)
from repro.plans.registry import PROTOCOLS, build_protocol
from repro.plans.runner import execute_shard
from repro.plans.scheduler import (
    PlanResult,
    aggregate_cell,
    cached_trials,
    run_plan,
)

__all__ = [
    "ANALYSES",
    "CACHE_EPOCH",
    "PLAN_CACHE_ENV_VAR",
    "PLAN_SCHEMA_VERSION",
    "PROTOCOLS",
    "Cell",
    "CompiledPlan",
    "Plan",
    "PlanResult",
    "ProtocolSpec",
    "RetrySpec",
    "Shard",
    "ShardCache",
    "aggregate_cell",
    "build_protocol",
    "cache_from_env",
    "cached_trials",
    "canonical_json",
    "cell_seed",
    "compile_plan",
    "execute_shard",
    "instance_from_dict",
    "instance_to_dict",
    "plan_from_dict",
    "plan_to_dict",
    "run_plan",
]
