"""The plan scheduler: cache-aware, resumable shard execution.

:func:`run_plan` drives a compiled plan to aggregates:

1. every shard's content key is looked up in the cache (when one is
   active) -- hits skip execution entirely;
2. missing shards execute in *waves* through the
   :mod:`repro.perf.executor` process pool; after each wave the results
   are written to the cache and the replay journal **before** the next
   wave dispatches, so a kill at any moment loses at most one in-flight
   wave and a re-run resumes from the completed shards bit-identically;
3. per-cell aggregates and a fingerprint over the full ordered record
   stream (:attr:`PlanResult.counters_sha256`) are computed from the
   merged cached + executed records -- the fingerprint is the artifact the
   resume gate compares between an interrupted-then-resumed sweep and an
   uninterrupted one.

Observability: the scheduler emits ``plan.compile`` / ``shard.start`` /
``shard.finish`` events (taxonomy v2) when tracing is on, and counts cache
hits/misses in the metrics registry (``plans.shard.cache_hit`` /
``plans.shard.cache_miss``) unconditionally.

Determinism contract: aggregates and the fingerprint depend only on the
plan (see :mod:`repro.plans.compile`); worker count, executor kind, shard
cache state, wave size, and interruption points never change them --
pinned by ``tests/test_plans_scheduler.py``.
"""

from __future__ import annotations

import functools
import hashlib
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.state import STATE as _OBS
from repro.perf.executor import resolve_workers, run_trials
from repro.plans.cache import ShardCache, cache_from_env
from repro.plans.compile import CompiledPlan, Shard, compile_plan
from repro.plans.model import Plan, canonical_json, instance_to_dict
from repro.plans.runner import execute_shard

__all__ = ["PlanResult", "run_plan", "cached_trials", "aggregate_cell"]


@dataclass
class PlanResult:
    """Everything one :func:`run_plan` call produced.

    :param interrupted: True when ``halt_after`` stopped the run before
        every shard completed; ``cells`` and ``counters_sha256`` are then
        ``None`` (a partial aggregate would be a lie -- resume instead).
    """

    plan: Plan
    plan_key: str
    cells: Optional[List[Dict[str, Any]]]
    counters_sha256: Optional[str]
    shards_total: int
    shards_cached: int
    shards_executed: int
    cache_hits: int
    cache_misses: int
    interrupted: bool
    wall_s: float
    #: Per-shard record lists in shard order (None for shards an
    #: interrupted run never reached).
    shard_records: List[Optional[List[Any]]] = field(default_factory=list)

    def stats(self) -> Dict[str, Any]:
        """The cache-stats document (CI uploads this as an artifact)."""
        return {
            "plan": self.plan.name,
            "plan_key": self.plan_key,
            "shards_total": self.shards_total,
            "shards_cached": self.shards_cached,
            "shards_executed": self.shards_executed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "interrupted": self.interrupted,
            "wall_s": self.wall_s,
        }


def _records_fingerprint(shard_records: Sequence[List[Any]]) -> str:
    """SHA-256 over the canonical JSON of every record, in trial order.

    Hashed per *record* (the flat trial stream), not per shard: the
    fingerprint is invariant to how the grid was partitioned, so plans
    differing only in ``shard_size`` -- or a resumed run whose shards came
    half from cache, half from execution -- fingerprint identically.
    Records are JSON-native by the runner's contract, so cached and
    freshly executed shards contribute identical bytes.
    """
    digest = hashlib.sha256(b"repro.plans.records:")
    for records in shard_records:
        for record in records:
            digest.update(canonical_json(record).encode("utf-8"))
            digest.update(b";")
    return digest.hexdigest()


def aggregate_cell(
    analysis: str, records: Sequence[Sequence[Any]]
) -> Dict[str, Any]:
    """Fold one cell's ordered trial records into its aggregate row."""
    trials = len(records)
    if analysis == "multiparty-survival":
        exact = sum(1 for r in records if r[0] == "exact")
        recovered = sum(1 for r in records if r[0] == "recovered")
        degraded = sum(1 for r in records if r[0] == "degraded")
        inexact = sum(1 for r in records if r[0] == "inexact")
        return {
            "trials": trials,
            "exact": exact,
            "recovered": recovered,
            "degraded": degraded,
            "inexact": inexact,
            # "Survived" = the run still produced the survivors' exact
            # intersection (possibly after recovery re-runs); degradation
            # (certified superset) is the non-survival outcome.
            "survived": exact + recovered,
            "attempts": sum(r[1] for r in records),
            "crashed": sum(r[2] for r in records),
            "faults": sum(r[3] for r in records),
            "bits": sum(r[4] for r in records),
            "recovery_bits": sum(r[5] for r in records),
        }
    if analysis == "survival":
        exact = sum(1 for r in records if r[0] == "exact")
        inexact = sum(1 for r in records if r[0] == "inexact")
        degraded = sum(1 for r in records if r[0] == "degraded")
        return {
            "trials": trials,
            "exact": exact,
            "inexact": inexact,
            "degraded": degraded,
            "attempts": sum(r[1] for r in records),
            "faults": sum(r[2] for r in records),
            "bits": sum(r[3] for r in records),
        }
    correct = sum(1 for r in records if r[2])
    total_bits = sum(r[0] for r in records)
    return {
        "trials": trials,
        "total_bits": total_bits,
        "mean_bits": total_bits / trials if trials else 0.0,
        "max_messages": max((r[1] for r in records), default=0),
        "success_rate": correct / trials if trials else 0.0,
    }


def _emit(event_type: str, **fields: Any) -> None:
    if _OBS.active:
        _OBS.tracer.emit(event_type, **fields)


def run_plan(
    plan: Plan,
    *,
    cache: Optional[ShardCache] = None,
    use_env_cache: bool = True,
    workers: Optional[int] = None,
    executor: str = "process",
    halt_after: Optional[int] = None,
    compiled: Optional[CompiledPlan] = None,
) -> PlanResult:
    """Execute a plan to per-cell aggregates, reusing cached shards.

    :param cache: explicit shard cache; ``None`` consults
        ``$REPRO_PLAN_CACHE`` (unless ``use_env_cache`` is False), and a
        still-``None`` cache simply executes everything.
    :param workers: process-pool width for shard execution (``None``:
        ``$REPRO_WORKERS`` or serial, as everywhere else).
    :param executor: passed through to :func:`repro.perf.run_trials`.
    :param halt_after: stop after this many shards have *executed* (cache
        hits don't count) -- the deterministic kill point the resumability
        gate uses to simulate an interrupted sweep.  The partial result has
        ``interrupted=True`` and no aggregates.
    :param compiled: pre-compiled plan (skips recompilation when the
        caller already has one, e.g. ``repro plan show`` then ``run``).
    """
    start = time.perf_counter()
    if compiled is None:
        compiled = compile_plan(plan)
    if cache is None and use_env_cache:
        cache = cache_from_env()
    _emit(
        "plan.compile",
        plan=plan.name,
        shards=len(compiled.shards),
        plan_key=compiled.plan_key,
    )

    shard_records: List[Optional[List[Any]]] = [None] * len(compiled.shards)
    pending: List[Shard] = []
    cached_count = 0
    for shard in compiled.shards:
        hit = cache.get(shard.key) if cache is not None else None
        if hit is not None and len(hit) == shard.trials:
            shard_records[shard.index] = hit
            cached_count += 1
            _emit("shard.finish", shard=shard.key, status="cached")
        else:
            pending.append(shard)

    if halt_after is not None:
        pending = pending[: max(0, halt_after)]
        interrupted = bool(
            cached_count + len(pending) < len(compiled.shards)
        )
    else:
        interrupted = False

    worker_count = resolve_workers(workers)
    # Waves bound the work lost to a hard kill: results are cached and
    # journaled after each wave, before the next dispatches.
    wave_size = max(4, 2 * worker_count)
    executed = 0
    run_fn = functools.partial(execute_shard, compiled.shards)
    for wave_start in range(0, len(pending), wave_size):
        wave = pending[wave_start : wave_start + wave_size]
        for shard in wave:
            _emit("shard.start", shard=shard.key, cell=shard.cell.label())
        run = run_trials(
            run_fn,
            [shard.index for shard in wave],
            workers=worker_count,
            executor=executor,
        )
        for shard, outcome in zip(wave, run.outcomes):
            if not outcome.ok:
                # Surface the first shard failure with its traceback; a
                # failed shard is a bug (trials are pure), not a retryable
                # condition, and caching it would poison future runs.
                if outcome.exception is not None:
                    raise outcome.exception
                raise RuntimeError(
                    f"shard {shard.index} ({shard.cell.label()}) failed:\n"
                    f"{outcome.error}"
                )
            shard_records[shard.index] = outcome.value
            executed += 1
            if cache is not None:
                cache.put(shard.key, outcome.value)
                cache.append_journal(
                    compiled.plan_key,
                    {
                        "shard": shard.key,
                        "index": shard.index,
                        "cell": shard.cell.label(),
                        "trials": shard.trials,
                        "status": "executed",
                        "wall_s": outcome.duration_s,
                    },
                )
            _emit(
                "shard.finish",
                shard=shard.key,
                status="executed",
                wall_s=outcome.duration_s,
            )

    wall = time.perf_counter() - start
    hits = cache.hits if cache is not None else 0
    misses = cache.misses if cache is not None else 0
    if interrupted:
        return PlanResult(
            plan=plan,
            plan_key=compiled.plan_key,
            cells=None,
            counters_sha256=None,
            shards_total=len(compiled.shards),
            shards_cached=cached_count,
            shards_executed=executed,
            cache_hits=hits,
            cache_misses=misses,
            interrupted=True,
            wall_s=wall,
            shard_records=shard_records,
        )

    cells: List[Dict[str, Any]] = []
    for cell in compiled.cells:
        records: List[Any] = []
        for shard in compiled.shards:
            if shard.cell.index == cell.index:
                records.extend(shard_records[shard.index])
        cells.append(
            {
                "protocol": cell.protocol.as_dict(),
                "instance": instance_to_dict(cell.instance),
                "fault_spec": cell.fault_spec,
                "aggregate": aggregate_cell(plan.analysis, records),
            }
        )
    return PlanResult(
        plan=plan,
        plan_key=compiled.plan_key,
        cells=cells,
        counters_sha256=_records_fingerprint(shard_records),
        shards_total=len(compiled.shards),
        shards_cached=cached_count,
        shards_executed=executed,
        cache_hits=hits,
        cache_misses=misses,
        interrupted=False,
        wall_s=wall,
        shard_records=shard_records,
    )


# -- ad-hoc cached trial loops (the benchmarks harness path) ---------------


def _adhoc_key(key: str, seeds: Sequence[int]) -> str:
    from repro.plans.compile import CACHE_EPOCH, PLAN_SCHEMA_VERSION

    import repro

    doc = {
        "plan_schema": PLAN_SCHEMA_VERSION,
        "cache_epoch": CACHE_EPOCH,
        "library": repro.__version__,
        "key": key,
        "seeds": list(seeds),
    }
    return hashlib.sha256(
        ("repro.plans.adhoc:" + canonical_json(doc)).encode("utf-8")
    ).hexdigest()


def cached_trials(
    fn,
    seeds: Sequence[int],
    *,
    key: Optional[str] = None,
    cache: Optional[ShardCache] = None,
    workers: Optional[int] = None,
) -> List[Any]:
    """Run a trial loop through the executor with shard-cache semantics.

    The opt-in path for sweeps whose trial function is code, not data (the
    ``benchmarks/`` experiment harness): results are cached under
    ``sha256(epoch, library version, key, seeds)`` when a cache is active
    *and* the caller supplies a stable ``key`` naming the cell.  Because
    the key cannot see inside ``fn``, staleness is the caller's contract:
    the key must name everything that determines the results (the
    experiment, its parameters), and the cache epoch/library version
    handles the rest.  Non-JSON-serializable results silently skip the
    cache (the loop still runs and returns them).
    """
    if cache is None:
        cache = cache_from_env()
    adhoc = _adhoc_key(key, seeds) if cache is not None and key is not None else None
    if adhoc is not None:
        hit = cache.get(adhoc)
        if hit is not None and len(hit) == len(seeds):
            _emit("shard.finish", shard=adhoc, status="cached")
            # JSON round-trips lists for tuples; restore the tuple shape
            # trial records conventionally use so cached and fresh values
            # compare equal downstream.
            return [
                tuple(value) if isinstance(value, list) else value
                for value in hit
            ]
    if adhoc is not None:
        _emit("shard.start", shard=adhoc, cell=key)
    run = run_trials(fn, list(seeds), workers=workers)
    values = run.values()
    if adhoc is not None:
        try:
            cache.put(adhoc, values)
        except (TypeError, ValueError):
            pass  # non-JSON trial values: executable but not cacheable
        _emit("shard.finish", shard=adhoc, status="executed")
    return values
