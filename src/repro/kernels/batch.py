"""Vectorized batch evaluation of the hot numeric primitives.

Every protocol in the paper reduces to enormous numbers of independent
pairwise-hash evaluations and equality fingerprints -- the shape that the
batched-primitive literature (sparse disjointness, multiple equality
testing) exploits.  This module provides those primitives over whole
arrays of keys:

* :func:`affine_image_batch` -- Carter-Wegman images
  ``((a*x + b) mod p) mod t`` for an array of keys;
* :func:`bucket_assign` -- the Theorem 3.1 / Section 1 bucket-hashing step
  (the same affine map with the bucket count as the outer modulus);
* :func:`mod_batch` -- the FKS universe reduction ``x -> x mod q``;
* :func:`equal_mask` -- bulk equality verdicts for fingerprint sweeps;
* :func:`sort_ints` -- sorted hash-list assembly;
* :func:`fingerprint_sweep` -- bulk SHA-256 fingerprints (scalar: the work
  is inside hashlib's C core, so the batch win is hoisting the Python
  dispatch out of the loop, not lanes).

**Value transparency is the contract.**  Each kernel has a pure-Python
scalar implementation (the ``*_scalar`` twins) that is exact over
arbitrary-precision integers, and a numpy ``uint64``-lane path that runs
only when it is provably identical:

* the *direct* lane path runs when ``a * max(x) + b < 2**64`` -- every
  intermediate fits a ``uint64`` lane exactly;
* the *Mersenne* lane path runs when the modulus is exactly
  ``M61 = 2**61 - 1``: products of 61-bit residues are reduced with the
  classic 32-bit split (``2**64 = 8 mod M61``, ``2**61 = 1 mod M61``), so
  the whole field fits ``uint64`` lanes with no overflow;
* anything else -- numpy absent, keys or moduli beyond the lane-safe
  range, forced via :func:`repro.kernels.backend.scalar_only` -- falls
  back to the scalar twin.

The randomized differential suite (``tests/test_kernels_differential.py``)
pins the lane paths against the scalar oracles on >= 1000 cases per
kernel; the perf regression gate additionally pins ``counters_sha256`` of
the E1 trial loop, so a kernel that changed a single wire bit cannot land.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.kernels.backend import note_route, numpy_or_none
from repro.obs.state import STATE as _OBS

__all__ = [
    "M61",
    "MIN_LANES",
    "SEGMENT_MIN_LANES",
    "affine_image_batch",
    "affine_image_batch_scalar",
    "affine_image_segments",
    "affine_image_segments_scalar",
    "bucket_assign",
    "bucket_assign_scalar",
    "mod_batch",
    "mod_batch_scalar",
    "equal_mask",
    "equal_mask_scalar",
    "sort_ints",
    "sort_ints_scalar",
    "fingerprint_sweep",
    "fingerprint_sweep_segments",
    "fingerprint_sweep_segments_scalar",
]

#: The Mersenne prime ``2**61 - 1`` -- the largest modulus with a fully
#: lane-safe ``uint64`` multiply via the 32-bit split reduction.
M61 = (1 << 61) - 1

#: Below this many keys the numpy call overhead (list-of-int to uint64
#: array conversion + ufunc dispatch) exceeds the per-key Python loop
#: cost, so the scalar twin runs even when numpy is available.  Dispatch
#: only -- values are identical either way.
MIN_LANES = 128

#: Per-segment floor for the pooled :func:`affine_image_segments` routes.
#: A pooled segment costs fixed per-segment work on the lane path (the
#: range proof, a params slot fed to ``np.repeat``, the result re-slice)
#: that only pays for itself once the segment carries this many keys; the
#: tree protocol's late-stage leaf re-runs are typically 0-2 keys each, and
#: routing thousands of those through the lane plan is slower than the
#: inline scalar loop.  Dispatch only -- values are identical either way.
SEGMENT_MIN_LANES = 16

_LANE_LIMIT = 1 << 64


# -- scalar oracles --------------------------------------------------------


def affine_image_batch_scalar(
    elements: Sequence[int], mult: int, shift: int, prime: int, range_size: int
) -> List[int]:
    """Exact per-key evaluation of ``((a*x + b) mod p) mod t``."""
    return [(mult * x + shift) % prime % range_size for x in elements]


def bucket_assign_scalar(
    elements: Sequence[int], mult: int, shift: int, prime: int, num_buckets: int
) -> List[int]:
    """Exact per-key bucket assignment (affine map, bucket-count modulus)."""
    return affine_image_batch_scalar(elements, mult, shift, prime, num_buckets)


def mod_batch_scalar(elements: Sequence[int], modulus: int) -> List[int]:
    """Exact per-key ``x mod q``."""
    return [x % modulus for x in elements]


def equal_mask_scalar(left: Sequence, right: Sequence) -> List[int]:
    """Exact per-index equality verdicts (``1`` iff equal)."""
    return [int(a == b) for a, b in zip(left, right)]


def sort_ints_scalar(values: Iterable[int]) -> List[int]:
    """Exact sorted copy."""
    return sorted(values)


# -- lane helpers ----------------------------------------------------------


def _as_lanes(np, values):
    """``values`` as a ``uint64`` array, or ``None`` when any value does
    not fit a lane (negative or ``>= 2**64``) -- the caller falls back to
    the scalar twin, whose arbitrary-precision arithmetic is always exact."""
    try:
        return np.asarray(values, dtype=np.uint64)
    except (OverflowError, TypeError, ValueError):
        return None


def _m61_mulmod(np, mults, lanes):
    """``(a * x) mod M61`` on ``uint64`` lanes, exact for ``a, x < M61``.

    ``mults`` is a ``uint64`` scalar (one multiplier for every lane) or a
    ``uint64`` array (a per-lane multiplier, the segmented-kernel case);
    the limb arithmetic below is element-wise either way.

    Standard 32-bit split: with ``a = a_hi*2**32 + a_lo`` and
    ``x = x_hi*2**32 + x_lo``,

        a*x = a_hi*x_hi * 2**64  +  (a_hi*x_lo + a_lo*x_hi) * 2**32
              + a_lo*x_lo

    and modulo ``M61`` the power weights collapse (``2**64 = 8``,
    ``2**61 = 1``), so every term fits a lane:

    * ``a_hi*x_hi < 2**58``, times 8 still ``< 2**61``;
    * ``mid = a_hi*x_lo + a_lo*x_hi < 2**62``; splitting ``mid`` at bit 29
      turns ``mid * 2**32`` into ``(mid >> 29) + ((mid & (2**29-1)) << 32)``,
      both ``< 2**61``;
    * ``a_lo*x_lo < 2**64`` folds once to ``< 2**61 + 8``.

    The partial sums stay below ``2**63``, and one fold plus one
    conditional subtract lands in ``[0, M61)``.
    """
    u = np.uint64
    mask32 = u(0xFFFFFFFF)
    mask29 = u((1 << 29) - 1)
    m61 = u(M61)
    a_hi = mults >> u(32)
    a_lo = mults & mask32
    x_hi = lanes >> u(32)
    x_lo = lanes & mask32
    t0 = a_lo * x_lo
    t0 = (t0 >> u(61)) + (t0 & m61)
    mid = a_hi * x_lo + a_lo * x_hi
    total = (
        (a_hi * x_hi) * u(8)
        + (mid >> u(29))
        + ((mid & mask29) << u(32))
        + t0
    )
    total = (total >> u(61)) + (total & m61)
    return np.where(total >= m61, total - m61, total)


def _affine_lanes(np, arr, mult: int, shift: int, prime: int, range_size: int):
    """The numpy affine path, or ``None`` when no lane-safe route exists.

    Exactness proofs per route:

    * direct -- ``mult * max(x) + shift < 2**64`` (checked in exact Python
      arithmetic), so the whole affine form is one overflow-free lane
      expression;
    * split-16 -- ``mult = m_hi * 2**16 + m_lo`` with ``x * 2**16`` reduced
      mod ``p`` first: ``m_hi * ((x << 16) % p) + m_lo * x + shift`` is
      congruent to ``mult * x + shift`` mod ``p`` and, when the exact
      Python bound ``(mult >> 16) * (p - 1) + (mult & 0xFFFF) * max(x) +
      shift < 2**64`` holds (so every intermediate fits a lane, requiring
      also ``max(x) < 2**48`` for the shifted keys), evaluates
      overflow-free.  This is the route for the pairwise-hash family over
      word-sized universes, where ``p`` is just above ``n`` and a random
      ``mult`` makes ``mult * x`` overflow the direct route almost surely;
    * Mersenne -- ``prime == M61`` with all operands below it (see
      :func:`_m61_mulmod`).

    The outer ``mod range_size`` (and ``mod prime`` in the direct route) is
    applied only when the modulus can change the value; a modulus above
    every lane value is the identity and is skipped rather than converted
    (moduli ``>= 2**64`` do not fit a lane but also cannot matter).
    """
    u = np.uint64
    max_x = int(arr.max())
    if mult * max_x + shift < _LANE_LIMIT:
        out = u(mult) * arr + u(shift)
        if prime <= mult * max_x + shift:
            out = out % u(prime)
    elif (
        max_x < (1 << 48)
        and (mult >> 16) * (prime - 1) + (mult & 0xFFFF) * max_x + shift
        < _LANE_LIMIT
    ):
        step = (arr << u(16)) % u(prime)
        out = u(mult >> 16) * step + u(mult & 0xFFFF) * arr + u(shift)
        out = out % u(prime)
    elif prime == M61 and mult < M61 and shift < M61 and max_x < M61:
        out = _m61_mulmod(np, u(mult), arr) + u(shift)
        out = (out >> u(61)) + (out & u(M61))
        out = np.where(out >= u(M61), out - u(M61), out)
    else:
        return None
    if range_size < _LANE_LIMIT:
        out = out % u(range_size)
    return out


# -- dispatched kernels ----------------------------------------------------


def affine_image_batch(
    elements, mult: int, shift: int, prime: int, range_size: int
) -> List[int]:
    """Carter-Wegman images ``((a*x + b) mod p) mod t`` over an array of keys.

    Returns plain Python ints in iteration order (duplicates kept), bit for
    bit identical to the per-key scalar evaluation regardless of backend.
    No per-key range validation -- callers pass sets already validated
    against the universe, exactly like
    :meth:`repro.hashing.pairwise.PairwiseHash.image_pairs`.
    """
    xs = elements if isinstance(elements, list) else list(elements)
    np = numpy_or_none()
    out = None
    if np is not None and len(xs) >= MIN_LANES:
        arr = _as_lanes(np, xs)
        if arr is not None:
            out = _affine_lanes(np, arr, mult, shift, prime, range_size)
    if out is None:
        if _OBS.active:
            note_route("affine_image_batch", "scalar")
        return affine_image_batch_scalar(xs, mult, shift, prime, range_size)
    if _OBS.active:
        note_route("affine_image_batch", "numpy")
    return out.tolist()


def affine_image_segments_scalar(segments) -> List[List[int]]:
    """Exact per-segment evaluation: one scalar affine sweep per segment."""
    return [
        affine_image_batch_scalar(elements, mult, shift, prime, range_size)
        for elements, mult, shift, prime, range_size in segments
    ]


def _segments_route(np, segs, plan, route: str, out) -> bool:
    """Run one route's pooled lanes; fills ``out`` at the plan positions.

    Returns False (leaving the positions for the scalar fallback) when the
    pooled key list does not convert to ``uint64`` lanes -- the planner's
    int-range checks make that unreachable for integer keys, so this only
    guards exotic element types.
    """
    u = np.uint64
    lengths = [len(segs[p][0]) for p in plan]
    flat: List[int] = []
    for p in plan:
        flat.extend(segs[p][0])
    try:
        joined = np.asarray(flat, dtype=np.uint64)
    except (OverflowError, TypeError, ValueError):
        return False

    def per_lane(values):
        return np.repeat(np.asarray(values, dtype=np.uint64), lengths)

    mults = [segs[p][1] for p in plan]
    shifts = per_lane([segs[p][2] for p in plan])
    primes = per_lane([segs[p][3] for p in plan])
    if route == "direct":
        packed = per_lane(mults) * joined + shifts
        packed %= primes
    elif route == "split16":
        step = (joined << u(16)) % primes
        packed = (
            per_lane([m >> 16 for m in mults]) * step
            + per_lane([m & 0xFFFF for m in mults]) * joined
            + shifts
        )
        packed %= primes
    else:  # m61
        m61 = u(M61)
        packed = _m61_mulmod(np, per_lane(mults), joined) + shifts
        packed = (packed >> u(61)) + (packed & m61)
        packed = np.where(packed >= m61, packed - m61, packed)
    packed %= per_lane([segs[p][4] for p in plan])
    images = packed.tolist()
    cursor = 0
    for p, length in zip(plan, lengths):
        out[p] = images[cursor : cursor + length]
        cursor += length
    return True


def affine_image_segments(segments) -> List[List[int]]:
    """Many independent affine sweeps, each with its own parameters, in one
    dispatch: ``out[i] = affine_image_batch(*segments[i])``.

    ``segments`` is a sequence of ``(elements, mult, shift, prime,
    range_size)`` tuples.  This is the cross-session coalescing kernel: a
    server multiplexing many small sessions has per-session hash sweeps far
    below :data:`MIN_LANES`, but their *aggregate* is thousands of lanes --
    the amortization regime the batched-primitive literature targets
    per-instance.  The numpy path concatenates every lane-safe segment into
    one ``uint64`` array with per-lane parameter arrays (``np.repeat`` over
    the segment lengths), so the whole group costs one vectorized pass
    instead of one Python loop per session.

    Value transparency matches :func:`affine_image_batch`: a segment rides
    the lane path only when its whole affine form is provably overflow-free
    (``mult * max(x) + shift < 2**64`` with moduli below ``2**64``); any
    other segment -- huge parameters, negative or over-wide keys, numpy
    absent or suppressed -- is evaluated by the exact scalar twin.  Output
    order always matches input order, bit for bit identical either way.
    """
    segs = [
        (
            elements if isinstance(elements, list) else list(elements),
            mult,
            shift,
            prime,
            range_size,
        )
        for elements, mult, shift, prime, range_size in segments
    ]
    np = numpy_or_none()
    # One position list per exactness route; each non-empty route costs one
    # vectorized pass over its pooled lanes.  Routes mirror _affine_lanes:
    # "direct" (whole affine form overflow-free), "split16" (limb-
    # decomposed multiplier, the word-sized-universe pairwise-hash case),
    # "m61" (Mersenne mulmod).  Proofs are per segment, in exact Python
    # arithmetic, before any lane math runs; min/max and the pooled
    # uint64 conversion are the only per-key passes, so planning stays
    # cheap even for many tiny segments (the coalescing-server shape).
    plans: Dict[str, List[int]] = {"direct": [], "split16": [], "m61": []}
    if np is not None:
        for position, (xs, mult, shift, prime, range_size) in enumerate(segs):
            if (
                len(xs) < SEGMENT_MIN_LANES
                or prime >= _LANE_LIMIT
                or range_size >= _LANE_LIMIT
            ):
                continue
            try:
                min_x = min(xs)
                max_x = max(xs)
            except TypeError:
                continue
            if min_x < 0 or max_x >= _LANE_LIMIT:
                continue
            if mult * max_x + shift < _LANE_LIMIT:
                plans["direct"].append(position)
            elif (
                max_x < (1 << 48)
                and (mult >> 16) * (prime - 1)
                + (mult & 0xFFFF) * max_x
                + shift
                < _LANE_LIMIT
            ):
                plans["split16"].append(position)
            elif prime == M61 and mult < M61 and shift < M61 and max_x < M61:
                plans["m61"].append(position)
    total_lanes = sum(
        len(segs[p][0]) for plan in plans.values() for p in plan
    )
    out: List[Optional[List[int]]] = [None] * len(segs)
    if total_lanes >= MIN_LANES:
        used_numpy = False
        for route, plan in plans.items():
            if plan and _segments_route(np, segs, plan, route, out):
                used_numpy = True
        if _OBS.active:
            note_route(
                "affine_image_segments", "numpy" if used_numpy else "scalar"
            )
    elif _OBS.active and segs:
        note_route("affine_image_segments", "scalar")
    for position, (xs, mult, shift, prime, range_size) in enumerate(segs):
        if out[position] is None:
            out[position] = affine_image_batch_scalar(
                xs, mult, shift, prime, range_size
            )
    return out


def bucket_assign(
    elements, mult: int, shift: int, prime: int, num_buckets: int
) -> List[int]:
    """The bucket-hashing step: which bucket each key lands in.

    Identical arithmetic to :func:`affine_image_batch` with the bucket
    count as the outer modulus; named separately because it is a distinct
    protocol step (Theorem 3.1 / Section 1 bucketing, the tree protocol's
    leaf assignment) with its own micro in ``BENCH_core.json``.
    """
    return affine_image_batch(elements, mult, shift, prime, num_buckets)


def mod_batch(elements, modulus: int) -> List[int]:
    """FKS universe reduction ``x -> x mod q`` over an array of keys."""
    xs = elements if isinstance(elements, list) else list(elements)
    np = numpy_or_none()
    arr = None
    if np is not None and len(xs) >= MIN_LANES and 1 <= modulus < _LANE_LIMIT:
        arr = _as_lanes(np, xs)
    if arr is None:
        if _OBS.active:
            note_route("mod_batch", "scalar")
        return mod_batch_scalar(xs, modulus)
    if _OBS.active:
        note_route("mod_batch", "numpy")
    return (arr % np.uint64(modulus)).tolist()


def equal_mask(left: Sequence, right: Sequence) -> List[int]:
    """Per-index equality verdicts: ``out[i] = 1`` iff ``left[i] == right[i]``.

    The bulk form of the equality sweep's verdict computation (Bob's side
    of Fact 3.5 over a whole tree level).  Both sequences must have equal
    length -- a silent ``zip`` truncation would drop verdicts on the wire.
    """
    if len(left) != len(right):
        raise ValueError(
            f"equal_mask requires equal lengths, got {len(left)} vs {len(right)}"
        )
    np = numpy_or_none()
    lanes_l = lanes_r = None
    if np is not None and len(left) >= MIN_LANES:
        lanes_l = _as_lanes(np, left)
        if lanes_l is not None:
            lanes_r = _as_lanes(np, right)
    if lanes_r is None:
        if _OBS.active:
            note_route("equal_mask", "scalar")
        return equal_mask_scalar(left, right)
    if _OBS.active:
        note_route("equal_mask", "numpy")
    return (lanes_l == lanes_r).astype(np.uint8).tolist()


def sort_ints(values) -> List[int]:
    """Sorted copy of an integer collection (hash-list assembly order)."""
    xs = values if isinstance(values, list) else list(values)
    np = numpy_or_none()
    arr = None
    if np is not None and len(xs) >= MIN_LANES:
        arr = _as_lanes(np, xs)
    if arr is None:
        if _OBS.active:
            note_route("sort_ints", "scalar")
        return sorted(xs)
    if _OBS.active:
        note_route("sort_ints", "numpy")
    arr.sort()
    return arr.tolist()


def fingerprint_sweep(salt: bytes, width: int, payloads) -> List[int]:
    """Bulk shared-random-function fingerprints over serialized payloads.

    Value-identical to per-payload
    ``repro.protocols.fingerprint._fingerprint_impl``: SHA-256 of
    ``salt || payload || counter``, concatenated until ``width`` bits are
    available, truncated from the top.  SHA dominates and lives in C, so
    the batch form's win is one locals-hoisted loop for the whole sweep
    instead of a Python-level dispatch per value; it exists here so the
    fingerprint path has the same kernel surface (and differential
    coverage) as the arithmetic ones.
    """
    sha256 = hashlib.sha256
    needed_bytes = (width + 7) // 8
    drop = 8 * needed_bytes - width
    from_bytes = int.from_bytes
    out = []
    if needed_bytes <= 32:
        # The common case (width <= 256): exactly one digest per payload.
        zero = (0).to_bytes(4, "big")
        for data in payloads:
            digest = sha256(salt + data + zero).digest()
            out.append(from_bytes(digest[:needed_bytes], "big") >> drop)
        return out
    for data in payloads:
        digest_input = salt + data
        digest = b""
        counter = 0
        while len(digest) < needed_bytes:
            digest += sha256(digest_input + counter.to_bytes(4, "big")).digest()
            counter += 1
        out.append(from_bytes(digest[:needed_bytes], "big") >> drop)
    return out


def fingerprint_sweep_segments_scalar(segments) -> List[List[int]]:
    """Exact per-segment evaluation: one fingerprint sweep per segment."""
    return [
        fingerprint_sweep(salt, width, payloads)
        for salt, width, payloads in segments
    ]


def fingerprint_sweep_segments(segments) -> List[List[int]]:
    """Many independent fingerprint sweeps, each under its own salt and
    width, in one dispatch: ``out[i] = fingerprint_sweep(*segments[i])``.

    ``segments`` is a sequence of ``(salt, width, payloads)`` tuples.  This
    is the round-barrier coalescing form of :func:`fingerprint_sweep`: a
    server driving many tree sessions in lockstep pools every session's
    per-level equality sweep -- each with its own shared-randomness salt --
    into one call per barrier.  SHA-256 lives in hashlib's C core, so as
    with :func:`fingerprint_sweep` the win is one locals-hoisted loop over
    the pooled payloads instead of a Python-level dispatch per segment per
    value; there are no lanes to overflow, hence no route planning beyond
    the per-segment width split below.

    Route selection mirrors the single-segment kernel exactly and is
    decided per segment in exact integer arithmetic: widths up to 256 bits
    take the single-digest route (one SHA-256 call per value), wider
    segments the counter-extended route -- so a pooled dispatch is value
    identical to per-segment :func:`fingerprint_sweep` calls, which the
    differential suite pins.
    """
    sha256 = hashlib.sha256
    from_bytes = int.from_bytes
    zero = (0).to_bytes(4, "big")
    out: List[List[int]] = []
    for salt, width, payloads in segments:
        needed_bytes = (width + 7) // 8
        drop = 8 * needed_bytes - width
        seg_out: List[int] = []
        if needed_bytes <= 32:
            prefix = salt  # constant across the segment's values
            for data in payloads:
                digest = sha256(prefix + data + zero).digest()
                seg_out.append(from_bytes(digest[:needed_bytes], "big") >> drop)
        else:
            for data in payloads:
                digest_input = salt + data
                digest = b""
                counter = 0
                while len(digest) < needed_bytes:
                    digest += sha256(
                        digest_input + counter.to_bytes(4, "big")
                    ).digest()
                    counter += 1
                seg_out.append(from_bytes(digest[:needed_bytes], "big") >> drop)
        out.append(seg_out)
    if _OBS.active and out:
        note_route("fingerprint_sweep_segments", "scalar")
    return out
