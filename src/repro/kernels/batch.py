"""Vectorized batch evaluation of the hot numeric primitives.

Every protocol in the paper reduces to enormous numbers of independent
pairwise-hash evaluations and equality fingerprints -- the shape that the
batched-primitive literature (sparse disjointness, multiple equality
testing) exploits.  This module provides those primitives over whole
arrays of keys:

* :func:`affine_image_batch` -- Carter-Wegman images
  ``((a*x + b) mod p) mod t`` for an array of keys;
* :func:`bucket_assign` -- the Theorem 3.1 / Section 1 bucket-hashing step
  (the same affine map with the bucket count as the outer modulus);
* :func:`mod_batch` -- the FKS universe reduction ``x -> x mod q``;
* :func:`equal_mask` -- bulk equality verdicts for fingerprint sweeps;
* :func:`sort_ints` -- sorted hash-list assembly;
* :func:`fingerprint_sweep` -- bulk SHA-256 fingerprints (scalar: the work
  is inside hashlib's C core, so the batch win is hoisting the Python
  dispatch out of the loop, not lanes).

**Value transparency is the contract.**  Each kernel has a pure-Python
scalar implementation (the ``*_scalar`` twins) that is exact over
arbitrary-precision integers, and a numpy ``uint64``-lane path that runs
only when it is provably identical:

* the *direct* lane path runs when ``a * max(x) + b < 2**64`` -- every
  intermediate fits a ``uint64`` lane exactly;
* the *Mersenne* lane path runs when the modulus is exactly
  ``M61 = 2**61 - 1``: products of 61-bit residues are reduced with the
  classic 32-bit split (``2**64 = 8 mod M61``, ``2**61 = 1 mod M61``), so
  the whole field fits ``uint64`` lanes with no overflow;
* anything else -- numpy absent, keys or moduli beyond the lane-safe
  range, forced via :func:`repro.kernels.backend.scalar_only` -- falls
  back to the scalar twin.

The randomized differential suite (``tests/test_kernels_differential.py``)
pins the lane paths against the scalar oracles on >= 1000 cases per
kernel; the perf regression gate additionally pins ``counters_sha256`` of
the E1 trial loop, so a kernel that changed a single wire bit cannot land.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Sequence

from repro.kernels.backend import note_route, numpy_or_none
from repro.obs.state import STATE as _OBS

__all__ = [
    "M61",
    "MIN_LANES",
    "affine_image_batch",
    "affine_image_batch_scalar",
    "bucket_assign",
    "bucket_assign_scalar",
    "mod_batch",
    "mod_batch_scalar",
    "equal_mask",
    "equal_mask_scalar",
    "sort_ints",
    "sort_ints_scalar",
    "fingerprint_sweep",
]

#: The Mersenne prime ``2**61 - 1`` -- the largest modulus with a fully
#: lane-safe ``uint64`` multiply via the 32-bit split reduction.
M61 = (1 << 61) - 1

#: Below this many keys the numpy call overhead (list-of-int to uint64
#: array conversion + ufunc dispatch) exceeds the per-key Python loop
#: cost, so the scalar twin runs even when numpy is available.  Dispatch
#: only -- values are identical either way.
MIN_LANES = 128

_LANE_LIMIT = 1 << 64


# -- scalar oracles --------------------------------------------------------


def affine_image_batch_scalar(
    elements: Sequence[int], mult: int, shift: int, prime: int, range_size: int
) -> List[int]:
    """Exact per-key evaluation of ``((a*x + b) mod p) mod t``."""
    return [(mult * x + shift) % prime % range_size for x in elements]


def bucket_assign_scalar(
    elements: Sequence[int], mult: int, shift: int, prime: int, num_buckets: int
) -> List[int]:
    """Exact per-key bucket assignment (affine map, bucket-count modulus)."""
    return affine_image_batch_scalar(elements, mult, shift, prime, num_buckets)


def mod_batch_scalar(elements: Sequence[int], modulus: int) -> List[int]:
    """Exact per-key ``x mod q``."""
    return [x % modulus for x in elements]


def equal_mask_scalar(left: Sequence, right: Sequence) -> List[int]:
    """Exact per-index equality verdicts (``1`` iff equal)."""
    return [int(a == b) for a, b in zip(left, right)]


def sort_ints_scalar(values: Iterable[int]) -> List[int]:
    """Exact sorted copy."""
    return sorted(values)


# -- lane helpers ----------------------------------------------------------


def _as_lanes(np, values):
    """``values`` as a ``uint64`` array, or ``None`` when any value does
    not fit a lane (negative or ``>= 2**64``) -- the caller falls back to
    the scalar twin, whose arbitrary-precision arithmetic is always exact."""
    try:
        return np.asarray(values, dtype=np.uint64)
    except (OverflowError, TypeError, ValueError):
        return None


def _m61_mulmod(np, scalar: int, lanes):
    """``(scalar * x) mod M61`` on ``uint64`` lanes, exact for
    ``scalar, x < M61``.

    Standard 32-bit split: with ``a = a_hi*2**32 + a_lo`` and
    ``x = x_hi*2**32 + x_lo``,

        a*x = a_hi*x_hi * 2**64  +  (a_hi*x_lo + a_lo*x_hi) * 2**32
              + a_lo*x_lo

    and modulo ``M61`` the power weights collapse (``2**64 = 8``,
    ``2**61 = 1``), so every term fits a lane:

    * ``a_hi*x_hi < 2**58``, times 8 still ``< 2**61``;
    * ``mid = a_hi*x_lo + a_lo*x_hi < 2**62``; splitting ``mid`` at bit 29
      turns ``mid * 2**32`` into ``(mid >> 29) + ((mid & (2**29-1)) << 32)``,
      both ``< 2**61``;
    * ``a_lo*x_lo < 2**64`` folds once to ``< 2**61 + 8``.

    The partial sums stay below ``2**63``, and one fold plus one
    conditional subtract lands in ``[0, M61)``.
    """
    u = np.uint64
    mask32 = u(0xFFFFFFFF)
    mask29 = u((1 << 29) - 1)
    m61 = u(M61)
    a_hi = u(scalar >> 32)
    a_lo = u(scalar & 0xFFFFFFFF)
    x_hi = lanes >> u(32)
    x_lo = lanes & mask32
    t0 = a_lo * x_lo
    t0 = (t0 >> u(61)) + (t0 & m61)
    mid = a_hi * x_lo + a_lo * x_hi
    total = (
        (a_hi * x_hi) * u(8)
        + (mid >> u(29))
        + ((mid & mask29) << u(32))
        + t0
    )
    total = (total >> u(61)) + (total & m61)
    return np.where(total >= m61, total - m61, total)


def _affine_lanes(np, arr, mult: int, shift: int, prime: int, range_size: int):
    """The numpy affine path, or ``None`` when no lane-safe route exists.

    Exactness proofs per route:

    * direct -- ``mult * max(x) + shift < 2**64`` (checked in exact Python
      arithmetic), so the whole affine form is one overflow-free lane
      expression;
    * Mersenne -- ``prime == M61`` with all operands below it (see
      :func:`_m61_mulmod`).

    The outer ``mod range_size`` (and ``mod prime`` in the direct route) is
    applied only when the modulus can change the value; a modulus above
    every lane value is the identity and is skipped rather than converted
    (moduli ``>= 2**64`` do not fit a lane but also cannot matter).
    """
    u = np.uint64
    max_x = int(arr.max())
    if mult * max_x + shift < _LANE_LIMIT:
        out = u(mult) * arr + u(shift)
        if prime <= mult * max_x + shift:
            out = out % u(prime)
    elif prime == M61 and mult < M61 and shift < M61 and max_x < M61:
        out = _m61_mulmod(np, mult, arr) + u(shift)
        out = (out >> u(61)) + (out & u(M61))
        out = np.where(out >= u(M61), out - u(M61), out)
    else:
        return None
    if range_size < _LANE_LIMIT:
        out = out % u(range_size)
    return out


# -- dispatched kernels ----------------------------------------------------


def affine_image_batch(
    elements, mult: int, shift: int, prime: int, range_size: int
) -> List[int]:
    """Carter-Wegman images ``((a*x + b) mod p) mod t`` over an array of keys.

    Returns plain Python ints in iteration order (duplicates kept), bit for
    bit identical to the per-key scalar evaluation regardless of backend.
    No per-key range validation -- callers pass sets already validated
    against the universe, exactly like
    :meth:`repro.hashing.pairwise.PairwiseHash.image_pairs`.
    """
    xs = elements if isinstance(elements, list) else list(elements)
    np = numpy_or_none()
    out = None
    if np is not None and len(xs) >= MIN_LANES:
        arr = _as_lanes(np, xs)
        if arr is not None:
            out = _affine_lanes(np, arr, mult, shift, prime, range_size)
    if out is None:
        if _OBS.active:
            note_route("affine_image_batch", "scalar")
        return affine_image_batch_scalar(xs, mult, shift, prime, range_size)
    if _OBS.active:
        note_route("affine_image_batch", "numpy")
    return out.tolist()


def bucket_assign(
    elements, mult: int, shift: int, prime: int, num_buckets: int
) -> List[int]:
    """The bucket-hashing step: which bucket each key lands in.

    Identical arithmetic to :func:`affine_image_batch` with the bucket
    count as the outer modulus; named separately because it is a distinct
    protocol step (Theorem 3.1 / Section 1 bucketing, the tree protocol's
    leaf assignment) with its own micro in ``BENCH_core.json``.
    """
    return affine_image_batch(elements, mult, shift, prime, num_buckets)


def mod_batch(elements, modulus: int) -> List[int]:
    """FKS universe reduction ``x -> x mod q`` over an array of keys."""
    xs = elements if isinstance(elements, list) else list(elements)
    np = numpy_or_none()
    arr = None
    if np is not None and len(xs) >= MIN_LANES and 1 <= modulus < _LANE_LIMIT:
        arr = _as_lanes(np, xs)
    if arr is None:
        if _OBS.active:
            note_route("mod_batch", "scalar")
        return mod_batch_scalar(xs, modulus)
    if _OBS.active:
        note_route("mod_batch", "numpy")
    return (arr % np.uint64(modulus)).tolist()


def equal_mask(left: Sequence, right: Sequence) -> List[int]:
    """Per-index equality verdicts: ``out[i] = 1`` iff ``left[i] == right[i]``.

    The bulk form of the equality sweep's verdict computation (Bob's side
    of Fact 3.5 over a whole tree level).  Both sequences must have equal
    length -- a silent ``zip`` truncation would drop verdicts on the wire.
    """
    if len(left) != len(right):
        raise ValueError(
            f"equal_mask requires equal lengths, got {len(left)} vs {len(right)}"
        )
    np = numpy_or_none()
    lanes_l = lanes_r = None
    if np is not None and len(left) >= MIN_LANES:
        lanes_l = _as_lanes(np, left)
        if lanes_l is not None:
            lanes_r = _as_lanes(np, right)
    if lanes_r is None:
        if _OBS.active:
            note_route("equal_mask", "scalar")
        return equal_mask_scalar(left, right)
    if _OBS.active:
        note_route("equal_mask", "numpy")
    return (lanes_l == lanes_r).astype(np.uint8).tolist()


def sort_ints(values) -> List[int]:
    """Sorted copy of an integer collection (hash-list assembly order)."""
    xs = values if isinstance(values, list) else list(values)
    np = numpy_or_none()
    arr = None
    if np is not None and len(xs) >= MIN_LANES:
        arr = _as_lanes(np, xs)
    if arr is None:
        if _OBS.active:
            note_route("sort_ints", "scalar")
        return sorted(xs)
    if _OBS.active:
        note_route("sort_ints", "numpy")
    arr.sort()
    return arr.tolist()


def fingerprint_sweep(salt: bytes, width: int, payloads) -> List[int]:
    """Bulk shared-random-function fingerprints over serialized payloads.

    Value-identical to per-payload
    ``repro.protocols.fingerprint._fingerprint_impl``: SHA-256 of
    ``salt || payload || counter``, concatenated until ``width`` bits are
    available, truncated from the top.  SHA dominates and lives in C, so
    the batch form's win is one locals-hoisted loop for the whole sweep
    instead of a Python-level dispatch per value; it exists here so the
    fingerprint path has the same kernel surface (and differential
    coverage) as the arithmetic ones.
    """
    sha256 = hashlib.sha256
    needed_bytes = (width + 7) // 8
    drop = 8 * needed_bytes - width
    from_bytes = int.from_bytes
    out = []
    if needed_bytes <= 32:
        # The common case (width <= 256): exactly one digest per payload.
        zero = (0).to_bytes(4, "big")
        for data in payloads:
            digest = sha256(salt + data + zero).digest()
            out.append(from_bytes(digest[:needed_bytes], "big") >> drop)
        return out
    for data in payloads:
        digest_input = salt + data
        digest = b""
        counter = 0
        while len(digest) < needed_bytes:
            digest += sha256(digest_input + counter.to_bytes(4, "big")).digest()
            counter += 1
        out.append(from_bytes(digest[:needed_bytes], "big") >> drop)
    return out
