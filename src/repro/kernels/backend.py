"""numpy detection and gating for the batch kernels.

The kernels in :mod:`repro.kernels.batch` have two implementations each: a
pure-Python scalar oracle (always present, always exact) and a numpy
``uint64``-lane path used when it is *provably* value-identical.  This
module is the single switch deciding which one runs:

* numpy is an **optional** dependency (the ``repro[fast]`` extra).  When it
  is not importable the scalar path is simply the implementation -- nothing
  else in the library changes, and the wire format is identical either way.
* ``REPRO_SCALAR_KERNELS=1`` in the environment forces the scalar path even
  with numpy installed (mirror of the hot-cache kill-switch: useful for
  benchmarking the per-key baseline and for bisecting suspected kernel
  bugs).
* :func:`scalar_only` forces the scalar path for a ``with`` block -- the
  differential test suite and the ``pairwise_batch_scalar`` micro use it to
  time/compare the oracle on a host that has numpy.

Like the hot caches, the backend choice is *semantically invisible*: every
kernel dispatch decision is guarded by an exact lane-safety proof (see
:mod:`repro.kernels.batch`), so switching backends never changes a single
output bit, only wall time.
"""

from __future__ import annotations

import contextlib
import os
from typing import Iterator, Optional

from repro.obs.state import STATE as _OBS

__all__ = [
    "numpy_or_none",
    "numpy_available",
    "backend_name",
    "scalar_only",
    "note_route",
    "SCALAR_ENV_VAR",
]

#: Environment kill-switch: set to a non-empty value to force scalar kernels.
SCALAR_ENV_VAR = "REPRO_SCALAR_KERNELS"

try:  # pragma: no cover - exercised by the no-numpy CI job
    import numpy as _numpy
except ImportError:  # pragma: no cover
    _numpy = None


class _State:
    """Mutable force-scalar flag shared by every kernel dispatch."""

    __slots__ = ("force_scalar",)

    def __init__(self) -> None:
        self.force_scalar = bool(os.environ.get(SCALAR_ENV_VAR))


_STATE = _State()


def numpy_or_none() -> Optional[object]:
    """The numpy module when vectorized kernels may run, else ``None``.

    ``None`` when numpy is not installed *or* the scalar path is forced
    (``REPRO_SCALAR_KERNELS`` / :func:`scalar_only`); kernel dispatchers
    treat both identically.
    """
    if _STATE.force_scalar:
        return None
    return _numpy


def numpy_available() -> bool:
    """True iff vectorized kernels may currently run."""
    return numpy_or_none() is not None


def backend_name() -> str:
    """``"numpy"`` or ``"scalar"`` -- recorded in bench reports so the
    regression gate only compares like against like."""
    return "numpy" if numpy_available() else "scalar"


# (kernel, route) pairs already announced as a ``kernel.route`` event;
# per-dispatch volumes live in the metrics registry, the event stream only
# carries the first sighting of each route per process.
_ROUTES_SEEN: set = set()


def note_route(kernel: str, route: str) -> None:
    """Record one kernel dispatch decision with observability enabled.

    Callers (the dispatchers in :mod:`repro.kernels.batch`) guard on the
    obs kill-switch *before* calling, so the disabled hot path never pays
    for this function.  Every dispatch bumps the
    ``kernels.route.<kernel>.<route>`` counter -- the hit-rate evidence the
    bench docs cite -- and the first dispatch of each (kernel, route) pair
    also emits a ``kernel.route`` trace event.
    """
    from repro.obs import metrics

    metrics.counter(f"kernels.route.{kernel}.{route}").inc()
    key = (kernel, route)
    if key not in _ROUTES_SEEN:
        _ROUTES_SEEN.add(key)
        if _OBS.active:
            _OBS.tracer.emit("kernel.route", kernel=kernel, route=route)


@contextlib.contextmanager
def scalar_only() -> Iterator[None]:
    """Force the scalar kernel path inside the block.

    Used by the differential suite (oracle leg) and the bench suite (the
    per-key baseline micros).  Not thread-safe: the flag is process-global,
    like the hot-cache switch.
    """
    previous = _STATE.force_scalar
    _STATE.force_scalar = True
    try:
        yield
    finally:
        _STATE.force_scalar = previous
