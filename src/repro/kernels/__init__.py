"""``repro.kernels``: batched evaluation of the hot numeric primitives.

The protocol layers (:mod:`repro.hashing`, :mod:`repro.protocols`,
:mod:`repro.core`, :mod:`repro.multiparty`) route their per-key hot loops
-- pairwise-hash images, bucket assignment, FKS reduction, fingerprint and
equality sweeps, sorted hash-list assembly -- through this package instead
of evaluating one Python int at a time.

Two layers:

* :mod:`repro.kernels.backend` -- numpy detection and the scalar
  kill-switch (``REPRO_SCALAR_KERNELS`` / :func:`scalar_only`);
* :mod:`repro.kernels.batch` -- the kernels themselves, each a dispatch
  between an exact scalar oracle and a ``uint64``-lane numpy path that
  runs only when provably value-identical (direct lane-safe range or the
  Mersenne ``2**61 - 1`` split reduction).

numpy is optional (``pip install repro[fast]``); without it every kernel
*is* its scalar oracle and nothing else changes.  See DESIGN.md ("The
kernel layer") for the fallback rule and the differential-testing story.
"""

from repro.kernels.backend import (
    SCALAR_ENV_VAR,
    backend_name,
    numpy_available,
    numpy_or_none,
    scalar_only,
)
from repro.kernels.batch import (
    M61,
    MIN_LANES,
    SEGMENT_MIN_LANES,
    affine_image_batch,
    affine_image_batch_scalar,
    affine_image_segments,
    affine_image_segments_scalar,
    bucket_assign,
    bucket_assign_scalar,
    equal_mask,
    equal_mask_scalar,
    fingerprint_sweep,
    fingerprint_sweep_segments,
    fingerprint_sweep_segments_scalar,
    mod_batch,
    mod_batch_scalar,
    sort_ints,
    sort_ints_scalar,
)

__all__ = [
    "SCALAR_ENV_VAR",
    "backend_name",
    "numpy_available",
    "numpy_or_none",
    "scalar_only",
    "M61",
    "MIN_LANES",
    "SEGMENT_MIN_LANES",
    "affine_image_batch",
    "affine_image_batch_scalar",
    "affine_image_segments",
    "affine_image_segments_scalar",
    "bucket_assign",
    "bucket_assign_scalar",
    "equal_mask",
    "equal_mask_scalar",
    "fingerprint_sweep",
    "fingerprint_sweep_segments",
    "fingerprint_sweep_segments_scalar",
    "mod_batch",
    "mod_batch_scalar",
    "sort_ints",
    "sort_ints_scalar",
]
