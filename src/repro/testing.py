"""Conformance checks for ``INT_k`` protocol implementations.

Downstream users extending this library with their own protocol can run it
through the same contract the built-in suite enforces::

    from repro.testing import check_intersection_contract

    report = check_intersection_contract(MyProtocol(1 << 20, 128))
    assert report.passed, report.violations

The contract, derived from the paper's guarantees:

1. **Exactness w.h.p.** -- across seeded instances spanning the overlap
   regimes, both parties output exactly ``S n T`` in all but
   ``failure_budget`` runs;
2. **Sandwich invariant** (optional, on by default) -- every output sits
   between ``S n T`` and the owner's input, even on failing runs: the
   paper's protocols are one-sided by construction, and wrappers built on
   Corollary 3.4 need this to amplify soundly;
3. **Agreement implies exactness** (optional) -- whenever the two outputs
   coincide they must equal the truth (Proposition 3.9's invariant);
4. **Replayability** -- same seed, same transcript cost;
5. **Round budget** (optional) -- ``num_messages <= max_messages``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.workloads.twoparty import WorkloadSpec, generate_pair

__all__ = ["ConformanceReport", "check_intersection_contract"]


@dataclass
class ConformanceReport:
    """Outcome of a conformance run.

    :param runs: total protocol executions performed.
    :param failures: runs whose outputs were not exactly ``S n T``.
    :param violations: human-readable contract violations (empty = pass).
    """

    runs: int = 0
    failures: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when no contract clause was violated."""
        return not self.violations

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        lines = [f"{status}: {self.runs} runs, {self.failures} inexact"]
        lines.extend(f"  - {violation}" for violation in self.violations)
        return "\n".join(lines)


def check_intersection_contract(
    protocol,
    *,
    universe_size: Optional[int] = None,
    max_set_size: Optional[int] = None,
    seeds_per_regime: int = 5,
    failure_budget: int = 0,
    check_sandwich: bool = True,
    check_agreement_exactness: bool = True,
    max_messages: Optional[int] = None,
    first_seed: int = 0,
) -> ConformanceReport:
    """Run the contract against a protocol instance.

    :param protocol: object exposing ``universe_size``, ``max_set_size``
        and ``run(S, T, seed=...) -> IntersectionOutcome``-shaped results.
    :param universe_size: override the protocol's universe (defaults to
        its attribute).
    :param max_set_size: override the instance ``k`` (defaults to the
        protocol's attribute).
    :param seeds_per_regime: seeded runs per overlap regime
        {0, 0.5, 1.0} -- ``3 * seeds_per_regime`` runs total.
    :param failure_budget: tolerated inexact runs (0 for deterministic or
        strongly amplified protocols; give randomized protocols slack
        proportional to their stated error).
    :param check_sandwich: enforce clause 2.
    :param check_agreement_exactness: enforce clause 3.
    :param max_messages: enforce clause 5 when given.
    :param first_seed: base seed (contract runs are replayable).
    """
    n = universe_size or protocol.universe_size
    k = max_set_size or protocol.max_set_size
    report = ConformanceReport()

    for overlap in (0.0, 0.5, 1.0):
        spec = WorkloadSpec(n, k, overlap)
        for offset in range(seeds_per_regime):
            seed = first_seed + offset
            s, t = generate_pair(spec, seed)
            truth = s & t
            outcome = protocol.run(s, t, seed=seed)
            report.runs += 1

            exact = (
                outcome.alice_output == truth and outcome.bob_output == truth
            )
            if not exact:
                report.failures += 1

            if check_sandwich:
                for side, own in (("alice", s), ("bob", t)):
                    produced = getattr(outcome, f"{side}_output")
                    if produced is None:
                        report.violations.append(
                            f"overlap={overlap} seed={seed}: {side} output "
                            f"is None"
                        )
                    elif not (truth <= produced <= own):
                        report.violations.append(
                            f"overlap={overlap} seed={seed}: {side} output "
                            f"violates S n T <= out <= own"
                        )

            if (
                check_agreement_exactness
                and outcome.alice_output == outcome.bob_output
                and outcome.alice_output != truth
            ):
                report.violations.append(
                    f"overlap={overlap} seed={seed}: outputs agree but are "
                    f"not the intersection (Prop 3.9 violated)"
                )

            if max_messages is not None and outcome.num_messages > max_messages:
                report.violations.append(
                    f"overlap={overlap} seed={seed}: {outcome.num_messages} "
                    f"messages exceeds budget {max_messages}"
                )

            replay = protocol.run(s, t, seed=seed)
            if replay.total_bits != outcome.total_bits:
                report.violations.append(
                    f"overlap={overlap} seed={seed}: replay changed cost "
                    f"({outcome.total_bits} -> {replay.total_bits})"
                )

    if report.failures > failure_budget:
        report.violations.append(
            f"{report.failures} inexact runs exceed the failure budget "
            f"{failure_budget}"
        )
    return report
