"""The exists-equal problem (Saglam-Tardos [ST13]).

``EXISTS-EQ^n_k``: Alice holds ``x_1..x_k``, Bob holds ``y_1..y_k``, and
they must decide whether *some* coordinate pair is equal.  [ST13] -- the
source of the paper's ``Omega(k log^(r) k)`` round lower bound -- studies
this problem as the equality-world analogue of sparse set disjointness (by
Fact 2.1's pair-tagging, exists-equal is exactly non-emptiness of the
tagged intersection).

Two routes are provided, mirroring the paper's relationships:

* :class:`ExistsEqualProtocol` -- direct: one amortized-equality run
  (Theorem 3.2 interface), output ``any(verdicts)``.  ``O(k)`` expected
  bits.  The error is one-sided: unequal verdicts are certain and truly
  equal pairs are never reported unequal, so a ``False`` answer is always
  correct, while a ``True`` answer errs (a false equal verdict on an
  all-unequal instance) with probability ``2^-Omega(sqrt(k))``.
* :func:`exists_equal_via_intersection` -- through Fact 2.1: tag, intersect
  with the tree protocol, test emptiness.  Demonstrates the reduction
  chain ``EXISTS-EQ <= EQ^n_k <= INT_k``.
"""

from __future__ import annotations

from typing import Any, Generator, Sequence

from repro.comm.engine import PartyContext, run_two_party
from repro.protocols.fknn import run_amortized_equality

__all__ = ["ExistsEqualProtocol", "exists_equal_via_intersection"]


class ExistsEqualProtocol:
    """Decide ``exists i: x_i == y_i`` with ``O(k)`` expected bits.

    ``False`` answers are always correct (unequal verdicts are one-sided
    certain); ``True`` answers err with probability ``2^-Omega(sqrt(k))``.

    :param num_instances: ``k``, the number of coordinate pairs.
    :param max_passes: retry cutoff forwarded to the amortized-equality
        engine.
    """

    name = "exists-equal"

    def __init__(self, num_instances: int, *, max_passes: int = 64) -> None:
        if num_instances < 0:
            raise ValueError(f"num_instances must be >= 0: {num_instances}")
        self.num_instances = num_instances
        self.max_passes = max_passes

    def _party(self, ctx: PartyContext) -> Generator:
        verdicts = yield from run_amortized_equality(
            ctx,
            ctx.input,
            num_instances=self.num_instances,
            max_passes=self.max_passes,
            label="exists-eq",
        )
        return any(verdicts)

    def alice(self, ctx: PartyContext) -> Generator:
        """Alice's coroutine over her value sequence."""
        return (yield from self._party(ctx))

    def bob(self, ctx: PartyContext) -> Generator:
        """Bob's coroutine over his value sequence."""
        return (yield from self._party(ctx))

    def run(
        self, alice_values: Sequence[Any], bob_values: Sequence[Any], *, seed: int = 0
    ):
        """Execute on one instance; outputs are booleans."""
        return run_two_party(
            self.alice,
            self.bob,
            alice_input=tuple(alice_values),
            bob_input=tuple(bob_values),
            shared_seed=seed,
        )


def exists_equal_via_intersection(
    alice_values: Sequence[int],
    bob_values: Sequence[int],
    string_bits: int,
    *,
    seed: int = 0,
):
    """Exists-equal through the Fact 2.1 chain: pair-tag, run the tree
    intersection protocol, report non-emptiness.

    :returns: the :class:`~repro.comm.engine.TwoPartyOutcome`; both outputs
        are booleans (True = some coordinate pair equal).
    """
    from repro.reductions.eq_to_int import EqualityViaIntersection

    reduction = EqualityViaIntersection(len(alice_values), string_bits)
    outcome = reduction.run(alice_values, bob_values, seed=seed)
    outcome.alice_output = any(outcome.alice_output)
    outcome.bob_output = any(outcome.bob_output)
    return outcome
