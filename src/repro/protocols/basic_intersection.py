"""Lemma 3.3: the ``Basic-Intersection`` building block.

Protocol (4 messages):

1. Alice sends ``|S|``;
2. Bob sends ``|T|``;  both now know ``m = |S| + |T|`` and derive the shared
   hash ``h: [n] -> [t]`` with ``t = Theta(m^(i+2))``;
3. Alice sends the sorted list ``h(S)``;
4. Bob sends the sorted list ``h(T)``.

Outputs ``S' = h^{-1}(h(T)) n S`` (Alice) and ``T' = h^{-1}(h(S)) n T``
(Bob), i.e. each party keeps exactly its elements whose hash value the other
party also produced.  Guarantees (Lemma 3.3):

1. ``S' subset of S`` and ``T' subset of T`` -- always;
2. if ``S n T`` is empty then ``S' n T'`` is empty -- always;
3. ``S n T subset of S' n T'`` -- always; and with probability at least
   ``1 - 1/m^i`` (no collision of ``h`` on ``S u T``) in fact
   ``S' = T' = S n T``.

Corollary 3.4 -- *if the two outputs are equal they equal the intersection*
-- is what makes equality tests a sound verification step: the
verification-tree protocol never needs to re-check a passed test's content.

Communication: ``O(i * m log m)`` bits.  The class also exposes the
stateless core (:class:`BasicIntersectionCore`) used by the tree protocol to
run many instances batched into shared messages.
"""

from __future__ import annotations

import math
from typing import FrozenSet, Generator, Iterable, List

from repro.comm.engine import PartyContext, Recv, Send
from repro.hashing.families import collision_free_range
from repro.obs.state import STATE as _OBS
from repro.hashing.pairwise import PairwiseHash, sample_pairwise_hash
from repro.kernels import sort_ints
from repro.protocols.base import SetIntersectionProtocol
from repro.util.bits import (
    BitReader,
    BitWriter,
    encode_elias_gamma,
    decode_elias_gamma,
)
from repro.util.rng import SharedRandomness

__all__ = [
    "BasicIntersectionProtocol",
    "BasicIntersectionCore",
    "range_for_inverse_failure",
]


def range_for_inverse_failure(total_size: int, inverse_failure: float) -> int:
    """Hash range making the collision probability on ``m`` elements at most
    ``1/inverse_failure``.

    With the pairwise family's per-pair bound ``2/t`` and ``< m^2/2`` pairs,
    ``t >= m^2 * inverse_failure`` suffices.  Used by the tree protocol,
    where the target failure is ``1/(log^(r-i-1) k)^4`` rather than
    Lemma 3.3's ``1/m^i``.
    """
    m = max(total_size, 2)
    return max(2, math.ceil(m * m * max(inverse_failure, 1.0)))


class BasicIntersectionCore:
    """The stateless per-instance logic of ``Basic-Intersection``.

    Both parties construct the core with identical arguments (sizes were
    exchanged first), obtaining the same hash function, and then use
    :meth:`write_hashes` / :meth:`read_hashes` / :meth:`filter_with` to
    produce and consume the hash-list messages.  Factoring this out lets the
    tree protocol batch many leaves' instances into four shared messages.

    :param universe_size: domain of the elements.
    :param total_size: ``m = |S| + |T|`` (known to both after size exchange).
    :param range_size: the hash range ``t``.
    :param shared: shared randomness; the hash is drawn from
        ``shared.stream(label)``.
    :param label: stream label; distinct invocations must use distinct
        labels so re-runs get fresh hash functions.
    """

    def __init__(
        self,
        universe_size: int,
        total_size: int,
        range_size: int,
        shared: SharedRandomness,
        label: str,
    ) -> None:
        self.hash_fn: PairwiseHash = sample_pairwise_hash(
            universe_size, range_size, shared.stream(label)
        )
        self.total_size = total_size

    @property
    def value_width(self) -> int:
        """Wire width of one hash value."""
        return self.hash_fn.output_bits

    def write_hashes(self, writer: BitWriter, elements: Iterable[int]) -> None:
        """Append the sorted hash list of ``elements`` (no count header; the
        receiver knows the count from the size exchange).  Images come from
        one batch-kernel sweep and the whole run goes through
        :meth:`~repro.util.bits.BitWriter.write_run`, so a batch of many
        leaves' lists into one shared writer stays linear in the combined
        message length."""
        writer.write_run(
            sort_ints(self.hash_fn.images(list(elements))), self.value_width
        )

    def read_hashes(self, reader: BitReader, count: int) -> List[int]:
        """Read ``count`` hash values (bulk read off the message buffer)."""
        return reader.read_run(count, self.value_width)

    def filter_with(
        self, own_elements: Iterable[int], other_hashes: Iterable[int]
    ) -> FrozenSet[int]:
        """``h^{-1}(other_hashes) n own`` -- the Lemma 3.3 output rule."""
        other = set(other_hashes)
        own = list(own_elements)
        return frozenset(
            x
            for x, image in zip(own, self.hash_fn.images(own))
            if image in other
        )


class BasicIntersectionProtocol(SetIntersectionProtocol):
    """Lemma 3.3 as a standalone 4-message protocol.

    :param universe_size: universe ``[n]``.
    :param max_set_size: bound on each input set.
    :param exponent: the ``i`` of Lemma 3.3; exactness holds with
        probability at least ``1 - 1/m^i`` where ``m = |S| + |T|``.
    :param stream_label: label for the shared hash (fresh per invocation
        when callers re-run the protocol).
    """

    name = "basic-intersection"

    def __init__(
        self,
        universe_size: int,
        max_set_size: int,
        *,
        exponent: int = 2,
        stream_label: str = "basic-intersection",
    ) -> None:
        super().__init__(universe_size, max_set_size)
        if exponent < 0:
            raise ValueError(f"exponent must be >= 0, got {exponent}")
        self.exponent = exponent
        self.stream_label = stream_label

    def _core(self, ctx: PartyContext, total_size: int) -> BasicIntersectionCore:
        range_size = collision_free_range(max(total_size, 2), self.exponent)
        return BasicIntersectionCore(
            universe_size=self.universe_size,
            total_size=total_size,
            range_size=range_size,
            shared=ctx.shared,
            label=self.stream_label,
        )

    def alice(self, ctx: PartyContext) -> Generator:
        """Rounds 1 and 3 of the message schedule (sizes, then hashes)."""
        own = frozenset(ctx.input)
        yield Send(encode_elias_gamma(len(own)))
        other_size = decode_elias_gamma((yield Recv()))
        core = self._core(ctx, len(own) + other_size)
        writer = BitWriter()
        core.write_hashes(writer, own)
        yield Send(writer.finish())
        reader = BitReader((yield Recv()))
        other_hashes = core.read_hashes(reader, other_size)
        reader.expect_exhausted()
        result = core.filter_with(own, other_hashes)
        if _OBS.active:
            # Lemma 3.3's one-sided guarantee (S' superset of S n T) is only
            # observable inside a run; surface the filter outcome so a trace
            # can audit it against ground truth.
            _OBS.tracer.emit(
                "verify.outcome",
                protocol=self.name,
                context="filter/alice",
                own_size=len(own),
                other_size=other_size,
                kept=len(result),
            )
        return result

    def bob(self, ctx: PartyContext) -> Generator:
        """Rounds 2 and 4 of the message schedule."""
        own = frozenset(ctx.input)
        other_size = decode_elias_gamma((yield Recv()))
        yield Send(encode_elias_gamma(len(own)))
        core = self._core(ctx, len(own) + other_size)
        reader = BitReader((yield Recv()))
        other_hashes = core.read_hashes(reader, other_size)
        reader.expect_exhausted()
        writer = BitWriter()
        core.write_hashes(writer, own)
        yield Send(writer.finish())
        return core.filter_with(own, other_hashes)
