"""Min-wise hashing sketches: the *approximate* one-way comparator.

The paper positions itself against sketching: "a recent work of Pagh et
al. [PSW14] studies approximating the size of the set intersection in the
1-way communication model, while we seek to recover the actual intersection
and allow 2-way communication."  This module implements the classic
``t``-permutation MinHash sketch so benchmarks can quantify that contrast:

* one message of ``t * O(log k)`` bits (plus the set size);
* the receiver estimates the Jaccard similarity as the fraction of agreeing
  sketch coordinates (each coordinate agrees with probability exactly
  ``J = |S n T| / |S u T|`` under min-wise hashing), and from it
  ``|S n T| ~= J/(1+J) * (|S| + |T|)``;
* standard error ``~ sqrt(J(1-J)/t)`` -- an *estimate*, never the set, and
  never exact: matching the intersection protocols' exact answers would
  need ``t -> infinity``.

The benchmark (E11) shows the tradeoff: at equal communication the exact
tree protocol returns the whole intersection while MinHash returns a noisy
scalar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Generator, Iterable, List, Optional

from repro.comm.engine import PartyContext, Recv, Send, run_two_party
from repro.hashing.pairwise import PairwiseHash, sample_pairwise_hash
from repro.protocols.base import validate_set_pair
from repro.util.bits import BitReader, BitWriter
from repro.util.iterlog import ceil_log2
from repro.util.rng import SharedRandomness

__all__ = ["MinHashEstimate", "MinHashSketchProtocol", "build_sketch"]


@dataclass(frozen=True)
class MinHashEstimate:
    """Bob's output: estimated similarity and intersection size.

    :param jaccard_estimate: fraction of agreeing sketch coordinates.
    :param intersection_estimate: ``J/(1+J) * (|S| + |T|)``, rounded.
    :param union_estimate: ``(|S| + |T|) / (1 + J)``, rounded.
    :param num_hashes: sketch width ``t`` (drives the standard error).
    """

    jaccard_estimate: float
    intersection_estimate: int
    union_estimate: int
    num_hashes: int


def _sketch_hashes(
    shared: SharedRandomness, universe_size: int, num_hashes: int, label: str
) -> List[PairwiseHash]:
    """The ``t`` shared min-wise hash functions.

    Pairwise-independent functions are not exactly min-wise independent,
    but the bias is ``O(1/range)`` with a large range -- the standard
    practical instantiation ([PSW14] likewise uses realizable families).
    """
    range_size = max(universe_size * 4, 1 << 20)
    return [
        sample_pairwise_hash(
            universe_size, range_size, shared.stream(f"{label}/{index}")
        )
        for index in range(num_hashes)
    ]


def build_sketch(
    elements: Iterable[int],
    hashes: List[PairwiseHash],
) -> List[Optional[int]]:
    """The MinHash sketch: per hash function, the minimum image over the
    set (``None`` for the empty set)."""
    elements = list(elements)
    if not elements:
        return [None] * len(hashes)
    return [min(h(x) for x in elements) for h in hashes]


class MinHashSketchProtocol:
    """One-way approximate intersection-size estimation ([PSW14] framing).

    Alice ships her sketch; Bob outputs a :class:`MinHashEstimate`.  Alice
    outputs ``None`` (one-way protocols leave the sender uninformed --
    part of the contrast with the two-way exact protocols).

    :param universe_size: universe ``[n]``.
    :param max_set_size: bound ``k``.
    :param num_hashes: sketch width ``t``; standard error of the Jaccard
        estimate is ``~ 1/sqrt(t)``.
    """

    name = "minhash-sketch"

    def __init__(
        self, universe_size: int, max_set_size: int, *, num_hashes: int = 128
    ) -> None:
        if num_hashes < 1:
            raise ValueError(f"num_hashes must be >= 1, got {num_hashes}")
        self.universe_size = universe_size
        self.max_set_size = max_set_size
        self.num_hashes = num_hashes

    def _hashes(self, ctx: PartyContext) -> List[PairwiseHash]:
        return _sketch_hashes(
            ctx.shared, self.universe_size, self.num_hashes, "minhash"
        )

    @property
    def value_width(self) -> int:
        """Wire width of one sketch coordinate."""
        return ceil_log2(max(self.universe_size * 4, 1 << 20))

    def alice(self, ctx: PartyContext) -> Generator:
        """Alice: one message carrying ``|S|`` and the sketch."""
        own: FrozenSet[int] = frozenset(ctx.input)
        sketch = build_sketch(own, self._hashes(ctx))
        writer = BitWriter()
        writer.write_gamma(len(own))
        if own:
            for value in sketch:
                writer.write_uint(value, self.value_width)
        yield Send(writer.finish())
        return None

    def bob(self, ctx: PartyContext) -> Generator:
        """Bob: compare sketches coordinate-wise, output the estimate."""
        own: FrozenSet[int] = frozenset(ctx.input)
        reader = BitReader((yield Recv()))
        alice_size = reader.read_gamma()
        alice_sketch = (
            [reader.read_uint(self.value_width) for _ in range(self.num_hashes)]
            if alice_size
            else []
        )
        reader.expect_exhausted()
        if alice_size == 0 or not own:
            return MinHashEstimate(
                jaccard_estimate=0.0,
                intersection_estimate=0,
                union_estimate=alice_size + len(own),
                num_hashes=self.num_hashes,
            )
        own_sketch = build_sketch(own, self._hashes(ctx))
        agreements = sum(
            int(a == b) for a, b in zip(alice_sketch, own_sketch)
        )
        jaccard = agreements / self.num_hashes
        total = alice_size + len(own)
        intersection = int(round(total * jaccard / (1.0 + jaccard)))
        union = total - intersection
        return MinHashEstimate(
            jaccard_estimate=jaccard,
            intersection_estimate=intersection,
            union_estimate=union,
            num_hashes=self.num_hashes,
        )

    def run(self, alice_set, bob_set, *, seed: int = 0):
        """Execute on one instance; Bob's output is the
        :class:`MinHashEstimate`."""
        s, t = validate_set_pair(
            alice_set, bob_set, self.universe_size, self.max_set_size
        )
        return run_two_party(
            self.alice, self.bob, alice_input=s, bob_input=t, shared_seed=seed
        )
