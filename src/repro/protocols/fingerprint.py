"""Fingerprints: shared random hash functions for verification tests.

Fact 3.5 ("a protocol which uses a random hash function h into k bits")
relies on the common random string providing a *shared random function*:
both parties evaluate the same random ``h`` on their local values and
compare images.  For two fixed distinct inputs, a uniformly random function
into ``b`` bits collides with probability exactly ``2^-b``.

We realize the shared random function the standard way for simulations: the
function on a value ``v`` is ``SHA-256(salt || canonical_bytes(v))``
truncated to ``b`` bits, where ``salt`` is drawn from the shared random
stream.  Distinct inputs produce independent-looking ``b``-bit outputs; the
``2^-b`` collision bound holds under the usual random-oracle heuristic,
which is the same idealization the paper's Fact 3.5 makes ("a random hash
function ... into k bits").  An exactly-pairwise-independent alternative
(polynomial fingerprints) is available via :func:`polynomial_fingerprint`
for callers that want a standard-model guarantee at the cost of
``O(log(message length))`` extra bits.

:func:`canonical_bytes` defines the unambiguous serialization of the values
protocols compare: integers, strings of bits, and (nested) tuples and sets
of such.  Two values serialize identically iff they are equal, which is what
makes "fingerprints agree implies values agree w.h.p." sound.
"""

from __future__ import annotations

import hashlib
import random
from functools import lru_cache
from typing import Any

from repro.hashing.primes import next_prime
from repro.kernels import fingerprint_sweep
from repro.util import hotcache
from repro.util.bits import BitString
from repro.util.rng import RandomStream

__all__ = ["canonical_bytes", "Fingerprinter", "polynomial_fingerprint"]


def _encode_length(length: int) -> bytes:
    """Self-delimiting length header (varint, 7 bits per byte)."""
    out = bytearray()
    while True:
        byte = length & 0x7F
        length >>= 7
        if length:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _canonical_bytes_impl(value: Any) -> bytes:
    if value is None:
        return b"N"
    if isinstance(value, bool):
        return b"B1" if value else b"B0"
    if isinstance(value, int):
        if value < 0:
            raise ValueError(f"canonical_bytes only covers nonnegative ints: {value}")
        payload = value.to_bytes((value.bit_length() + 7) // 8 or 1, "big")
        return b"I" + _encode_length(len(payload)) + payload
    if isinstance(value, bytes):
        return b"Y" + _encode_length(len(value)) + value
    if isinstance(value, str):
        payload = value.encode("utf-8")
        return b"S" + _encode_length(len(payload)) + payload
    if isinstance(value, BitString):
        body = canonical_bytes(value.value) + canonical_bytes(len(value))
        return b"W" + _encode_length(len(body)) + body
    if isinstance(value, (tuple, list)):
        parts = [canonical_bytes(item) for item in value]
        body = b"".join(parts)
        return b"T" + _encode_length(len(parts)) + _encode_length(len(body)) + body
    if isinstance(value, (set, frozenset)):
        parts = sorted(canonical_bytes(item) for item in value)
        body = b"".join(parts)
        return b"F" + _encode_length(len(parts)) + _encode_length(len(body)) + body
    raise TypeError(f"canonical_bytes does not support {type(value).__name__}")


# typed=True is load-bearing: lru_cache keys compare with ==, and
# True == 1 even though their serializations differ (b"B1" vs the
# I-tagged form), so an untyped cache would conflate them.
_canonical_bytes_cached = hotcache.register(
    "protocols.fingerprint.canonical_bytes",
    lru_cache(maxsize=1 << 16, typed=True)(_canonical_bytes_impl),
)


def canonical_bytes(value: Any) -> bytes:
    """Serialize a value unambiguously (equal values <=> equal bytes).

    Supported: nonnegative ``int``, ``bytes``, ``str``, ``BitString``,
    ``None``, ``bool``, and (nested) ``tuple`` / ``list`` / ``set`` /
    ``frozenset`` of supported values.  Sets are serialized in sorted order
    of their members' serializations, so set equality maps to byte equality.
    Tagged and length-prefixed, so e.g. ``(1, 2)`` and ``(12,)`` cannot
    collide.

    Hashable values are memoized (equality tests fingerprint the same hash
    values and small tuples over and over); unhashable containers fall
    through to the direct implementation, whose recursion still benefits
    from cached leaves.
    """
    if hotcache.enabled():
        try:
            return _canonical_bytes_cached(value)
        except TypeError:
            # Unhashable (list / set) -- serialize directly.  Unsupported
            # types also land here and re-raise from the impl below.
            pass
    return _canonical_bytes_impl(value)


def _salt_impl(derived_seed: int) -> bytes:
    # Must match RandomStream.bits(256) on a fresh stream bit for bit.
    return random.Random(derived_seed).getrandbits(256).to_bytes(32, "big")


_salt_cached = hotcache.register(
    "protocols.fingerprint.salt", lru_cache(maxsize=1 << 16)(_salt_impl)
)


def _replay_salt_draw(rng: random.Random) -> None:
    rng.getrandbits(256)


def _fingerprint_impl(salt: bytes, width: int, data: bytes) -> int:
    digest_input = salt + data
    needed_bytes = (width + 7) // 8
    digest = b""
    counter = 0
    while len(digest) < needed_bytes:
        digest += hashlib.sha256(
            digest_input + counter.to_bytes(4, "big")
        ).digest()
        counter += 1
    as_int = int.from_bytes(digest[:needed_bytes], "big")
    return as_int >> (8 * needed_bytes - width)


_fingerprint_cached = hotcache.register(
    "protocols.fingerprint.value", lru_cache(maxsize=1 << 16)(_fingerprint_impl)
)


def _fingerprint_of_impl(salt: bytes, width: int, value: Any) -> int:
    return _fingerprint_impl(salt, width, canonical_bytes(value))


# Value-keyed variant: one cache lookup per fingerprint instead of
# canonical_bytes + digest lookups.  typed=True for the same True == 1
# reason as the canonical_bytes cache.
_fingerprint_of_cached = hotcache.register(
    "protocols.fingerprint.value_of",
    lru_cache(maxsize=1 << 16, typed=True)(_fingerprint_of_impl),
)


class Fingerprinter:
    """A shared random function into ``width`` bits.

    Both parties construct a ``Fingerprinter`` from the same shared stream
    (same label) and obtain the same function.  For distinct inputs the
    images collide with probability ``~2^-width``; equal inputs always
    agree, giving the one-sided error structure of Fact 3.5.

    The salt draw and the per-value digests are deterministic given the
    stream's derived seed, so both are served from hot caches: within one
    run the two parties fingerprint the same values under the same salt, and
    across replayed runs (benchmarks, amplification retries) everything
    repeats.  The caches are value-transparent -- disabling them (see
    :mod:`repro.util.hotcache`) changes timing only, never a single bit.

    :param stream: shared random stream the salt is drawn from.
    :param width: output width in bits (``>= 1``).
    """

    def __init__(self, stream: RandomStream, width: int) -> None:
        if width < 1:
            raise ValueError(f"fingerprint width must be >= 1, got {width}")
        self.width = width
        if hotcache.enabled() and stream.untouched:
            self._salt = _salt_cached(stream.derived_seed)
            stream.skip_draws(_replay_salt_draw)
        else:
            self._salt = stream.bits(256).value.to_bytes(32, "big")

    @property
    def salt(self) -> bytes:
        """The 32-byte salt defining this shared random function.

        Exposed so batch executors (the serve layer's round-barrier
        coalescer) can pool many fingerprinters' sweeps into one
        :func:`repro.kernels.fingerprint_sweep_segments` dispatch; the
        pooled evaluation is value-identical to :meth:`values_of`.
        """
        return self._salt

    def value_of(self, value: Any) -> int:
        """The fingerprint of ``value`` as an integer in ``[2^width)``."""
        if hotcache.enabled():
            try:
                return _fingerprint_of_cached(self._salt, self.width, value)
            except TypeError:
                # Unhashable value: fall back to the digest-keyed cache.
                return _fingerprint_cached(
                    self._salt, self.width, canonical_bytes(value)
                )
        return _fingerprint_impl(self._salt, self.width, canonical_bytes(value))

    def values_of(self, values) -> list:
        """Bulk :meth:`value_of` over *hashable* values.

        One cache-dispatch decision for the whole sweep instead of one per
        value -- the tree protocol fingerprints every node of a level in
        one go.  Callers must pass hashable values only (the tree's node
        values are frozensets); unhashable values need :meth:`value_of`.
        With the caches bypassed the sweep runs through
        :func:`repro.kernels.fingerprint_sweep`, the locals-hoisted bulk
        digest kernel (value-identical per the differential suite).
        """
        salt = self._salt
        width = self.width
        if hotcache.enabled():
            cached = _fingerprint_of_cached
            return [cached(salt, width, value) for value in values]
        return fingerprint_sweep(
            salt, width, [canonical_bytes(value) for value in values]
        )

    def bits_of(self, value: Any) -> BitString:
        """The fingerprint as a ``width``-bit :class:`BitString`."""
        return BitString._from_value(self.value_of(value), self.width)


def polynomial_fingerprint(
    data: bytes, error_exponent: int, stream: RandomStream
) -> tuple:
    """Standard-model fingerprint: evaluate the data polynomial at a random
    point of a prime field.

    Views ``data`` as coefficients of a polynomial over ``F_p`` with
    ``p >= 2^error_exponent * 8 * len(data)`` and evaluates it at a random
    ``z``; two distinct byte strings of length ``<= L`` collide with
    probability at most ``L / p <= 2^-error_exponent``.  Costs
    ``error_exponent + O(log L)`` bits on the wire -- the ``O(log L)``
    overhead is the price of avoiding the random-oracle heuristic.

    :returns: ``(value, width)`` where ``value < 2^width``.
    """
    if error_exponent < 1:
        raise ValueError(f"error_exponent must be >= 1, got {error_exponent}")
    degree = max(len(data), 1)
    prime = next_prime((degree << error_exponent) + 1)
    point = stream.uint_below(prime)
    accumulator = len(data) % prime  # mix in the length to separate prefixes
    for byte in data:
        accumulator = (accumulator * 256 + byte + 1) * point % prime
    width = (prime - 1).bit_length()
    return accumulator, width
