"""Theorem 3.1: ``O(k)`` expected bits via bucketing + amortized equality.

The construction of Section 3.1:

1. a shared hash ``H: [n] -> [N]`` with ``N = k^c`` (``c > 2``) reduces the
   universe; ``H`` is collision-free on ``S u T`` except with probability
   ``1/Omega(k^{c-2})``, so the parties may pretend ``S, T subset of [N]``;
2. a shared hash ``h: [N] -> [k]`` splits the (reduced) sets into buckets
   ``S_i, T_i``;
3. for every bucket ``i`` and every pair ``(s, t) in S_i x T_i`` the parties
   create one equality instance; the expected total number of instances is
   at most ``6k`` (the paper's equation (1): bucket sizes are Binomial
   ``B(|S u T|, 1/k)``, so ``E[|S_i| |T_i|] <= E[|(S u T)_i|^2] = O(1)``);
4. all instances are solved with one invocation of the amortized-equality
   protocol (Theorem 3.2 interface, :mod:`repro.protocols.fknn`); an
   element belongs to the output exactly when one of its instances came
   back equal.

Bucket sizes are exchanged first (``O(k)`` bits, 2 messages) so both parties
agree on the instance list.  Expected communication is ``O(k)``; rounds are
``O(log k)`` with our amortized-equality implementation, within Theorem
3.1's ``O(sqrt(k))`` budget (the theorem's round count is an upper bound
inherited from FKNN's inherently sequential protocol).

Error sources: an ``H`` collision on ``S u T`` (``<= 4/k`` at ``c = 3``,
may add spurious elements) or an amortized-equality false equal
(``2^-Omega(sqrt(k))``); overall success ``1 - 1/poly(k)`` as stated.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Generator, List, Tuple

from repro.comm.engine import PartyContext, Recv, Send
from repro.hashing.pairwise import PairwiseHash, sample_pairwise_hash
from repro.protocols.base import SetIntersectionProtocol
from repro.protocols.fknn import run_amortized_equality
from repro.util.bits import BitReader, BitWriter

__all__ = ["SqrtKProtocol"]


class SqrtKProtocol(SetIntersectionProtocol):
    """The Theorem 3.1 protocol.

    :param universe_size: universe ``[n]``.
    :param max_set_size: bound ``k``.
    :param universe_exponent: the ``c`` of ``N = k^c`` (must exceed 2 for
        the Fact 2.1 / collision analysis; default 3).
    :param max_passes: retry cutoff forwarded to the amortized-equality
        sub-protocol.
    """

    name = "sqrt-k"

    def __init__(
        self,
        universe_size: int,
        max_set_size: int,
        *,
        universe_exponent: int = 3,
        max_passes: int = 64,
    ) -> None:
        super().__init__(universe_size, max_set_size)
        if universe_exponent <= 2:
            raise ValueError(
                f"universe_exponent must be > 2 (Fact 2.1), got {universe_exponent}"
            )
        self.universe_exponent = universe_exponent
        self.max_passes = max_passes
        self.reduced_universe = max(max_set_size, 2) ** universe_exponent
        self.num_buckets = max_set_size

    def _hashes(self, ctx: PartyContext) -> Tuple[PairwiseHash, PairwiseHash]:
        reduce_hash = sample_pairwise_hash(
            self.universe_size, self.reduced_universe, ctx.shared.stream("sqrtk/H")
        )
        bucket_hash = sample_pairwise_hash(
            self.reduced_universe, self.num_buckets, ctx.shared.stream("sqrtk/h")
        )
        return reduce_hash, bucket_hash

    def _party(self, ctx: PartyContext) -> Generator:
        is_alice = ctx.role == "alice"
        own: FrozenSet[int] = frozenset(ctx.input)
        reduce_hash, bucket_hash = self._hashes(ctx)

        # Reduced images per bucket, with back-maps to original elements
        # (an H collision merges originals under one image; the error
        # analysis charges this to the 1/poly(k) failure budget).
        back_map: Dict[int, List[int]] = {}
        for element in sorted(own):
            back_map.setdefault(reduce_hash(element), []).append(element)
        buckets: Dict[int, List[int]] = {}
        for image in sorted(back_map):
            buckets.setdefault(bucket_hash(image), []).append(image)

        my_sizes = [len(buckets.get(i, ())) for i in range(self.num_buckets)]
        writer = BitWriter()
        for size in my_sizes:
            writer.write_gamma(size)
        if is_alice:
            yield Send(writer.finish())
            reader = BitReader((yield Recv()))
        else:
            reader = BitReader((yield Recv()))
            yield Send(writer.finish())
        other_sizes = [reader.read_gamma() for _ in range(self.num_buckets)]
        reader.expect_exhausted()

        # Instance list: (bucket, alice_rank, bob_rank), common knowledge.
        alice_sizes = my_sizes if is_alice else other_sizes
        bob_sizes = other_sizes if is_alice else my_sizes
        instances: List[Tuple[int, int, int]] = [
            (bucket, a_rank, b_rank)
            for bucket in range(self.num_buckets)
            for a_rank in range(alice_sizes[bucket])
            for b_rank in range(bob_sizes[bucket])
        ]
        my_rank = 1 if is_alice else 2
        my_values = [
            buckets[instance[0]][instance[my_rank]] for instance in instances
        ]

        verdicts = yield from run_amortized_equality(
            ctx,
            my_values,
            num_instances=len(instances),
            max_passes=self.max_passes,
            label="sqrtk/eq",
        )

        matched_images = {
            my_values[index] for index, equal in enumerate(verdicts) if equal
        }
        return frozenset(
            original
            for image in matched_images
            for original in back_map[image]
        )

    def alice(self, ctx: PartyContext) -> Generator:
        """Alice's side (her ranks are the second instance coordinate)."""
        return (yield from self._party(ctx))

    def bob(self, ctx: PartyContext) -> Generator:
        """Bob's side (his ranks are the third instance coordinate)."""
        return (yield from self._party(ctx))
