"""The trivial deterministic protocol: ``D^(1)(INT_k) = O(k log(n/k))``.

Alice gap-encodes her entire set (Elias-gamma deltas, ``O(k log(n/k))``
bits, within a constant of the information-theoretic ``log2 C(n, k)``) and
sends it in a single message; Bob intersects locally.  In the default
two-output mode Bob sends the intersection back the same way (still one
message each direction and ``O(k log(n/k))`` bits total); with
``both_outputs=False`` the protocol is the paper's literal single-message
variant where only Bob learns the answer.

This is the baseline every randomized protocol is measured against: it is
exact, deterministic, and round-optimal, but its communication carries the
``log(n/k)`` factor that Theorem 1.1 removes.
"""

from __future__ import annotations

from typing import Generator

from repro.comm.engine import PartyContext, Recv, Send
from repro.protocols.base import SetIntersectionProtocol
from repro.util.bits import decode_delta_sorted_set, encode_delta_sorted_set

__all__ = ["TrivialExchangeProtocol"]


class TrivialExchangeProtocol(SetIntersectionProtocol):
    """Deterministic one-message exchange (Section 1, ``D^(1)``).

    :param universe_size: universe ``[n]``.
    :param max_set_size: bound ``k``.
    :param both_outputs: when True (default) Bob replies with the
        intersection so both parties output it; when False only Bob outputs
        (Alice outputs ``None``) and the protocol is a single message.
    """

    name = "trivial-exchange"

    def __init__(
        self, universe_size: int, max_set_size: int, *, both_outputs: bool = True
    ) -> None:
        super().__init__(universe_size, max_set_size)
        self.both_outputs = both_outputs

    def alice(self, ctx: PartyContext) -> Generator:
        """Send the whole set; optionally receive the intersection back."""
        yield Send(encode_delta_sorted_set(ctx.input))
        if not self.both_outputs:
            return None
        reply = yield Recv()
        return frozenset(decode_delta_sorted_set(reply))

    def bob(self, ctx: PartyContext) -> Generator:
        """Receive Alice's set, intersect locally, optionally reply."""
        received = yield Recv()
        alice_set = frozenset(decode_delta_sorted_set(received))
        intersection = frozenset(ctx.input) & alice_set
        if self.both_outputs:
            yield Send(encode_delta_sorted_set(intersection))
        return intersection
