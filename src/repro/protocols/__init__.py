"""Two-party protocols from the paper.

Each module implements one protocol (or building block) with the paper
reference in its docstring:

* :mod:`repro.protocols.equality` -- Fact 3.5, the 2-round one-sided-error
  equality test, plus the fingerprinting primitives every verification step
  uses.
* :mod:`repro.protocols.trivial` -- the deterministic one-message
  ``O(k log(n/k))`` exchange (``D^(1)``).
* :mod:`repro.protocols.one_round` -- the one-round-each-way hashed exchange,
  ``O(k log k)`` bits (``R^(1)``).
* :mod:`repro.protocols.basic_intersection` -- Lemma 3.3 / Corollary 3.4,
  the 4-round hash-exchange building block with one-sided superset
  guarantees.
* :mod:`repro.protocols.bucket_verify` -- the "toy protocol" of Section 1
  (hash into ``k/log k`` buckets, verify, retry): ``O(k log log k)`` expected
  bits.
* :mod:`repro.protocols.fknn` -- the amortized equality protocol standing in
  for Feder-Kushilevitz-Naor-Nisan (Theorem 3.2 interface).
* :mod:`repro.protocols.sqrt_k` -- Theorem 3.1, the ``O(sqrt(k))``-round
  ``O(k)``-bit protocol via bucketing + amortized equality.
* :mod:`repro.protocols.disjointness` -- baselines for ``DISJ_k``: the
  halving protocol in the style of Hastad-Wigderson and the trivial
  reduction through intersection.

The main result (the verification-tree protocol of Theorem 1.1) lives in
:mod:`repro.core` since it is the library's primary contribution.
"""

from repro.protocols.base import (
    IntersectionOutcome,
    SetIntersectionProtocol,
    validate_set_pair,
)
from repro.protocols.basic_intersection import BasicIntersectionProtocol
from repro.protocols.bucket_verify import BucketVerifyProtocol
from repro.protocols.disjointness import (
    DisjointnessViaIntersection,
    HalvingDisjointness,
)
from repro.protocols.equality import EqualityProtocol
from repro.protocols.exists_equal import ExistsEqualProtocol
from repro.protocols.fknn import AmortizedEqualityProtocol
from repro.protocols.minhash import MinHashSketchProtocol
from repro.protocols.one_round import OneRoundHashingProtocol
from repro.protocols.sqrt_k import SqrtKProtocol
from repro.protocols.staged_equality import StagedEqualityProtocol
from repro.protocols.trivial import TrivialExchangeProtocol

__all__ = [
    "ExistsEqualProtocol",
    "MinHashSketchProtocol",
    "StagedEqualityProtocol",
    "IntersectionOutcome",
    "SetIntersectionProtocol",
    "validate_set_pair",
    "BasicIntersectionProtocol",
    "BucketVerifyProtocol",
    "DisjointnessViaIntersection",
    "HalvingDisjointness",
    "EqualityProtocol",
    "AmortizedEqualityProtocol",
    "OneRoundHashingProtocol",
    "SqrtKProtocol",
    "TrivialExchangeProtocol",
]
