"""Set-disjointness baselines: ``DISJ_k^n`` decides whether ``S n T`` is empty.

Disjointness is the problem *below* intersection: any ``INT_k`` protocol
decides it (check whether the recovered set is empty), which is the paper's
source of lower bounds -- ``R(INT_k) >= R(DISJ_k^n) = Omega(k)`` [KS92,
Raz92, HW07].  This module provides two baselines:

* :class:`HalvingDisjointness` -- an ``O(k)``-bit, ``O(log k)``-round
  protocol in the spirit of Hastad-Wigderson [HW07]: the parties take turns
  sending a shared-hash *bitmap* of the current set; the receiver keeps only
  elements hashing into the bitmap, which preserves every common element
  with certainty while halving the strays.  (HW07's original transmits the
  index of the first public-coin set containing ``S``, which costs the same
  ``Theta(|S|)`` bits per round but takes expected ``2^|S|`` local
  computation to find; the bitmap rendition is the standard
  polynomial-time equivalent -- DESIGN.md, substitution S3.)  After the
  halving phase, surviving candidates are confirmed one at a time with
  one-sided fingerprint membership tests, so a "disjoint" answer is always
  certain and an "intersecting" answer errs with probability ``O(1/k^2)``.
* :class:`DisjointnessViaIntersection` -- run any ``INT_k`` protocol and
  report emptiness; used by benchmarks to show recovering the whole set
  costs only a constant factor more than deciding emptiness.
"""

from __future__ import annotations

import math
from typing import Generator, Iterable

from repro.comm.engine import PartyContext, Recv, Send, run_two_party
from repro.hashing.pairwise import sample_pairwise_hash
from repro.protocols.base import SetIntersectionProtocol, validate_set_pair
from repro.protocols.fingerprint import Fingerprinter
from repro.util.bits import BitReader, BitString, BitWriter

__all__ = ["HalvingDisjointness", "DisjointnessViaIntersection"]


class HalvingDisjointness:
    """Halving-bitmap disjointness (Hastad-Wigderson style), output = "is
    the intersection empty?".

    :param universe_size: universe ``[n]``.
    :param max_set_size: bound ``k``.
    :param confidence_exponent: candidate membership tests use
        ``confidence_exponent * log2(k)``-bit fingerprints.
    """

    name = "halving-disjointness"

    def __init__(
        self,
        universe_size: int,
        max_set_size: int,
        *,
        confidence_exponent: int = 4,
    ) -> None:
        if universe_size < 1:
            raise ValueError(f"universe_size must be >= 1, got {universe_size}")
        if max_set_size < 1:
            raise ValueError(f"max_set_size must be >= 1, got {max_set_size}")
        self.universe_size = universe_size
        self.max_set_size = max_set_size
        log_k = max(1, math.ceil(math.log2(max(max_set_size, 2))))
        # Each party filters (log k + 3) times: a stray survives with
        # probability <= 2^-(log k + 3) = 1/(8k), so after the phase the
        # expected number of surviving strays is <= 1/4 per side.
        self.halving_rounds = 2 * (log_k + 3)
        self.test_width = max(8, confidence_exponent * log_k)

    def _party(self, ctx: PartyContext) -> Generator:
        is_alice = ctx.role == "alice"
        current = set(ctx.input)

        # Phase 1: alternating bitmap halving.
        for turn in range(self.halving_rounds):
            my_turn = (turn % 2 == 0) == is_alice
            if my_turn:
                writer = BitWriter()
                writer.write_gamma(len(current))
                if not current:
                    yield Send(writer.finish())
                    return True  # S n T subset of my (empty) set: disjoint
                bitmap_size = 2 * len(current)
                marker = sample_pairwise_hash(
                    self.universe_size,
                    bitmap_size,
                    ctx.shared.stream(f"disj/halve/{turn}"),
                )
                marked = {marker(element) for element in current}
                for position in range(bitmap_size):
                    writer.write_bit(int(position in marked))
                yield Send(writer.finish())
            else:
                reader = BitReader((yield Recv()))
                sender_size = reader.read_gamma()
                if sender_size == 0:
                    reader.expect_exhausted()
                    return True
                bitmap_size = 2 * sender_size
                marker = sample_pairwise_hash(
                    self.universe_size,
                    bitmap_size,
                    ctx.shared.stream(f"disj/halve/{turn}"),
                )
                bitmap = [reader.read_bit() for _ in range(bitmap_size)]
                reader.expect_exhausted()
                current = {e for e in current if bitmap[marker(e)]}

        # Phase 2: Bob confirms surviving candidates one at a time.  A
        # no-match answer certainly removes a non-common element; a match
        # ends the protocol with "intersecting".
        if is_alice:
            printer = Fingerprinter(
                ctx.shared.stream("disj/confirm"), self.test_width
            )
            my_prints = {printer.value_of(element) for element in current}
            while True:
                reader = BitReader((yield Recv()))
                flag = reader.read_gamma()
                if flag == 0:
                    reader.expect_exhausted()
                    return True
                candidate_print = reader.read_uint(self.test_width)
                reader.expect_exhausted()
                match = candidate_print in my_prints
                yield Send(BitString(int(match), 1))
                if match:
                    return False
        else:
            printer = Fingerprinter(
                ctx.shared.stream("disj/confirm"), self.test_width
            )
            remaining = sorted(current)
            while True:
                writer = BitWriter()
                if not remaining:
                    writer.write_gamma(0)
                    yield Send(writer.finish())
                    return True
                candidate = remaining[0]
                writer.write_gamma(1)
                writer.write_uint(printer.value_of(candidate), self.test_width)
                yield Send(writer.finish())
                verdict = yield Recv()
                if verdict.value:
                    return False
                remaining.pop(0)  # certainly not in S n T

    def alice(self, ctx: PartyContext) -> Generator:
        """Alice halves on even turns and answers membership queries."""
        return (yield from self._party(ctx))

    def bob(self, ctx: PartyContext) -> Generator:
        """Bob halves on odd turns and drives the confirmation phase."""
        return (yield from self._party(ctx))

    def run(self, alice_set: Iterable[int], bob_set: Iterable[int], *, seed: int = 0):
        """Execute on one instance; outputs are booleans (True = disjoint)."""
        s, t = validate_set_pair(
            alice_set, bob_set, self.universe_size, self.max_set_size
        )
        return run_two_party(
            self.alice, self.bob, alice_input=s, bob_input=t, shared_seed=seed
        )


class DisjointnessViaIntersection:
    """Decide disjointness by recovering the intersection (paper Section 1:
    ``INT_k`` is at least as hard as ``DISJ_k^n``).

    :param intersection_protocol: any :class:`SetIntersectionProtocol`.
    """

    name = "disjointness-via-intersection"

    def __init__(self, intersection_protocol: SetIntersectionProtocol) -> None:
        self.protocol = intersection_protocol

    def run(self, alice_set: Iterable[int], bob_set: Iterable[int], *, seed: int = 0):
        """Run the wrapped protocol; outputs are booleans (True = disjoint)."""
        outcome = self.protocol.run(alice_set, bob_set, seed=seed)
        from repro.comm.engine import TwoPartyOutcome

        return TwoPartyOutcome(
            alice_output=(
                None if outcome.alice_output is None else not outcome.alice_output
            ),
            bob_output=(
                None if outcome.bob_output is None else not outcome.bob_output
            ),
            transcript=outcome.transcript,
        )
