"""Common protocol interface.

Every two-party set-intersection protocol in this library subclasses
:class:`SetIntersectionProtocol`: it is constructed with the instance
parameters (universe size ``n``, set-size bound ``k``, protocol-specific
knobs), exposes the party coroutines ``alice`` / ``bob``, and offers a
:meth:`~SetIntersectionProtocol.run` convenience that executes the protocol
on concrete sets and wraps the result in an :class:`IntersectionOutcome`.

Keeping the coroutines as ordinary methods means protocols compose: a higher
protocol runs a sub-protocol with ``yield from sub.alice(sub_ctx)`` inside
its own coroutine, and the engine accounts all bits on one transcript.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, FrozenSet, Generator, Iterable, Optional

from repro.comm.engine import PartyContext, TwoPartyOutcome, run_two_party
from repro.comm.transcript import Transcript
from repro.obs.state import STATE as _OBS

__all__ = [
    "validate_set_pair",
    "IntersectionOutcome",
    "SetIntersectionProtocol",
    "subcontext",
]


def validate_set_pair(
    alice_set: Iterable[int],
    bob_set: Iterable[int],
    universe_size: int,
    max_set_size: int,
) -> tuple:
    """Validate and normalize an ``INT_k`` instance.

    Checks ``S, T subset of [n]`` and ``|S|, |T| <= k``, returning the sets
    as frozensets.  Raised errors are caller bugs, not protocol failures.

    Inputs that are already frozensets are passed through by reference (no
    re-freeze copy) and range-checked via ``min``/``max`` instead of a
    per-element ``isinstance`` loop -- this runs on every trial of every
    experiment, so the valid-input fast path must stay O(k) with no
    allocations.  The slow per-element path only runs to produce a precise
    error message once the cheap checks have already failed.
    """
    normalized = []
    for name, raw in (("alice", alice_set), ("bob", bob_set)):
        as_set = raw if isinstance(raw, frozenset) else frozenset(raw)
        if len(as_set) > max_set_size:
            raise ValueError(
                f"{name}'s set has {len(as_set)} elements; bound is k={max_set_size}"
            )
        if as_set:
            try:
                lo, hi = min(as_set), max(as_set)
                in_range = (
                    type(lo) is int  # bool passes isinstance(., int); min/max
                    and type(hi) is int  # of a mixed set can hide a stray type
                    and 0 <= lo
                    and hi < universe_size
                )
            except TypeError:
                in_range = False
            if not in_range:
                # Slow path: find the exact offender for the error message
                # (or accept sets that only *look* bad to min/max, e.g.
                # bools, which are ints by contract).
                for element in as_set:
                    if (
                        not isinstance(element, int)
                        or not 0 <= element < universe_size
                    ):
                        raise ValueError(
                            f"{name}'s element {element!r} outside universe "
                            f"[0, {universe_size})"
                        )
        normalized.append(as_set)
    return normalized[0], normalized[1]


@dataclass
class IntersectionOutcome:
    """Result of running a set-intersection protocol on one instance.

    :param alice_output: the set Alice outputs (``None`` if she aborted).
    :param bob_output: the set Bob outputs.
    :param transcript: exact communication record.
    :param protocol_name: which protocol produced this.
    """

    alice_output: Optional[FrozenSet[int]]
    bob_output: Optional[FrozenSet[int]]
    transcript: Transcript
    protocol_name: str

    @property
    def total_bits(self) -> int:
        """Total communication in bits."""
        return self.transcript.total_bits

    @property
    def num_messages(self) -> int:
        """Round complexity (messages exchanged)."""
        return self.transcript.num_messages

    @property
    def agreed(self) -> bool:
        """True when both parties output the same set."""
        return self.alice_output == self.bob_output

    def correct_for(self, alice_set: Iterable[int], bob_set: Iterable[int]) -> bool:
        """True when both outputs equal the true intersection."""
        truth = frozenset(alice_set) & frozenset(bob_set)
        return self.alice_output == truth and self.bob_output == truth


class SetIntersectionProtocol:
    """Base class for two-party ``INT_k`` protocols.

    Subclasses implement the coroutines :meth:`alice` and :meth:`bob`
    (generator methods over :class:`~repro.comm.engine.Send` /
    :class:`~repro.comm.engine.Recv` effects, each returning a frozenset)
    and set :attr:`name`.

    :param universe_size: the universe is ``[universe_size]``.
    :param max_set_size: the bound ``k`` on ``|S|`` and ``|T|``.
    """

    name = "abstract"

    def __init__(self, universe_size: int, max_set_size: int) -> None:
        if universe_size < 1:
            raise ValueError(f"universe_size must be >= 1, got {universe_size}")
        if max_set_size < 1:
            raise ValueError(f"max_set_size must be >= 1, got {max_set_size}")
        self.universe_size = universe_size
        self.max_set_size = max_set_size

    # -- coroutines -------------------------------------------------------

    def alice(self, ctx: PartyContext) -> Generator:
        """Alice's coroutine; ``ctx.input`` is her set."""
        raise NotImplementedError

    def bob(self, ctx: PartyContext) -> Generator:
        """Bob's coroutine; ``ctx.input`` is his set."""
        raise NotImplementedError

    # -- convenience ------------------------------------------------------

    def run(
        self,
        alice_set: Iterable[int],
        bob_set: Iterable[int],
        *,
        seed: int = 0,
        max_total_bits: Optional[int] = None,
        transcript: Optional[Transcript] = None,
        fault_injector: Optional[Any] = None,
    ) -> IntersectionOutcome:
        """Execute the protocol on one instance.

        :param alice_set: Alice's input ``S``.
        :param bob_set: Bob's input ``T``.
        :param seed: master seed; shared and private randomness are derived
            from it deterministically (replayable runs).
        :param max_total_bits: optional worst-case communication cutoff.
        :param transcript: append to an existing transcript (composition).
        :param fault_injector: forwarded to
            :func:`~repro.comm.engine.run_two_party` -- an explicit channel
            fault model for this run (see :mod:`repro.faults`).
        """
        s, t = validate_set_pair(
            alice_set, bob_set, self.universe_size, self.max_set_size
        )
        bits_base = transcript.total_bits if transcript is not None else 0
        messages_base = transcript.num_messages if transcript is not None else 0
        if _OBS.active:
            fields = {
                "protocol": self.name,
                "universe_size": self.universe_size,
                "max_set_size": self.max_set_size,
                "seed": seed,
            }
            rounds = getattr(self, "rounds", None)
            if isinstance(rounds, int):
                fields["rounds"] = rounds
            _OBS.tracer.emit("protocol.start", **fields)
        outcome: TwoPartyOutcome = run_two_party(
            self.alice,
            self.bob,
            alice_input=s,
            bob_input=t,
            shared_seed=seed,
            alice_private_seed=seed * 3 + 1,
            bob_private_seed=seed * 3 + 2,
            max_total_bits=max_total_bits,
            transcript=transcript,
            fault_injector=fault_injector,
        )
        if _OBS.active:
            _OBS.tracer.emit(
                "protocol.finish",
                protocol=self.name,
                total_bits=outcome.transcript.total_bits - bits_base,
                num_messages=outcome.transcript.num_messages - messages_base,
            )
        return IntersectionOutcome(
            alice_output=outcome.alice_output,
            bob_output=outcome.bob_output,
            transcript=outcome.transcript,
            protocol_name=self.name,
        )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.universe_size}, "
            f"k={self.max_set_size})"
        )


def subcontext(ctx: PartyContext, label: str, sub_input: Any) -> PartyContext:
    """Derive a context for a nested sub-protocol invocation.

    The sub-protocol sees a namespaced view of the shared random string (so
    repeated invocations draw fresh coins) and its own input, but the same
    private coins and role.
    """
    return replace(ctx, shared=ctx.shared.sub(label), input=sub_input)
