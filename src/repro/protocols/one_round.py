"""The one-round randomized protocol: ``R^(1)(INT_k) = O(k log k)``.

Section 1: "hash the elements in their sets to ``O(log k)``-bit strings, and
exchange the hashed values, from which they can decide which elements are in
the intersection with probability ``1 - 1/k^C``".

Both parties share a hash function ``h: [n] -> [t]`` with
``t = Theta((2k)^(C+2))`` (Fact 2.2 applied to ``S u T``), so ``h`` is
injective on ``S u T`` except with probability ``1/(2k)^C``.  Each party
sends the sorted list of hash values of its set (``k * O(log k)`` bits) and
keeps exactly its elements whose hash appears in the other party's list.
When ``h`` is injective on ``S u T`` both outputs equal ``S n T``; the
outputs are always supersets of ``S n T`` (one-sided, like Lemma 3.3).

In the simultaneous/one-round model both messages fly at once; our
alternating engine counts them as 2 messages, which is the same round budget.
This matches the ``Omega(k log k)`` one-round lower bound [DKS12,
BGSMdW12] up to constants, and is the ``r = 1`` endpoint of the paper's
tradeoff curve.
"""

from __future__ import annotations

from typing import FrozenSet, Generator, List

from repro.comm.engine import PartyContext, Recv, Send
from repro.hashing.families import collision_free_range
from repro.hashing.pairwise import PairwiseHash, sample_pairwise_hash
from repro.kernels import sort_ints
from repro.protocols.base import SetIntersectionProtocol
from repro.util.bits import BitString, decode_fixed_list, encode_fixed_list

__all__ = ["OneRoundHashingProtocol"]


class OneRoundHashingProtocol(SetIntersectionProtocol):
    """One round of hashed exchange, error ``1/k^C`` (Section 1, ``R^(1)``).

    :param universe_size: universe ``[n]``.
    :param max_set_size: bound ``k``.
    :param confidence_exponent: the constant ``C``; failure probability is
        at most ``1/(2k)^C``.
    """

    name = "one-round-hashing"

    def __init__(
        self,
        universe_size: int,
        max_set_size: int,
        *,
        confidence_exponent: int = 3,
    ) -> None:
        super().__init__(universe_size, max_set_size)
        if confidence_exponent < 1:
            raise ValueError(
                f"confidence_exponent must be >= 1, got {confidence_exponent}"
            )
        self.confidence_exponent = confidence_exponent

    def _shared_hash(self, ctx: PartyContext) -> PairwiseHash:
        """The hash both parties derive from the common random string."""
        range_size = collision_free_range(
            2 * self.max_set_size, self.confidence_exponent
        )
        return sample_pairwise_hash(
            self.universe_size, range_size, ctx.shared.stream("one-round/h")
        )

    def _filter(self, own_set, own_hash_fn, received: BitString) -> FrozenSet[int]:
        """Keep own elements whose hash value the other party also sent."""
        other_values = set(decode_fixed_list(received, own_hash_fn.output_bits))
        own = list(own_set)
        return frozenset(
            x
            for x, image in zip(own, own_hash_fn.images(own))
            if image in other_values
        )

    def _encode_hashes(self, hash_fn: PairwiseHash, elements) -> BitString:
        values: List[int] = sort_ints(hash_fn.images(list(elements)))
        return encode_fixed_list(values, hash_fn.output_bits)

    def alice(self, ctx: PartyContext) -> Generator:
        """Send ``h(S)``; receive ``h(T)``; keep matching elements."""
        hash_fn = self._shared_hash(ctx)
        yield Send(self._encode_hashes(hash_fn, ctx.input))
        received = yield Recv()
        return self._filter(ctx.input, hash_fn, received)

    def bob(self, ctx: PartyContext) -> Generator:
        """Receive ``h(S)``; send ``h(T)``; keep matching elements."""
        hash_fn = self._shared_hash(ctx)
        received = yield Recv()
        yield Send(self._encode_hashes(hash_fn, ctx.input))
        return self._filter(ctx.input, hash_fn, received)
