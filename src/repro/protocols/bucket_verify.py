"""The Section 1 "toy protocol": bucket, hash-exchange, verify, retry.

This is the warm-up the paper builds intuition with before the
verification-tree protocol:

* a shared hash ``h: [n] -> [k / log k]`` splits the instance into buckets
  ``S_i, T_i`` of expected size ``O(log k)``;
* per bucket, a shared hash ``g_i: [n] -> [log^3 k]`` is exchanged over the
  bucket contents, giving both parties candidate intersections
  ``I_A subset of S_i`` and ``I_B subset of T_i`` that *always* contain
  ``S_i n T_i``;
* a fingerprint equality test with error ``1/k^C`` verifies ``I_A = I_B``;
  by the Corollary 3.4 argument, equality implies both candidates *are*
  ``S_i n T_i``, so a passed bucket is settled;
* failed buckets re-run with fresh ``g_i``; the expected number of re-runs
  per bucket is below 1, so expected total communication is
  ``2k/log k * O(log k log log k) = O(k log log k)``.

All buckets advance in parallel, 4 messages per iteration (hash lists each
way, then fingerprints and verdicts).  A worst-case cutoff converts the
expected bound into a deterministic one: after ``max_iterations`` the
remaining buckets either fall back to an explicit exchange (default --
always correct) or the protocol aborts, per the paper's remark.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Generator, List

from repro.comm.engine import PartyContext, Recv, Send
from repro.comm.errors import ProtocolAborted
from repro.obs.state import STATE as _OBS
from repro.hashing.pairwise import PairwiseHash, sample_pairwise_hash
from repro.kernels import sort_ints
from repro.protocols.base import SetIntersectionProtocol
from repro.protocols.equality import bulk_verdicts
from repro.protocols.fingerprint import Fingerprinter
from repro.util.bits import (
    BitReader,
    BitWriter,
    decode_delta_sorted_set,
    encode_delta_sorted_set,
)
from repro.util.iterlog import ceil_log2

__all__ = ["BucketVerifyProtocol"]


class BucketVerifyProtocol(SetIntersectionProtocol):
    """The ``O(k log log k)``-bit bucket-and-verify protocol (Section 1).

    :param universe_size: universe ``[n]``.
    :param max_set_size: bound ``k``.
    :param confidence_exponent: verification fingerprints have error
        ``<= 1/k^confidence_exponent`` each.
    :param max_iterations: worst-case cutoff on retry iterations.
    :param on_budget: ``"exchange"`` (default) settles still-active buckets
        by explicit exchange after the cutoff -- always correct;
        ``"abort"`` raises :class:`ProtocolAborted` instead, matching the
        paper's terminate-at-constant-factor remark.
    """

    name = "bucket-verify"

    def __init__(
        self,
        universe_size: int,
        max_set_size: int,
        *,
        confidence_exponent: int = 3,
        max_iterations: int = 32,
        on_budget: str = "exchange",
    ) -> None:
        super().__init__(universe_size, max_set_size)
        if on_budget not in ("exchange", "abort"):
            raise ValueError(f"on_budget must be 'exchange' or 'abort': {on_budget}")
        self.confidence_exponent = confidence_exponent
        self.max_iterations = max_iterations
        self.on_budget = on_budget
        log_k = max(1, math.ceil(math.log2(max(max_set_size, 2))))
        self.num_buckets = max(1, max_set_size // log_k)
        # g_i range log^3 k, clamped so tiny k still gets a usable range.
        self.inner_range = max(8, log_k**3)
        self.verify_width = max(8, confidence_exponent * log_k)

    # -- shared derivations ------------------------------------------------

    def _bucket_hash(self, ctx: PartyContext) -> PairwiseHash:
        return sample_pairwise_hash(
            self.universe_size, self.num_buckets, ctx.shared.stream("bucket/h")
        )

    def _inner_hash(
        self, ctx: PartyContext, bucket: int, iteration: int
    ) -> PairwiseHash:
        return sample_pairwise_hash(
            self.universe_size,
            self.inner_range,
            ctx.shared.stream(f"bucket/g/{iteration}/{bucket}"),
        )

    def _verifier(self, ctx: PartyContext, iteration: int) -> Fingerprinter:
        return Fingerprinter(
            ctx.shared.stream(f"bucket/verify/{iteration}"), self.verify_width
        )

    # -- message building --------------------------------------------------

    def _encode_bucket_hashes(
        self,
        buckets: Dict[int, FrozenSet[int]],
        active: List[int],
        inner: Dict[int, PairwiseHash],
    ):
        writer = BitWriter()
        width = ceil_log2(self.inner_range)
        for bucket in active:
            elements = list(buckets.get(bucket, ()))
            values = sort_ints(inner[bucket].images(elements))
            writer.write_gamma(len(values))
            writer.write_run(values, width)
        return writer.finish()

    def _decode_bucket_hashes(self, payload, active: List[int]) -> Dict[int, set]:
        reader = BitReader(payload)
        width = ceil_log2(self.inner_range)
        decoded: Dict[int, set] = {}
        for bucket in active:
            count = reader.read_gamma()
            decoded[bucket] = {reader.read_uint(width) for _ in range(count)}
        reader.expect_exhausted()
        return decoded

    # -- the protocol -------------------------------------------------------

    def _party(self, ctx: PartyContext) -> Generator:
        """Symmetric body; only the send/receive order differs by role."""
        is_alice = ctx.role == "alice"
        own = frozenset(ctx.input)
        bucket_hash = self._bucket_hash(ctx)
        own_list = list(own)
        buckets: Dict[int, FrozenSet[int]] = {}
        # One batch-kernel sweep assigns every element its bucket (the old
        # loop evaluated the hash twice per element on top of being scalar).
        for element, bucket in zip(own_list, bucket_hash.images(own_list)):
            buckets.setdefault(bucket, set()).add(element)  # type: ignore[union-attr]
        buckets = {b: frozenset(v) for b, v in buckets.items()}

        active = list(range(self.num_buckets))
        settled: Dict[int, FrozenSet[int]] = {}

        for iteration in range(self.max_iterations):
            if not active:
                break
            inner = {b: self._inner_hash(ctx, b, iteration) for b in active}
            mine = self._encode_bucket_hashes(buckets, active, inner)
            if is_alice:
                yield Send(mine)
                theirs = self._decode_bucket_hashes((yield Recv()), active)
            else:
                theirs = self._decode_bucket_hashes((yield Recv()), active)
                yield Send(mine)

            candidates: Dict[int, FrozenSet[int]] = {}
            for bucket in active:
                other_values = theirs[bucket]
                elements = list(buckets.get(bucket, frozenset()))
                candidates[bucket] = frozenset(
                    x
                    for x, image in zip(elements, inner[bucket].images(elements))
                    if image in other_values
                )

            # Verification: Alice ships fingerprints, Bob replies verdicts.
            verifier = self._verifier(ctx, iteration)
            prints = verifier.values_of([candidates[b] for b in active])
            if is_alice:
                writer = BitWriter()
                writer.write_run(prints, self.verify_width)
                yield Send(writer.finish())
                verdict_reader = BitReader((yield Recv()))
                verdicts = [verdict_reader.read_bit() for _ in active]
                verdict_reader.expect_exhausted()
            else:
                reader = BitReader((yield Recv()))
                received = reader.read_run(len(active), self.verify_width)
                reader.expect_exhausted()
                verdicts = bulk_verdicts(received, prints)
                writer = BitWriter()
                for passed in verdicts:
                    writer.write_bit(passed)
                yield Send(writer.finish())

            still_active = []
            for bucket, verdict in zip(active, verdicts):
                if verdict:
                    settled[bucket] = candidates[bucket]
                else:
                    still_active.append(bucket)
            if is_alice and _OBS.active:
                _OBS.tracer.emit(
                    "bucket.phase",
                    protocol=self.name,
                    phase=f"iteration{iteration}",
                    active=len(active),
                    settled=len(active) - len(still_active),
                )
                _OBS.tracer.emit(
                    "verify.outcome",
                    protocol=self.name,
                    context=f"iteration{iteration}",
                    passed=len(active) - len(still_active),
                    failed=len(still_active),
                )
            active = still_active

        if active:
            if self.on_budget == "abort":
                raise ProtocolAborted(
                    f"{len(active)} buckets unresolved after "
                    f"{self.max_iterations} iterations",
                    bits_used=0,
                    budget=self.max_iterations,
                )
            # Fallback: explicit exchange of the unresolved buckets.
            residue = frozenset(
                x for b in active for x in buckets.get(b, frozenset())
            )
            if is_alice:
                yield Send(encode_delta_sorted_set(residue))
                other = frozenset(decode_delta_sorted_set((yield Recv())))
            else:
                other = frozenset(decode_delta_sorted_set((yield Recv())))
                yield Send(encode_delta_sorted_set(residue))
            for bucket in active:
                settled[bucket] = buckets.get(bucket, frozenset()) & other

        result = frozenset(x for candidate in settled.values() for x in candidate)
        return result

    def alice(self, ctx: PartyContext) -> Generator:
        """Alice drives the symmetric body in the sender-first role."""
        return (yield from self._party(ctx))

    def bob(self, ctx: PartyContext) -> Generator:
        """Bob drives the symmetric body in the receiver-first role."""
        return (yield from self._party(ctx))
