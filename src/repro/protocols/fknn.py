"""Amortized equality: ``EQ^n_k`` with ``O(k)`` expected bits (Theorem 3.2).

The paper uses the Feder-Kushilevitz-Naor-Nisan protocol as a black box with
the interface: *k equality instances, ``O(k)`` expected total communication
(public coin), ``O(sqrt(k))`` rounds, success probability
``1 - 2^-Omega(sqrt(k))``*.  The original FKNN construction is an intricate
pipelined scheme; we implement a protocol with the same interface via a
bottom-up tournament with escalating fingerprint widths (DESIGN.md,
substitution S1):

* **Level 0**: every instance is tested individually with a 2-bit shared
  fingerprint (cost ``3k`` bits with verdicts).  A mismatch proves
  inequality *with certainty* (fingerprints are one-sided); a truly unequal
  instance survives with probability ``1/4``.
* **Level j**: surviving (claimed-equal) instances are chunked into groups
  of ``2^j`` and each group's concatenation is tested with a
  ``(2 + j)``-bit fingerprint.  Group counts halve while widths grow
  linearly, so the total group-test cost is a convergent series ``O(k)``.
  A mismatching group certainly hides an unequal instance; its members are
  re-tested individually at width ``2 + j`` (expected cost ``O(1)`` per
  unequal instance overall, since reaching level ``j`` undetected requires
  ``j`` consecutive collisions of total width ``Theta(j^2)``).
* **Root**: one wide (``~sqrt(k)``-bit) fingerprint over the concatenation
  of everything still claimed equal.  A match ends the protocol; a mismatch
  (an unequal instance survived every level -- probability
  ``2^-Omega(log^2 k)``) restarts the tournament with fresh salts and all
  widths increased by one, so retries converge geometrically.

Costs: expected total communication ``O(k)``; ``O(log k)`` messages per pass
and ``O(1)`` expected passes -- comfortably inside Theorem 3.2's
``O(sqrt(k))`` round budget (our rounds are *better* than FKNN's, which the
paper notes are inherently ``Omega(sqrt(k))``; Theorem 3.1 only needs "at
most ``O(sqrt(k))``"); overall error ``2^-Omega(sqrt(k))`` from the final
wide verification.  Declared-unequal answers are always correct (one-sided),
exactly the structure Theorem 3.1 consumes.
"""

from __future__ import annotations

import math
from typing import Any, Generator, List, Sequence

from repro.comm.engine import PartyContext, Recv, Send, run_two_party
from repro.comm.errors import ProtocolAborted
from repro.protocols.fingerprint import Fingerprinter
from repro.util.bits import BitReader, BitString, BitWriter

__all__ = ["AmortizedEqualityProtocol", "run_amortized_equality"]


def _exchange_tests(
    ctx: PartyContext,
    groups: List[List[int]],
    values: Sequence[Any],
    width: int,
    label: str,
) -> Generator:
    """Test each group's concatenated values with a ``width``-bit fingerprint.

    Alice ships one fingerprint per group; Bob replies one verdict bit per
    group.  Returns the verdict list (common knowledge).  A 0 verdict is a
    *certain* witness that the group's contents differ.
    """
    printer = Fingerprinter(ctx.shared.stream(label), width)

    def group_print(group: List[int]) -> int:
        return printer.value_of(tuple((idx, values[idx]) for idx in group))

    if ctx.role == "alice":
        # One shared writer, one bulk run: the whole level's fingerprints
        # assemble in O(total bits), not a per-group concat chain.
        writer = BitWriter()
        writer.write_run([group_print(group) for group in groups], width)
        yield Send(writer.finish())
        reader = BitReader((yield Recv()))
        verdicts = reader.read_run(len(groups), 1)
        reader.expect_exhausted()
        return verdicts
    reader = BitReader((yield Recv()))
    received = reader.read_run(len(groups), width)
    reader.expect_exhausted()
    verdicts = [
        int(got == group_print(group))
        for got, group in zip(received, groups)
    ]
    writer = BitWriter()
    writer.write_run(verdicts, 1)
    yield Send(writer.finish())
    return verdicts


def run_amortized_equality(
    ctx: PartyContext,
    values: Sequence[Any],
    *,
    num_instances: int,
    base_width: int = 2,
    final_width: int = 0,
    max_passes: int = 64,
    label: str = "fknn",
) -> Generator:
    """Composable amortized-equality body (both roles; Alice sends first).

    ``values`` is this party's length-``num_instances`` sequence; returns a
    tuple of ``num_instances`` booleans (``True`` = equal).  Unequal verdicts
    are certain; an equal verdict is wrong with probability
    ``2^-Omega(sqrt(num_instances))``.

    :param base_width: fingerprint width of the level-0 individual tests on
        the first pass (all widths shift up by one per retry pass).
    :param final_width: width of the root verification; ``0`` selects
        ``ceil(sqrt(k)) + 8``.
    :param max_passes: hard cutoff; exceeding it raises
        :class:`ProtocolAborted` (probability vanishing in ``max_passes``).
    :param label: shared-randomness namespace for this invocation.
    """
    if len(values) != num_instances:
        raise ValueError(f"expected {num_instances} values, got {len(values)}")
    wide = final_width or (math.ceil(math.sqrt(max(num_instances, 1))) + 8)
    proven_unequal: set = set()

    for pass_index in range(max_passes):
        claimed = [i for i in range(num_instances) if i not in proven_unequal]
        level = 0
        while claimed and (1 << level) <= 2 * len(claimed):
            width = base_width + level + pass_index
            size = 1 << level
            groups = [
                claimed[start : start + size]
                for start in range(0, len(claimed), size)
            ]
            verdicts = yield from _exchange_tests(
                ctx, groups, values, width, f"{label}/p{pass_index}/l{level}/g"
            )
            suspects = [
                idx
                for group, match in zip(groups, verdicts)
                if not match
                for idx in group
            ]
            if suspects and size > 1:
                # Re-test the members of mismatching groups individually.
                singles = [[idx] for idx in suspects]
                single_verdicts = yield from _exchange_tests(
                    ctx, singles, values, width, f"{label}/p{pass_index}/l{level}/s"
                )
                for idx, match in zip(suspects, single_verdicts):
                    if not match:
                        proven_unequal.add(idx)
            elif suspects:
                proven_unequal.update(suspects)
            claimed = [idx for idx in claimed if idx not in proven_unequal]
            level += 1

        # Root verification at sqrt(k) width over everything still claimed.
        printer = Fingerprinter(
            ctx.shared.stream(f"{label}/final{pass_index}"), wide
        )
        mine = printer.bits_of(tuple((idx, values[idx]) for idx in claimed))
        if ctx.role == "alice":
            yield Send(mine)
            verdict = yield Recv()
            passed = bool(verdict.value)
        else:
            received = yield Recv()
            passed = received == mine
            yield Send(BitString(int(passed), 1))
        if passed:
            return tuple(
                idx not in proven_unequal for idx in range(num_instances)
            )

    raise ProtocolAborted(
        f"amortized equality unresolved after {max_passes} passes",
        bits_used=0,
        budget=max_passes,
    )


class AmortizedEqualityProtocol:
    """Theorem 3.2 interface as a standalone protocol.

    Construct with the instance count ``k``; run on two length-``k``
    sequences of values (anything :func:`~repro.protocols.fingerprint.
    canonical_bytes` serializes).  Both parties output the same tuple of
    ``k`` booleans.

    :param num_instances: ``k``, the number of equality instances.
    :param base_width: see :func:`run_amortized_equality`.
    :param final_width: see :func:`run_amortized_equality`.
    :param max_passes: see :func:`run_amortized_equality`.
    """

    name = "amortized-equality"

    def __init__(
        self,
        num_instances: int,
        *,
        base_width: int = 2,
        final_width: int = 0,
        max_passes: int = 64,
    ) -> None:
        if num_instances < 0:
            raise ValueError(f"num_instances must be >= 0, got {num_instances}")
        self.num_instances = num_instances
        self.base_width = base_width
        self.final_width = final_width
        self.max_passes = max_passes

    def _party(self, ctx: PartyContext) -> Generator:
        return (
            yield from run_amortized_equality(
                ctx,
                ctx.input,
                num_instances=self.num_instances,
                base_width=self.base_width,
                final_width=self.final_width,
                max_passes=self.max_passes,
            )
        )

    def alice(self, ctx: PartyContext) -> Generator:
        """Alice's coroutine; input is her value sequence."""
        return (yield from self._party(ctx))

    def bob(self, ctx: PartyContext) -> Generator:
        """Bob's coroutine; input is his value sequence."""
        return (yield from self._party(ctx))

    def run(self, alice_values: Sequence[Any], bob_values: Sequence[Any], *, seed=0):
        """Execute on one instance pair; outputs are boolean tuples."""
        return run_two_party(
            self.alice,
            self.bob,
            alice_input=tuple(alice_values),
            bob_input=tuple(bob_values),
            shared_seed=seed,
        )
