"""Fact 3.5: the two-message one-sided-error equality test.

Protocol: Alice sends the ``b``-bit shared-random fingerprint of her value;
Bob compares it with the fingerprint of his own value and replies with the
one-bit verdict.  Properties (Fact 3.5 with ``b = k``):

1. if ``x == y`` both parties output 1 with probability 1;
2. if ``x != y`` both output 0 with probability at least ``1 - 2^-b``.

Total communication ``b + 1`` bits in exactly two messages.

The verdict is *common knowledge* after the exchange -- both parties hold
the same bit -- which is what lets the verification-tree protocol branch on
it without further coordination.

This module also exposes :func:`equality_error_exponent`, the width rule
used by the tree protocol ("run Equality with success probability
``1 - 1/(log^(r-i-1) k)^4``" becomes a ``ceil(4 * log2(.))``-bit
fingerprint).
"""

from __future__ import annotations

import math
from typing import Any, Generator

from repro.comm.engine import PartyContext, Recv, Send
from repro.kernels import equal_mask
from repro.protocols.fingerprint import Fingerprinter
from repro.util.bits import BitString

__all__ = [
    "EqualityProtocol",
    "bulk_verdicts",
    "equality_error_exponent",
    "run_equality",
]

# The two possible verdict payloads, preallocated: BitStrings are immutable,
# and every equality test ends by sending one of these.
_VERDICT_BITS = (BitString(0, 1), BitString(1, 1))


def equality_error_exponent(inverse_polynomial: float, minimum: int = 2) -> int:
    """Fingerprint width achieving failure probability ``<= 1/inverse_polynomial``.

    ``ceil(log2(inverse_polynomial))`` bits, clamped below at ``minimum`` so
    degenerate parameters (e.g. ``log^(j) k`` having bottomed out at 1) still
    buy a constant success probability.
    """
    if inverse_polynomial <= 1.0:
        return minimum
    return max(minimum, math.ceil(math.log2(inverse_polynomial)))


def bulk_verdicts(received, expected) -> list:
    """Verdict bits for a whole sweep of equality tests at once.

    ``out[i] = 1`` iff ``received[i] == expected[i]`` -- Bob's side of
    Fact 3.5 amortized over every test of a batch (a tree level's node
    sweep, a bucket iteration), routed through
    :func:`repro.kernels.equal_mask` (uint64 lanes when the fingerprints
    fit, exact scalar otherwise).  Raises on length mismatch: a silent
    truncation here would drop verdict bits from the wire.
    """
    return equal_mask(received, expected)


class EqualityProtocol:
    """Fact 3.5 as a standalone two-party protocol over arbitrary values.

    :param width: fingerprint width ``b`` (the error exponent); error
        ``<= 2^-b``-ish one-sided (exactly ``2^-b`` for the random-oracle
        method; ``<= 2^-b`` by the degree bound for polynomial).
    :param stream_label: label of the shared stream the fingerprint salt is
        drawn from (callers embedding several tests use distinct labels).
    :param method: ``"random-oracle"`` (default; exactly ``width`` bits on
        the wire, the Fact 3.5 idealization) or ``"polynomial"`` (the
        standard-model Rabin-Karp fingerprint: pairwise guarantees from
        ``O(log n)`` shared bits at the cost of a gamma-coded length header
        and ``O(log(message length))`` extra fingerprint bits).
    """

    name = "equality"

    def __init__(
        self,
        width: int,
        stream_label: str = "equality",
        *,
        method: str = "random-oracle",
    ) -> None:
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if method not in ("random-oracle", "polynomial"):
            raise ValueError(f"unknown equality method {method!r}")
        self.width = width
        self.stream_label = stream_label
        self.method = method

    def _polynomial_print(self, ctx: PartyContext, data: bytes):
        from repro.protocols.fingerprint import polynomial_fingerprint

        return polynomial_fingerprint(
            data, self.width, ctx.shared.stream(f"{self.stream_label}/poly")
        )

    def alice(self, ctx: PartyContext) -> Generator:
        """Alice: send fingerprint (and, for the polynomial method, her
        value's serialized length), receive verdict."""
        if self.method == "random-oracle":
            printer = Fingerprinter(
                ctx.shared.stream(self.stream_label), self.width
            )
            yield Send(printer.bits_of(ctx.input))
        else:
            from repro.protocols.fingerprint import canonical_bytes
            from repro.util.bits import BitWriter

            data = canonical_bytes(ctx.input)
            value, fp_width = self._polynomial_print(ctx, data)
            writer = BitWriter()
            writer.write_gamma(len(data))
            writer.write_uint(value, fp_width)
            yield Send(writer.finish())
        verdict = yield Recv()
        return bool(verdict.value)

    def bob(self, ctx: PartyContext) -> Generator:
        """Bob: compare received fingerprint against his own, send verdict."""
        if self.method == "random-oracle":
            printer = Fingerprinter(
                ctx.shared.stream(self.stream_label), self.width
            )
            received = yield Recv()
            equal = received == printer.bits_of(ctx.input)
        else:
            from repro.protocols.fingerprint import canonical_bytes
            from repro.util.bits import BitReader

            data = canonical_bytes(ctx.input)
            payload = yield Recv()
            reader = BitReader(payload)
            alice_length = reader.read_gamma()
            if alice_length != len(data):
                # different serialized lengths: certainly unequal.  The
                # remaining fingerprint bits are alice's; drain them
                # (read_bits slices the buffer, no big-int materialization).
                reader.read_bits(reader.remaining)
                equal = False
            else:
                value, fp_width = self._polynomial_print(ctx, data)
                equal = reader.read_uint(fp_width) == value
                reader.expect_exhausted()
        yield Send(_VERDICT_BITS[equal])
        return equal

    def run(self, alice_value: Any, bob_value: Any, *, seed: int = 0):
        """Execute on one pair of values; returns a
        :class:`~repro.comm.engine.TwoPartyOutcome` whose outputs are the
        boolean verdicts."""
        from repro.comm.engine import run_two_party

        return run_two_party(
            self.alice,
            self.bob,
            alice_input=alice_value,
            bob_input=bob_value,
            shared_seed=seed,
        )


def run_equality(
    ctx: PartyContext,
    value: Any,
    *,
    width: int,
    label: str,
) -> Generator:
    """Composable equality test for use inside larger coroutines.

    Call as ``verdict = yield from run_equality(ctx, my_value, width=b,
    label="...")`` from either party's coroutine; the Alice role sends
    first.  Returns the common-knowledge boolean verdict.
    """
    printer = Fingerprinter(ctx.shared.stream(label), width)
    mine = printer.bits_of(value)
    if ctx.role == "alice":
        yield Send(mine)
        verdict = yield Recv()
        return bool(verdict.value)
    received = yield Recv()
    equal = received == mine
    yield Send(_VERDICT_BITS[equal])
    return equal
