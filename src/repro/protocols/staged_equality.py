"""Staged equality: round-limited verification with cheap rejection.

Section 1 of the paper discusses the round-restricted equality protocols of
Brody-Chakrabarti-Kondapally-Woodruff-Yaroslavtsev [BCK+] ("Certifying
equality with limited interaction"): with error ``2^-b``, one invocation
costs ``Omega(log b)``-ish communication for any number of rounds, *but*
"the expected communication for the simpler task of verifying that two
unequal inputs are indeed not equal with error ``O(1/k)`` can be smaller".

:class:`StagedEqualityProtocol` realizes that asymmetry: instead of one
``b``-bit fingerprint, it spends ``r`` stages of geometrically growing
widths ``w, 2w, 4w, ...`` summing to ``b``.  Equal inputs pay the full
``b + r`` bits; *unequal* inputs are rejected at the first mismatching
stage -- expected cost ``O(w) = O(b / 2^r ... )`` -- concretely, a stage-1
mismatch (probability ``1 - 2^-w``) ends the protocol after ``w + 1``
bits.  This is the building block you want when most comparisons are
expected to fail (e.g. the all-pairs instances of Theorem 3.1), and the
tests quantify the equal/unequal cost gap.

Guarantees: equal inputs are always accepted; unequal inputs are accepted
with probability at most ``2^-(total width)``; rejection is certain
evidence of inequality.
"""

from __future__ import annotations

from typing import Any, Generator, List

from repro.comm.engine import PartyContext, Recv, Send, run_two_party
from repro.protocols.fingerprint import Fingerprinter
from repro.util.bits import BitString

__all__ = ["StagedEqualityProtocol", "stage_widths"]


def stage_widths(total_width: int, stages: int) -> List[int]:
    """Split ``total_width`` into ``stages`` geometrically growing widths.

    ``stage_widths(28, 3) == [4, 8, 16]``; the first stage gets
    ``~total/(2^stages - 1)`` bits, each later stage doubles, and rounding
    residue lands on the final stage so the sum is exact.

    >>> stage_widths(28, 3)
    [4, 8, 16]
    >>> sum(stage_widths(100, 4))
    100
    >>> stage_widths(8, 1)
    [8]
    """
    if total_width < 1:
        raise ValueError(f"total_width must be >= 1, got {total_width}")
    if stages < 1:
        raise ValueError(f"stages must be >= 1, got {stages}")
    stages = min(stages, total_width)  # at least 1 bit per stage
    unit = max(1, total_width // (2**stages - 1))
    widths = [unit * (1 << index) for index in range(stages - 1)]
    used = sum(widths)
    widths.append(total_width - used)
    if widths[-1] < 1:
        # total too small for the geometric plan; fall back to even split
        base = total_width // stages
        widths = [base] * (stages - 1)
        widths.append(total_width - base * (stages - 1))
    return widths


class StagedEqualityProtocol:
    """Equality with staged verification (cheap rejection path).

    :param total_width: ``b``; unequal inputs are accepted with probability
        at most ``2^-b``.
    :param stages: number of verification stages ``r`` (``2r`` messages
        worst case; expected 2 messages on unequal inputs).
    :param stream_label: shared-randomness namespace.
    """

    name = "staged-equality"

    def __init__(
        self, total_width: int, *, stages: int = 3, stream_label: str = "staged-eq"
    ) -> None:
        self.widths = stage_widths(total_width, stages)
        self.total_width = total_width
        self.stream_label = stream_label

    def _party(self, ctx: PartyContext) -> Generator:
        is_alice = ctx.role == "alice"
        for index, width in enumerate(self.widths):
            printer = Fingerprinter(
                ctx.shared.stream(f"{self.stream_label}/{index}"), width
            )
            mine = printer.bits_of(ctx.input)
            if is_alice:
                yield Send(mine)
                verdict = yield Recv()
                if not verdict.value:
                    return False
            else:
                received = yield Recv()
                match = received == mine
                yield Send(BitString(int(match), 1))
                if not match:
                    return False
        return True

    def alice(self, ctx: PartyContext) -> Generator:
        """Alice: send per-stage fingerprints until rejected or done."""
        return (yield from self._party(ctx))

    def bob(self, ctx: PartyContext) -> Generator:
        """Bob: verify per-stage fingerprints, reject on first mismatch."""
        return (yield from self._party(ctx))

    def run(self, alice_value: Any, bob_value: Any, *, seed: int = 0):
        """Execute on one value pair; outputs are the boolean verdicts."""
        return run_two_party(
            self.alice,
            self.bob,
            alice_input=alice_value,
            bob_input=bob_value,
            shared_seed=seed,
        )
