"""Structured (JSON-ready) views of run results.

Operational tooling wants machine-readable records of what a protocol run
cost; this module converts the library's result objects into plain dicts /
JSON strings with a stable schema.

Schema stability is a compatibility promise: tests pin the exact key sets.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.comm.stats import TrialReport
from repro.core.api import IntersectionResult
from repro.multiparty.coordinator import MultipartyResult

__all__ = [
    "intersection_result_to_dict",
    "trial_report_to_dict",
    "multiparty_result_to_dict",
    "to_json",
]


def intersection_result_to_dict(result: IntersectionResult) -> Dict[str, Any]:
    """Flatten an :class:`IntersectionResult` (elements sorted for
    deterministic output)."""
    return {
        "schema": "repro.intersection_result/1",
        "intersection": sorted(result.intersection),
        "intersection_size": len(result.intersection),
        "bits": result.bits,
        "messages": result.messages,
        "protocol": result.protocol,
        "rounds_parameter": result.rounds_parameter,
        "parties_agree": result.parties_agree,
    }


def trial_report_to_dict(report: TrialReport) -> Dict[str, Any]:
    """Flatten a :class:`TrialReport` from the stats/empirical layers."""
    def summary(s):
        return {
            "count": s.count,
            "mean": s.mean,
            "min": s.minimum,
            "max": s.maximum,
            "p50": s.p50,
            "p95": s.p95,
        }

    return {
        "schema": "repro.trial_report/1",
        "trials": report.trials,
        "failures": report.failures,
        "success_rate": report.success_rate,
        "bits": summary(report.bits),
        "messages": summary(report.messages),
    }


def multiparty_result_to_dict(result: MultipartyResult) -> Dict[str, Any]:
    """Flatten a :class:`MultipartyResult` with per-player accounting."""
    outcome = result.outcome
    return {
        "schema": "repro.multiparty_result/1",
        "intersection": sorted(result.intersection),
        "intersection_size": len(result.intersection),
        "total_bits": result.total_bits,
        "rounds": result.rounds,
        "max_player_bits": outcome.max_player_bits,
        "average_player_bits": outcome.average_player_bits,
        "players": {
            name: {
                "sent": outcome.bits_sent[name],
                "received": outcome.bits_received[name],
            }
            for name in sorted(outcome.bits_sent)
        },
    }


def to_json(result, *, indent: int = 2) -> str:
    """Serialize any supported result object to a JSON string."""
    if isinstance(result, IntersectionResult):
        payload = intersection_result_to_dict(result)
    elif isinstance(result, TrialReport):
        payload = trial_report_to_dict(result)
    elif isinstance(result, MultipartyResult):
        payload = multiparty_result_to_dict(result)
    else:
        raise TypeError(f"no JSON schema for {type(result).__name__}")
    return json.dumps(payload, indent=indent, sort_keys=True)
