"""Carter-Wegman pairwise-independent hashing.

The family ``h(x) = ((a*x + b) mod p) mod t`` with ``p`` prime, ``p >= n``,
``a`` uniform in ``[1, p)`` and ``b`` uniform in ``[0, p)`` is
pairwise independent up to the rounding of the outer ``mod t``:

    for x != y,   Pr[h(x) = h(y)]  <=  2/t        (collision bound)

and a member of the family is described by the ``O(log p) = O(log n)``
random bits ``(a, b)``.  This is the concrete instantiation of the paper's
Fact 2.2 ("a random hash function satisfying such guarantee can be
constructed using only ``O(log n)`` random bits").
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, List

from repro.hashing.primes import next_prime
from repro.kernels import affine_image_batch
from repro.util import hotcache
from repro.util.iterlog import ceil_log2
from repro.util.rng import RandomStream

__all__ = ["PairwiseHash", "sample_pairwise_hash", "PAIRWISE_COLLISION_FACTOR"]

# Pr[h(x) = h(y)] <= PAIRWISE_COLLISION_FACTOR / range_size for x != y.
# The factor 2 accounts for the outer mod's rounding when p is not a
# multiple of t.
PAIRWISE_COLLISION_FACTOR = 2


@dataclass(frozen=True)
class PairwiseHash:
    """One member ``h(x) = ((a*x + b) mod p) mod t`` of the CW family.

    Immutable and hashable so protocols can use hash functions as dictionary
    keys when caching bucket decompositions.

    :param universe_size: inputs are ``[universe_size] = {0, ..., n-1}``.
    :param range_size: outputs are ``[range_size] = {0, ..., t-1}``.
    :param prime: the inner modulus ``p >= max(universe_size, range_size)``.
    :param mult: the multiplier ``a`` in ``[1, p)``.
    :param shift: the offset ``b`` in ``[0, p)``.
    """

    universe_size: int
    range_size: int
    prime: int
    mult: int
    shift: int

    def __post_init__(self) -> None:
        if self.range_size < 1:
            raise ValueError(f"range_size must be >= 1, got {self.range_size}")
        if self.prime < max(self.universe_size, 2):
            raise ValueError(
                f"prime {self.prime} too small for universe {self.universe_size}"
            )
        if not 1 <= self.mult < self.prime:
            raise ValueError(f"mult must lie in [1, prime), got {self.mult}")
        if not 0 <= self.shift < self.prime:
            raise ValueError(f"shift must lie in [0, prime), got {self.shift}")

    def __call__(self, element: int) -> int:
        """Hash one element of the universe into ``[range_size]``."""
        if not 0 <= element < self.universe_size:
            raise ValueError(
                f"element {element} outside universe [0, {self.universe_size})"
            )
        return ((self.mult * element + self.shift) % self.prime) % self.range_size

    def hash_set(self, elements: Iterable[int]) -> List[int]:
        """Hash a collection, preserving order (duplicates kept).

        Validates every element against the universe (like :meth:`__call__`)
        but runs the arithmetic through the batch kernel: a cheap min/max
        scan replaces the per-element range check, and only a violating
        collection falls back to the per-element path (whose error message
        names the offending element).
        """
        xs = list(elements)
        if xs and (min(xs) < 0 or max(xs) >= self.universe_size):
            return [self(element) for element in xs]
        return self.images(xs)

    def images(self, elements: Iterable[int]) -> List[int]:
        """Bulk hash images in iteration order, no per-element range check.

        The batch form of :meth:`__call__` for callers that already
        validated their sets against the universe -- one
        :func:`repro.kernels.affine_image_batch` call (uint64 lanes when
        numpy is available and the parameters are lane-safe, exact scalar
        otherwise) instead of one Python evaluation per element.
        """
        return affine_image_batch(
            elements, self.mult, self.shift, self.prime, self.range_size
        )

    def image_pairs(self, elements: Iterable[int]) -> List[tuple]:
        """``[(h(x), x)]`` -- the bulk path under the tree protocol's
        per-leaf hash exchanges, which evaluate a fresh function on every
        element of every failed leaf.  Skips the per-element range check --
        callers pass sets they already validated against the universe.
        Images come from the same batch kernel as :meth:`images`.
        """
        xs = elements if isinstance(elements, list) else list(elements)
        return list(
            zip(
                affine_image_batch(
                    xs, self.mult, self.shift, self.prime, self.range_size
                ),
                xs,
            )
        )

    @property
    def output_bits(self) -> int:
        """Wire width of one hash value: ``ceil_log2(range_size)`` bits."""
        return ceil_log2(self.range_size)

    @property
    def description_bits(self) -> int:
        """Bits needed to transmit this function: the pair ``(a, b)``.

        This is what the constructive private-randomness protocols actually
        send -- ``2 * ceil_log2(p) = O(log n)`` bits.
        """
        return 2 * ceil_log2(self.prime)

    def is_collision_free_on(self, elements: Iterable[int]) -> bool:
        """True iff the function is injective on the given elements."""
        seen = set()
        for element in elements:
            image = self(element)
            if image in seen:
                return False
            seen.add(image)
        return True


def _modulus_impl(universe_size: int, range_size: int) -> int:
    return next_prime(max(universe_size, range_size, 2))


_modulus_cached = hotcache.register(
    "hashing.pairwise.modulus", lru_cache(maxsize=1 << 12)(_modulus_impl)
)


def _modulus_for(universe_size: int, range_size: int) -> int:
    """The prime modulus for a ``(universe, range)`` family, memoized.

    The prime depends only on the sizes, not on the sampled ``(a, b)``, so
    every trial of a protocol re-derives the same modulus: a process-local
    memo turns the per-sample prime search into a dictionary hit.
    """
    if hotcache.enabled():
        return _modulus_cached(universe_size, range_size)
    return _modulus_impl(universe_size, range_size)


def _sample_impl(
    derived_seed: int, universe_size: int, range_size: int
) -> PairwiseHash:
    # Must draw exactly as sample_pairwise_hash does on a fresh stream:
    # uint_below is randrange on the stream's seeded twister.
    rng = _random.Random(derived_seed)
    prime = _modulus_for(universe_size, range_size)
    return PairwiseHash(
        universe_size=universe_size,
        range_size=range_size,
        prime=prime,
        mult=1 + rng.randrange(prime - 1),
        shift=rng.randrange(prime),
    )


_sample_cached = hotcache.register(
    "hashing.pairwise.sample", lru_cache(maxsize=1 << 16)(_sample_impl)
)


def sample_pairwise_hash(
    universe_size: int, range_size: int, stream: RandomStream
) -> PairwiseHash:
    """Draw one function from the CW family using the given random stream.

    Both parties call this with the *same shared stream label* and therefore
    obtain the same function -- the common-random-string idiom used
    throughout the protocols.

    A fresh stream's draw is fully determined by ``(derived seed, universe,
    range)``, so samples are served from a hot cache: protocols construct
    thousands of throwaway streams purely to sample a hash function, and the
    cache removes both the twister seeding and the prime search from that
    path.  The skipped draws are replayed if the stream is used again, so
    the coin sequence is bit-identical with caches on or off.

    :param universe_size: domain is ``[universe_size]``.
    :param range_size: codomain is ``[range_size]``.
    :param stream: source of the ``O(log universe_size)`` random bits.
    """
    if universe_size < 1:
        raise ValueError(f"universe_size must be >= 1, got {universe_size}")
    if range_size < 1:
        raise ValueError(f"range_size must be >= 1, got {range_size}")
    if hotcache.enabled() and stream.untouched:
        sampled = _sample_cached(stream.derived_seed, universe_size, range_size)
        prime = sampled.prime

        def replay(rng):
            rng.randrange(prime - 1)
            rng.randrange(prime)

        stream.skip_draws(replay)
        return sampled
    prime = _modulus_for(universe_size, range_size)
    mult = 1 + stream.uint_below(prime - 1)
    shift = stream.uint_below(prime)
    return PairwiseHash(
        universe_size=universe_size,
        range_size=range_size,
        prime=prime,
        mult=mult,
        shift=shift,
    )
