"""Hash-function machinery used by every protocol.

The paper's protocols are hashing all the way down: Fact 2.2 needs a hash
family over ``[n]`` constructible from ``O(log n)`` shared random bits with
controllable collision probability; Section 3.1 additionally uses the
Fredman-Komlos-Szemeredi mod-prime scheme to shrink the universe before
hashing, which is what makes the private-randomness protocols constructive.

* :mod:`repro.hashing.primes` -- exact primality testing and prime search
  (the moduli for Carter-Wegman and FKS hashing).
* :mod:`repro.hashing.pairwise` -- the Carter-Wegman pairwise-independent
  family ``h(x) = ((a*x + b) mod p) mod t``.
* :mod:`repro.hashing.families` -- Fact 2.2: sample ``h: [n] -> [t]`` with
  ``t = Theta(s^(i+2))`` so that a given ``s``-element set is collision-free
  with probability ``>= 1 - 1/s^i``.
* :mod:`repro.hashing.fks` -- FKS universe reduction ``x -> x mod q`` for a
  random prime ``q = O~(k^2 log n)``.
"""

from repro.hashing.families import CollisionFreeSpec, sample_collision_free_hash
from repro.hashing.fks import FKSReduction, sample_fks_reduction
from repro.hashing.pairwise import PairwiseHash, sample_pairwise_hash
from repro.hashing.primes import is_prime, next_prime

__all__ = [
    "CollisionFreeSpec",
    "sample_collision_free_hash",
    "FKSReduction",
    "sample_fks_reduction",
    "PairwiseHash",
    "sample_pairwise_hash",
    "is_prime",
    "next_prime",
]
