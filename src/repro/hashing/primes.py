"""Exact primality testing and prime search.

Carter-Wegman hashing needs a prime modulus ``p > n`` and the FKS universe
reduction needs a *random* prime in a range, so we implement a deterministic
Miller-Rabin test (exact for all 64-bit integers via a fixed witness set,
and overwhelmingly reliable beyond via additional witnesses) plus
:func:`next_prime` / :func:`random_prime` search helpers.
"""

from __future__ import annotations

from functools import lru_cache

from repro.util import hotcache
from repro.util.rng import RandomStream

__all__ = ["is_prime", "next_prime", "random_prime"]

# Jaeschke / Sorenson-Webster witness sets: these bases make Miller-Rabin
# deterministic for every integer below 3,317,044,064,679,887,385,961,981
# (> 2^81), which covers every modulus this library ever constructs.
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)

_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def _miller_rabin_witness(candidate: int, base: int) -> bool:
    """Return True if ``base`` witnesses that ``candidate`` is composite."""
    if base % candidate == 0:
        return False
    odd_part = candidate - 1
    twos = 0
    while odd_part % 2 == 0:
        odd_part //= 2
        twos += 1
    power = pow(base, odd_part, candidate)
    if power in (1, candidate - 1):
        return False
    for _ in range(twos - 1):
        power = power * power % candidate
        if power == candidate - 1:
            return False
    return True


def _is_prime_impl(candidate: int) -> bool:
    if candidate < 2:
        return False
    for small in _SMALL_PRIMES:
        if candidate == small:
            return True
        if candidate % small == 0:
            return False
    return not any(
        _miller_rabin_witness(candidate, base) for base in _DETERMINISTIC_WITNESSES
    )


_is_prime_cached = hotcache.register(
    "hashing.primes.is_prime", lru_cache(maxsize=1 << 16)(_is_prime_impl)
)


def is_prime(candidate: int) -> bool:
    """Exact primality for every integer this library constructs.

    Deterministic Miller-Rabin with the 13-witness set, exact below
    ``~2^81``; moduli here are ``O(poly(n))`` for universe sizes ``n`` that
    fit comfortably under that.  Memoized (primality is pure and protocols
    re-test the same handful of moduli on every trial); the cache is
    managed through :mod:`repro.util.hotcache`.

    >>> [p for p in range(20) if is_prime(p)]
    [2, 3, 5, 7, 11, 13, 17, 19]
    """
    if hotcache.enabled():
        return _is_prime_cached(candidate)
    return _is_prime_impl(candidate)


def _next_prime_impl(lower_bound: int) -> int:
    candidate = max(lower_bound, 2)
    while not is_prime(candidate):
        candidate += 1
    return candidate


_next_prime_cached = hotcache.register(
    "hashing.primes.next_prime", lru_cache(maxsize=1 << 16)(_next_prime_impl)
)


def next_prime(lower_bound: int) -> int:
    """The smallest prime ``>= lower_bound``.

    By Bertrand's postulate the search never scans past ``2 * lower_bound``;
    in practice prime gaps near ``x`` are ``O(log^2 x)`` so this is fast.
    Memoized like :func:`is_prime`: every hash-family setup re-derives the
    same modulus, so repeated trials hit the cache.

    >>> next_prime(10), next_prime(11), next_prime(1)
    (11, 11, 2)
    """
    if hotcache.enabled():
        return _next_prime_cached(lower_bound)
    return _next_prime_impl(lower_bound)


def random_prime(lower: int, upper: int, stream: RandomStream) -> int:
    """A prime sampled from ``[lower, upper)`` via rejection sampling.

    Used by the FKS universe reduction, which needs a *uniformly random*
    prime modulus for its collision guarantee (a fixed prime could be
    adversarially bad for a specific input set).  Raises ``ValueError`` if
    the interval contains no prime.
    """
    if upper <= lower:
        raise ValueError(f"empty prime interval [{lower}, {upper})")
    span = upper - lower
    # By the prime number theorem a random draw is prime w.p. ~1/ln(upper);
    # cap attempts generously, then fall back to a deterministic scan.
    attempts = 64 * max(upper.bit_length(), 1)
    for _ in range(attempts):
        candidate = lower + stream.uint_below(span)
        if is_prime(candidate):
            return candidate
    scan = next_prime(lower)
    if scan < upper:
        return scan
    raise ValueError(f"no prime in [{lower}, {upper})")
