"""Fredman-Komlos-Szemeredi universe reduction.

Section 3.1 of the paper: mapping elements of ``[n]`` by ``x -> x mod q``
for a *random prime* ``q = O~(k^2 log n)`` is injective on any fixed set of
``O(k)`` elements with probability ``1 - 1/poly(k)``.  After this reduction
the residual universe has size ``poly(k) * log n``, so a pairwise
independent hash over it can be described with only ``O(log k + log log n)``
bits -- which is exactly the additive communication the constructive
private-randomness protocols pay to ship their hash functions.

Why it works: ``x mod q = y mod q`` iff ``q`` divides ``|x - y|``; a nonzero
difference below ``n`` has at most ``log2 n`` prime factors, there are
``C(s, 2)`` pairs, and the interval we sample from contains
``Omega(q / ln q)`` primes, so choosing the interval length
``Theta(s^2 * log n * log(...))`` makes the probability that the random
prime divides any difference ``O(1/poly(s))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List

from repro.hashing.primes import next_prime, random_prime
from repro.kernels import mod_batch
from repro.util.iterlog import ceil_log2
from repro.util.rng import RandomStream

__all__ = ["FKSReduction", "sample_fks_reduction", "fks_modulus_bound"]


@dataclass(frozen=True)
class FKSReduction:
    """The map ``x -> x mod q`` for one sampled prime ``q``.

    :param universe_size: the original universe ``[n]``.
    :param prime: the sampled modulus ``q``.
    """

    universe_size: int
    prime: int

    def __call__(self, element: int) -> int:
        """Reduce one element into ``[prime]``."""
        if not 0 <= element < self.universe_size:
            raise ValueError(
                f"element {element} outside universe [0, {self.universe_size})"
            )
        return element % self.prime

    def reduce_set(self, elements: Iterable[int]) -> List[int]:
        """Reduce a collection, preserving order.

        Validated like :meth:`__call__` (a min/max scan stands in for the
        per-element range check; violations fall back to the per-element
        path for its precise error), with the arithmetic in one
        :func:`repro.kernels.mod_batch` call.
        """
        xs = list(elements)
        if xs and (min(xs) < 0 or max(xs) >= self.universe_size):
            return [self(element) for element in xs]
        return mod_batch(xs, self.prime)

    @property
    def reduced_universe_size(self) -> int:
        """The residual universe size (``q`` itself)."""
        return self.prime

    @property
    def description_bits(self) -> int:
        """Bits to transmit the reduction: the prime ``q``,
        ``O(log k + log log n)`` bits."""
        return ceil_log2(self.prime + 1)

    def is_collision_free_on(self, elements: Iterable[int]) -> bool:
        """True iff the reduction is injective on the given elements."""
        seen = set()
        for element in elements:
            image = self(element)
            if image in seen:
                return False
            seen.add(image)
        return True


def fks_modulus_bound(set_size: int, universe_size: int, exponent: int = 2) -> int:
    """Upper end of the prime-sampling interval, ``O~(s^(2+exponent) log n)``.

    A random prime ``q`` below this bound is collision-free on any fixed
    ``set_size``-element subset of ``[universe_size]`` with probability
    ``>= 1 - 1/set_size^exponent`` (see module docstring for the counting
    argument; the ``log^2`` factor pays for prime density).
    """
    s = max(set_size, 2)
    log_n = max(math.log2(max(universe_size, 2)), 1.0)
    # #(bad primes) <= C(s,2) * log2(n); want that / #(primes in interval)
    # <= 1/s^exponent.  Interval [M, 2M) holds ~ M / ln(2M) primes.
    bad = (s * (s - 1) / 2) * log_n
    target_primes = bad * (s**exponent)
    bound = 2
    while bound / math.log(max(bound, 3)) < 2 * target_primes:
        bound *= 2
    return bound


def sample_fks_reduction(
    universe_size: int,
    set_size: int,
    stream: RandomStream,
    exponent: int = 2,
) -> FKSReduction:
    """Sample the FKS reduction for sets of size ``set_size`` in ``[n]``.

    :param universe_size: the original universe size ``n``.
    :param set_size: the (upper bound on the) size of the set that must map
        injectively.
    :param stream: randomness source (shared or private, depending on model).
    :param exponent: failure probability is ``<= 1/set_size^exponent``.
    """
    upper = fks_modulus_bound(set_size, universe_size, exponent)
    lower = max(upper // 2, set_size + 1, 3)
    if lower >= universe_size:
        # The universe is already small: a prime just above it makes the
        # reduction the identity (injective with certainty, nothing to pay).
        return FKSReduction(
            universe_size=universe_size, prime=next_prime(universe_size)
        )
    prime = random_prime(lower, max(upper, lower + 2), stream)
    return FKSReduction(universe_size=universe_size, prime=prime)
