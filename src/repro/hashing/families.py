"""Fact 2.2: collision-free hashing with polynomially small failure.

The paper's Fact 2.2: for any set ``S`` of size ``s >= 2`` and any
``i >= 0``, a random hash function ``h: [n] -> [t]`` with
``t = O(s^(i+2))`` is injective on ``S`` with probability at least
``1 - 1/s^i``, and such a function can be described with ``O(log n)``
random bits.

With the pairwise family of :mod:`repro.hashing.pairwise` this is a direct
union bound: there are ``C(s, 2) < s^2 / 2`` pairs, each colliding with
probability at most ``2/t``, so ``t = 2 * s^(i+2)`` gives failure
probability at most ``s^2 / t = 1 / (2 s^i) <= 1/s^i``.  The constant is
captured in :data:`CollisionFreeSpec` so protocol code and the analysis in
tests agree on the exact range size used.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util import hotcache
from repro.hashing.pairwise import (
    PAIRWISE_COLLISION_FACTOR,
    PairwiseHash,
    sample_pairwise_hash,
)
from repro.util.iterlog import ceil_log2
from repro.util.rng import RandomStream

__all__ = ["CollisionFreeSpec", "sample_collision_free_hash", "collision_free_range"]


@dataclass(frozen=True)
class CollisionFreeSpec:
    """The parameters of one Fact 2.2 instantiation.

    :param set_size: ``s``, the size of the set to be collision-free on.
    :param exponent: ``i``, controlling failure probability ``<= 1/s^i``.
    :param range_size: the derived ``t = Theta(s^(i+2))``.
    """

    set_size: int
    exponent: int
    range_size: int

    @property
    def failure_probability(self) -> float:
        """The union-bound failure probability ``s^2 * (2/t) / 2``."""
        if self.set_size < 2:
            return 0.0
        pairs = self.set_size * (self.set_size - 1) / 2
        return min(1.0, pairs * PAIRWISE_COLLISION_FACTOR / self.range_size)

    @property
    def output_bits(self) -> int:
        """Wire width of one hash value under this spec."""
        return ceil_log2(self.range_size)


@hotcache.memoize("hashing.families.collision_free_range")
def collision_free_range(set_size: int, exponent: int) -> int:
    """The Fact 2.2 range size ``t = Theta(s^(i+2))``.

    Concretely ``t = 2 * max(s, 2)^(i+2)``: with the pairwise family's
    ``2/t`` per-pair collision bound this yields failure probability at most
    ``1/s^i`` (see module docstring).  Memoized through the shared
    :func:`repro.util.hotcache.memoize` layer (big-int powers show up in
    every hash-parameter setup with a handful of distinct arguments per
    protocol); the hot-cache kill-switch bypasses it like every other memo.
    """
    if exponent < 0:
        raise ValueError(f"exponent must be >= 0, got {exponent}")
    base = max(set_size, 2)
    return 2 * base ** (exponent + 2)


def sample_collision_free_hash(
    universe_size: int,
    set_size: int,
    exponent: int,
    stream: RandomStream,
) -> PairwiseHash:
    """Sample ``h: [universe_size] -> [t]`` per Fact 2.2.

    The returned function is injective on any fixed set of ``set_size``
    elements with probability at least ``1 - 1/set_size^exponent``.  Both
    parties call this with the same shared stream to agree on ``h``.
    """
    range_size = collision_free_range(set_size, exponent)
    return sample_pairwise_hash(universe_size, range_size, stream)
