"""Long-lived intersection sessions between two servers.

Real deployments don't intersect once: a pair of databases reconciles
every few minutes, a similarity service answers a stream of queries.  An
:class:`IntersectionSession` models the long-lived pairing:

* one master seed establishes the common random string once; every
  operation then draws a fresh, independent region of it (no reseeding
  handshake per query, matching how the shared-coin model amortizes);
* cumulative accounting across operations (total bits, per-operation
  history) -- the numbers a capacity planner actually tracks;
* the per-call knobs of :func:`~repro.core.api.compute_intersection`
  (rounds, amplification) are fixed session-wide, like a negotiated
  protocol version.

::

    session = IntersectionSession(universe_size=1 << 32, max_set_size=1000)
    session.intersect(S1, T1)
    session.jaccard(S2, T2)
    session.stats().total_bits
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import FrozenSet, Iterable, List, Optional

from repro.core.api import IntersectionResult, compute_intersection
from repro.perf.executor import derive_seed

__all__ = ["IntersectionSession", "OperationRecord", "SessionStats"]


@dataclass(frozen=True)
class OperationRecord:
    """One operation's accounting entry.

    ``degraded`` marks a retry-exhausted operation that returned the
    degradation contract (each party's own input, a certified superset of
    ``S n T``) instead of the verified intersection -- a different *kind*
    of answer, so accounting keeps it distinguishable from exact results.
    """

    index: int
    kind: str
    bits: int
    messages: int
    protocol: str
    result_size: int
    degraded: bool = False


@dataclass
class SessionStats:
    """Cumulative session accounting."""

    operations: int = 0
    total_bits: int = 0
    total_messages: int = 0
    #: Verified-exact operations vs certified-superset degradations; the
    #: split a capacity planner prices retries and fault budgets against
    #: (``operations == exact_ops + degraded_ops`` always).
    exact_ops: int = 0
    degraded_ops: int = 0
    history: List[OperationRecord] = field(default_factory=list)

    def record(
        self, kind: str, result: IntersectionResult, *, degraded: bool = False
    ) -> None:
        """Append one operation."""
        self.history.append(
            OperationRecord(
                index=self.operations,
                kind=kind,
                bits=result.bits,
                messages=result.messages,
                protocol=result.protocol,
                result_size=len(result.intersection),
                degraded=degraded,
            )
        )
        self.operations += 1
        self.total_bits += result.bits
        self.total_messages += result.messages
        if degraded:
            self.degraded_ops += 1
        else:
            self.exact_ops += 1

    @property
    def mean_bits(self) -> float:
        """Average bits per operation (``nan`` for an idle session).

        ``nan`` rather than 0: an idle session has no mean, and a
        fabricated 0 would read as "operations are free" in any dashboard
        averaging over sessions -- the same honesty convention as the
        zero-trial ``success_rate`` in :mod:`repro.comm.stats`.
        """
        if not self.operations:
            return float("nan")
        return self.total_bits / self.operations


class IntersectionSession:
    """A stateful two-server pairing issuing repeated set operations.

    :param universe_size: the universe ``[n]`` (fixed for the session).
    :param max_set_size: the bound ``k`` (per operation).
    :param rounds: tradeoff parameter for every operation.
    :param model: ``"shared"`` or ``"private"`` (the private-coin seed
        transmission then recurs per operation, as it must).
    :param amplified: use the Section 4 amplification on every operation.
    :param seed: master session seed; operation ``i`` uses
        ``derive_seed(seed, i)`` (the shared SHA-256 lineage of
        :mod:`repro.perf`) so repeated identical queries still draw fresh
        coins and the whole session replays from one master seed.
    :param faults: optional fault-spec string (the ``REPRO_FAULTS``
        grammar of :func:`repro.faults.models.parse_fault_spec`, e.g.
        ``"bitflip@0.02:seed=7"``).  When set, every operation runs
        through :func:`repro.faults.retry.run_with_retry` under a
        per-operation :class:`~repro.faults.plan.FaultPlan` derived from
        the spec seed, the session seed, and the operation index -- so a
        faulted session's whole traffic (including which attempts fail
        and which operations degrade) replays bit-identically from its
        master seed.  A retry-exhausted operation records ``degraded``
        accounting and returns the certified-superset contract instead
        of raising.  Only the shared-coin, unamplified shape supports
        faults (the retry loop drives the protocol directly).
    """

    def __init__(
        self,
        universe_size: int,
        max_set_size: int,
        *,
        rounds: Optional[int] = None,
        model: str = "shared",
        amplified: bool = False,
        seed: int = 0,
        faults: Optional[str] = None,
    ) -> None:
        self.universe_size = universe_size
        self.max_set_size = max_set_size
        self.rounds = rounds
        self.model = model
        self.amplified = amplified
        self.seed = seed
        self.faults = faults
        self._stats = SessionStats()
        self._fault_model = None
        self._fault_seed = 0
        self._fault_protocol = None
        if faults is not None:
            if model != "shared" or amplified:
                raise ValueError(
                    "faults require the shared-coin, unamplified shape "
                    f"(got model={model!r}, amplified={amplified})"
                )
            from repro.faults.models import parse_fault_spec

            model_obj, spec_seed = parse_fault_spec(faults)
            self._fault_model = model_obj
            # Two-level derivation: the spec's seed anchors the lineage,
            # the session seed forks it, and each operation forks again --
            # so two sessions sharing one spec still see independent,
            # individually replayable fault streams.
            self._fault_seed = derive_seed(spec_seed, seed)

    def operation_seed(self, index: Optional[int] = None) -> int:
        """The seed operation ``index`` draws its coins from (default: the
        next operation).

        Routed through the shared :func:`repro.perf.derive_seed` lineage --
        the same SHA-256 schedule the trial executor and the plan layer
        use -- so a session's whole traffic is replayable from its master
        seed by anything that knows the operation index, independent of
        which process (or which batch of a coalescing server) executes it.
        """
        if index is None:
            index = self._stats.operations
        return derive_seed(self.seed, index)

    def _operation_seed(self) -> int:
        # Deterministic per-operation derivation; avoids coin reuse across
        # operations without any renegotiation bits.
        return self.operation_seed()

    def _run(self, kind: str, alice_set, bob_set) -> IntersectionResult:
        if self._fault_model is not None:
            return self._run_faulted(kind, alice_set, bob_set)
        result = compute_intersection(
            alice_set,
            bob_set,
            universe_size=self.universe_size,
            max_set_size=self.max_set_size,
            rounds=self.rounds,
            model=self.model,
            amplified=self.amplified,
            seed=self._operation_seed(),
        )
        self._stats.record(kind, result)
        return result

    def _run_faulted(self, kind: str, alice_set, bob_set) -> IntersectionResult:
        """One operation over the (possibly damaged) channel.

        The retry loop owns correctness: agreement-verified results are
        exact (Corollary 3.4 plus the independent-confirmation rule), an
        exhausted budget returns Alice's input -- a certified superset of
        ``S n T`` -- and the record carries ``degraded`` so accounting,
        the serve layer, and load reports can price the difference.
        """
        from repro.core.tradeoff import optimal_rounds, select_protocol
        from repro.faults.plan import FaultPlan
        from repro.faults.retry import run_with_retry

        effective_rounds = (
            self.rounds
            if self.rounds is not None
            else optimal_rounds(self.max_set_size)
        )
        if self._fault_protocol is None:
            self._fault_protocol = select_protocol(
                self.universe_size, self.max_set_size, rounds=effective_rounds
            )
        index = self._stats.operations
        outcome = run_with_retry(
            self._fault_protocol,
            alice_set,
            bob_set,
            seed=self.operation_seed(index),
            plan=FaultPlan(self._fault_model, derive_seed(self._fault_seed, index)),
        )
        result = IntersectionResult(
            intersection=outcome.alice_output,
            bits=outcome.total_bits,
            messages=outcome.total_messages,
            protocol=outcome.protocol_name,
            rounds_parameter=effective_rounds,
            parties_agree=outcome.agreed,
        )
        self._stats.record(kind, result, degraded=outcome.degraded)
        return result

    # -- operations ---------------------------------------------------------

    def intersect(
        self, alice_set: Iterable[int], bob_set: Iterable[int]
    ) -> FrozenSet[int]:
        """Recover ``S n T``."""
        return self._run("intersect", alice_set, bob_set).intersection

    def intersection_size(
        self, alice_set: Iterable[int], bob_set: Iterable[int]
    ) -> int:
        """Exact ``|S n T|``."""
        return len(self._run("size", alice_set, bob_set).intersection)

    def jaccard(
        self, alice_set: Iterable[int], bob_set: Iterable[int]
    ) -> Fraction:
        """Exact Jaccard similarity (1 for two empty sets)."""
        s = frozenset(alice_set)
        t = frozenset(bob_set)
        common = len(self._run("jaccard", s, t).intersection)
        union = len(s) + len(t) - common
        if union == 0:
            return Fraction(1)
        return Fraction(common, union)

    def contains_any(
        self, alice_set: Iterable[int], bob_set: Iterable[int]
    ) -> bool:
        """Disjointness check (True iff the sets share an element)."""
        return bool(self._run("contains-any", alice_set, bob_set).intersection)

    # -- accounting ----------------------------------------------------------

    def record_operation(self, kind: str, result: IntersectionResult) -> None:
        """Account one externally executed operation.

        The coalescing server (:mod:`repro.serve`) computes operations for
        many sessions in one batched kernel dispatch -- bit-identical to
        what :meth:`intersect` and friends would have produced -- and bills
        each result back to its session here, so cumulative accounting is
        independent of *how* an operation was executed.
        """
        self._stats.record(kind, result)

    def stats(self) -> SessionStats:
        """The session's cumulative accounting (live object)."""
        return self._stats

    def __repr__(self) -> str:
        return (
            f"IntersectionSession(n={self.universe_size}, "
            f"k={self.max_set_size}, ops={self._stats.operations}, "
            f"bits={self._stats.total_bits})"
        )
