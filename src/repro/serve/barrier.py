"""Round-barrier lockstep driver for multi-round tree sessions.

The one-round coalescer (:mod:`repro.serve.coalescer`) batches the closed-
form ``r = 1`` exchange; the paper's headline r-round verification tree has
no closed form -- its per-stage sweeps depend on the previous stage's
verdicts.  What it *does* have is a rigid round structure: every session of
the same ``(n, k, r)`` shape reaches its bucket sweep, its stage-``i``
equality sweep, and its stage-``i`` re-run sweep at the same points of the
message schedule.  This module exploits that by driving many sessions'
party generators in **lockstep**: each lane (one session operation) runs
its Alice/Bob coroutines under the engine's exact delivery semantics until
every lane is either finished or *parked* on a pending sweep
(:class:`~repro.core.tree_protocol.AffineSweepRequest` /
:class:`~repro.core.tree_protocol.FingerprintSweepRequest`), then answers
every parked sweep from one pooled segmented kernel dispatch and resumes.

A ``k = 64`` bucket sweep is 64 lanes -- half the kernel layer's
``MIN_LANES`` cliff, so a lone session runs scalar.  Sixty-four lockstepped
sessions pool 8192 lanes into one :func:`repro.kernels.affine_image_segments`
call, the amortization regime the one-round coalescer already reaches.

**Bit identity is the contract**, exactly as for the one-round executor:

* each lane owns a real :class:`~repro.comm.transcript.Transcript` and its
  sends are recorded under the engine's merge convention, so ``bits`` /
  ``messages`` match the scalar path field for field;
* coins are drawn inside the party generators from per-lane
  ``SharedRandomness(seed)`` / ``PrivateRandomness(seed * 3 + 1 | 2)``
  contexts -- the very seeds :meth:`SetIntersectionProtocol.run` would
  build -- and the pooled sweep answers are value-identical to the inline
  kernels (`affine_image_segments` answers itself; fingerprints go through
  the same hot caches, or :func:`repro.kernels.fingerprint_sweep_segments`
  when the caches are disabled);
* lanes never share mutable state: the :class:`TreeProtocol` object is
  shared read-only across lanes (same ``(n, k, r)`` shape by contract),
  which is itself a win the scalar path doesn't get -- no per-operation
  tree construction.

The equivalence suite (``tests/test_serve_barrier.py``) pins every
:class:`~repro.core.api.IntersectionResult` field against
``compute_intersection`` on the same arguments.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Generator, List, Optional, Sequence, Tuple

from repro.comm.engine import PartyContext, Recv, Send
from repro.comm.errors import ProtocolDeadlock, ProtocolViolation
from repro.comm.transcript import Transcript
from repro.core.api import IntersectionResult
from repro.core.tradeoff import optimal_rounds
from repro.core.tree_protocol import (
    AffineSweepRequest,
    FingerprintSweepRequest,
    TreeProtocol,
)
from repro.kernels import affine_image_segments, fingerprint_sweep_segments
from repro.protocols.base import validate_set_pair
from repro.protocols.fingerprint import canonical_bytes
from repro.util import hotcache
from repro.util.bits import BitString
from repro.util.rng import PrivateRandomness, SharedRandomness

__all__ = ["TreeBatchStats", "tree_batch_results", "tree_protocol_rounds"]

#: Sentinel distinguishing "no sweep answer yet" from a legitimate answer.
_NO_ANSWER = object()


def tree_protocol_rounds(max_set_size: int, rounds: Optional[int]) -> int:
    """The round count the selected protocol actually runs with.

    Mirrors :func:`repro.core.tradeoff.select_protocol`'s clamp: a round
    budget above ``log* k`` buys nothing, so the tree runs at
    ``min(rounds, log* k)``.  The multi-round barrier shape requires the
    *clamped* value to be ``>= 2`` -- at 1 the selection layer degenerates
    to the one-round exchange, which has its own batch executor.
    """
    effective = rounds if rounds is not None else optimal_rounds(max_set_size)
    return min(effective, optimal_rounds(max_set_size))


@dataclass
class TreeBatchStats:
    """Pooled-dispatch accounting for one or more barrier runs."""

    barriers: int = 0
    affine_segments: int = 0
    affine_lanes: int = 0
    fingerprint_segments: int = 0
    fingerprint_values: int = 0


class _Party:
    """One lane-party coroutine plus its engine-side book-keeping.

    The mirror of the engine's ``_PartyState`` with one extra parked state:
    a party blocked on a pending sweep holds the request in
    ``pending_sweep`` until the barrier deposits the pooled answer in
    ``sweep_answer``.
    """

    __slots__ = (
        "role",
        "generator",
        "inbox",
        "started",
        "done",
        "output",
        "pending_effect",
        "pending_sweep",
        "sweep_answer",
    )

    def __init__(self, role: str, generator: Generator) -> None:
        self.role = role
        self.generator = generator
        self.inbox: Deque[BitString] = deque()
        self.started = False
        self.done = False
        self.output: Any = None
        self.pending_effect: Optional[object] = None
        self.pending_sweep: Optional[object] = None
        self.sweep_answer: Any = _NO_ANSWER


class _Lane:
    """One session operation running under the lockstep driver."""

    __slots__ = ("alice", "bob", "transcript", "finished", "stats")

    def __init__(
        self,
        protocol: TreeProtocol,
        alice_set: frozenset,
        bob_set: frozenset,
        seed: int,
        stats: TreeBatchStats,
    ) -> None:
        # Exactly the randomness lineage SetIntersectionProtocol.run /
        # run_two_party would build for this (protocol, seed).
        shared = SharedRandomness(seed)
        self.alice = _Party(
            "alice",
            protocol.party_with_pending_sweeps(
                PartyContext(
                    role="alice",
                    input=alice_set,
                    shared=shared,
                    private=PrivateRandomness(seed * 3 + 1),
                )
            ),
        )
        self.bob = _Party(
            "bob",
            protocol.party_with_pending_sweeps(
                PartyContext(
                    role="bob",
                    input=bob_set,
                    shared=shared,
                    private=PrivateRandomness(seed * 3 + 2),
                )
            ),
        )
        self.transcript = Transcript()
        self.finished = False
        self.stats = stats

    def _advance(self, party: _Party, value: Any) -> None:
        """Resume the coroutine with ``value``; classify the next effect.

        Fingerprint sweeps are answered *inline* while the hot caches are
        enabled: the cached per-value path is the fast path (both parties
        of a lane fingerprint the same node values under the same salt, so
        the second sweep of every pair is a dict hit), and answering
        without parking keeps the lane's working set hot instead of
        round-tripping through a barrier.  With the caches disabled the
        sweep parks and joins the pooled
        :func:`repro.kernels.fingerprint_sweep_segments` dispatch --
        value-identical either way.
        """
        generator = party.generator
        send = generator.send
        try:
            if not party.started:
                party.started = True
                effect = send(None)
            else:
                effect = send(value)
            while True:
                effect_type = type(effect)
                if effect_type is Send or effect_type is Recv:
                    party.pending_effect = effect
                    return
                if effect_type is FingerprintSweepRequest and hotcache.enabled():
                    stats = self.stats
                    stats.fingerprint_segments += 1
                    stats.fingerprint_values += len(effect.values)
                    effect = send(effect.printer.values_of(effect.values))
                    continue
                if (
                    effect_type is AffineSweepRequest
                    or effect_type is FingerprintSweepRequest
                ):
                    party.pending_sweep = effect
                    party.pending_effect = None
                    return
                raise ProtocolViolation(
                    f"{party.role} yielded {effect!r}; expected Send(...), "
                    f"Recv(), or a pending-sweep request"
                )
        except StopIteration as stop:
            party.done = True
            party.output = stop.value
            party.pending_effect = None

    def _run_until_blocked(self, party: _Party, peer: _Party) -> bool:
        """Drive one party until done, parked, or blocked; True on progress.

        The engine's ``run_until_blocked`` with one extra blocked state:
        a parked sweep with no answer yet.  Send/Recv handling -- transcript
        recording, FIFO delivery, the merge convention -- is byte-for-byte
        the engine's semantics.
        """
        progressed = False
        record_send = self.transcript.record_send
        while not party.done:
            if not party.started:
                self._advance(party, None)
                progressed = True
                continue
            if party.pending_sweep is not None:
                if party.sweep_answer is _NO_ANSWER:
                    break  # parked: waiting for the pooled dispatch
                answer = party.sweep_answer
                party.sweep_answer = _NO_ANSWER
                party.pending_sweep = None
                self._advance(party, answer)
                progressed = True
                continue
            effect = party.pending_effect
            if type(effect) is Send:
                record_send(party.role, effect.payload)
                peer.inbox.append(effect.payload)
                self._advance(party, None)
                progressed = True
            elif type(effect) is Recv:
                if party.inbox:
                    self._advance(party, party.inbox.popleft())
                    progressed = True
                else:
                    break  # blocked on an empty inbox
            else:  # pragma: no cover - _advance() already validated
                raise ProtocolViolation(f"unhandled effect {effect!r}")
        return progressed

    def step(self) -> List[_Party]:
        """Run both parties as far as they can go.

        :returns: the parties parked on pending sweeps (empty when the
            lane finished); the lane is re-stepped after the barrier
            answers them.
        :raises ProtocolDeadlock: both parties blocked with no sweeps
            pending (mismatched send/receive structure).
        """
        while True:
            progress = False
            if self._run_until_blocked(self.alice, self.bob):
                progress = True
            if self._run_until_blocked(self.bob, self.alice):
                progress = True
            if self.alice.done and self.bob.done:
                for party in (self.alice, self.bob):
                    if party.inbox:
                        raise ProtocolViolation(
                            f"{party.role} finished with {len(party.inbox)} "
                            f"undelivered payload(s) in its inbox"
                        )
                self.finished = True
                return []
            parked = [
                party
                for party in (self.alice, self.bob)
                if party.pending_sweep is not None
            ]
            if parked:
                return parked
            if not progress:
                blocked = [
                    party.role
                    for party in (self.alice, self.bob)
                    if not party.done
                ]
                raise ProtocolDeadlock(
                    f"deadlock: parties {blocked} blocked on empty inboxes "
                    f"(mismatched send/receive structure)"
                )


def _answer_sweeps(
    affine_parked: List[_Party],
    fingerprint_parked: List[_Party],
    stats: TreeBatchStats,
) -> None:
    """One barrier: answer every parked sweep from pooled dispatches."""
    if affine_parked:
        segments: List[tuple] = []
        bounds = []
        for party in affine_parked:
            request = party.pending_sweep
            start = len(segments)
            segments.extend(request.segments)
            bounds.append((start, len(segments)))
        images = affine_image_segments(segments)
        for party, (start, end) in zip(affine_parked, bounds):
            party.sweep_answer = images[start:end]
        stats.affine_segments += len(segments)
        stats.affine_lanes += sum(len(segment[0]) for segment in segments)
    if fingerprint_parked:
        if hotcache.enabled():
            # The cached per-value path *is* the fast path here: both
            # parties of a lane fingerprint the same node values under the
            # same salt, so the second sweep of every pair (and every
            # replayed value) is a dict hit.  values_of dispatches
            # identically, keeping this value-equal to the scalar oracle.
            for party in fingerprint_parked:
                request = party.pending_sweep
                party.sweep_answer = request.printer.values_of(request.values)
        else:
            pooled = []
            for party in fingerprint_parked:
                request = party.pending_sweep
                pooled.append(
                    (
                        request.printer.salt,
                        request.printer.width,
                        [canonical_bytes(value) for value in request.values],
                    )
                )
            answers = fingerprint_sweep_segments(pooled)
            for party, answer in zip(fingerprint_parked, answers):
                party.sweep_answer = answer
        stats.fingerprint_segments += len(fingerprint_parked)
        stats.fingerprint_values += sum(
            len(party.pending_sweep.values) for party in fingerprint_parked
        )


def tree_batch_results(
    universe_size: int,
    max_set_size: int,
    rounds: int,
    requests: Sequence[Tuple[Any, Any, int, int]],
    *,
    prevalidated: bool = False,
    stats: Optional[TreeBatchStats] = None,
    protocol: Optional[TreeProtocol] = None,
) -> List[IntersectionResult]:
    """Execute many same-shape tree intersections in lockstep.

    :param universe_size: the shared universe ``[n]``.
    :param max_set_size: the shared bound ``k``.
    :param rounds: the *clamped* protocol round count (``>= 2``; see
        :func:`tree_protocol_rounds`) -- one :class:`TreeProtocol` of this
        shape serves every lane.
    :param requests: ``(alice_set, bob_set, seed, effective_rounds)`` per
        operation; ``effective_rounds`` is the session's unclamped round
        parameter, reported back as ``rounds_parameter`` exactly as
        :func:`~repro.core.api.compute_intersection` would.
    :param prevalidated: skip re-validation; only for callers that already
        ran :func:`validate_set_pair` on every pair.
    :param stats: optional pooled-dispatch accounting sink.
    :param protocol: optional pre-built :class:`TreeProtocol` of exactly
        this ``(universe_size, max_set_size, rounds)`` shape.  The tree
        and its leaf structure are read-only at run time, so a caller
        executing many chunks of one group (the coalescer) shares a
        single instance instead of paying the ``select_protocol``-sized
        construction cost per chunk -- a per-operation cost the scalar
        path cannot avoid.
    :returns: per-request :class:`IntersectionResult`, field-for-field
        identical to ``compute_intersection(...)`` on the same arguments.
    """
    if rounds < 2:
        raise ValueError(
            f"tree_batch_results requires clamped rounds >= 2, got {rounds}"
        )
    if stats is None:
        stats = TreeBatchStats()
    if protocol is None:
        protocol = TreeProtocol(universe_size, max_set_size, rounds=rounds)
    lanes: List[_Lane] = []
    effective_list: List[int] = []
    for alice_set, bob_set, seed, effective_rounds in requests:
        if prevalidated:
            s, t = alice_set, bob_set
        else:
            s, t = validate_set_pair(
                alice_set, bob_set, universe_size, max_set_size
            )
        lanes.append(_Lane(protocol, s, t, seed, stats))
        effective_list.append(effective_rounds)

    pending = list(lanes)
    while pending:
        still_pending: List[_Lane] = []
        affine_parked: List[_Party] = []
        fingerprint_parked: List[_Party] = []
        for lane in pending:
            parked = lane.step()
            if lane.finished:
                continue
            for party in parked:
                if type(party.pending_sweep) is AffineSweepRequest:
                    affine_parked.append(party)
                else:
                    fingerprint_parked.append(party)
            still_pending.append(lane)
        if still_pending:
            stats.barriers += 1
            _answer_sweeps(affine_parked, fingerprint_parked, stats)
        pending = still_pending

    results: List[IntersectionResult] = []
    for lane, effective_rounds in zip(lanes, effective_list):
        answer = lane.alice.output
        if answer is None:
            answer = lane.bob.output
        results.append(
            IntersectionResult(
                intersection=frozenset(answer) if answer is not None else frozenset(),
                bits=lane.transcript.total_bits,
                messages=lane.transcript.num_messages,
                protocol=protocol.name,
                rounds_parameter=effective_rounds,
                parties_agree=lane.alice.output == lane.bob.output,
            )
        )
    return results
