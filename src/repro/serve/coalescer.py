"""Cross-session batch coalescing: the server's perf core.

A single small session never crosses the kernel layer's ``MIN_LANES``
threshold -- a ``k = 64`` one-round exchange hashes 128 keys total, right
at the cliff, and every protocol-side sweep runs scalar.  But a server
multiplexing hundreds of such sessions sees the same sweep *shape*
hundreds of times per scheduling tick.  This module exploits that:
operations arriving within a tick are grouped by (protocol, round-shape)
and their Carter-Wegman hash sweeps -- each with its own session-derived
``(mult, shift, prime, range)`` -- are dispatched as **one**
:func:`repro.kernels.affine_image_segments` call, the amortization regime
Saglam-Tardos and Huang-Pettie-Zhang reach per-instance, reached here by
aggregate traffic.

**Bit identity is the contract.**  The batched executor
(:func:`one_round_batch_results`) re-derives exactly the coins the engine
path would draw (same ``SharedRandomness`` labels, same hot-cached
``sample_pairwise_hash``), computes the same outputs, and charges the
exact wire cost the engine's transcript would have counted (gamma-coded
count + fixed-width run per message, 2 messages).  The equivalence suite
(``tests/test_serve_coalescer.py``) pins every field of
:class:`~repro.core.api.IntersectionResult` against the per-session
scalar path; a coalesced answer that differs by one bit is a test
failure, not a rounding note.

Two shapes coalesce: the one-round closed form (effective ``rounds == 1``,
shared coins, not amplified) through :func:`one_round_batch_results`, and
the multi-round verification tree (clamped ``rounds >= 2``, shared coins,
not amplified, no fault plan) through the round-barrier lockstep driver
(:mod:`repro.serve.barrier`), grouped by ``(n, k, clamped rounds)`` so
only same-shape sessions share a dispatch.  Everything else takes the
per-session scalar path inside the same drain loop, so enabling
coalescing never changes *what* is computed, only how many Python
dispatches it costs.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, List, Optional, Tuple

from repro.core.api import IntersectionResult
from repro.core.tradeoff import optimal_rounds
from repro.hashing.families import collision_free_range
from repro.hashing.pairwise import sample_pairwise_hash
from repro.kernels import affine_image_segments
from repro.obs import metrics as _metrics
from repro.obs.state import STATE as _OBS
from repro.core.tree_protocol import TreeProtocol
from repro.protocols.base import validate_set_pair
from repro.serve.barrier import (
    TreeBatchStats,
    tree_batch_results,
    tree_protocol_rounds,
)
from repro.serve.registry import ServedSession, SessionRegistry
from repro.serve.wire import ServeError
from repro.session import IntersectionSession
from repro.util.rng import SharedRandomness

__all__ = [
    "OP_KINDS",
    "PendingOp",
    "BatchCoalescer",
    "coalescible",
    "tree_coalescible",
    "one_round_batch_results",
    "run_scalar_operation",
]

#: The operation kinds a session serves (the wire ``op`` values).
OP_KINDS = ("intersect", "size", "jaccard", "contains-any")

#: The confidence exponent the one-round protocol runs with when selected
#: by the tradeoff layer (its constructor default; the batch executor must
#: match it coin for coin).
_ONE_ROUND_CONFIDENCE = 3

#: Maximum lanes per round-barrier lockstep run.  Pooling more sessions
#: widens the kernel dispatches, but every in-flight lane holds its
#: per-leaf assignments, writers, and generator frames live across the
#: whole run -- past a handful of lanes the working set falls out of
#: cache and the per-resumption cost of the (Python-heavy) party
#: coroutines roughly doubles, costing far more than the wider dispatch
#: saves.  Measured on the stock ``k = 64`` multi-round mix the sweet
#: spot sits at small chunks (4-8 lanes track the lone-lane time; 16
#: costs ~+35%, 64 ~+2x), so the chunk size leans toward locality and
#: lets the pooled dispatch width come from the per-op sweep lanes
#: rather than from lane count.  Groups larger than this are split into
#: consecutive chunks; chunk boundaries never change any lane's coins or
#: transcript, only which dispatch its sweeps pool into.
TREE_CHUNK_OPS = 8


def coalescible(session: IntersectionSession) -> bool:
    """True iff the session's fixed parameters select the one-round shape.

    Mirrors :func:`repro.core.tradeoff.select_protocol`: shared coins, no
    amplification, and an effective round budget of 1 mean every operation
    runs ``OneRoundHashingProtocol`` -- the shape the batch executor
    reproduces bit for bit.  A session with a fault plan must run its
    operations through the retry loop, so it stays scalar.
    """
    if session.model != "shared" or session.amplified:
        return False
    if getattr(session, "faults", None) is not None:
        return False
    rounds = (
        session.rounds
        if session.rounds is not None
        else optimal_rounds(session.max_set_size)
    )
    return rounds == 1


def tree_coalescible(session: IntersectionSession) -> bool:
    """True iff the session's fixed parameters select the multi-round tree.

    Mirrors :func:`repro.core.tradeoff.select_protocol` again: shared
    coins, no amplification, and a *clamped* round budget ``>= 2`` mean
    every operation runs :class:`~repro.core.tree_protocol.TreeProtocol`'s
    Algorithm 1 path -- the shape the round-barrier driver locksteps.  A
    budget that clamps to 1 degenerates to the one-round exchange (handled
    by :func:`coalescible`); a session with a fault plan must run through
    the retry loop and stays scalar.
    """
    if session.model != "shared" or session.amplified:
        return False
    if getattr(session, "faults", None) is not None:
        return False
    return tree_protocol_rounds(session.max_set_size, session.rounds) >= 2


def _gamma_bits(value: int) -> int:
    """Wire width of one Elias-gamma code (``BitWriter.write_gamma``)."""
    return 2 * (value + 1).bit_length() - 1


def one_round_batch_results(
    requests: List[Tuple[int, int, Any, Any, int]],
    *,
    prevalidated: bool = False,
) -> List[IntersectionResult]:
    """Execute many one-round intersections as one kernel dispatch.

    :param requests: ``(universe_size, max_set_size, alice_set, bob_set,
        seed)`` per operation; sets may be any iterables of ints already
        known to fit the session's universe/size bounds (validated again
        here, exactly like the engine path).
    :param prevalidated: skip re-validation; only for callers that already
        ran :func:`validate_set_pair` on every pair (the coalescer does,
        per-operation, so failures stay per-operation).
    :returns: per-request :class:`IntersectionResult`, field-for-field
        identical to ``compute_intersection(..., rounds=1)`` on the same
        arguments.
    """
    segments: List[Tuple[List[int], int, int, int, int]] = []
    prepared = []
    for universe_size, max_set_size, alice_set, bob_set, seed in requests:
        if prevalidated:
            s, t = alice_set, bob_set
        else:
            s, t = validate_set_pair(
                alice_set, bob_set, universe_size, max_set_size
            )
        range_size = collision_free_range(
            2 * max_set_size, _ONE_ROUND_CONFIDENCE
        )
        # Exactly the coins the engine path draws: the protocol samples its
        # shared hash from SharedRandomness(seed).stream("one-round/h").
        hash_fn = sample_pairwise_hash(
            universe_size, range_size, SharedRandomness(seed).stream("one-round/h")
        )
        # Membership below is per-element and the billed cost depends only
        # on sizes, so lane order within a segment is free to be iteration
        # order -- no sort needed for bit identity.
        s_list = list(s)
        t_list = list(t)
        segments.append(
            (s_list, hash_fn.mult, hash_fn.shift, hash_fn.prime, hash_fn.range_size)
        )
        segments.append(
            (t_list, hash_fn.mult, hash_fn.shift, hash_fn.prime, hash_fn.range_size)
        )
        prepared.append((s_list, t_list, hash_fn))

    images = affine_image_segments(segments)

    results: List[IntersectionResult] = []
    for index, (s_list, t_list, hash_fn) in enumerate(prepared):
        images_s = images[2 * index]
        images_t = images[2 * index + 1]
        sent_by_bob = set(images_t)
        sent_by_alice = set(images_s)
        alice_output = frozenset(
            x for x, image in zip(s_list, images_s) if image in sent_by_bob
        )
        bob_output = frozenset(
            x for x, image in zip(t_list, images_t) if image in sent_by_alice
        )
        # The exact transcript cost: each party sends encode_fixed_list of
        # its sorted hash values -- a gamma-coded count plus output_bits
        # per value -- and (count + 1 >= 1, so) both payloads are nonempty:
        # exactly 2 messages under the engine's merge convention.
        width = hash_fn.output_bits
        bits = (
            _gamma_bits(len(s_list))
            + len(s_list) * width
            + _gamma_bits(len(t_list))
            + len(t_list) * width
        )
        results.append(
            IntersectionResult(
                intersection=alice_output,
                bits=bits,
                messages=2,
                protocol="one-round-hashing",
                rounds_parameter=1,
                parties_agree=alice_output == bob_output,
            )
        )
    return results


def _operation_value(
    kind: str, alice_set, bob_set, result: IntersectionResult
) -> Any:
    """The kind-specific answer derived from one operation's result."""
    if kind == "intersect":
        return result.intersection
    if kind == "size":
        return len(result.intersection)
    if kind == "jaccard":
        union = len(frozenset(alice_set) | frozenset(bob_set))
        if union == 0:
            return Fraction(1)
        return Fraction(len(result.intersection), union)
    if kind == "contains-any":
        return bool(result.intersection)
    raise ServeError("bad-request", f"unknown operation kind {kind!r}")


def run_scalar_operation(entry: ServedSession, kind: str, alice_set, bob_set):
    """The per-session scalar path: the session facade runs the engine.

    Returns ``(value, record)`` -- the kind-specific answer plus the
    operation's accounting record.  This is both the coalescing-disabled
    baseline and the fallback for non-coalescible shapes, so every
    operation is answered from the same two pieces of state regardless of
    execution strategy.
    """
    session = entry.session
    try:
        if kind == "intersect":
            value: Any = session.intersect(alice_set, bob_set)
        elif kind == "size":
            value = session.intersection_size(alice_set, bob_set)
        elif kind == "jaccard":
            value = session.jaccard(alice_set, bob_set)
        elif kind == "contains-any":
            value = session.contains_any(alice_set, bob_set)
        else:
            raise ServeError("bad-request", f"unknown operation kind {kind!r}")
    except (TypeError, ValueError) as exc:
        raise ServeError("invalid-input", str(exc)) from None
    return value, session.stats().history[-1]


@dataclass
class PendingOp:
    """One accepted operation waiting for the next scheduling tick."""

    entry: ServedSession
    kind: str
    alice_set: Any
    bob_set: Any
    future: "asyncio.Future"
    request_id: Optional[int] = None


@dataclass
class CoalescerStats:
    """Plain counters for reports (the metrics registry gets them too)."""

    dispatches: int = 0
    batches: int = 0
    coalesced_ops: int = 0
    scalar_ops: int = 0
    lanes_total: int = 0
    barriers: int = 0
    group_sizes: Dict[str, int] = field(default_factory=dict)

    @property
    def lanes_per_batch(self) -> float:
        if not self.batches:
            return float("nan")
        return self.lanes_total / self.batches

    def as_dict(self) -> Dict[str, Any]:
        lanes = self.lanes_per_batch
        return {
            "dispatches": self.dispatches,
            "batches": self.batches,
            "coalesced_ops": self.coalesced_ops,
            "scalar_ops": self.scalar_ops,
            "lanes_total": self.lanes_total,
            "barriers": self.barriers,
            "lanes_per_batch": lanes if lanes == lanes else None,
        }


class BatchCoalescer:
    """The scheduling-tick drain loop feeding the batch executor.

    Operations are submitted to an unbounded internal queue (bounds are the
    server's job -- it sheds *before* submitting, so nothing here ever
    drops work).  The drain task wakes on the first pending operation,
    sleeps one scheduling tick to let concurrent sessions' operations
    arrive, then drains everything queued and executes it: coalescible
    operations as one grouped kernel dispatch, the rest through the scalar
    path, all in submission order per session.
    """

    def __init__(
        self,
        registry: SessionRegistry,
        *,
        coalesce: bool = True,
        tick_s: float = 0.002,
    ) -> None:
        self.registry = registry
        self.coalesce = coalesce
        self.tick_s = tick_s
        self.stats = CoalescerStats()
        self._queue: "asyncio.Queue[PendingOp]" = asyncio.Queue()
        self._pending = 0
        self._task: Optional["asyncio.Task"] = None
        self._tree_protocols: Dict[Tuple[int, int, int], TreeProtocol] = {}

    def _tree_protocol(
        self, universe_size: int, max_set_size: int, rounds: int
    ) -> TreeProtocol:
        """The shared read-only :class:`TreeProtocol` for one group shape.

        Protocol objects hold only shape-derived structure (the tree, the
        per-level failure budgets), never per-operation state, so one
        instance serves every lane of every tick -- the scalar path pays
        the ``select_protocol``-sized construction per operation.
        """
        key = (universe_size, max_set_size, rounds)
        protocol = self._tree_protocols.get(key)
        if protocol is None:
            protocol = TreeProtocol(universe_size, max_set_size, rounds=rounds)
            self._tree_protocols[key] = protocol
        return protocol

    @property
    def pending(self) -> int:
        """Accepted-but-unanswered operations (the global queue depth)."""
        return self._pending

    async def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._drain_loop()
            )

    async def stop(self) -> None:
        """Stop draining; queued operations fail with ``shutting-down``."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        while True:
            try:
                op = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            self._finish(
                op, error=ServeError("shutting-down", "server is stopping")
            )

    def submit(self, op: PendingOp) -> None:
        """Queue one operation (the server already applied its bounds)."""
        self._pending += 1
        op.entry.pending += 1
        self._queue.put_nowait(op)

    def _finish(
        self, op: PendingOp, *, error: Optional[Exception] = None, value=None
    ) -> None:
        self._pending -= 1
        op.entry.pending -= 1
        if op.future.cancelled():
            return
        if error is not None:
            op.future.set_exception(error)
        else:
            op.future.set_result(value)

    async def _drain_loop(self) -> None:
        while True:
            first = await self._queue.get()
            if self.tick_s > 0:
                # The scheduling tick: let other sessions' operations land.
                await asyncio.sleep(self.tick_s)
            else:
                await asyncio.sleep(0)
            batch = [first]
            while True:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            self._execute(batch)

    # -- execution (synchronous: one tick's work) ---------------------------

    def _execute(self, batch: List[PendingOp]) -> None:
        self.stats.dispatches += 1
        if not self.coalesce:
            for op in batch:
                self._execute_scalar(op)
            return

        eligible: List[PendingOp] = []
        tree_eligible: List[PendingOp] = []
        for op in batch:
            if op.kind in OP_KINDS and coalescible(op.entry.session):
                eligible.append(op)
            elif op.kind in OP_KINDS and tree_coalescible(op.entry.session):
                tree_eligible.append(op)
            else:
                self._execute_scalar(op)
        if eligible:
            if len(eligible) == 1:
                # A lone operation gains nothing from the batch plumbing.
                self._execute_scalar(eligible[0])
            else:
                self._execute_coalesced(eligible)
        if tree_eligible:
            self._execute_tree(tree_eligible)

    def _execute_scalar(self, op: PendingOp) -> None:
        self.stats.scalar_ops += 1
        _metrics.counter("serve.ops.scalar").inc()
        try:
            value, record = run_scalar_operation(
                op.entry, op.kind, op.alice_set, op.bob_set
            )
        except ServeError as exc:
            self._finish(op, error=exc)
            return
        self.registry.bill(op.entry, _record_as_result(record))
        self._finish(op, value=(value, record))

    def _execute_coalesced(self, ops: List[PendingOp]) -> None:
        # Pass 1: validate and assign per-operation seeds in submission
        # order; a session with several operations in one tick consumes
        # consecutive operation indices, exactly as it would serially.
        next_index: Dict[str, int] = {}
        requests = []
        runnable: List[Tuple[PendingOp, Any, Any]] = []
        shape_counts: Dict[Tuple[int, int], int] = {}
        for op in ops:
            session = op.entry.session
            key = op.entry.key
            index = next_index.get(key, session.stats().operations)
            try:
                s, t = validate_set_pair(
                    op.alice_set,
                    op.bob_set,
                    session.universe_size,
                    session.max_set_size,
                )
            except (TypeError, ValueError) as exc:
                self._finish(op, error=ServeError("invalid-input", str(exc)))
                continue
            next_index[key] = index + 1
            requests.append(
                (
                    session.universe_size,
                    session.max_set_size,
                    s,
                    t,
                    session.operation_seed(index),
                )
            )
            runnable.append((op, s, t))
            shape = (session.universe_size, session.max_set_size)
            shape_counts[shape] = shape_counts.get(shape, 0) + 1
        if not runnable:
            return

        results = one_round_batch_results(requests, prevalidated=True)
        lanes = sum(len(request[2]) + len(request[3]) for request in requests)
        self.stats.batches += 1
        self.stats.coalesced_ops += len(runnable)
        self.stats.lanes_total += lanes
        for (universe_size, max_set_size), count in shape_counts.items():
            label = f"one-round/n={universe_size}/k={max_set_size}"
            self.stats.group_sizes[label] = (
                self.stats.group_sizes.get(label, 0) + count
            )
        _metrics.counter("serve.ops.coalesced").inc(len(runnable))
        _metrics.counter("serve.batch.dispatches").inc()
        _metrics.histogram("serve.batch.lanes").observe(lanes)
        _metrics.histogram("serve.batch.ops").observe(len(runnable))
        if _OBS.active:
            _OBS.tracer.emit(
                "serve.batch",
                ops=len(runnable),
                lanes=lanes,
                groups=len(shape_counts),
            )

        # Pass 2: bill results back in the same submission order the seeds
        # were assigned in, so per-session histories are order-identical to
        # the scalar path.
        for (op, s, t), result in zip(runnable, results):
            op.entry.session.record_operation(op.kind, result)
            self.registry.bill(op.entry, result)
            record = op.entry.session.stats().history[-1]
            value = _operation_value(op.kind, s, t, result)
            self._finish(op, value=(value, record))

    def _execute_tree(self, ops: List[PendingOp]) -> None:
        """Multi-round operations: group by shape, lockstep each group.

        Group key is ``(n, k, clamped rounds)`` -- the parameters that fix
        the :class:`~repro.core.tree_protocol.TreeProtocol` instance -- so
        no cross-shape pooling ever happens: each group runs its own
        :func:`~repro.serve.barrier.tree_batch_results` call and only
        same-shape lanes share a segmented kernel dispatch.  A session's
        parameters are fixed for its lifetime, so all of one session's
        operations land in one group, in submission order.
        """
        groups: Dict[Tuple[int, int, int], List[PendingOp]] = {}
        for op in ops:
            session = op.entry.session
            key = (
                session.universe_size,
                session.max_set_size,
                tree_protocol_rounds(session.max_set_size, session.rounds),
            )
            groups.setdefault(key, []).append(op)

        total_ops = 0
        batch_stats = TreeBatchStats()
        pooled_groups = 0
        for (universe_size, max_set_size, protocol_rounds), group in groups.items():
            if len(group) == 1:
                # A lone lane pools with nobody; the scalar path is the
                # same computation without the lockstep plumbing.
                self._execute_scalar(group[0])
                continue
            # Pass 1: validate and assign per-operation seeds in submission
            # order, exactly as _execute_coalesced does for one-round ops.
            next_index: Dict[str, int] = {}
            requests = []
            runnable: List[Tuple[PendingOp, Any, Any]] = []
            for op in group:
                session = op.entry.session
                key = op.entry.key
                index = next_index.get(key, session.stats().operations)
                try:
                    s, t = validate_set_pair(
                        op.alice_set,
                        op.bob_set,
                        session.universe_size,
                        session.max_set_size,
                    )
                except (TypeError, ValueError) as exc:
                    self._finish(op, error=ServeError("invalid-input", str(exc)))
                    continue
                next_index[key] = index + 1
                effective_rounds = (
                    session.rounds
                    if session.rounds is not None
                    else optimal_rounds(session.max_set_size)
                )
                requests.append(
                    (s, t, session.operation_seed(index), effective_rounds)
                )
                runnable.append((op, s, t))
            if not runnable:
                continue

            protocol = self._tree_protocol(
                universe_size, max_set_size, protocol_rounds
            )
            results = []
            for start in range(0, len(requests), TREE_CHUNK_OPS):
                results.extend(
                    tree_batch_results(
                        universe_size,
                        max_set_size,
                        protocol_rounds,
                        requests[start : start + TREE_CHUNK_OPS],
                        prevalidated=True,
                        stats=batch_stats,
                        protocol=protocol,
                    )
                )
            pooled_groups += 1
            total_ops += len(runnable)
            self.stats.batches += 1
            self.stats.coalesced_ops += len(runnable)
            label = (
                f"tree/n={universe_size}/k={max_set_size}/r={protocol_rounds}"
            )
            self.stats.group_sizes[label] = (
                self.stats.group_sizes.get(label, 0) + len(runnable)
            )
            _metrics.counter("serve.ops.coalesced").inc(len(runnable))
            _metrics.counter("serve.batch.dispatches").inc()
            _metrics.histogram("serve.batch.ops").observe(len(runnable))

            # Pass 2: bill in the submission order the seeds were assigned
            # in, so per-session histories match the scalar path.
            for (op, s, t), result in zip(runnable, results):
                op.entry.session.record_operation(op.kind, result)
                self.registry.bill(op.entry, result)
                record = op.entry.session.stats().history[-1]
                value = _operation_value(op.kind, s, t, result)
                self._finish(op, value=(value, record))

        if total_ops:
            self.stats.lanes_total += batch_stats.affine_lanes
            self.stats.barriers += batch_stats.barriers
            _metrics.histogram("serve.batch.lanes").observe(
                batch_stats.affine_lanes
            )
            if _OBS.active:
                _OBS.tracer.emit(
                    "serve.batch",
                    ops=total_ops,
                    lanes=batch_stats.affine_lanes,
                    groups=pooled_groups,
                )


def _record_as_result(record) -> IntersectionResult:
    """Adapter so billing sees one shape for both execution paths."""
    return IntersectionResult(
        intersection=frozenset(),
        bits=record.bits,
        messages=record.messages,
        protocol=record.protocol,
        rounds_parameter=0,
        parties_agree=True,
    )
