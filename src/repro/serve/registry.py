"""The session registry: who is talking, with which parameters, on which
seed lineage.

Each served session wraps one :class:`~repro.session.IntersectionSession`.
Seeds follow the shared ``derive_seed`` lineage end to end: a session
opened without an explicit seed gets ``derive_seed(master_seed,
open_index)``, and the session itself derives per-operation seeds the same
way -- so an entire server's traffic is replayable from one master seed
plus the (deterministic) open order, and a client that supplies its own
session seeds is replayable regardless of open order.

Accounting is billed through the obs metrics registry on every operation
(``serve.ops``, ``serve.op.bits``, ``serve.op.messages``, plus the
session-lifecycle counters), mirroring how the plan layer bills its shard
cache -- one `repro trace`-visible place answers "what did the server do".
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.api import IntersectionResult
from repro.obs import metrics as _metrics
from repro.perf.executor import derive_seed
from repro.serve.wire import ServeError
from repro.session import IntersectionSession

__all__ = ["ServedSession", "SessionRegistry"]


@dataclass
class ServedSession:
    """One live session: the engine-side state plus queue accounting."""

    key: str
    session: IntersectionSession
    #: Operations accepted but not yet answered (the per-session queue
    #: depth the backpressure bound applies to).
    pending: int = 0
    #: Operations shed with a typed overload reply (never silently).
    shed: int = 0
    labels: Dict[str, Any] = field(default_factory=dict)

    def history_payload(self) -> List[Dict[str, Any]]:
        """The session's operation history as JSON-ready records."""
        return [
            {
                "index": record.index,
                "kind": record.kind,
                "bits": record.bits,
                "messages": record.messages,
                "protocol": record.protocol,
                "result_size": record.result_size,
                "degraded": record.degraded,
            }
            for record in self.session.stats().history
        ]

    def stats_payload(self) -> Dict[str, Any]:
        """JSON-ready cumulative accounting (the ``stats`` reply body)."""
        stats = self.session.stats()
        mean = stats.mean_bits
        return {
            "session": self.key,
            "operations": stats.operations,
            "total_bits": stats.total_bits,
            "total_messages": stats.total_messages,
            # Exact vs certified-superset answers, separately: a degraded
            # reply is a different contract, not a cheaper exact one.
            "exact_ops": stats.exact_ops,
            "degraded_ops": stats.degraded_ops,
            # JSON has no nan; an idle session's mean is honestly absent.
            "mean_bits": mean if mean == mean else None,
            "pending": self.pending,
            "shed": self.shed,
            "history": self.history_payload(),
        }

    def counters_fingerprint(self) -> str:
        """SHA-256 over the exact per-operation counters, in order."""
        counters = [
            (
                record.index,
                record.kind,
                record.bits,
                record.messages,
                record.degraded,
            )
            for record in self.session.stats().history
        ]
        return hashlib.sha256(repr(counters).encode("utf-8")).hexdigest()


class SessionRegistry:
    """Registry of live sessions keyed by client-chosen string keys."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._sessions: Dict[str, ServedSession] = {}
        self._opened = 0

    def __len__(self) -> int:
        return len(self._sessions)

    def keys(self) -> List[str]:
        return sorted(self._sessions)

    def open(
        self,
        key: str,
        *,
        universe_size: int,
        max_set_size: int,
        rounds: Optional[int] = None,
        model: str = "shared",
        amplified: bool = False,
        seed: Optional[int] = None,
        faults: Optional[str] = None,
    ) -> ServedSession:
        """Open a session; the seed defaults to the registry lineage
        ``derive_seed(master_seed, open_index)``.

        ``faults`` is the optional fault-spec string threaded through to
        :class:`~repro.session.IntersectionSession`; a faulted session's
        operations run the verification-driven retry loop (and may record
        ``degraded`` answers), and the coalescer keeps it on the scalar
        path.  A malformed spec is a typed ``bad-request``.
        """
        if key in self._sessions:
            raise ServeError("session-exists", f"session {key!r} already open")
        if seed is None:
            seed = derive_seed(self.master_seed, self._opened)
        try:
            session = IntersectionSession(
                universe_size,
                max_set_size,
                rounds=rounds,
                model=model,
                amplified=amplified,
                seed=seed,
                faults=faults,
            )
        except ValueError as exc:
            raise ServeError("bad-request", str(exc)) from None
        entry = ServedSession(key=key, session=session)
        self._sessions[key] = entry
        self._opened += 1
        _metrics.counter("serve.sessions.opened").inc()
        return entry

    def get(self, key: str) -> ServedSession:
        entry = self._sessions.get(key)
        if entry is None:
            raise ServeError("unknown-session", f"no session {key!r}")
        return entry

    def close(self, key: str) -> ServedSession:
        entry = self.get(key)
        del self._sessions[key]
        _metrics.counter("serve.sessions.closed").inc()
        return entry

    def bill(self, entry: ServedSession, result: IntersectionResult) -> None:
        """Bill one completed operation to the metrics registry."""
        _metrics.counter("serve.ops").inc()
        _metrics.histogram("serve.op.bits").observe(result.bits)
        _metrics.histogram("serve.op.messages").observe(result.messages)

    def fingerprint(self) -> str:
        """One SHA-256 over every session's counters, sorted by key.

        Invariant to execution strategy (scalar vs coalesced, serial vs
        async) because per-session counters are; the determinism suite
        compares this against the serial reference runner's fingerprint.
        """
        parts = [
            (key, self._sessions[key].counters_fingerprint())
            for key in sorted(self._sessions)
        ]
        return hashlib.sha256(repr(parts).encode("utf-8")).hexdigest()
