"""``repro.serve``: intersection-as-a-service.

The paper's protocols are per-pair primitives; production traffic is a
long-lived server multiplexing thousands of concurrent sessions.  This
package is that service shape:

* :mod:`repro.serve.wire` -- the length-prefixed JSON frame protocol and
  its typed error replies (overload shedding is a *reply*, never a silent
  drop);
* :mod:`repro.serve.registry` -- the session registry:
  :class:`~repro.session.IntersectionSession`-backed sessions with
  ``derive_seed`` lineage and cumulative accounting billed through the obs
  metrics registry;
* :mod:`repro.serve.coalescer` -- the perf core: operations arriving
  within a scheduling tick are grouped by (protocol, round-shape) and
  their hash sweeps dispatched as *one*
  :func:`repro.kernels.affine_image_segments` call, so the kernel layer's
  ``MIN_LANES`` threshold is crossed by aggregate traffic even when every
  individual session is small -- bit-identical to the per-session scalar
  path by construction, pinned by tests;
* :mod:`repro.serve.server` -- the asyncio server: bounded per-session and
  global queues, backpressure, graceful shedding;
* :mod:`repro.serve.loadgen` -- the deterministic load harness
  (``repro serve load``): seeded traffic mixes (JSON mix documents),
  p50/p99/p999 latency, sessions/sec, coalesced-lane occupancy, and a
  serial reference runner for the determinism gate;
* :mod:`repro.serve.fleet` -- the out-of-process load mode: worker
  processes replaying the same seeded schedule over real TCP or
  Unix-domain sockets (``repro serve load --transport {tcp,uds}``), with
  the determinism fingerprint and shed contract extending unchanged.
"""

from repro.serve.coalescer import (
    BatchCoalescer,
    coalescible,
    one_round_batch_results,
)
from repro.serve.fleet import FleetError, run_fleet
from repro.serve.loadgen import (
    DEFAULT_MIX,
    PROFILES,
    TRANSPORTS,
    LoadMix,
    LoadReport,
    latency_histogram,
    mix_from_dict,
    mix_to_dict,
    run_load,
    run_mix_serial,
)
from repro.serve.registry import SessionRegistry
from repro.serve.server import SERVER_TRANSPORTS, IntersectionServer, ServeConfig
from repro.serve.wire import (
    MAX_FRAME_BYTES,
    FrameError,
    ServeError,
    encode_frame,
    error_reply,
    read_frame,
)

__all__ = [
    "BatchCoalescer",
    "coalescible",
    "one_round_batch_results",
    "DEFAULT_MIX",
    "TRANSPORTS",
    "PROFILES",
    "LoadMix",
    "LoadReport",
    "latency_histogram",
    "mix_from_dict",
    "mix_to_dict",
    "run_load",
    "run_mix_serial",
    "FleetError",
    "run_fleet",
    "SessionRegistry",
    "IntersectionServer",
    "ServeConfig",
    "SERVER_TRANSPORTS",
    "MAX_FRAME_BYTES",
    "FrameError",
    "ServeError",
    "encode_frame",
    "error_reply",
    "read_frame",
]
