"""The serve wire protocol: length-prefixed JSON frames.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON (one object per frame).  Deliberately boring: the
sets the protocols intersect are small integer lists, the interesting
bits-on-the-wire accounting happens *inside* the simulated protocols, and
a self-describing frame makes the load generator, the CI smoke driver,
and ``nc``-grade debugging all trivial.

Requests carry ``op`` plus op-specific fields; every reply carries
``ok``.  Failure replies are **typed**::

    {"ok": false, "id": 7, "error": {"type": "overloaded", "scope":
     "server", "message": "..."}}

The contract the server keeps under pressure: a request that is read is
always answered -- overload shedding is the ``overloaded`` error reply,
never a silently dropped frame.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, Optional

__all__ = [
    "MAX_FRAME_BYTES",
    "FrameError",
    "FrameReader",
    "ServeError",
    "encode_frame",
    "decode_frame_payload",
    "read_frame",
    "error_reply",
    "ERROR_TYPES",
]

#: Default ceiling on one frame's JSON payload.  Two full max-size sets of
#: 64-bit decimal ids with JSON overhead stay far below this; anything
#: larger is a malformed or hostile frame.
MAX_FRAME_BYTES = 8 * 1024 * 1024

_HEADER = struct.Struct(">I")

#: The closed set of error types a reply may carry.  ``overloaded`` is the
#: graceful-shedding reply (with ``scope`` = ``"server"`` or ``"session"``);
#: the rest are request/protocol faults.
ERROR_TYPES = (
    "bad-frame",
    "bad-request",
    "unknown-session",
    "session-exists",
    "invalid-input",
    "overloaded",
    "shutting-down",
)


class FrameError(ValueError):
    """A frame violated the transport contract (oversize, torn, not JSON)."""


class ServeError(Exception):
    """A typed request failure; becomes an ``error_reply`` on the wire."""

    def __init__(self, error_type: str, message: str, **fields: Any) -> None:
        if error_type not in ERROR_TYPES:
            raise ValueError(f"unknown serve error type {error_type!r}")
        super().__init__(message)
        self.type = error_type
        self.fields = fields

    def reply(self, request_id: Optional[int] = None) -> Dict[str, Any]:
        return error_reply(self.type, str(self), request_id, **self.fields)


def encode_frame(obj: Dict[str, Any]) -> bytes:
    """One wire frame: big-endian length header + compact JSON payload."""
    payload = json.dumps(
        obj, separators=(",", ":"), sort_keys=True, allow_nan=False
    ).encode("utf-8")
    return _HEADER.pack(len(payload)) + payload


def decode_frame_payload(payload: bytes) -> Dict[str, Any]:
    """Parse one frame's JSON payload into an object.

    :raises FrameError: when the payload is not a JSON object.
    """
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"frame payload is not valid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise FrameError(
            f"frame payload must be a JSON object, got {type(obj).__name__}"
        )
    return obj


async def read_frame(
    reader: asyncio.StreamReader, *, max_bytes: int = MAX_FRAME_BYTES
) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on a clean EOF at a frame boundary.

    :raises FrameError: on a torn header/payload (EOF mid-frame), an
        oversize declaration, or a non-JSON payload.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError(
            f"connection closed mid-header ({len(exc.partial)} of "
            f"{_HEADER.size} bytes)"
        ) from None
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise FrameError(f"frame of {length} bytes exceeds limit {max_bytes}")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError(
            f"connection closed mid-frame ({len(exc.partial)} of "
            f"{length} bytes)"
        ) from None
    return decode_frame_payload(payload)


class FrameReader:
    """Buffered frame reader: one socket read can yield many frames.

    :func:`read_frame` costs two stream awaits per frame; under pipelined
    load that coroutine overhead is a visible per-operation tax on both
    sides of the loop.  This reader pulls large chunks and slices frames
    out of a local buffer, so a burst of pipelined requests costs one
    await total.  Same contract as :func:`read_frame`: ``None`` on clean
    EOF at a frame boundary, :class:`FrameError` on torn/oversize/non-JSON.
    """

    __slots__ = ("_reader", "_buffer", "_max_bytes")

    def __init__(
        self,
        reader: asyncio.StreamReader,
        *,
        max_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        self._reader = reader
        self._buffer = bytearray()
        self._max_bytes = max_bytes

    async def next(self) -> Optional[Dict[str, Any]]:
        buffer = self._buffer
        header_size = _HEADER.size
        while True:
            if len(buffer) >= header_size:
                (length,) = _HEADER.unpack_from(buffer)
                if length > self._max_bytes:
                    raise FrameError(
                        f"frame of {length} bytes exceeds limit "
                        f"{self._max_bytes}"
                    )
                end = header_size + length
                if len(buffer) >= end:
                    payload = bytes(buffer[header_size:end])
                    del buffer[:end]
                    return decode_frame_payload(payload)
            chunk = await self._reader.read(65536)
            if not chunk:
                if buffer:
                    raise FrameError(
                        f"connection closed mid-frame "
                        f"({len(buffer)} buffered bytes)"
                    )
                return None
            buffer += chunk


def error_reply(
    error_type: str,
    message: str,
    request_id: Optional[int] = None,
    **fields: Any,
) -> Dict[str, Any]:
    """Build a typed failure reply (the only way requests fail)."""
    if error_type not in ERROR_TYPES:
        raise ValueError(f"unknown serve error type {error_type!r}")
    error: Dict[str, Any] = {"type": error_type, "message": message}
    error.update(fields)
    reply: Dict[str, Any] = {"ok": False, "error": error}
    if request_id is not None:
        reply["id"] = request_id
    return reply
