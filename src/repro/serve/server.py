"""The asyncio intersection server.

One server owns a :class:`~repro.serve.registry.SessionRegistry` and a
:class:`~repro.serve.coalescer.BatchCoalescer`; connections speak the
length-prefixed JSON frame protocol of :mod:`repro.serve.wire`.
Connections are **pipelined**: a client may write many requests before
reading replies; each request is answered exactly once, correlated by the
echoed ``id``.

Backpressure is two bounded counts, checked at admission:

* the **global** bound (``max_pending_global``) caps operations accepted
  but not yet answered across the whole server;
* the **per-session** bound (``max_pending_per_session``) caps any one
  session's queue so a single hot session cannot starve the rest.

An operation over either bound is **shed gracefully**: the client gets a
typed ``overloaded`` reply (with ``scope`` = ``"server"`` or
``"session"``) immediately, the shed is counted per session and globally,
and nothing is ever silently dropped.  Admitted operations are never
shed -- once queued, they are answered.
"""

from __future__ import annotations

import asyncio
import os
from contextlib import suppress
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Dict, Optional, Set, Tuple

from repro.obs import metrics as _metrics
from repro.serve.coalescer import OP_KINDS, BatchCoalescer, PendingOp
from repro.serve.registry import SessionRegistry
from repro.serve.wire import (
    MAX_FRAME_BYTES,
    FrameError,
    FrameReader,
    ServeError,
    encode_frame,
    error_reply,
)

__all__ = ["ServeConfig", "IntersectionServer", "SERVER_TRANSPORTS"]


#: Listener transports the server speaks.  Both carry the identical wire
#: protocol (length-prefixed JSON frames) and typed-error taxonomy; the
#: only difference is the socket family underneath.
SERVER_TRANSPORTS = ("tcp", "uds")


@dataclass(frozen=True)
class ServeConfig:
    """Server knobs; the defaults are the documented production posture."""

    host: str = "127.0.0.1"
    #: 0 means "pick a free port" (the chosen one is in ``server.address``).
    port: int = 0
    #: Listener transport: ``tcp`` (host/port) or ``uds`` (a Unix-domain
    #: socket at ``uds_path``).  The wire protocol and error taxonomy are
    #: identical on both; connections never know which family carried them.
    transport: str = "tcp"
    #: Filesystem path for the ``uds`` listener (required for that
    #: transport; a stale socket file at the path is replaced).
    uds_path: Optional[str] = None
    #: Seed lineage root for sessions opened without an explicit seed.
    master_seed: int = 0
    #: Cross-session batch coalescing (the perf core); disabling it keeps
    #: behaviour bit-identical and is only for baselines and bisection.
    coalesce: bool = True
    #: Scheduling tick: how long the coalescer waits after the first
    #: pending operation for concurrent sessions' operations to land.
    tick_s: float = 0.002
    #: Global bound on accepted-but-unanswered operations.
    max_pending_global: int = 1024
    #: Per-session bound (keeps one hot session from starving the rest).
    max_pending_per_session: int = 64
    max_frame_bytes: int = MAX_FRAME_BYTES

    def __post_init__(self) -> None:
        if self.transport not in SERVER_TRANSPORTS:
            raise ValueError(
                f"unknown transport {self.transport!r} "
                f"(know: {', '.join(SERVER_TRANSPORTS)})"
            )
        if self.transport == "uds" and not self.uds_path:
            raise ValueError("the 'uds' transport requires uds_path")


def _require_list(value: Any, name: str) -> list:
    # Shape check only: element types are enforced by the execution path's
    # validate_set_pair (surfacing as typed ``invalid-input`` replies), so
    # the hot admission path does not walk every element twice.
    if not isinstance(value, list):
        raise ServeError(
            "bad-request", f"{name!r} must be a JSON array of integers"
        )
    return value


def _json_value(kind: str, value: Any) -> Any:
    """The kind-specific answer, JSON-ready."""
    if kind == "intersect":
        return sorted(value)
    if isinstance(value, Fraction):
        return [value.numerator, value.denominator]
    return value


class IntersectionServer:
    """An asyncio server multiplexing many intersection sessions."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.registry = SessionRegistry(self.config.master_seed)
        self.coalescer = BatchCoalescer(
            self.registry,
            coalesce=self.config.coalesce,
            tick_s=self.config.tick_s,
        )
        self.shed_total = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._closing = False

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        await self.coalescer.start()
        if self.config.transport == "uds":
            path = self.config.uds_path
            assert path is not None  # __post_init__ enforced
            # A stale socket file from a crashed predecessor would make
            # the bind fail; replacing it is the standard UDS posture.
            with suppress(FileNotFoundError):
                os.unlink(path)
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, self.config.host, self.config.port
            )

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0``; TCP only)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        if self.config.transport != "tcp":
            raise RuntimeError(
                f"transport {self.config.transport!r} has no TCP address; "
                f"use endpoint"
            )
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    @property
    def endpoint(self) -> Tuple[str, Any]:
        """Transport-tagged bound endpoint: ``("tcp", (host, port))`` or
        ``("uds", path)`` -- the value a client needs to connect."""
        if self._server is None:
            raise RuntimeError("server is not started")
        if self.config.transport == "uds":
            return "uds", self.config.uds_path
        return "tcp", self.address

    async def stop(self) -> None:
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.coalescer.stop()
        if self.config.transport == "uds" and self.config.uds_path:
            with suppress(FileNotFoundError):
                os.unlink(self.config.uds_path)

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    def info_payload(self) -> Dict[str, Any]:
        """Server-wide counters (the ``info`` reply body)."""
        return {
            "sessions": len(self.registry),
            "pending": self.coalescer.pending,
            "shed": self.shed_total,
            "coalesce": self.config.coalesce,
            "coalescer": self.coalescer.stats.as_dict(),
            "fingerprint": self.registry.fingerprint(),
        }

    # -- connection handling ------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        frames = FrameReader(reader, max_bytes=self.config.max_frame_bytes)
        # All replies -- control and operation -- are encoded once and go
        # through one queue drained by one writer task, so a burst of
        # completions costs one drain, not one task and one flush each.
        out_queue: "asyncio.Queue[bytes]" = asyncio.Queue()
        futures: Set["asyncio.Future"] = set()

        def enqueue(reply: Dict[str, Any]) -> None:
            out_queue.put_nowait(encode_frame(reply))

        async def writer_loop() -> None:
            closed = False
            while not closed:
                frame = await out_queue.get()
                wrote = False
                while True:
                    if frame == b"":
                        closed = True
                    else:
                        writer.write(frame)
                        wrote = True
                    try:
                        frame = out_queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                if wrote:
                    try:
                        await writer.drain()
                    except (ConnectionError, OSError):
                        # The client went away; operations already admitted
                        # still execute and bill -- only replies are lost.
                        return

        writer_task = asyncio.get_running_loop().create_task(writer_loop())
        try:
            while True:
                try:
                    request = await frames.next()
                except FrameError as exc:
                    # The transport contract is broken; one typed reply,
                    # then the connection is unusable.
                    enqueue(error_reply("bad-frame", str(exc)))
                    break
                if request is None:
                    break
                request_id = request.get("id")
                if request_id is not None and not isinstance(request_id, int):
                    enqueue(
                        error_reply("bad-request", "'id' must be an integer")
                    )
                    continue
                op = request.get("op")
                if op in OP_KINDS:
                    # Pipelined: admission is synchronous (so shed replies
                    # are immediate and bounds exact); the answer arrives
                    # via the future's completion callback.
                    try:
                        future = self._admit(op, request)
                    except ServeError as exc:
                        enqueue(exc.reply(request_id))
                        continue
                    futures.add(future)
                    future.add_done_callback(
                        self._reply_callback(
                            op, request_id, enqueue, futures.discard
                        )
                    )
                    continue
                try:
                    reply = self._handle_control(op, request)
                except ServeError as exc:
                    enqueue(exc.reply(request_id))
                    continue
                if request_id is not None:
                    reply["id"] = request_id
                enqueue(reply)
                if op == "shutdown":
                    break
        finally:
            if futures:
                # Admitted operations are answered even if the client has
                # stopped sending (EOF is not cancellation).
                await asyncio.gather(*futures, return_exceptions=True)
            out_queue.put_nowait(b"")
            await writer_task
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _admit(self, op: str, request: Dict[str, Any]) -> "asyncio.Future":
        """Admission control: bound checks, then queue for the next tick."""
        if self._closing:
            raise ServeError("shutting-down", "server is stopping")
        key = request.get("session")
        if not isinstance(key, str):
            raise ServeError("bad-request", "'session' must be a string key")
        entry = self.registry.get(key)
        if self.coalescer.pending >= self.config.max_pending_global:
            self.shed_total += 1
            entry.shed += 1
            _metrics.counter("serve.shed").inc()
            raise ServeError(
                "overloaded",
                f"server queue full ({self.config.max_pending_global} pending)",
                scope="server",
            )
        if entry.pending >= self.config.max_pending_per_session:
            self.shed_total += 1
            entry.shed += 1
            _metrics.counter("serve.shed").inc()
            raise ServeError(
                "overloaded",
                f"session {key!r} queue full "
                f"({self.config.max_pending_per_session} pending)",
                scope="session",
            )
        alice = _require_list(request.get("alice"), "alice")
        bob = _require_list(request.get("bob"), "bob")
        future = asyncio.get_running_loop().create_future()
        self.coalescer.submit(
            PendingOp(
                entry=entry,
                kind=op,
                alice_set=alice,
                bob_set=bob,
                future=future,
                request_id=request.get("id"),
            )
        )
        return future

    @staticmethod
    def _reply_callback(op: str, request_id: Optional[int], enqueue, discard):
        def callback(future: "asyncio.Future") -> None:
            discard(future)
            if future.cancelled():
                return
            exc = future.exception()
            if exc is not None:
                if isinstance(exc, ServeError):
                    enqueue(exc.reply(request_id))
                else:
                    enqueue(
                        error_reply(
                            "bad-request", f"internal error: {exc}", request_id
                        )
                    )
                return
            value, record = future.result()
            reply = {
                "ok": True,
                "result": _json_value(op, value),
                "bits": record.bits,
                "messages": record.messages,
                "protocol": record.protocol,
                "index": record.index,
                # A certified-superset answer (retry budget exhausted under
                # faults) is still ok=True -- the degradation contract is a
                # valid reply -- but the client must be able to tell.
                "degraded": record.degraded,
            }
            if request_id is not None:
                reply["id"] = request_id
            enqueue(reply)

        return callback

    # -- control operations -------------------------------------------------

    def _handle_control(
        self, op: Any, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "open":
            return self._control_open(request)
        if op == "stats":
            entry = self.registry.get(self._session_key(request))
            return {"ok": True, "stats": entry.stats_payload()}
        if op == "close":
            entry = self.registry.close(self._session_key(request))
            return {"ok": True, "stats": entry.stats_payload()}
        if op == "info":
            return {"ok": True, "info": self.info_payload()}
        if op == "shutdown":
            self._closing = True
            return {"ok": True, "stopping": True}
        raise ServeError("bad-request", f"unknown op {op!r}")

    @staticmethod
    def _session_key(request: Dict[str, Any]) -> str:
        key = request.get("session")
        if not isinstance(key, str):
            raise ServeError("bad-request", "'session' must be a string key")
        return key

    def _control_open(self, request: Dict[str, Any]) -> Dict[str, Any]:
        key = self._session_key(request)
        universe_size = request.get("universe")
        max_set_size = request.get("k")
        if not isinstance(universe_size, int) or isinstance(universe_size, bool):
            raise ServeError("bad-request", "'universe' must be an integer")
        if not isinstance(max_set_size, int) or isinstance(max_set_size, bool):
            raise ServeError("bad-request", "'k' must be an integer")
        rounds = request.get("rounds")
        if rounds is not None and (
            not isinstance(rounds, int) or isinstance(rounds, bool)
        ):
            raise ServeError("bad-request", "'rounds' must be an integer")
        seed = request.get("seed")
        if seed is not None and (
            not isinstance(seed, int) or isinstance(seed, bool)
        ):
            raise ServeError("bad-request", "'seed' must be an integer")
        faults = request.get("faults")
        if faults is not None and not isinstance(faults, str):
            raise ServeError(
                "bad-request", "'faults' must be a fault-spec string"
            )
        model = request.get("model", "shared")
        amplified = bool(request.get("amplified", False))
        entry = self.registry.open(
            key,
            universe_size=universe_size,
            max_set_size=max_set_size,
            rounds=rounds,
            model=model,
            amplified=amplified,
            seed=seed,
            faults=faults,
        )
        return {
            "ok": True,
            "session": key,
            "seed": entry.session.seed,
        }
