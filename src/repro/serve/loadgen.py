"""Deterministic load generation for the serve layer.

A :class:`LoadMix` is a small JSON-round-trippable document describing a
traffic shape: how many sessions, which ``(n, k)`` shapes, how many
operations per session, the operation-kind weights, and the overlap
fraction between each pair of sets.  Everything a mix generates is a pure
function of its ``seed`` through the shared ``derive_seed`` lineage --
session ``i`` is seeded ``derive_seed(derive_seed(seed, 1), i)`` and its
traffic stream ``derive_seed(derive_seed(seed, 2), i)`` -- so the same
mix document replays bit-identical traffic anywhere: against the async
server (coalesced or not), or through :func:`run_mix_serial`, the
in-process serial reference runner the determinism gate compares
fingerprints against.

:func:`run_load` boots an in-process server, replays the mix over real
socket connections, and reports the capacity numbers: p50/p99/p999
latency, sessions/sec and ops/sec, shed count, and coalesced-lane
occupancy.  Request frames are pre-encoded *before* the measured window
so the numbers measure the server, not the client's JSON encoder.
"""

from __future__ import annotations

import asyncio
import contextlib
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.perf.executor import derive_seed
from repro.util import hotcache
from repro.serve.coalescer import OP_KINDS, run_scalar_operation
from repro.serve.registry import SessionRegistry
from repro.serve.server import IntersectionServer, ServeConfig
from repro.serve.wire import FrameReader, encode_frame

__all__ = [
    "LoadMix",
    "LoadReport",
    "DEFAULT_MIX",
    "TRANSPORTS",
    "PROFILES",
    "mix_from_dict",
    "mix_to_dict",
    "generate_schedule",
    "run_mix_serial",
    "run_load",
    "latency_histogram",
]

#: Default op-kind weights: the small-reply kinds dominate, as they do in
#: reconciliation traffic (most queries ask "how similar / anything new?",
#: few pull the full intersection).
DEFAULT_OP_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("size", 0.4),
    ("contains-any", 0.3),
    ("jaccard", 0.2),
    ("intersect", 0.1),
)


@dataclass(frozen=True)
class LoadMix:
    """A seeded traffic mix (JSON document; see :func:`mix_to_dict`)."""

    name: str = "default"
    seed: int = 0
    sessions: int = 32
    ops_per_session: int = 16
    universe_size: int = 1 << 32
    #: Session ``i`` gets ``set_sizes[i % len(set_sizes)]`` as its ``k``.
    set_sizes: Tuple[int, ...] = (64,)
    #: Fixed session round budget; 1 selects the coalescible one-round
    #: shape (the default -- this is the amortization regime under test).
    rounds: Optional[int] = 1
    op_weights: Tuple[Tuple[str, float], ...] = DEFAULT_OP_WEIGHTS
    #: Target fraction of the smaller set shared between the two sides.
    overlap: float = 0.3
    #: Optional fault-spec string (the ``name@rate+...:seed=N`` grammar of
    #: :func:`repro.faults.models.parse_fault_spec`) threaded into every
    #: session open, so a load run can price the retry/degradation cost of
    #: a damaged channel.  Faulted sessions run the verification-driven
    #: retry loop on the scalar path; the fault stream is part of the
    #: seed lineage, so the mix stays bit-replayable.
    faults: Optional[str] = None

    def __post_init__(self) -> None:
        if self.sessions <= 0 or self.ops_per_session <= 0:
            raise ValueError("sessions and ops_per_session must be positive")
        if not self.set_sizes:
            raise ValueError("set_sizes must be non-empty")
        for kind, weight in self.op_weights:
            if kind not in OP_KINDS:
                raise ValueError(f"unknown op kind {kind!r} in op_weights")
            if weight < 0:
                raise ValueError("op weights must be non-negative")
        # Canonical order: the weight sequence feeds rng.choices, so two
        # mixes that differ only in op_weights ordering must generate the
        # same schedule (a JSON round-trip loses dict order).
        object.__setattr__(
            self, "op_weights", tuple(sorted(self.op_weights))
        )
        if not 0 <= self.overlap <= 1:
            raise ValueError("overlap must be in [0, 1]")
        if self.faults is not None:
            from repro.faults.models import parse_fault_spec

            # Parse-check at mix construction so a typo'd spec fails here,
            # not as 32 per-session open errors mid-load.
            parse_fault_spec(self.faults)

    def session_key(self, index: int) -> str:
        return f"s{index:04d}"

    def session_seed(self, index: int) -> int:
        return derive_seed(derive_seed(self.seed, 1), index)

    def traffic_seed(self, index: int) -> int:
        return derive_seed(derive_seed(self.seed, 2), index)

    def session_set_size(self, index: int) -> int:
        return self.set_sizes[index % len(self.set_sizes)]


#: The stock mix: 32 sessions of one-round k=64 traffic (the coalescible
#: shape), reply-heavy op weights, moderate overlap.
DEFAULT_MIX = LoadMix()


def mix_to_dict(mix: LoadMix) -> Dict[str, Any]:
    """The mix as a JSON-ready document (inverse of :func:`mix_from_dict`)."""
    return {
        "name": mix.name,
        "seed": mix.seed,
        "sessions": mix.sessions,
        "ops_per_session": mix.ops_per_session,
        "universe_size": mix.universe_size,
        "set_sizes": list(mix.set_sizes),
        "rounds": mix.rounds,
        "op_weights": {kind: weight for kind, weight in mix.op_weights},
        "overlap": mix.overlap,
        "faults": mix.faults,
    }


def mix_from_dict(doc: Mapping[str, Any]) -> LoadMix:
    """Parse a mix document (unknown keys rejected, defaults applied)."""
    known = {
        "name",
        "seed",
        "sessions",
        "ops_per_session",
        "universe_size",
        "set_sizes",
        "rounds",
        "op_weights",
        "overlap",
        "faults",
    }
    unknown = set(doc) - known
    if unknown:
        raise ValueError(f"unknown mix keys: {sorted(unknown)}")
    kwargs: Dict[str, Any] = dict(doc)
    if "set_sizes" in kwargs:
        kwargs["set_sizes"] = tuple(kwargs["set_sizes"])
    if "op_weights" in kwargs:
        kwargs["op_weights"] = tuple(
            sorted(kwargs["op_weights"].items())
        )
    return LoadMix(**kwargs)


@dataclass(frozen=True)
class ScheduledOp:
    """One pre-generated operation in a mix's global schedule."""

    session_index: int
    op_index: int
    kind: str
    alice: Tuple[int, ...]
    bob: Tuple[int, ...]


def generate_schedule(mix: LoadMix) -> List[ScheduledOp]:
    """The mix's full operation schedule, in global submission order.

    Order is op-index-major round-robin across sessions -- the worst case
    for per-session batching and the natural case for *cross-session*
    coalescing, which is the regime under test.  Per-session order is by
    ``op_index``, which every executor must preserve.
    """
    kinds = [kind for kind, _ in mix.op_weights]
    weights = [weight for _, weight in mix.op_weights]
    per_session: List[List[ScheduledOp]] = []
    for i in range(mix.sessions):
        rng = random.Random(mix.traffic_seed(i))
        k = mix.session_set_size(i)
        ops = []
        for j in range(mix.ops_per_session):
            kind = rng.choices(kinds, weights=weights)[0]
            a_n = rng.randint(0, k)
            b_n = rng.randint(0, k)
            alice = rng.sample(range(mix.universe_size), a_n)
            shared_n = min(int(mix.overlap * b_n), a_n)
            shared = rng.sample(alice, shared_n) if shared_n else []
            fresh = []
            taken = set(alice)
            while len(fresh) < b_n - shared_n:
                x = rng.randrange(mix.universe_size)
                if x not in taken:
                    taken.add(x)
                    fresh.append(x)
            ops.append(
                ScheduledOp(
                    session_index=i,
                    op_index=j,
                    kind=kind,
                    alice=tuple(alice),
                    bob=tuple(shared + fresh),
                )
            )
        per_session.append(ops)
    schedule: List[ScheduledOp] = []
    for j in range(mix.ops_per_session):
        for i in range(mix.sessions):
            schedule.append(per_session[i][j])
    return schedule


def _open_registry_sessions(mix: LoadMix, registry: SessionRegistry) -> None:
    for i in range(mix.sessions):
        registry.open(
            mix.session_key(i),
            universe_size=mix.universe_size,
            max_set_size=mix.session_set_size(i),
            rounds=mix.rounds,
            seed=mix.session_seed(i),
            faults=mix.faults,
        )


def run_mix_serial(mix: LoadMix) -> Dict[str, Any]:
    """The serial reference runner: same traffic, one thread, no server.

    Returns the aggregate fingerprint plus totals.  This is the oracle the
    determinism gate compares every async/coalesced run against.
    """
    registry = SessionRegistry(mix.seed)
    _open_registry_sessions(mix, registry)
    total_bits = 0
    degraded = 0
    for op in generate_schedule(mix):
        entry = registry.get(mix.session_key(op.session_index))
        _, record = run_scalar_operation(
            entry, op.kind, list(op.alice), list(op.bob)
        )
        total_bits += record.bits
        if record.degraded:
            degraded += 1
    return {
        "fingerprint": registry.fingerprint(),
        "ops": mix.sessions * mix.ops_per_session,
        "total_bits": total_bits,
        "degraded": degraded,
    }


@dataclass
class LoadReport:
    """One load run's capacity numbers.

    The latency percentiles (``p50_ms``/``p99_ms``/``p999_ms``) cover
    **answered** work only: shed (``overloaded``) replies are immediate
    admission rejections whose near-zero turnarounds live separately in
    ``shed_latencies_ms`` (with ``shed_p50_ms``/``shed_p99_ms``), so an
    overloaded run's percentile report stays honest about the work the
    server actually performed.
    """

    mix_name: str
    coalesce: bool
    sessions: int
    ops_total: int
    ops_ok: int
    shed: int
    #: ok replies that carried the degradation contract (certified
    #: superset after retry exhaustion) rather than a verified-exact
    #: answer; always a subset of ``ops_ok``.
    degraded: int = 0
    errors: List[Dict[str, Any]] = field(default_factory=list)
    wall_s: float = 0.0
    sessions_per_sec: float = 0.0
    ops_per_sec: float = 0.0
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    p999_ms: float = 0.0
    shed_p50_ms: float = 0.0
    shed_p99_ms: float = 0.0
    coalesced_ops: int = 0
    scalar_ops: int = 0
    lanes_per_batch: Optional[float] = None
    batches: int = 0
    fingerprint: str = ""
    serial_match: Optional[bool] = None
    #: How the clients reached the server: ``inproc`` (same-process
    #: asyncio clients over loopback TCP), ``tcp``, or ``uds`` (the
    #: multi-process fleet over a real socket).
    transport: str = "inproc"
    #: Worker processes that generated the load (0 = in-process clients).
    fleet: int = 0
    #: Serving cache profile: ``warm`` (hot caches on, the default) or
    #: ``cold`` (hot caches disabled in the server for the whole run).
    profile: str = "warm"
    #: Per-worker summaries (fleet mode only): ops/ok/shed/percentiles
    #: per worker process, so a straggler or a crashed worker is visible.
    workers: List[Dict[str, Any]] = field(default_factory=list)
    latencies_ms: List[float] = field(default_factory=list)
    shed_latencies_ms: List[float] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "mix": self.mix_name,
            "coalesce": self.coalesce,
            "sessions": self.sessions,
            "ops_total": self.ops_total,
            "ops_ok": self.ops_ok,
            "shed": self.shed,
            "degraded": self.degraded,
            "errors": len(self.errors),
            "wall_s": self.wall_s,
            "sessions_per_sec": self.sessions_per_sec,
            "ops_per_sec": self.ops_per_sec,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "p999_ms": self.p999_ms,
            "shed_p50_ms": self.shed_p50_ms,
            "shed_p99_ms": self.shed_p99_ms,
            "coalesced_ops": self.coalesced_ops,
            "scalar_ops": self.scalar_ops,
            "lanes_per_batch": self.lanes_per_batch,
            "batches": self.batches,
            "fingerprint": self.fingerprint,
            "serial_match": self.serial_match,
            "transport": self.transport,
            "fleet": self.fleet,
            "profile": self.profile,
            "workers": self.workers,
        }


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


#: Log-spaced latency bucket upper bounds, in milliseconds.
HISTOGRAM_BUCKETS_MS: Tuple[float, ...] = (
    0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0,
    100.0, 200.0, 500.0, 1000.0, float("inf"),
)


def latency_histogram(latencies_ms: Sequence[float]) -> Dict[str, Any]:
    """Cumulative ``le``-bucket histogram (JSON-ready; the CI artifact)."""
    counts = [0] * len(HISTOGRAM_BUCKETS_MS)
    for value in latencies_ms:
        for bucket_index, upper in enumerate(HISTOGRAM_BUCKETS_MS):
            if value <= upper:
                counts[bucket_index] += 1
    return {
        "unit": "ms",
        "count": len(latencies_ms),
        "buckets": [
            {"le": "inf" if upper == float("inf") else upper, "count": count}
            for upper, count in zip(HISTOGRAM_BUCKETS_MS, counts)
        ],
    }


async def _client_open(
    host: str,
    port: int,
    open_frames: List[bytes],
) -> Tuple[FrameReader, asyncio.StreamWriter]:
    reader, writer = await asyncio.open_connection(host, port)
    frames = FrameReader(reader)
    for frame in open_frames:
        writer.write(frame)
    await writer.drain()
    for _ in open_frames:
        reply = await frames.next()
        if reply is None or not reply.get("ok"):
            raise RuntimeError(f"session open failed: {reply!r}")
    return frames, writer


async def _client_run(
    frames: FrameReader,
    writer: asyncio.StreamWriter,
    op_frames: List[Tuple[int, bytes]],
    pipeline: int,
    latencies_s: List[float],
    counters: Dict[str, Any],
    shed_latencies_s: Optional[List[float]] = None,
) -> None:
    pending: Dict[int, float] = {}
    expected = len(op_frames)
    window = asyncio.Semaphore(pipeline)
    # Shared failure channel: the send loop only ever unblocks through
    # window.release(), which normally only read_loop performs -- so a
    # read_loop that dies with ops still in flight must both record its
    # failure here and release the window once, or the send loop parks on
    # acquire() forever (the pre-fix deadlock).
    read_failure: List[BaseException] = []

    async def read_loop() -> None:
        received = 0
        try:
            while received < expected:
                reply = await frames.next()
                now = time.perf_counter()
                if reply is None:
                    raise RuntimeError("server closed connection mid-load")
                request_id = reply.get("id")
                started = pending.pop(request_id, None)
                if started is None:
                    # A reply with no id (bad-frame errors are emitted
                    # before the server knows one) or an id we never sent:
                    # surface it as a typed counter entry, never a crash.
                    error = reply.get("error") or {
                        "type": "internal",
                        "message": f"unmatched reply {reply!r}",
                    }
                    counters["errors"].append(
                        dict(error, unmatched=True)
                    )
                    continue
                received += 1
                latency = now - started
                if reply.get("ok"):
                    counters["ok"] += 1
                    latencies_s.append(latency)
                    if reply.get("degraded"):
                        counters["degraded"] += 1
                else:
                    error = reply.get("error", {})
                    if error.get("type") == "overloaded":
                        # Shed replies are immediate admission rejections;
                        # mixing their near-zero latencies into the answered
                        # percentiles would drag p50/p99 down exactly when
                        # the server is struggling most.
                        counters["shed"] += 1
                        if shed_latencies_s is not None:
                            shed_latencies_s.append(latency)
                    else:
                        latencies_s.append(latency)
                        counters["errors"].append(error)
                window.release()
        except BaseException as exc:
            read_failure.append(exc)
            window.release()
            raise

    read_task = asyncio.get_running_loop().create_task(read_loop())
    try:
        unflushed = 0
        for request_id, frame in op_frames:
            await window.acquire()
            if read_failure:
                break
            pending[request_id] = time.perf_counter()
            writer.write(frame)
            unflushed += 1
            if unflushed >= 16:
                await writer.drain()
                unflushed = 0
        if not read_failure:
            await writer.drain()
        await read_task
    finally:
        if not read_task.done():
            read_task.cancel()
            try:
                await read_task
            except (asyncio.CancelledError, Exception):
                pass
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _partition_sessions(mix: LoadMix, connections: int) -> List[List[int]]:
    connections = max(1, min(connections, mix.sessions))
    groups: List[List[int]] = [[] for _ in range(connections)]
    for i in range(mix.sessions):
        groups[i % connections].append(i)
    return groups


async def _run_load_async(
    mix: LoadMix,
    *,
    coalesce: bool,
    tick_s: float,
    connections: int,
    pipeline: int,
    max_pending_global: int,
    max_pending_per_session: int,
    check_serial: bool,
) -> LoadReport:
    server = IntersectionServer(
        ServeConfig(
            coalesce=coalesce,
            tick_s=tick_s,
            max_pending_global=max_pending_global,
            max_pending_per_session=max_pending_per_session,
        )
    )
    await server.start()
    host, port = server.address
    try:
        schedule = generate_schedule(mix)

        # Pre-encode every frame before the measured window: the numbers
        # should measure the server, not the client's JSON encoder.
        groups = _partition_sessions(mix, connections)
        session_to_group = {}
        open_frames: List[List[bytes]] = []
        op_frames: List[List[Tuple[int, bytes]]] = []
        for group_index, group in enumerate(groups):
            frames = []
            for i in group:
                session_to_group[i] = group_index
                frames.append(
                    encode_frame(
                        {
                            "op": "open",
                            "session": mix.session_key(i),
                            "universe": mix.universe_size,
                            "k": mix.session_set_size(i),
                            "rounds": mix.rounds,
                            "seed": mix.session_seed(i),
                            "faults": mix.faults,
                        }
                    )
                )
            open_frames.append(frames)
            op_frames.append([])
        for request_id, op in enumerate(schedule):
            group_index = session_to_group[op.session_index]
            op_frames[group_index].append(
                (
                    request_id,
                    encode_frame(
                        {
                            "op": op.kind,
                            "id": request_id,
                            "session": mix.session_key(op.session_index),
                            "alice": list(op.alice),
                            "bob": list(op.bob),
                        }
                    ),
                )
            )

        # Phase 1 (unmeasured): connect and open every session.
        streams = await asyncio.gather(
            *(
                _client_open(host, port, open_frames[g])
                for g in range(len(groups))
            )
        )

        # Phase 2 (measured): replay the schedule.
        latencies_s: List[float] = []
        shed_latencies_s: List[float] = []
        counters: Dict[str, Any] = {
            "ok": 0, "shed": 0, "degraded": 0, "errors": []
        }
        started = time.perf_counter()
        await asyncio.gather(
            *(
                _client_run(
                    frames,
                    writer,
                    op_frames[g],
                    pipeline,
                    latencies_s,
                    counters,
                    shed_latencies_s,
                )
                for g, (frames, writer) in enumerate(streams)
            )
        )
        wall_s = time.perf_counter() - started

        info = server.info_payload()
    finally:
        await server.stop()

    latencies_ms = sorted(value * 1e3 for value in latencies_s)
    shed_latencies_ms = sorted(value * 1e3 for value in shed_latencies_s)
    ops_total = len(schedule)
    coalescer = info["coalescer"]
    report = LoadReport(
        mix_name=mix.name,
        coalesce=coalesce,
        sessions=mix.sessions,
        ops_total=ops_total,
        ops_ok=counters["ok"],
        shed=counters["shed"],
        degraded=counters["degraded"],
        errors=counters["errors"],
        wall_s=wall_s,
        sessions_per_sec=mix.sessions / wall_s if wall_s > 0 else 0.0,
        ops_per_sec=ops_total / wall_s if wall_s > 0 else 0.0,
        p50_ms=_percentile(latencies_ms, 0.50),
        p99_ms=_percentile(latencies_ms, 0.99),
        p999_ms=_percentile(latencies_ms, 0.999),
        shed_p50_ms=_percentile(shed_latencies_ms, 0.50),
        shed_p99_ms=_percentile(shed_latencies_ms, 0.99),
        coalesced_ops=coalescer["coalesced_ops"],
        scalar_ops=coalescer["scalar_ops"],
        lanes_per_batch=coalescer["lanes_per_batch"],
        batches=coalescer["batches"],
        fingerprint=info["fingerprint"],
        latencies_ms=latencies_ms,
        shed_latencies_ms=shed_latencies_ms,
    )
    if check_serial:
        reference = run_mix_serial(mix)
        report.serial_match = (
            report.shed == 0
            and not report.errors
            and reference["fingerprint"] == report.fingerprint
        )
    return report


#: Client transports ``run_load`` understands.  ``inproc`` is the
#: same-process asyncio harness (clients and server share one event loop
#: over loopback TCP); ``tcp`` and ``uds`` hand off to the multi-process
#: fleet driver in :mod:`repro.serve.fleet`, where worker processes pay
#: the real syscall/serialization/RTT costs.
TRANSPORTS = ("inproc", "tcp", "uds")

#: Serving cache profiles.  ``warm`` leaves the hot-path caches on (the
#: steady-state posture); ``cold`` disables them in the server process for
#: the whole run via the :mod:`repro.util.hotcache` kill switch -- the
#: regime where per-operation recomputation dominates and the coalescer's
#: pooled ``fingerprint_sweep_segments`` dispatch actually pays off.
#: Caches are semantically invisible, so the determinism fingerprint is
#: identical across profiles -- cold changes wall time, never bits.
PROFILES = ("warm", "cold")


def run_load(
    mix: LoadMix,
    *,
    coalesce: bool = True,
    tick_s: float = 0.002,
    connections: int = 8,
    pipeline: int = 32,
    max_pending_global: int = 4096,
    max_pending_per_session: int = 512,
    check_serial: bool = False,
    transport: str = "inproc",
    fleet: int = 2,
    profile: str = "warm",
    uds_path: Optional[str] = None,
) -> LoadReport:
    """Boot an in-process server and replay ``mix`` against it.

    With the default ``transport="inproc"`` the clients share the server's
    event loop (loopback TCP, zero process boundaries); ``"tcp"`` and
    ``"uds"`` dispatch to :func:`repro.serve.fleet.run_fleet`, which
    spawns ``fleet`` worker processes that replay the same schedule over
    real sockets.  ``profile="cold"`` disables the server's hot-path
    caches for the whole run (wall time changes, bits never do).

    With ``check_serial`` the same mix is replayed through
    :func:`run_mix_serial` and the aggregate fingerprints compared; a
    mismatch (or any shed under the generous default bounds) sets
    ``serial_match`` False.
    """
    if transport not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {transport!r} (know: {', '.join(TRANSPORTS)})"
        )
    if profile not in PROFILES:
        raise ValueError(
            f"unknown profile {profile!r} (know: {', '.join(PROFILES)})"
        )
    if transport != "inproc":
        from repro.serve.fleet import run_fleet

        return run_fleet(
            mix,
            transport=transport,
            fleet=fleet,
            coalesce=coalesce,
            tick_s=tick_s,
            connections=connections,
            pipeline=pipeline,
            max_pending_global=max_pending_global,
            max_pending_per_session=max_pending_per_session,
            check_serial=check_serial,
            profile=profile,
            uds_path=uds_path,
        )

    with contextlib.ExitStack() as stack:
        if profile == "cold":
            stack.enter_context(hotcache.disabled())
        report = asyncio.run(
            _run_load_async(
                mix,
                coalesce=coalesce,
                tick_s=tick_s,
                connections=connections,
                pipeline=pipeline,
                max_pending_global=max_pending_global,
                max_pending_per_session=max_pending_per_session,
                check_serial=False,
            )
        )
    report.profile = profile
    if check_serial:
        # The serial oracle runs outside the cold block on purpose: the
        # caches are value-transparent, so warm-oracle == cold-server is
        # exactly the claim the gate certifies.
        reference = run_mix_serial(mix)
        report.serial_match = (
            report.shed == 0
            and not report.errors
            and reference["fingerprint"] == report.fingerprint
        )
    return report
