"""Multi-process client fleet: load generation over real sockets.

The in-process harness (:func:`repro.serve.loadgen.run_load` with the
default ``inproc`` transport) shares one event loop between the server
and its clients, so its capacity numbers never pay the syscall,
serialization, or RTT costs a deployed client pays -- exactly the costs
that make *round* complexity matter in practice.  This module is the
out-of-process mode: the server runs in the parent (TCP or Unix-domain
socket listener, same wire protocol either way) and ``fleet`` worker
processes each replay their share of the mix's deterministic schedule
through the existing :func:`~repro.serve.loadgen._client_run` pipeline
over a real kernel socket.

**Determinism extends unchanged.**  Sessions are partitioned across
workers round-robin (the same rule connections use in-process), each
session's operations ride one connection in ``op_index`` order, and the
server's aggregate fingerprint is per-session -- so serial oracle,
in-process clients, and the socket fleet all produce the identical
fingerprint, and the shed-accounting contract (``ok + shed == total``)
holds over the merged per-worker counters.

**Measurement discipline.**  Workers pre-encode every frame and open
every session *before* a start barrier; the measured window opens when
the last worker reaches the barrier and closes when the last worker's
results arrive, so the numbers cover socket traffic, not process spawn
or JSON encoding.  Each worker reports its latency samples and counters
over a result queue; the parent merges them into one
:class:`~repro.serve.loadgen.LoadReport` with per-worker summaries
preserved in ``report.workers``.
"""

from __future__ import annotations

import asyncio
import contextlib
import multiprocessing
import os
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.serve.loadgen import (
    LoadMix,
    LoadReport,
    _client_run,
    _partition_sessions,
    _percentile,
    generate_schedule,
    mix_from_dict,
    mix_to_dict,
    run_mix_serial,
)
from repro.serve.server import IntersectionServer, ServeConfig
from repro.serve.wire import FrameReader, encode_frame
from repro.util import hotcache

__all__ = ["run_fleet", "FleetError"]

#: How long the parent waits for workers to finish connecting + opening
#: sessions (the unmeasured phase) and for results after the barrier.
_WORKER_TIMEOUT_S = 120.0


class FleetError(RuntimeError):
    """A worker process failed; carries every worker's failure text."""


def _encode_worker_frames(
    mix: LoadMix, session_indices: List[int], connections: int
) -> Tuple[List[List[bytes]], List[List[Tuple[int, bytes]]]]:
    """Pre-encode one worker's open and operation frames, per connection.

    The worker regenerates the mix's full deterministic schedule and keeps
    only its sessions' operations (in global schedule order, which is
    per-session ``op_index`` order -- the order every executor must
    preserve).  Request ids are global schedule indices, so they stay
    unique across the whole fleet.
    """
    connections = max(1, min(connections, len(session_indices)))
    groups: List[List[int]] = [[] for _ in range(connections)]
    for position, session_index in enumerate(session_indices):
        groups[position % connections].append(session_index)
    session_to_group = {
        session_index: group_index
        for group_index, group in enumerate(groups)
        for session_index in group
    }
    open_frames: List[List[bytes]] = []
    for group in groups:
        open_frames.append(
            [
                encode_frame(
                    {
                        "op": "open",
                        "session": mix.session_key(i),
                        "universe": mix.universe_size,
                        "k": mix.session_set_size(i),
                        "rounds": mix.rounds,
                        "seed": mix.session_seed(i),
                        "faults": mix.faults,
                    }
                )
                for i in group
            ]
        )
    op_frames: List[List[Tuple[int, bytes]]] = [[] for _ in groups]
    for request_id, op in enumerate(generate_schedule(mix)):
        group_index = session_to_group.get(op.session_index)
        if group_index is None:
            continue
        op_frames[group_index].append(
            (
                request_id,
                encode_frame(
                    {
                        "op": op.kind,
                        "id": request_id,
                        "session": mix.session_key(op.session_index),
                        "alice": list(op.alice),
                        "bob": list(op.bob),
                    }
                ),
            )
        )
    return open_frames, op_frames


async def _worker_async(
    mix: LoadMix,
    transport: str,
    address: Any,
    session_indices: List[int],
    connections: int,
    pipeline: int,
    barrier,
) -> Dict[str, Any]:
    open_frames, op_frames = _encode_worker_frames(
        mix, session_indices, connections
    )

    async def _connect():
        if transport == "uds":
            return await asyncio.open_unix_connection(address)
        host, port = address
        return await asyncio.open_connection(host, port)

    async def _open_group(frames_bytes: List[bytes]):
        reader, writer = await _connect()
        frames = FrameReader(reader)
        for frame in frames_bytes:
            writer.write(frame)
        await writer.drain()
        for _ in frames_bytes:
            reply = await frames.next()
            if reply is None or not reply.get("ok"):
                raise RuntimeError(f"session open failed: {reply!r}")
        return frames, writer

    # Phase 1 (unmeasured): connect and open this worker's sessions.
    streams = await asyncio.gather(
        *(_open_group(group) for group in open_frames)
    )

    # Rendezvous: every worker (and the parent's clock) passes the barrier
    # together, so the measured window never includes another worker's
    # connect/open phase.
    await asyncio.get_running_loop().run_in_executor(None, barrier.wait)

    latencies_s: List[float] = []
    shed_latencies_s: List[float] = []
    counters: Dict[str, Any] = {"ok": 0, "shed": 0, "degraded": 0, "errors": []}
    started = time.perf_counter()
    await asyncio.gather(
        *(
            _client_run(
                frames,
                writer,
                op_frames[g],
                pipeline,
                latencies_s,
                counters,
                shed_latencies_s,
            )
            for g, (frames, writer) in enumerate(streams)
        )
    )
    wall_s = time.perf_counter() - started
    return {
        "ops": sum(len(group) for group in op_frames),
        "connections": len(streams),
        "wall_s": wall_s,
        "latencies_s": latencies_s,
        "shed_latencies_s": shed_latencies_s,
        "counters": counters,
    }


def _fleet_worker_main(
    worker_index: int,
    mix_doc: Dict[str, Any],
    transport: str,
    address: Any,
    session_indices: List[int],
    connections: int,
    pipeline: int,
    barrier,
    result_queue,
) -> None:
    """Entry point of one spawned worker process."""
    try:
        result = asyncio.run(
            _worker_async(
                mix_from_dict(mix_doc),
                transport,
                address,
                session_indices,
                connections,
                pipeline,
                barrier,
            )
        )
    except BaseException as exc:  # surfaced in the parent, never swallowed
        barrier.abort()
        result_queue.put((worker_index, "error", f"{type(exc).__name__}: {exc}"))
    else:
        result_queue.put((worker_index, "ok", result))


def run_fleet(
    mix: LoadMix,
    *,
    transport: str = "uds",
    fleet: int = 2,
    coalesce: bool = True,
    tick_s: float = 0.002,
    connections: int = 8,
    pipeline: int = 32,
    max_pending_global: int = 4096,
    max_pending_per_session: int = 512,
    check_serial: bool = False,
    profile: str = "warm",
    uds_path: Optional[str] = None,
) -> LoadReport:
    """Replay ``mix`` through ``fleet`` worker processes over a real socket.

    The server runs in the calling process (so its coalescer stats and
    fingerprint are read directly); each worker owns a round-robin share
    of the sessions and ``connections`` is per worker (bounded by its
    session count).  ``profile="cold"`` disables the server's hot-path
    caches for the whole run.

    :raises FleetError: if any worker process fails or times out.
    """
    if transport not in ("tcp", "uds"):
        raise ValueError(f"fleet transport must be tcp or uds, got {transport!r}")
    if fleet < 1:
        raise ValueError(f"fleet must be at least 1 worker, got {fleet}")

    with contextlib.ExitStack() as stack:
        if profile == "cold":
            stack.enter_context(hotcache.disabled())
        if transport == "uds" and uds_path is None:
            tmp = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-serve-")
            )
            uds_path = os.path.join(tmp, "serve.sock")
        report = asyncio.run(
            _run_fleet_async(
                mix,
                transport=transport,
                fleet=fleet,
                coalesce=coalesce,
                tick_s=tick_s,
                connections=connections,
                pipeline=pipeline,
                max_pending_global=max_pending_global,
                max_pending_per_session=max_pending_per_session,
                uds_path=uds_path,
            )
        )
    report.profile = profile
    if check_serial:
        # Outside the cold block on purpose: the caches are
        # value-transparent, so a warm oracle matching a cold server is
        # exactly the claim the gate certifies.
        reference = run_mix_serial(mix)
        report.serial_match = (
            report.shed == 0
            and not report.errors
            and reference["fingerprint"] == report.fingerprint
        )
    return report


async def _run_fleet_async(
    mix: LoadMix,
    *,
    transport: str,
    fleet: int,
    coalesce: bool,
    tick_s: float,
    connections: int,
    pipeline: int,
    max_pending_global: int,
    max_pending_per_session: int,
    uds_path: Optional[str],
) -> LoadReport:
    server = IntersectionServer(
        ServeConfig(
            transport=transport,
            uds_path=uds_path,
            coalesce=coalesce,
            tick_s=tick_s,
            max_pending_global=max_pending_global,
            max_pending_per_session=max_pending_per_session,
        )
    )
    await server.start()
    kind, address = server.endpoint

    # Spawn (not fork): the parent holds a live event loop and an open
    # listener, neither of which survives a fork cleanly; spawned workers
    # re-import and re-derive everything from the (JSON-round-trippable)
    # mix document, which doubles as proof the schedule is replayable
    # from the document alone.
    ctx = multiprocessing.get_context("spawn")
    groups = _partition_sessions(mix, min(fleet, mix.sessions))
    barrier = ctx.Barrier(len(groups) + 1)
    result_queue: Any = ctx.Queue()
    processes = []
    loop = asyncio.get_running_loop()
    try:
        for worker_index, group in enumerate(groups):
            process = ctx.Process(
                target=_fleet_worker_main,
                args=(
                    worker_index,
                    mix_to_dict(mix),
                    kind,
                    address,
                    group,
                    connections,
                    pipeline,
                    barrier,
                    result_queue,
                ),
                daemon=True,
            )
            process.start()
            processes.append(process)

        # The parent is the (fleet+1)-th barrier party: passing it marks
        # every worker connected and opened, and starts the clock.
        def _rendezvous() -> None:
            barrier.wait(timeout=_WORKER_TIMEOUT_S)

        try:
            await loop.run_in_executor(None, _rendezvous)
        except threading.BrokenBarrierError:
            raise FleetError(
                "fleet rendezvous failed: "
                + "; ".join(_drain_failures(result_queue))
            ) from None
        started = time.perf_counter()

        results: List[Tuple[int, str, Any]] = []
        for _ in groups:
            try:
                results.append(
                    await loop.run_in_executor(
                        None, result_queue.get, True, _WORKER_TIMEOUT_S
                    )
                )
            except Exception:
                raise FleetError(
                    f"timed out waiting for fleet results "
                    f"({len(results)}/{len(groups)} workers reported)"
                ) from None
        wall_s = time.perf_counter() - started

        failures = [
            f"worker {index}: {detail}"
            for index, status, detail in results
            if status != "ok"
        ]
        if failures:
            raise FleetError("; ".join(failures))

        info = server.info_payload()
    finally:
        for process in processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
        await server.stop()

    results.sort(key=lambda item: item[0])
    latencies_s: List[float] = []
    shed_latencies_s: List[float] = []
    ok = shed = degraded = 0
    errors: List[Dict[str, Any]] = []
    worker_summaries: List[Dict[str, Any]] = []
    for worker_index, _, payload in results:
        latencies_s.extend(payload["latencies_s"])
        shed_latencies_s.extend(payload["shed_latencies_s"])
        counters = payload["counters"]
        ok += counters["ok"]
        shed += counters["shed"]
        degraded += counters["degraded"]
        errors.extend(counters["errors"])
        worker_latencies = sorted(v * 1e3 for v in payload["latencies_s"])
        worker_summaries.append(
            {
                "worker": worker_index,
                "ops": payload["ops"],
                "connections": payload["connections"],
                "ok": counters["ok"],
                "shed": counters["shed"],
                "wall_s": payload["wall_s"],
                "p50_ms": _percentile(worker_latencies, 0.50),
                "p99_ms": _percentile(worker_latencies, 0.99),
            }
        )

    latencies_ms = sorted(value * 1e3 for value in latencies_s)
    shed_latencies_ms = sorted(value * 1e3 for value in shed_latencies_s)
    ops_total = mix.sessions * mix.ops_per_session
    coalescer = info["coalescer"]
    return LoadReport(
        mix_name=mix.name,
        coalesce=coalesce,
        sessions=mix.sessions,
        ops_total=ops_total,
        ops_ok=ok,
        shed=shed,
        degraded=degraded,
        errors=errors,
        wall_s=wall_s,
        sessions_per_sec=mix.sessions / wall_s if wall_s > 0 else 0.0,
        ops_per_sec=ops_total / wall_s if wall_s > 0 else 0.0,
        p50_ms=_percentile(latencies_ms, 0.50),
        p99_ms=_percentile(latencies_ms, 0.99),
        p999_ms=_percentile(latencies_ms, 0.999),
        shed_p50_ms=_percentile(shed_latencies_ms, 0.50),
        shed_p99_ms=_percentile(shed_latencies_ms, 0.99),
        coalesced_ops=coalescer["coalesced_ops"],
        scalar_ops=coalescer["scalar_ops"],
        lanes_per_batch=coalescer["lanes_per_batch"],
        batches=coalescer["batches"],
        fingerprint=info["fingerprint"],
        transport=transport,
        fleet=len(groups),
        workers=worker_summaries,
        latencies_ms=latencies_ms,
        shed_latencies_ms=shed_latencies_ms,
    )


def _drain_failures(result_queue) -> List[str]:
    """Whatever failure texts workers managed to report before aborting."""
    failures = []
    while True:
        try:
            index, status, detail = result_queue.get_nowait()
        except Exception:
            break
        if status != "ok":
            failures.append(f"worker {index}: {detail}")
    return failures or ["no worker reported a reason"]
