"""Analytic cost models for the protocols.

Tests and benchmarks compare measured wire costs against these models:

* :mod:`repro.analysis.predictions` -- closed-form predictions.  For the
  structurally deterministic protocols (one-round hashing, equality,
  Basic-Intersection at known sizes) the prediction is *exact*; for the
  gap-coded trivial exchange and the adaptive tree protocol the prediction
  is an expectation / upper-bound model with explicit constants.
* :mod:`repro.analysis.exact_cc` -- ground truth for tiny instances: the
  exact deterministic communication complexity by exhaustive protocol-tree
  search (sanity-checks the optimality story on small EQ/DISJ/INT).
* :mod:`repro.analysis.empirical` -- Monte-Carlo protocol measurement over
  :mod:`repro.workloads` specs.
"""

from repro.analysis.empirical import measure_protocol
from repro.analysis.exact_cc import (
    disjointness_matrix,
    equality_matrix,
    exact_deterministic_cc,
    intersection_matrix,
)
from repro.analysis.predictions import (
    predict_basic_intersection_bits,
    predict_equality_bits,
    predict_one_round_bits,
    predict_tree_bits_upper,
    predict_trivial_bits,
)

__all__ = [
    "predict_basic_intersection_bits",
    "predict_equality_bits",
    "predict_one_round_bits",
    "predict_tree_bits_upper",
    "predict_trivial_bits",
    "measure_protocol",
    "exact_deterministic_cc",
    "equality_matrix",
    "disjointness_matrix",
    "intersection_matrix",
]
