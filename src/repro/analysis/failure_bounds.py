"""Rigorous failure-probability upper bounds for protocol configurations.

The correctness proofs (Lemma 3.7 -> Corollary 3.8 -> union bound over
leaves) are finite calculations once a concrete configuration is fixed.
This module performs exactly those calculations with the *implementation's*
parameters (fingerprint widths, hash ranges, tree shape), producing an
auditable per-run failure bound that the test suite checks against
observed failure rates -- the code-level analogue of reading the proof.

The chain, mirroring Section 3.3:

* an equality test at width ``w`` falsely passes with probability
  ``<= 2^-w`` (Fact 3.5 / the fingerprint family);
* a Basic-Intersection re-run at hash range ``t`` over ``m`` elements
  fails (collides) with probability ``<= m^2 / t`` (Fact 2.2's union
  bound with the pairwise family's ``2/t`` pairs);
* a leaf ends stage ``i`` wrong only if its covering node's equality test
  falsely passed OR its re-run collided (Lemma 3.7):
  ``p_i <= eq_i + bi_i``;
* after the last stage, the root errs only if some leaf is wrong
  (Corollary 3.8): ``P(fail) <= num_leaves * p_{r-1}`` -- but a leaf wrong
  at stage ``r-1`` requires a *fresh* failure at stage ``r-1`` (either its
  last test lied or its last re-run collided), so the bound uses only the
  final stage's parameters, exactly as the paper's proof does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.hashing.pairwise import PAIRWISE_COLLISION_FACTOR
from repro.protocols.basic_intersection import range_for_inverse_failure
from repro.protocols.equality import equality_error_exponent
from repro.util.iterlog import iterated_log

__all__ = ["StageBound", "TreeFailureBound", "tree_failure_bound"]


@dataclass(frozen=True)
class StageBound:
    """Per-stage ingredients of the failure bound.

    :param stage: stage index ``i``.
    :param equality_width: fingerprint width of the stage's tests.
    :param equality_false_pass: ``2^-width``.
    :param rerun_collision: Basic-Intersection collision bound at this
        stage's range rule, evaluated at the expected bucket load.
    :param leaf_error: Lemma 3.7's ``p_i`` = false pass + collision.
    """

    stage: int
    equality_width: int
    equality_false_pass: float
    rerun_collision: float
    leaf_error: float


@dataclass(frozen=True)
class TreeFailureBound:
    """The full bound for one tree-protocol configuration.

    :param stages: the per-stage chain.
    :param final_leaf_error: ``p_{r-1}``.
    :param overall: the Corollary 3.8 union bound
        ``num_leaves * p_{r-1}`` (clamped at 1).
    """

    stages: List[StageBound]
    final_leaf_error: float
    overall: float


def tree_failure_bound(
    max_set_size: int,
    rounds: int,
    *,
    confidence_exponent: int = 4,
    num_leaves: int = 0,
    bucket_load: int = 4,
) -> TreeFailureBound:
    """Compute the Section 3.3 failure bound for a configuration.

    :param max_set_size: ``k``.
    :param rounds: ``r`` (must be ``>= 2``; the ``r = 1`` base case's bound
        is the single hash collision ``(2k)^2 / k^c``, not tree-shaped).
    :param confidence_exponent: the per-stage exponent (paper: 4).
    :param num_leaves: tree leaves (0 selects the default ``k``).
    :param bucket_load: the ``m`` at which re-run collision bounds are
        evaluated; expected bucket loads are ~2 per side, and the bound is
        monotone in ``m``, so 4 covers the typical case (tests compare
        against observation, not worst-case loads).
    """
    if rounds < 2:
        raise ValueError("tree_failure_bound applies to the r >= 2 protocol")
    k = max(max_set_size, 2)
    leaves = num_leaves or k
    stages: List[StageBound] = []
    for stage in range(rounds):
        inverse_failure = (
            max(iterated_log(k, rounds - stage - 1), 2.0) ** confidence_exponent
        )
        width = equality_error_exponent(inverse_failure)
        false_pass = 2.0**-width
        range_size = range_for_inverse_failure(bucket_load, inverse_failure)
        collision = min(
            1.0,
            PAIRWISE_COLLISION_FACTOR
            * (bucket_load * (bucket_load - 1) / 2)
            / range_size,
        )
        leaf_error = min(1.0, false_pass + collision)
        stages.append(
            StageBound(
                stage=stage,
                equality_width=width,
                equality_false_pass=false_pass,
                rerun_collision=collision,
                leaf_error=leaf_error,
            )
        )
    final = stages[-1].leaf_error
    return TreeFailureBound(
        stages=stages,
        final_leaf_error=final,
        overall=min(1.0, leaves * final),
    )
