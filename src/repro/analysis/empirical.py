"""Monte-Carlo measurement of protocol costs over workloads.

The benchmark suite's trial-loop logic, packaged as library surface so
downstream users can measure any protocol on any
:class:`~repro.workloads.twoparty.WorkloadSpec`::

    from repro.analysis.empirical import measure_protocol
    from repro.workloads import WorkloadSpec

    report = measure_protocol(
        TreeProtocol(1 << 24, 512),
        WorkloadSpec(1 << 24, 512, 0.5),
        trials=50,
    )
    report.bits.mean, report.messages.maximum, report.success_rate
"""

from __future__ import annotations

from typing import Optional

from repro.comm.stats import TrialAggregator, TrialReport
from repro.workloads.twoparty import WorkloadSpec, generate_pair

__all__ = ["measure_protocol"]


def measure_protocol(
    protocol,
    spec: WorkloadSpec,
    *,
    trials: int = 20,
    first_seed: int = 0,
    fresh_instance_per_trial: bool = True,
    max_total_bits: Optional[int] = None,
) -> TrialReport:
    """Run ``protocol`` over seeded workload instances and aggregate.

    :param protocol: any object with
        ``run(S, T, seed=...) -> IntersectionOutcome``-shaped results
        (``total_bits``, ``num_messages``, ``correct_for``).
    :param spec: the workload to draw instances from.
    :param trials: number of seeded runs.
    :param first_seed: first seed (instance seed and protocol seed both
        derive from it, so the whole measurement is replayable).
    :param fresh_instance_per_trial: when False, one instance is reused and
        only the protocol's coins vary -- isolates protocol randomness from
        workload randomness.
    :param max_total_bits: optional per-run engine budget, forwarded when
        the protocol's ``run`` supports it.
    """
    aggregator = TrialAggregator()
    instance = generate_pair(spec, first_seed)
    for offset in range(trials):
        seed = first_seed + offset
        if fresh_instance_per_trial:
            instance = generate_pair(spec, seed)
        kwargs = {"seed": seed}
        if max_total_bits is not None:
            kwargs["max_total_bits"] = max_total_bits
        outcome = protocol.run(*instance, **kwargs)
        aggregator.add(
            bits=outcome.total_bits,
            messages=outcome.num_messages,
            correct=outcome.correct_for(*instance),
        )
    return aggregator.report()
