"""Monte-Carlo measurement of protocol costs over workloads.

The benchmark suite's trial-loop logic, packaged as library surface so
downstream users can measure any protocol on any
:class:`~repro.workloads.twoparty.WorkloadSpec`::

    from repro.analysis.empirical import measure_protocol
    from repro.workloads import WorkloadSpec

    report = measure_protocol(
        TreeProtocol(1 << 24, 512),
        WorkloadSpec(1 << 24, 512, 0.5),
        trials=50,
        workers=4,
    )
    report.bits.mean, report.messages.maximum, report.success_rate

Trials run through :func:`repro.perf.run_trials`, so ``workers > 1``
distributes them over a process pool with bit-identical results: the seed
schedule (``first_seed + offset`` for both the instance and the protocol
coins) does not depend on the execution plan.
"""

from __future__ import annotations

from functools import partial
from typing import FrozenSet, Optional, Tuple

from repro.comm.stats import TrialAggregator, TrialReport
from repro.perf.executor import run_trials
from repro.workloads.twoparty import WorkloadSpec, generate_pair

__all__ = ["measure_protocol"]


def _run_one_trial(
    protocol,
    spec: WorkloadSpec,
    fixed_instance: Optional[Tuple[FrozenSet[int], FrozenSet[int]]],
    max_total_bits: Optional[int],
    seed: int,
) -> Tuple[int, int, bool]:
    """One seeded trial (module-level so process workers can pickle it)."""
    instance = (
        fixed_instance if fixed_instance is not None else generate_pair(spec, seed)
    )
    kwargs = {"seed": seed}
    if max_total_bits is not None:
        kwargs["max_total_bits"] = max_total_bits
    outcome = protocol.run(*instance, **kwargs)
    return (
        outcome.total_bits,
        outcome.num_messages,
        outcome.correct_for(*instance),
    )


def measure_protocol(
    protocol,
    spec: WorkloadSpec,
    *,
    trials: int = 20,
    first_seed: int = 0,
    fresh_instance_per_trial: bool = True,
    max_total_bits: Optional[int] = None,
    workers: Optional[int] = None,
) -> TrialReport:
    """Run ``protocol`` over seeded workload instances and aggregate.

    :param protocol: any object with
        ``run(S, T, seed=...) -> IntersectionOutcome``-shaped results
        (``total_bits``, ``num_messages``, ``correct_for``).
    :param spec: the workload to draw instances from.
    :param trials: number of seeded runs.
    :param first_seed: first seed (instance seed and protocol seed both
        derive from it, so the whole measurement is replayable).
    :param fresh_instance_per_trial: when False, one instance is reused and
        only the protocol's coins vary -- isolates protocol randomness from
        workload randomness.
    :param max_total_bits: optional per-run engine budget, forwarded when
        the protocol's ``run`` supports it.
    :param workers: trial parallelism; ``None`` reads ``$REPRO_WORKERS``
        and defaults to serial.  The report is identical for every worker
        count (same seeds, same trials, same aggregation order); only wall
        time changes.  Process dispatch needs ``protocol`` to be picklable;
        unpicklable protocols fall back to threads transparently.
    """
    fixed_instance = (
        None if fresh_instance_per_trial else generate_pair(spec, first_seed)
    )
    trial_fn = partial(_run_one_trial, protocol, spec, fixed_instance, max_total_bits)
    seeds = [first_seed + offset for offset in range(trials)]
    run = run_trials(trial_fn, seeds, workers=workers)

    aggregator = TrialAggregator()
    for bits, messages, correct in run.values():
        aggregator.add(bits=bits, messages=messages, correct=correct)
    return aggregator.report()
