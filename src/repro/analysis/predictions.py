"""Closed-form wire-cost predictions.

Every formula here mirrors the corresponding protocol's message layout
bit for bit (widths, headers, verdicts), so the deterministic ones are
asserted *exactly* by the test suite -- a cross-check that the
implementation charges precisely what the analysis says it should.
"""

from __future__ import annotations

import math

from repro.hashing.families import collision_free_range
from repro.protocols.basic_intersection import range_for_inverse_failure
from repro.protocols.equality import equality_error_exponent
from repro.util.bits import BitWriter
from repro.util.iterlog import ceil_log2, iterated_log

__all__ = [
    "gamma_length",
    "predict_trivial_bits",
    "predict_one_round_bits",
    "predict_equality_bits",
    "predict_basic_intersection_bits",
    "predict_tree_bits_upper",
]


def gamma_length(value: int) -> int:
    """Exact length of the Elias-gamma code of ``value``."""
    return 2 * (value + 1).bit_length() - 1


def predict_trivial_bits(
    universe_size: int, set_size: int, *, both_outputs: bool = True
) -> float:
    """Expected cost of the trivial exchange on a uniform ``k``-subset.

    Gap coding: header ``gamma(k)`` plus ``k`` gamma-coded gaps with mean
    ``~ n/k``; by Jensen the expected gamma length per gap is at most
    ``2 log2(n/k + 1) + 1``.  The return-trip (``both_outputs``) is modeled
    as half the forward cost (the intersection is at most one set).
    """
    k = set_size
    n = universe_size
    if k == 0:
        return gamma_length(0)
    per_gap = 2 * math.log2(n / k + 1) + 1
    forward = gamma_length(k) + k * per_gap
    return forward * 1.5 if both_outputs else forward


def predict_one_round_bits(
    set_sizes: tuple, max_set_size: int, confidence_exponent: int = 3
) -> int:
    """*Exact* cost of the one-round hashing protocol.

    Each party sends ``gamma(|own|)`` plus ``|own|`` hash values of width
    ``ceil_log2(t)`` with ``t = collision_free_range(2k, C)``.
    """
    width = ceil_log2(
        collision_free_range(2 * max_set_size, confidence_exponent)
    )
    total = 0
    for size in set_sizes:
        total += gamma_length(size) + size * width
    return total


def predict_equality_bits(width: int) -> int:
    """*Exact* cost of the Fact 3.5 equality test: fingerprint + verdict."""
    return width + 1


def predict_basic_intersection_bits(
    alice_size: int, bob_size: int, exponent: int
) -> int:
    """*Exact* cost of Basic-Intersection at known set sizes.

    Two gamma-coded size headers plus both sorted hash lists at width
    ``ceil_log2(collision_free_range(m, i))``.
    """
    total_size = alice_size + bob_size
    width = ceil_log2(collision_free_range(max(total_size, 2), exponent))
    return (
        gamma_length(alice_size)
        + gamma_length(bob_size)
        + total_size * width
    )


def predict_tree_bits_upper(
    max_set_size: int,
    rounds: int,
    *,
    confidence_exponent: int = 4,
    universe_exponent: int = 3,
) -> float:
    """Upper-bound model of the tree protocol's expected cost.

    Mirrors the Theorem 3.6 accounting with this implementation's widths:

    * ``r = 1``: both hash lists at width ``c * ceil_log2(k)`` plus headers;
    * ``r > 1``: per stage ``i``, the equality sweep costs
      ``|L_i| * (w_i + 1)`` with ``w_i = equality_error_exponent(
      (log^(r-i-1) k)^4)``, and the Basic-Intersection re-runs are charged
      as if *every* leaf re-ran at stage 0 (their dominant stage) with
      average bucket load 2 elements per side, plus a 25% slack for later
      re-runs (Lemma 3.10's expected O(1) repetitions).

    The model is an upper bound in expectation, not a sample-exact count;
    benchmarks check ``measured <= model`` and ``measured >= model / 8``.
    """
    k = max(max_set_size, 2)
    if rounds == 1:
        width = ceil_log2(k**universe_exponent)
        return 2.0 * (gamma_length(k) + k * width)

    total = 0.0
    for stage in range(rounds):
        inverse_failure = (
            max(iterated_log(k, rounds - stage - 1), 2.0) ** confidence_exponent
        )
        eq_width = equality_error_exponent(inverse_failure)
        level_nodes = max(1.0, k / max(iterated_log(k, rounds - stage), 1.0))
        total += level_nodes * (eq_width + 1)
        # Basic-Intersection: stage-0 dominated; average per-leaf load ~1
        # element per side over 2k elements total across k leaves.
        if stage == 0:
            bi_width = ceil_log2(range_for_inverse_failure(4, inverse_failure))
            size_headers = 2 * k * gamma_length(1)
            total += 2 * k * bi_width + size_headers
    return total * 1.25


def measured_message_layout_sanity() -> int:
    """Tiny self-check used by the test suite: the gamma-length formula
    matches the writer (returns the checked maximum value)."""
    for value in (0, 1, 2, 3, 7, 8, 100, 2**20):
        writer = BitWriter()
        writer.write_gamma(value)
        if len(writer.finish()) != gamma_length(value):
            raise AssertionError(f"gamma_length mismatch at {value}")
    return 2**20
