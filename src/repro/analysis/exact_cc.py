"""Exact deterministic communication complexity of tiny functions.

The paper's optimality claims lean on lower bounds ([KS92], [ST13], ...)
that cannot be "run".  What *can* be run is exhaustive search: for tiny
universes the exact deterministic communication complexity ``D(f)`` is
computable by recursing over all protocol trees, giving ground truth to
sanity-check both the baselines (is the trivial protocol really close to
optimal for deterministic players?) and the textbook values the theory
rests on (``D(EQ_n) = n + 1``, ``D(DISJ_n) = n + O(1)``...).

Model: a deterministic protocol tree.  At each node one player partitions
its current input class in two and sends one bit; a leaf must be *output
monochromatic* (every input pair reaching it has the same function value).
``D(f)`` is the minimum over trees of the worst-case path length.  We
compute it by memoized recursion over rectangles (pairs of input classes),
trying every bipartition of the speaking player's class -- exponential in
``|X|``, so universes are capped, but exact.

Functions are given as matrices ``f[x][y]`` over arbitrary hashable output
values, so the same engine covers boolean functions (EQ, DISJ, GT) and
*relation-style* outputs like the full intersection (where the output
``S n T`` is a value both players must agree on -- modeled by requiring
leaves monochromatic in it).
"""

from __future__ import annotations

import itertools
from functools import lru_cache
from typing import Callable, List, Sequence, Tuple

__all__ = [
    "exact_deterministic_cc",
    "equality_matrix",
    "disjointness_matrix",
    "intersection_matrix",
    "greater_than_matrix",
    "all_subsets",
    "log_rank_lower_bound",
    "fooling_set_lower_bound",
]

_MAX_SIDE = 64  # 2^64 bipartitions would be absurd; keep universes tiny.


def exact_deterministic_cc(matrix: Sequence[Sequence]) -> int:
    """The exact deterministic communication complexity of ``f``.

    :param matrix: ``matrix[x][y]`` is the required common output on input
        pair ``(x, y)``; any hashable values.
    :returns: the minimum worst-case number of bits exchanged by any
        deterministic protocol whose every leaf is output-monochromatic.
    """
    num_x = len(matrix)
    num_y = len(matrix[0]) if num_x else 0
    if num_x > _MAX_SIDE or num_y > _MAX_SIDE:
        raise ValueError(
            f"matrix {num_x}x{num_y} too large for exhaustive search"
        )

    full_x = frozenset(range(num_x))
    full_y = frozenset(range(num_y))

    @lru_cache(maxsize=None)
    def cost(xs: frozenset, ys: frozenset) -> int:
        values = {matrix[x][y] for x in xs for y in ys}
        if len(values) <= 1:
            return 0
        best = None
        # Alice speaks: partition xs.  Fix one element into the "0" side to
        # kill the mirror symmetry of bipartitions.
        best = _best_split(sorted(xs), lambda part: cost(part, ys), best)
        # Bob speaks: partition ys.
        best = _best_split(sorted(ys), lambda part: cost(xs, part), best)
        if best is None:  # pragma: no cover - len(values)>1 => a split helps
            raise AssertionError("no split found")
        return 1 + best

    def _best_split(
        items: List[int], child_cost: Callable[[frozenset], int], best
    ):
        if len(items) < 2:
            return best
        anchor, rest = items[0], items[1:]
        for mask in range(1 << len(rest)):
            left = {anchor}
            right = set()
            for index, item in enumerate(rest):
                (left if (mask >> index) & 1 else right).add(item)
            if not right:
                continue
            split_cost = max(
                child_cost(frozenset(left)), child_cost(frozenset(right))
            )
            if best is None or split_cost < best:
                best = split_cost
                if best == 0:
                    return best  # cannot do better than 1 total
        return best

    return cost(full_x, full_y)


def all_subsets(universe_size: int, max_set_size: int) -> List[frozenset]:
    """All subsets of ``[universe_size]`` of size at most ``max_set_size``,
    in a canonical order (the input classes of INT_k / DISJ_k)."""
    subsets: List[frozenset] = []
    for size in range(max_set_size + 1):
        for combo in itertools.combinations(range(universe_size), size):
            subsets.append(frozenset(combo))
    return subsets


def equality_matrix(num_strings: int) -> List[List[bool]]:
    """``EQ`` on ``[num_strings]``: ``f(x, y) = (x == y)``."""
    return [[x == y for y in range(num_strings)] for x in range(num_strings)]


def greater_than_matrix(num_values: int) -> List[List[bool]]:
    """``GT`` on ``[num_values]``: ``f(x, y) = (x > y)``."""
    return [[x > y for y in range(num_values)] for x in range(num_values)]


def disjointness_matrix(
    universe_size: int, max_set_size: int
) -> Tuple[List[List[bool]], List[frozenset]]:
    """``DISJ_k^n`` as a matrix over all bounded subsets; returns the
    matrix and the subset order."""
    subsets = all_subsets(universe_size, max_set_size)
    matrix = [[not (s & t) for t in subsets] for s in subsets]
    return matrix, subsets


def intersection_matrix(
    universe_size: int, max_set_size: int
) -> Tuple[List[List[frozenset]], List[frozenset]]:
    """``INT_k`` as an output matrix (the required common output is the
    intersection itself); returns the matrix and the subset order."""
    subsets = all_subsets(universe_size, max_set_size)
    matrix = [[s & t for t in subsets] for s in subsets]
    return matrix, subsets


def log_rank_lower_bound(matrix: Sequence[Sequence[bool]]) -> int:
    """The log-rank lower bound ``D(f) >= ceil(log2 rank(M_f))``.

    The classic Mehlhorn-Schmidt bound: a ``c``-bit deterministic protocol
    partitions the matrix into at most ``2^c`` monochromatic rectangles,
    and each rectangle has rank at most 1, so ``rank(M_f) <= 2^c``.
    Computed numerically over the reals (boolean entries as 0/1).

    Polynomial in the matrix size -- usable as a sanity floor where the
    exhaustive :func:`exact_deterministic_cc` search is too expensive.
    """
    import numpy

    array = numpy.array(
        [[1.0 if cell else 0.0 for cell in row] for row in matrix]
    )
    if array.size == 0:
        return 0
    rank = numpy.linalg.matrix_rank(array)
    return int(rank - 1).bit_length() if rank > 0 else 0


def fooling_set_lower_bound(matrix: Sequence[Sequence]) -> int:
    """A fooling-set lower bound ``D(f) >= ceil(log2 |F|)``.

    Greedy construction of a fooling set: a family of input pairs
    ``(x_i, y_i)`` with common value ``v`` such that for every ``i != j``
    at least one of the crossed pairs ``(x_i, y_j)``, ``(x_j, y_i)``
    differs from ``v`` -- no two fooling pairs can share a monochromatic
    rectangle, so a protocol needs ``>= |F|`` leaves.  Greedy is not
    optimal, but any fooling set gives a valid bound.

    Tries each output value as the anchor and returns the best bound.
    """
    best = 0
    values = {cell for row in matrix for cell in row}
    for anchor in values:
        fooling: List[Tuple[int, int]] = []
        for x, row in enumerate(matrix):
            for y, cell in enumerate(row):
                if cell != anchor:
                    continue
                if all(
                    matrix[x][fy] != anchor or matrix[fx][y] != anchor
                    for fx, fy in fooling
                ):
                    fooling.append((x, y))
        if len(fooling) > best:
            best = len(fooling)
    return (best - 1).bit_length() if best > 0 else 0
