"""Crash-tolerant multiparty execution: re-poll, re-parent, or degrade.

The Section 4 protocols are built from pairwise sub-protocols over a
*fixed* player list, so one fail-stop crash mid-run kills the whole
computation: the coordinator blocks forever on the dead member's reply
(:class:`~repro.comm.errors.ProtocolDeadlock`), or a later phase mails the
corpse (:class:`~repro.comm.errors.MessageToFinishedPlayer`).  This module
is the retry/reassignment layer over the BSP round scheduler that turns
those deaths into recovery:

* **detection** -- every attempt runs with a caller-visible
  :class:`~repro.multiparty.network.RunningTotals`, so when the scheduler
  dies (or finishes with casualties) the layer knows exactly who crashed
  and what the attempt cost;
* **re-poll / re-parent** -- the next attempt re-runs the protocol over
  the *survivor* list.  Because both protocols derive their topology from
  ``ctx.players``, shrinking the list does the reassignment for free: the
  coordinator re-polls the crashed member's siblings (the group re-forms
  without it) and the binary tree re-parents a dead subtree onto its
  nearest live neighbour (the pairing ``(0,1), (2,3), ...`` re-forms over
  the survivors);
* **replayable seeds** -- attempt 0 uses the session seed itself (a
  crash-free wrapped run is bit-identical to the unwrapped one) and
  recovery attempt ``i`` uses :func:`repro.perf.executor.derive_seed`
  ``(seed, i)``, so the whole session is a pure function of ``(seed,
  fault plan)`` -- same plan seed + crash schedule => identical outcome,
  pinned by ``tests/test_multiparty_recovery.py``;
* **honest charging** -- bits/rounds of *every* attempt (including the
  aborted ones) accumulate into the outcome, with the re-run share split
  out as ``recovery_bits`` / ``recovery_rounds`` and attributed through
  the ``recovery.attempt`` / ``recovery.outcome`` trace events;
* **typed degradation** -- an exhausted budget (or total extinction)
  returns the m-player generalization of the two-party contract: the
  root-most survivor outputs its own input, which is certifiably a
  superset of the full intersection from within that player's knowledge.
  Nothing raises on channel damage.

The one-sided invariant this preserves (the property suite's contract):
the returned set is always a **superset of the true m-way intersection**
-- exact when nobody crashed, the survivors' exact intersection after
recovery (still a superset of the full one), a single survivor's input
under degradation.  Never a strict subset, never silent wrongness.

One rule keeps the semantics crisp: an attempt touched by *any* crash is
discarded even if it happens to complete (a bystander dying after its
contribution was merged would otherwise leave the result depending on
crash timing).  A recovered result is therefore always the survivors'
intersection -- the differential-oracle tests compare it against a
crash-free run over the survivors' inputs and require equality.  And as
in the two-party retry loop, a completed attempt that *corruption* faults
touched is only a suspect until an independent attempt reproduces it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.comm.errors import ProtocolError
from repro.faults.state import STATE as _FAULTS
from repro.multiparty.network import (
    MultipartyOutcome,
    RunningTotals,
    run_message_passing,
)
from repro.obs.state import STATE as _OBS
from repro.perf.executor import derive_seed

__all__ = [
    "RecoveryPolicy",
    "MultipartyRobustOutcome",
    "recovery_attempt_seed",
    "recovery_fingerprint",
    "run_with_recovery",
]


@dataclass(frozen=True)
class RecoveryPolicy:
    """Bounded recovery: how many BSP attempts before degrading.

    :param max_attempts: total attempts (>= 1).  Attempt 0 is the normal
        run; each later attempt re-runs over the then-current survivors.
        The default of 8 rides the churn model's bounded horizon: every
        fated crash lands within :attr:`~repro.faults.models.Churn.horizon`
        rounds of first sighting, and each failed attempt retires at
        least one distinct fate round, so 8 attempts carry m = 64 through
        churn rates up to ~0.3 (measured in EXPERIMENTS.md).
    """

    max_attempts: int = 8

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )


@dataclass
class MultipartyRobustOutcome:
    """Result of one recovery-wrapped multiparty session.

    :param intersection: the output set.  ``status == "exact"`` means the
        exact m-way intersection (up to the protocol's own fingerprint
        error); ``"recovered"`` the survivors' exact intersection (a
        certified superset of the full one); ``"degraded"`` a single
        player's own input (certified superset, ``degraded_mode`` says
        which flavour).
    :param survivors: players alive at the end, canonical order.
    :param crashed: players the fault plan killed, in crash order.
    :param attempts: BSP attempts consumed (including the accepted one).
    :param total_bits: exact across-attempt communication, failed attempts
        included.
    :param total_rounds: across-attempt message-bearing supersteps.
    :param recovery_bits: the share of ``total_bits`` spent by recovery
        re-runs (attempts after the first).
    :param recovery_rounds: same split for rounds.
    :param final_outcome: the accepted attempt's raw
        :class:`~repro.multiparty.network.MultipartyOutcome` (``None``
        when the session degraded without one).
    """

    intersection: FrozenSet[int]
    status: str
    protocol_name: str
    survivors: Tuple[str, ...]
    crashed: Tuple[str, ...]
    attempts: int
    total_bits: int
    total_rounds: int
    recovery_bits: int
    recovery_rounds: int
    degraded_mode: Optional[str] = None
    failure_reasons: List[str] = field(default_factory=list)
    final_outcome: Optional[MultipartyOutcome] = None

    @property
    def degraded(self) -> bool:
        """True when the retry budget (or the player population) ran out."""
        return self.status == "degraded"

    @property
    def exact(self) -> bool:
        """True when every player contributed (no crash narrowed the run)."""
        return self.status == "exact"

    def superset_of(self, sets: Sequence[Iterable[int]]) -> bool:
        """The one-sided invariant: output contains the true intersection."""
        truth = frozenset.intersection(*(frozenset(s) for s in sets))
        return truth <= self.intersection


def recovery_attempt_seed(seed: int, attempt: int) -> int:
    """The shared-randomness seed of recovery attempt ``attempt``.

    Attempt 0 is the session seed itself -- a crash-free recovered run is
    bit-identical to the unwrapped protocol run -- and later attempts
    derive through the library-wide :func:`~repro.perf.executor.derive_seed`
    lineage (pinned literals in ``tests/test_multiparty_recovery.py``).
    """
    if attempt == 0:
        return seed
    return derive_seed(seed, attempt)


def recovery_fingerprint(outcome: MultipartyRobustOutcome) -> str:
    """SHA-256 over everything replay-relevant in a recovered session.

    Two runs with the same ``(protocol, inputs, seed, fault plan)`` must
    fingerprint identically regardless of executor kind or host -- the
    bit-for-bit replayability contract of the recovery layer.
    """
    import hashlib
    import json

    doc = {
        "protocol": outcome.protocol_name,
        "status": outcome.status,
        "intersection": sorted(outcome.intersection),
        "survivors": list(outcome.survivors),
        "crashed": list(outcome.crashed),
        "attempts": outcome.attempts,
        "total_bits": outcome.total_bits,
        "total_rounds": outcome.total_rounds,
        "recovery_bits": outcome.recovery_bits,
        "recovery_rounds": outcome.recovery_rounds,
        "degraded_mode": outcome.degraded_mode,
        "failure_reasons": outcome.failure_reasons,
    }
    return hashlib.sha256(
        ("repro.multiparty.recovery:" + json.dumps(doc, sort_keys=True)).encode()
    ).hexdigest()


def _classify(exc: Exception) -> str:
    from repro.comm.errors import (
        MessageToFinishedPlayer,
        ProtocolAborted,
        ProtocolDeadlock,
        ProtocolViolation,
    )

    if isinstance(exc, MessageToFinishedPlayer):
        return "mail-to-dead"
    if isinstance(exc, ProtocolDeadlock):
        return "deadlock"
    if isinstance(exc, ProtocolAborted):
        return "aborted"
    if isinstance(exc, ProtocolViolation):
        return "violation"
    if isinstance(exc, ProtocolError):
        return "protocol-error"
    return "decode-error"


def _emit(event_type: str, **fields: Any) -> None:
    if _OBS.active:
        _OBS.tracer.emit(event_type, **fields)


def run_with_recovery(
    protocol,
    sets: Sequence[Iterable[int]],
    *,
    seed: int = 0,
    policy: Optional[RecoveryPolicy] = None,
    plan: Optional[object] = None,
) -> MultipartyRobustOutcome:
    """Run an m-party intersection protocol to a recovered (or gracefully
    degraded) result under a possibly-crashing network.

    :param protocol: a :class:`~repro.multiparty.coordinator.CoordinatorIntersection`
        or :class:`~repro.multiparty.binary_tree.BinaryTreeIntersection`
        (anything with ``universe_size`` / ``max_set_size`` / ``name`` and
        the ``_player`` generator factory).
    :param sets: one iterable of elements per player.
    :param seed: session seed; attempt seeds derive from it (see
        :func:`recovery_attempt_seed`).
    :param policy: recovery policy (default :class:`RecoveryPolicy()`).
    :param plan: explicit :class:`~repro.faults.plan.FaultPlan` for this
        session; ``None`` uses the process-global plan when installed
        (``REPRO_FAULTS``), else a reliable network.
    :returns: a :class:`MultipartyRobustOutcome`; never raises on channel
        damage (malformed inputs still raise -- caller bugs, checked
        before any attempt runs).
    """
    policy = policy if policy is not None else RecoveryPolicy()
    if not sets:
        raise ValueError("need at least one player")
    names = [f"p{index:05d}" for index in range(len(sets))]
    inputs: Dict[str, FrozenSet[int]] = {
        name: frozenset(player_set) for name, player_set in zip(names, sets)
    }
    for name, player_set in inputs.items():
        if len(player_set) > protocol.max_set_size:
            raise ValueError(
                f"{name} holds {len(player_set)} elements; k="
                f"{protocol.max_set_size}"
            )
    if plan is None and _FAULTS.active:
        plan = _FAULTS.plan

    live: List[str] = list(names)
    crashed_all: List[str] = []
    reasons: List[str] = []
    total_bits = 0
    total_rounds = 0
    recovery_bits = 0
    recovery_rounds = 0
    suspect: Optional[FrozenSet[int]] = None

    def _result(
        intersection: FrozenSet[int],
        status: str,
        attempts: int,
        *,
        degraded_mode: Optional[str] = None,
        final_outcome: Optional[MultipartyOutcome] = None,
    ) -> MultipartyRobustOutcome:
        _emit(
            "recovery.outcome",
            protocol=protocol.name,
            status=status,
            attempts=attempts,
            recovery_bits=recovery_bits,
            recovery_rounds=recovery_rounds,
        )
        if status == "degraded":
            _emit(
                "degraded.output", protocol=protocol.name, mode=degraded_mode
            )
        return MultipartyRobustOutcome(
            intersection=intersection,
            status=status,
            protocol_name=protocol.name,
            survivors=tuple(live),
            crashed=tuple(crashed_all),
            attempts=attempts,
            total_bits=total_bits,
            total_rounds=total_rounds,
            recovery_bits=recovery_bits,
            recovery_rounds=recovery_rounds,
            degraded_mode=degraded_mode,
            failure_reasons=reasons,
            final_outcome=final_outcome,
        )

    def _crash_count() -> int:
        return plan.counts.get("crash", 0) if plan is not None else 0

    def _injected() -> int:
        return plan.injected if plan is not None else 0

    for attempt in range(policy.max_attempts):
        if len(live) == 1:
            # A lone survivor needs no communication: its candidate is its
            # own input, trivially the survivors' exact intersection.
            return _result(
                inputs[live[0]],
                "recovered" if crashed_all else "exact",
                attempt,
            )
        faults_before = _injected()
        crashes_before = _crash_count()
        totals = RunningTotals()
        attempt_live = list(live)
        failure: Optional[str] = None
        outcome: Optional[MultipartyOutcome] = None
        try:
            outcome = run_message_passing(
                {name: protocol._player for name in attempt_live},
                {name: inputs[name] for name in attempt_live},
                shared_seed=recovery_attempt_seed(seed, attempt),
                fault_plan=plan,
                totals=totals,
            )
        except (ProtocolError, ValueError) as exc:
            failure = _classify(exc)
        total_bits += totals.total_bits
        total_rounds += totals.rounds
        if attempt > 0:
            recovery_bits += totals.total_bits
            recovery_rounds += totals.rounds
        newly_crashed = list(totals.crashed)
        if newly_crashed:
            crashed_all.extend(newly_crashed)
            dead = set(newly_crashed)
            live = [name for name in live if name not in dead]
        if outcome is not None and failure is None:
            if newly_crashed:
                # Discard-on-crash rule: even a completed attempt depends
                # on crash timing (did the corpse contribute before
                # dying?); re-running over the survivors pins the result
                # to *their* intersection, independent of timing.
                failure = "crashed"
            else:
                candidate = outcome.outputs[attempt_live[0]]
                if candidate is None:  # pragma: no cover - defensive
                    failure = "root-crashed"
                else:
                    candidate = frozenset(candidate)
                    corruption = (
                        (_injected() - faults_before)
                        - (_crash_count() - crashes_before)
                    )
                    if corruption == 0 or candidate == suspect:
                        # Clean attempt, or an independent reproduction of
                        # a suspect candidate (fresh shared randomness, so
                        # a consistent corruption cannot replicate).
                        return _result(
                            candidate,
                            "recovered" if crashed_all else "exact",
                            attempt + 1,
                            final_outcome=outcome,
                        )
                    suspect = candidate
                    failure = "unconfirmed"
        reasons.append(failure)
        _emit(
            "recovery.attempt",
            protocol=protocol.name,
            attempt=attempt,
            reason=failure,
            crashed=len(newly_crashed),
            survivors=len(live),
        )
        if not live:
            # Total extinction: no survivor can output anything.  The
            # session's certified-superset fallback is the canonical first
            # player's candidate -- its own input, the last set it held
            # before the fail-stop took its memory.
            return _result(
                inputs[names[0]],
                "degraded",
                attempt + 1,
                degraded_mode="no-survivors",
            )
    return _result(
        inputs[live[0]],
        "degraded",
        policy.max_attempts,
        degraded_mode="superset",
    )
