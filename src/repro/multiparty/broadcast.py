"""Result broadcast: every player outputs the intersection.

Section 4 states the goal as "the parties ... output ``S``"; the
coordinator and binary-tree protocols as described leave the result with
one final player.  This module implements the distribution step both
schemes share (see DESIGN.md, the §4 "output S" reading):

* the final holder broadcasts the *hash image* of the result under a
  shared collision-free function -- ``O(|S| log(mk))`` bits per player,
  one superstep;
* each player filters *its own input* against the image.  The result is a
  subset of every player's input (the one-sided invariant), so filtering
  recovers it exactly unless the hash collides on that player's set
  (probability ``1/poly(mk)`` by the range choice).
"""

from __future__ import annotations

from typing import Generator, List, Tuple

from repro.comm.errors import ProtocolViolation
from repro.hashing.pairwise import PairwiseHash, sample_pairwise_hash
from repro.kernels import sort_ints
from repro.multiparty.network import PlayerContext
from repro.protocols.basic_intersection import range_for_inverse_failure
from repro.util.bits import BitReader, BitString, BitWriter

__all__ = ["broadcast_hash", "send_broadcast", "await_broadcast"]


def broadcast_hash(
    ctx: PlayerContext, universe_size: int, max_set_size: int
) -> PairwiseHash:
    """The shared hash all players use for the result broadcast.

    Range ``(2k)^2 * m * k^3``: a union bound over every player's
    ``<= k``-element filter leaves total failure ``O(1/poly(mk))``.
    """
    inverse_failure = float(
        max(len(ctx.players), 2) * max(max_set_size, 2) ** 3
    )
    range_size = range_for_inverse_failure(2 * max_set_size, inverse_failure)
    return sample_pairwise_hash(
        universe_size, range_size, ctx.shared.stream("mp/broadcast")
    )


def send_broadcast(
    ctx: PlayerContext, result, universe_size: int, max_set_size: int
) -> Generator:
    """Final holder: ship the result's sorted hash image to every player."""
    hash_fn = broadcast_hash(ctx, universe_size, max_set_size)
    writer = BitWriter()
    values = sort_ints(hash_fn.images(list(result)))
    writer.write_gamma(len(values))
    writer.write_run(values, hash_fn.output_bits)
    payload = writer.finish()
    yield [(peer, payload) for peer in ctx.players if peer != ctx.name]


def await_broadcast(
    ctx: PlayerContext,
    original,
    strays: List[Tuple[str, BitString]],
    universe_size: int,
    max_set_size: int,
) -> Generator:
    """Eliminated player: wait for the broadcast, filter own input.

    ``strays`` holds messages that arrived during the player's last
    protocol phase; anything from a player other than the designated final
    holder at this point is a protocol bug.
    """
    final_holder = ctx.players[0]
    hash_fn = broadcast_hash(ctx, universe_size, max_set_size)
    pending = list(strays)
    strays.clear()
    while True:
        for source, payload in pending:
            if source != final_holder:
                raise ProtocolViolation(
                    f"unexpected post-protocol message from {source!r}"
                )
            reader = BitReader(payload)
            count = reader.read_gamma()
            images = set(reader.read_run(count, hash_fn.output_bits))
            reader.expect_exhausted()
            own = list(original)
            return frozenset(
                x
                for x, image in zip(own, hash_fn.images(own))
                if image in images
            )
        pending = yield []
