"""Helpers for running two-party protocols between BSP players.

Section 4's protocols are built from pairwise invocations of the two-party
protocol; this module provides the plumbing: constructing the pair-scoped
:class:`~repro.comm.engine.PartyContext` (both endpoints derive the same
shared-randomness namespace from the pair's names, so they agree on every
hash function without extra coordination) and driving a set of
:class:`~repro.multiparty.network.TwoPartyAdapter` concurrently inside a
player coroutine.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Tuple

from repro.comm.engine import PartyContext
from repro.comm.errors import ProtocolViolation
from repro.multiparty.network import PlayerContext, TwoPartyAdapter
from repro.util.bits import BitString

__all__ = ["pair_context", "drive_adapters"]


def pair_context(
    ctx: PlayerContext,
    role: str,
    own_input: Any,
    coordinator: str,
    member: str,
    label: str,
) -> PartyContext:
    """Build the :class:`PartyContext` for one endpoint of a pairwise run.

    Both endpoints call this with the same ``(coordinator, member, label)``
    triple and therefore agree on the shared-randomness namespace
    ``label/coordinator-member``; roles differ (``"alice"`` for the
    coordinator side by convention).
    """
    return PartyContext(
        role=role,
        input=own_input,
        shared=ctx.shared.sub(f"{label}/{coordinator}-{member}"),
        private=ctx.private,
    )


def drive_adapters(
    adapters: Dict[str, TwoPartyAdapter],
    first_inbox: List[Tuple[str, BitString]],
    strays: List[Tuple[str, BitString]],
) -> Generator:
    """Run several pairwise protocols (one adapter per peer) to completion.

    A generator to ``yield from`` inside a BSP player coroutine.  Each
    superstep it routes arrived payloads to the owning adapter, advances
    every adapter, and yields the combined outbox.  Messages from peers with
    no adapter (e.g. a faster player already starting the *next* phase of
    the surrounding protocol) are appended to ``strays`` for the caller to
    process later -- per-pair FIFO order is preserved because each ordered
    pair of players communicates within a single phase at a time.

    Returns once every adapter has completed and all its sends are flushed.
    """
    inbox = first_inbox
    # The common shape (every non-coordinator player, every tree edge) is a
    # single adapter; skip the per-superstep sort and routing dict for it.
    if len(adapters) == 1:
        (peer, adapter), = adapters.items()
        while True:
            arrived: List[BitString] = []
            for source, payload in inbox:
                if source == peer:
                    arrived.append(payload)
                else:
                    strays.append((source, payload))
            if adapter.done:
                if arrived:
                    raise ProtocolViolation(
                        f"payloads from {peer!r} after its protocol finished"
                    )
                return None
            outbox = [(peer, payload) for payload in adapter.step(arrived)]
            if not outbox and adapter.done:
                return None
            inbox = yield outbox
    peers = sorted(adapters)
    while True:
        routed: Dict[str, List[BitString]] = {}
        for source, payload in inbox:
            if source in adapters:
                routed.setdefault(source, []).append(payload)
            else:
                strays.append((source, payload))
        outbox: List[Tuple[str, BitString]] = []
        for peer in peers:
            adapter = adapters[peer]
            arrived = routed.get(peer, [])
            if adapter.done:
                if arrived:
                    raise ProtocolViolation(
                        f"payloads from {peer!r} after its protocol finished"
                    )
                continue
            outbox.extend((peer, payload) for payload in adapter.step(arrived))
        if not outbox and all(adapter.done for adapter in adapters.values()):
            return None
        inbox = yield outbox
