"""The message-passing (number-in-hand) network simulator.

The model of [BEO+13, PVZ12], simulated bulk-synchronously: execution
proceeds in *supersteps*; in each superstep every live player consumes the
messages addressed to it in the previous superstep and emits new addressed
messages.  A player is a generator::

    def player(ctx: PlayerContext):
        inbox = yield [(peer_name, payload), ...]   # superstep 1's sends
        ...                                          # inbox arrives next step
        return my_output

All payloads are :class:`~repro.util.bits.BitString`s; the engine keeps
exact per-player sent/received bit counts, and the *round complexity* is
the number of supersteps in which at least one message was in flight.

:class:`TwoPartyAdapter` bridges the two-party coroutine protocols into
this world: a player can run one (or many, against different peers)
two-party protocol coroutines, with each ``Send``/``Recv`` effect mapped to
addressed BSP messages.  Because per-peer delivery is FIFO, many pairwise
protocols progress concurrently in the same supersteps -- which is exactly
how Section 4's protocols share their round budget across a group.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Generator, List, Optional, Tuple

from repro.comm.errors import (
    MessageToFinishedPlayer,
    ProtocolDeadlock,
    ProtocolViolation,
)
from repro.comm.engine import Recv, Send
from repro.faults.state import STATE as _FAULTS
from repro.obs.state import STATE as _OBS
from repro.util.bits import BitString
from repro.util.rng import PrivateRandomness, SharedRandomness

__all__ = [
    "PlayerContext",
    "MultipartyOutcome",
    "RunningTotals",
    "TwoPartyAdapter",
    "run_message_passing",
]


@dataclass(frozen=True)
class PlayerContext:
    """Everything one player may look at.

    :param name: this player's name.
    :param index: this player's position in the canonical player order.
    :param players: the canonical ordered list of all player names
        (public knowledge -- the protocols derive groupings from it).
    :param input: this player's private input.
    :param shared: the common random string (same for all players).
    :param private: this player's private coins.
    """

    name: str
    index: int
    players: Tuple[str, ...]
    input: Any
    shared: SharedRandomness
    private: PrivateRandomness


@dataclass
class RunningTotals:
    """Live accounting for one BSP run that survives a mid-run exception.

    The scheduler updates these *as it executes*, so a caller that passed
    its own instance into :func:`run_message_passing` still holds the
    exact bits/rounds spent (and the players crashed by the fault plan)
    when the run dies on a typed error -- the accounting basis the
    recovery layer charges failed attempts on.
    """

    bits_sent: Dict[str, int] = field(default_factory=dict)
    bits_received: Dict[str, int] = field(default_factory=dict)
    rounds: int = 0
    #: Players crashed by the fault plan, in crash order.
    crashed: List[str] = field(default_factory=list)

    @property
    def total_bits(self) -> int:
        """Total communication across all links so far."""
        return sum(self.bits_sent.values())


@dataclass
class MultipartyOutcome:
    """Result of one multiparty execution."""

    outputs: Dict[str, Any]
    bits_sent: Dict[str, int]
    bits_received: Dict[str, int]
    rounds: int
    #: Players the fault plan crashed during the run (fail-stop); their
    #: ``outputs`` entries are ``None``.
    crashed: Tuple[str, ...] = ()

    @property
    def total_bits(self) -> int:
        """Total communication across all links."""
        return sum(self.bits_sent.values())

    @property
    def max_player_bits(self) -> int:
        """Worst-case per-player communication (sent + received)."""
        return max(
            self.bits_sent[name] + self.bits_received[name]
            for name in self.bits_sent
        )

    @property
    def average_player_bits(self) -> float:
        """Average per-player communication (sent + received)."""
        if not self.bits_sent:
            return 0.0
        return sum(
            self.bits_sent[name] + self.bits_received[name]
            for name in self.bits_sent
        ) / len(self.bits_sent)


class TwoPartyAdapter:
    """Drives one two-party protocol coroutine inside a BSP player.

    :param coroutine: an already-constructed party generator (e.g.
        ``protocol.alice(party_ctx)``).

    Per superstep, the owning player calls :meth:`step` with the payloads
    that arrived from the peer; the adapter advances the coroutine as far
    as possible and returns the payloads to send to the peer this
    superstep.  :attr:`done` / :attr:`output` report completion.
    """

    def __init__(self, coroutine: Generator) -> None:
        self._gen = coroutine
        self._queue: Deque[BitString] = deque()
        self.done = False
        self.output: Any = None
        self._pending: Optional[object] = None
        self._started = False

    def _advance(self, value: Any) -> None:
        try:
            if not self._started:
                self._started = True
                self._pending = next(self._gen)
            else:
                self._pending = self._gen.send(value)
        except StopIteration as stop:
            self.done = True
            self.output = stop.value
            self._pending = None

    def step(self, incoming: List[BitString]) -> List[BitString]:
        """Feed arrived payloads, run until blocked, return payloads to send."""
        self._queue.extend(incoming)
        outgoing: List[BitString] = []
        while not self.done:
            if self._pending is None and not self._started:
                self._advance(None)
                continue
            effect = self._pending
            if isinstance(effect, Send):
                outgoing.append(effect.payload)
                self._advance(None)
            elif isinstance(effect, Recv):
                if self._queue:
                    self._advance(self._queue.popleft())
                else:
                    break
            elif effect is None:  # pragma: no cover - defensive
                break
            else:
                raise ProtocolViolation(
                    f"two-party coroutine yielded {effect!r} inside adapter"
                )
        return outgoing


@dataclass
class _PlayerState:
    name: str
    generator: Generator
    started: bool = False
    done: bool = False
    output: Any = None
    inbox: List[Tuple[str, BitString]] = field(default_factory=list)


def run_message_passing(
    player_fns: Dict[str, Callable[[PlayerContext], Generator]],
    inputs: Dict[str, Any],
    *,
    shared_seed: int = 0,
    max_supersteps: int = 100_000,
    fault_plan: Optional[object] = None,
    totals: Optional[RunningTotals] = None,
) -> MultipartyOutcome:
    """Execute a multiparty protocol to completion.

    Batched round scheduler: each superstep walks only the *live* players
    (the live list shrinks incrementally as players finish, instead of
    re-scanning every player every round), and per-destination inboxes are
    materialized only for destinations actually addressed this round.  For
    the Section 4 protocols -- where most players are eliminated early and
    late supersteps touch a logarithmic fraction of the group -- this takes
    the scheduler overhead from ``O(m)`` per superstep to ``O(live + sent)``.

    :param player_fns: player name -> generator function.
    :param inputs: player name -> private input.
    :param shared_seed: seed of the common random string.
    :param max_supersteps: safety bound; exceeding it raises
        :class:`ProtocolDeadlock` (indicates a protocol bug).
    :param fault_plan: explicit :class:`~repro.faults.plan.FaultPlan` for
        this run; ``None`` falls back to the process-global plan
        (``REPRO_FAULTS``), else a reliable network.  Under a plan, each
        addressed message may be corrupted / dropped / duplicated, each
        destination's superstep inbox may be reordered, and players may
        crash fail-stop at superstep boundaries.  Bit accounting always
        charges the *original* payload to both endpoints -- the sender
        paid for it, and the accounting tracks reliable-channel cost.
    :param totals: caller-owned :class:`RunningTotals` updated live while
        the run executes, so bits/rounds spent before a typed error (and
        the identities of crashed players) are still readable from it
        after the exception propagates.  ``None`` allocates a private one.
    :raises ProtocolDeadlock: players still live but no traffic flows
        (including: every copy of an awaited message was dropped), or the
        superstep bound is exceeded.
    :raises ProtocolViolation: a message addressed to an unknown player or
        a non-``BitString`` payload.
    :raises MessageToFinishedPlayer: a message addressed to a finished (or
        crashed) player, surfaced at the top of the following superstep.
    """
    names = tuple(sorted(player_fns))
    shared = SharedRandomness(shared_seed)
    states: Dict[str, _PlayerState] = {}
    for index, name in enumerate(names):
        ctx = PlayerContext(
            name=name,
            index=index,
            players=names,
            input=inputs[name],
            shared=shared,
            private=PrivateRandomness(shared_seed * 1000003 + index),
        )
        states[name] = _PlayerState(name=name, generator=player_fns[name](ctx))

    if totals is None:
        totals = RunningTotals()
    bits_sent = totals.bits_sent
    bits_received = totals.bits_received
    for name in names:
        bits_sent[name] = 0
        bits_received[name] = 0
    plan = fault_plan
    if plan is None and _FAULTS.active:
        plan = _FAULTS.plan
    if _OBS.active:
        _OBS.tracer.emit("multiparty.start", players=len(names))
    quiet_live: Optional[List[str]] = None
    # Canonical-order list of not-yet-finished players; rebuilt (filtered)
    # only on rounds in which someone finished.
    live: List[str] = list(names)
    # Finished players that were handed mail at the end of the previous
    # round -- checked (and raised on) at the top of the next round, which
    # is when the seed scheduler's full scan would have seen them.
    mailed_finished: set = set()

    for _ in range(max_supersteps):
        if not live:
            break
        if mailed_finished:
            offender = min(mailed_finished, key=names.index)
            undelivered = len(states[offender].inbox)
            raise MessageToFinishedPlayer(
                f"{undelivered} message(s) addressed to finished player "
                f"{offender!r}",
                player=offender,
                undelivered=undelivered,
            )
        if plan is not None:
            # Fail-stop crashes happen at superstep boundaries: a crashed
            # player's pending mail is lost with it, its output stays None,
            # and anyone who messages it afterwards gets the deferred
            # MessageToFinishedPlayer above.
            crashed = plan.crash_sweep(live, totals.rounds)
            if crashed:
                for name in crashed:
                    state = states[name]
                    state.generator.close()
                    state.done = True
                    state.inbox = []
                totals.crashed.extend(crashed)
                live = [n for n in live if not states[n].done]
                if not live:
                    break
        traffic = False
        finished_this_round = False
        superstep_bits = 0
        pending: Dict[str, List[Tuple[str, BitString]]] = {}
        for name in live:
            state = states[name]
            inbox, state.inbox = state.inbox, []
            try:
                if not state.started:
                    state.started = True
                    outbox = next(state.generator)
                else:
                    outbox = state.generator.send(inbox)
            except StopIteration as stop:
                state.done = True
                state.output = stop.value
                finished_this_round = True
                continue
            if not outbox:
                continue
            traffic = True
            sent_bits = 0
            for destination, payload in outbox:
                if destination not in states:
                    raise ProtocolViolation(
                        f"{name!r} addressed unknown player {destination!r}"
                    )
                if not isinstance(payload, BitString):
                    raise ProtocolViolation(
                        f"{name!r} sent a non-BitString payload to "
                        f"{destination!r}"
                    )
                width = len(payload)
                sent_bits += width
                bits_received[destination] += width
                bucket = pending.get(destination)
                if bucket is None:
                    bucket = pending[destination] = []
                if plan is None:
                    bucket.append((name, payload))
                else:
                    for delivery in plan.deliver_multiparty(
                        name, destination, payload
                    ):
                        bucket.append((name, delivery))
            bits_sent[name] += sent_bits
            superstep_bits += sent_bits
        for name, messages in pending.items():
            if plan is not None:
                plan.maybe_reorder(name, messages)
            if not messages:
                continue  # every copy was dropped by the fault model
            state = states[name]
            state.inbox.extend(messages)
            if state.done:
                mailed_finished.add(name)
        if finished_this_round:
            live = [n for n in live if not states[n].done]
        if traffic:
            totals.rounds += 1
            quiet_live = None
            if _OBS.active:
                # One event per superstep that carried traffic -- the
                # multiparty analogue of the two-party round boundary.
                _OBS.tracer.emit(
                    "round.boundary",
                    round=totals.rounds,
                    bits=superstep_bits,
                    live=len(live),
                )
                from repro.obs import metrics as _metrics

                _metrics.histogram("multiparty.bits_per_round").observe(
                    superstep_bits
                )
        elif live:
            # One quiet grace step lets players finish after their last
            # receive; a second quiet step with the same live set is a
            # genuine deadlock.
            if quiet_live == live:
                raise ProtocolDeadlock(
                    f"multiparty deadlock: players {live} idle with no traffic"
                )
            quiet_live = list(live)
    else:
        raise ProtocolDeadlock(
            f"multiparty protocol exceeded {max_supersteps} supersteps"
        )

    if _OBS.active:
        total = sum(bits_sent.values())
        _OBS.tracer.emit(
            "multiparty.finish", rounds=totals.rounds, total_bits=total
        )
        from repro.obs import metrics as _metrics

        _metrics.histogram("multiparty.rounds_per_run").observe(totals.rounds)
        _metrics.histogram("multiparty.bits_per_run").observe(total)

    return MultipartyOutcome(
        outputs={name: states[name].output for name in names},
        bits_sent=bits_sent,
        bits_received=bits_received,
        rounds=totals.rounds,
        crashed=tuple(totals.crashed),
    )
