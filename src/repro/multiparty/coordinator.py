"""Corollary 4.1: the coordinator-based multiparty protocol.

The ``m`` players are partitioned into groups of at most ``2^k`` (the
recursion depth is then ``max(1, ceil(log2(m) / k))``, matching the stated
round bound ``O(r * max(1, log(m)/k))``; see DESIGN.md on the group-size
reading).  Within each group, the first player acts as coordinator: every
other member runs the amplified two-party protocol with it, so the
coordinator learns ``T_i = S_1 n S_i`` for each member ``i``, each run
certified by a ``2k``-bit equality check (error ``2^-2k``; a union bound
over at most ``2^k`` members leaves ``2^-k``).  The coordinator's group
result is ``T_2 n ... n T_g = S_1 n ... n S_g``.  The protocol then recurses
over the coordinators with their group results until one player holds the
full intersection.

Communication: the first level dominates (the number of active players
drops by a factor ``2^k`` per level); each member pays the two-party cost
``O(k log^(r) k)`` once, so the *average* per-player communication is
``O(k log^(r) k)`` -- at ``r = log* k``, total ``O(mk)``, matching the
``Omega(mk)`` lower bound of [PVZ12, BEO+13].  The coordinator itself pays
``O(group_size * k log^(r) k)``, which is what Corollary 4.2 smooths out.

All pairwise runs inside a group proceed in parallel in the same BSP
supersteps, so the expected round count per level is the two-party
``O(r)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Generator, Iterable, List, Optional, Sequence

from repro.core.amplify import AmplifiedIntersection
from repro.multiparty.network import (
    MultipartyOutcome,
    PlayerContext,
    TwoPartyAdapter,
    run_message_passing,
)
from repro.multiparty.pairing import drive_adapters, pair_context

__all__ = ["CoordinatorIntersection", "MultipartyResult"]


@dataclass
class MultipartyResult:
    """Convenience wrapper: the computed intersection plus the accounting."""

    intersection: FrozenSet[int]
    outcome: MultipartyOutcome

    @property
    def total_bits(self) -> int:
        """Total communication across all links."""
        return self.outcome.total_bits

    @property
    def rounds(self) -> int:
        """Number of message-bearing supersteps."""
        return self.outcome.rounds


def partition_groups(players: Sequence[str], group_size: int) -> List[List[str]]:
    """Split the (canonically ordered) player list into contiguous groups."""
    return [
        list(players[start : start + group_size])
        for start in range(0, len(players), group_size)
    ]


class CoordinatorIntersection:
    """Corollary 4.1 (average-case optimal multiparty intersection).

    :param universe_size: universe ``[n]``.
    :param max_set_size: bound ``k`` on every player's set.
    :param rounds: the two-party tradeoff parameter ``r`` (default
        ``log* k``).
    :param group_size: players per group; default ``2^min(k, 16)`` (capped
        so the simulation stays addressable -- for any ``k >= log2(m)`` the
        cap is immaterial and the recursion has a single level).
    :param max_attempts: retry cap forwarded to the amplified two-party
        protocol.
    :param broadcast: when True, the final coordinator broadcasts the
        result's hash image to every player in one extra round, and *every*
        player outputs the intersection (filtered from its own set, which
        always contains the result) -- the "all parties output S" reading
        of Section 4's problem statement.  Costs ``O(|S| log(mk))`` bits per
        player; exact except with probability ``1/poly(mk)``.
    """

    name = "coordinator-multiparty"

    def __init__(
        self,
        universe_size: int,
        max_set_size: int,
        *,
        rounds: Optional[int] = None,
        group_size: Optional[int] = None,
        max_attempts: int = 64,
        broadcast: bool = False,
    ) -> None:
        if universe_size < 1:
            raise ValueError(f"universe_size must be >= 1, got {universe_size}")
        if max_set_size < 1:
            raise ValueError(f"max_set_size must be >= 1, got {max_set_size}")
        self.universe_size = universe_size
        self.max_set_size = max_set_size
        self.rounds = rounds
        if group_size is None:
            group_size = 2 ** min(max_set_size, 16)
        if group_size < 2:
            raise ValueError(f"group_size must be >= 2, got {group_size}")
        self.group_size = group_size
        self.max_attempts = max_attempts
        self.broadcast = broadcast

    def _pair_protocol(self) -> AmplifiedIntersection:
        return AmplifiedIntersection(
            self.universe_size,
            self.max_set_size,
            rounds=self.rounds,
            max_attempts=self.max_attempts,
            check_width=2 * self.max_set_size,
        )

    def _player(self, ctx: PlayerContext) -> Generator:
        current: FrozenSet[int] = frozenset(ctx.input)
        active: List[str] = list(ctx.players)
        inbox: List = []
        strays: List = []
        level = 0
        # AmplifiedIntersection is stateless (per-run state lives in the
        # coroutines it constructs), so one instance serves every pairwise
        # run this player ever participates in.
        pair_protocol = self._pair_protocol()

        while len(active) > 1:
            groups = partition_groups(active, self.group_size)
            my_group = next(group for group in groups if ctx.name in group)
            coordinator = my_group[0]
            label = f"mp/coord/l{level}"

            if ctx.name == coordinator:
                adapters: Dict[str, TwoPartyAdapter] = {}
                for member in my_group[1:]:
                    pctx = pair_context(
                        ctx, "alice", current, coordinator, member, label
                    )
                    adapters[member] = TwoPartyAdapter(
                        pair_protocol.alice(pctx)
                    )
                if adapters:
                    first_inbox = strays + inbox
                    strays.clear()  # drive re-strays whatever it can't route
                    inbox = []
                    yield from drive_adapters(adapters, first_inbox, strays)
                    for member in my_group[1:]:
                        pair_result = adapters[member].output
                        current = current & pair_result
            else:
                pctx = pair_context(
                    ctx, "bob", current, coordinator, ctx.name, label
                )
                adapter = TwoPartyAdapter(pair_protocol.bob(pctx))
                first_inbox = strays + inbox
                strays.clear()
                inbox = []
                yield from drive_adapters(
                    {coordinator: adapter}, first_inbox, strays
                )
                if not self.broadcast:
                    return None  # not a coordinator: done after this level
                from repro.multiparty.broadcast import await_broadcast

                return (
                    yield from await_broadcast(
                        ctx,
                        frozenset(ctx.input),
                        strays,
                        self.universe_size,
                        self.max_set_size,
                    )
                )

            active = [group[0] for group in groups]
            level += 1

        if self.broadcast and len(ctx.players) > 1:
            from repro.multiparty.broadcast import send_broadcast

            yield from send_broadcast(
                ctx, current, self.universe_size, self.max_set_size
            )
        return current

    def run(
        self, sets: Sequence[Iterable[int]], *, seed: int = 0
    ) -> MultipartyResult:
        """Compute the intersection of ``m`` players' sets.

        :param sets: one iterable of elements per player.
        :param seed: replay seed for all randomness.
        """
        if not sets:
            raise ValueError("need at least one player")
        names = [f"p{index:05d}" for index in range(len(sets))]
        inputs = {
            name: frozenset(player_set) for name, player_set in zip(names, sets)
        }
        for name, player_set in inputs.items():
            if len(player_set) > self.max_set_size:
                raise ValueError(
                    f"{name} holds {len(player_set)} elements; k="
                    f"{self.max_set_size}"
                )
        if len(sets) == 1:
            only = inputs[names[0]]
            return MultipartyResult(
                intersection=only,
                outcome=MultipartyOutcome(
                    outputs={names[0]: only},
                    bits_sent={names[0]: 0},
                    bits_received={names[0]: 0},
                    rounds=0,
                ),
            )
        outcome = run_message_passing(
            {name: self._player for name in names},
            inputs,
            shared_seed=seed,
        )
        final = outcome.outputs[names[0]]
        return MultipartyResult(intersection=frozenset(final), outcome=outcome)
