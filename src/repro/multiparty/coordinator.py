"""Corollary 4.1: the coordinator-based multiparty protocol.

The ``m`` players are partitioned into groups of at most ``2^k`` (the
recursion depth is then ``max(1, ceil(log2(m) / k))``, matching the stated
round bound ``O(r * max(1, log(m)/k))``; see DESIGN.md on the group-size
reading).  Within each group, the first player acts as coordinator: every
other member runs the amplified two-party protocol with it, so the
coordinator learns ``T_i = S_1 n S_i`` for each member ``i``, each run
certified by a ``2k``-bit equality check (error ``2^-2k``; a union bound
over at most ``2^k`` members leaves ``2^-k``).  The coordinator's group
result is ``T_2 n ... n T_g = S_1 n ... n S_g``.  The protocol then recurses
over the coordinators with their group results until one player holds the
full intersection.

Communication: the first level dominates (the number of active players
drops by a factor ``2^k`` per level); each member pays the two-party cost
``O(k log^(r) k)`` once, so the *average* per-player communication is
``O(k log^(r) k)`` -- at ``r = log* k``, total ``O(mk)``, matching the
``Omega(mk)`` lower bound of [PVZ12, BEO+13].  The coordinator itself pays
``O(group_size * k log^(r) k)``, which is what Corollary 4.2 smooths out.

All pairwise runs inside a group proceed in parallel in the same BSP
supersteps, so the expected round count per level is the two-party
``O(r)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Generator, Iterable, List, Optional, Sequence

from repro.comm.errors import MessageToFinishedPlayer, ProtocolDeadlock
from repro.core.amplify import AmplifiedIntersection
from repro.multiparty.network import (
    MultipartyOutcome,
    PlayerContext,
    RunningTotals,
    TwoPartyAdapter,
    run_message_passing,
)
from repro.multiparty.pairing import drive_adapters, pair_context

__all__ = ["CoordinatorIntersection", "MultipartyResult"]


@dataclass
class MultipartyResult:
    """Convenience wrapper: the computed intersection plus the accounting.

    ``robust`` is populated when the run went through the crash-recovery
    layer (or had to degrade): it carries the per-attempt ledger, the
    survivor/casualty lists and the degradation mode.  ``total_bits`` /
    ``rounds`` then report the *session* totals -- failed attempts
    included -- because that is what the network actually carried.
    """

    intersection: FrozenSet[int]
    outcome: MultipartyOutcome
    robust: Optional["MultipartyRobustOutcome"] = None

    @property
    def total_bits(self) -> int:
        """Total communication across all links (all attempts)."""
        if self.robust is not None:
            return self.robust.total_bits
        return self.outcome.total_bits

    @property
    def rounds(self) -> int:
        """Number of message-bearing supersteps (all attempts)."""
        if self.robust is not None:
            return self.robust.total_rounds
        return self.outcome.rounds

    @property
    def status(self) -> str:
        """``"exact"``, ``"recovered"``, or ``"degraded"``."""
        return self.robust.status if self.robust is not None else "exact"

    @property
    def degraded(self) -> bool:
        """True when the result is a certified superset, not the answer."""
        return self.robust is not None and self.robust.degraded


def partition_groups(players: Sequence[str], group_size: int) -> List[List[str]]:
    """Split the (canonically ordered) player list into contiguous groups."""
    return [
        list(players[start : start + group_size])
        for start in range(0, len(players), group_size)
    ]


def _run_with_contract(
    protocol, sets: Sequence[Iterable[int]], seed: int, recover: Optional[bool]
) -> MultipartyResult:
    """The shared ``run()`` body of both multiparty protocols.

    Validates inputs, then picks the execution path:

    * ``recover=None`` (the default) auto-enables the recovery layer
      exactly when a fault plan is installed (``REPRO_FAULTS`` or an
      ``inject()`` block) -- a reliable network never pays the wrapper
      and stays bit-identical to the pre-recovery code path;
    * ``recover=True`` forces the recovery layer;
    * ``recover=False`` runs the raw BSP scheduler, but still honours the
      degradation contract: a crash surfacing as
      :class:`~repro.comm.errors.MessageToFinishedPlayer` (or as a
      crashed root with no output) becomes a typed certified-superset
      :class:`MultipartyResult` instead of an escaping error.
    """
    if not sets:
        raise ValueError("need at least one player")
    names = [f"p{index:05d}" for index in range(len(sets))]
    inputs = {
        name: frozenset(player_set) for name, player_set in zip(names, sets)
    }
    for name, player_set in inputs.items():
        if len(player_set) > protocol.max_set_size:
            raise ValueError(
                f"{name} holds {len(player_set)} elements; k="
                f"{protocol.max_set_size}"
            )
    if len(sets) == 1:
        only = inputs[names[0]]
        return MultipartyResult(
            intersection=only,
            outcome=MultipartyOutcome(
                outputs={names[0]: only},
                bits_sent={names[0]: 0},
                bits_received={names[0]: 0},
                rounds=0,
            ),
        )
    if recover is None:
        from repro.faults.state import STATE as _FAULTS

        recover = _FAULTS.active
    if recover:
        from repro.multiparty.recovery import run_with_recovery

        robust = run_with_recovery(protocol, sets, seed=seed)
        outcome = robust.final_outcome
        if outcome is None:
            holder = robust.survivors[0] if robust.survivors else names[0]
            outcome = MultipartyOutcome(
                outputs={holder: robust.intersection},
                bits_sent={},
                bits_received={},
                rounds=robust.total_rounds,
                crashed=robust.crashed,
            )
        return MultipartyResult(
            intersection=robust.intersection, outcome=outcome, robust=robust
        )

    totals = RunningTotals()
    outcome = None
    final = None
    reason = "root-crashed"
    try:
        outcome = run_message_passing(
            {name: protocol._player for name in names},
            inputs,
            shared_seed=seed,
            totals=totals,
        )
        final = outcome.outputs[names[0]]
    except (MessageToFinishedPlayer, ProtocolDeadlock) as exc:
        if not totals.crashed:
            # No casualties means this is a genuine protocol bug, not
            # channel damage; masking it as degradation would hide it.
            raise
        reason = (
            "mail-to-dead"
            if isinstance(exc, MessageToFinishedPlayer)
            else "deadlock"
        )
    if final is None:
        # A fail-stop crash either mailed a finished player or took the
        # output-holding root with it.  Both used to escape as bare errors
        # (losing the accounting with them); the contract is a *typed*
        # certified-superset degradation over what the canonical root
        # knew: its own input.
        from repro.multiparty.recovery import MultipartyRobustOutcome
        from repro.obs.state import STATE as _OBS

        crashed = tuple(totals.crashed)
        dead = set(crashed)
        fallback = inputs[names[0]]
        robust = MultipartyRobustOutcome(
            intersection=fallback,
            status="degraded",
            protocol_name=protocol.name,
            survivors=tuple(n for n in names if n not in dead),
            crashed=crashed,
            attempts=1,
            total_bits=totals.total_bits,
            total_rounds=totals.rounds,
            recovery_bits=0,
            recovery_rounds=0,
            degraded_mode="superset",
            failure_reasons=[reason],
        )
        if _OBS.active:
            _OBS.tracer.emit(
                "degraded.output", protocol=protocol.name, mode="superset"
            )
        synthesized = MultipartyOutcome(
            outputs={names[0]: fallback},
            bits_sent=dict(totals.bits_sent),
            bits_received=dict(totals.bits_received),
            rounds=totals.rounds,
            crashed=crashed,
        )
        return MultipartyResult(
            intersection=fallback, outcome=synthesized, robust=robust
        )
    return MultipartyResult(intersection=frozenset(final), outcome=outcome)


class CoordinatorIntersection:
    """Corollary 4.1 (average-case optimal multiparty intersection).

    :param universe_size: universe ``[n]``.
    :param max_set_size: bound ``k`` on every player's set.
    :param rounds: the two-party tradeoff parameter ``r`` (default
        ``log* k``).
    :param group_size: players per group; default ``2^min(k, 16)`` (capped
        so the simulation stays addressable -- for any ``k >= log2(m)`` the
        cap is immaterial and the recursion has a single level).
    :param max_attempts: retry cap forwarded to the amplified two-party
        protocol.
    :param broadcast: when True, the final coordinator broadcasts the
        result's hash image to every player in one extra round, and *every*
        player outputs the intersection (filtered from its own set, which
        always contains the result) -- the "all parties output S" reading
        of Section 4's problem statement.  Costs ``O(|S| log(mk))`` bits per
        player; exact except with probability ``1/poly(mk)``.
    """

    name = "coordinator-multiparty"

    def __init__(
        self,
        universe_size: int,
        max_set_size: int,
        *,
        rounds: Optional[int] = None,
        group_size: Optional[int] = None,
        max_attempts: int = 64,
        broadcast: bool = False,
    ) -> None:
        if universe_size < 1:
            raise ValueError(f"universe_size must be >= 1, got {universe_size}")
        if max_set_size < 1:
            raise ValueError(f"max_set_size must be >= 1, got {max_set_size}")
        self.universe_size = universe_size
        self.max_set_size = max_set_size
        self.rounds = rounds
        if group_size is None:
            group_size = 2 ** min(max_set_size, 16)
        if group_size < 2:
            raise ValueError(f"group_size must be >= 2, got {group_size}")
        self.group_size = group_size
        self.max_attempts = max_attempts
        self.broadcast = broadcast

    def _pair_protocol(self) -> AmplifiedIntersection:
        return AmplifiedIntersection(
            self.universe_size,
            self.max_set_size,
            rounds=self.rounds,
            max_attempts=self.max_attempts,
            check_width=2 * self.max_set_size,
        )

    def _player(self, ctx: PlayerContext) -> Generator:
        current: FrozenSet[int] = frozenset(ctx.input)
        active: List[str] = list(ctx.players)
        inbox: List = []
        strays: List = []
        level = 0
        # AmplifiedIntersection is stateless (per-run state lives in the
        # coroutines it constructs), so one instance serves every pairwise
        # run this player ever participates in.
        pair_protocol = self._pair_protocol()

        while len(active) > 1:
            groups = partition_groups(active, self.group_size)
            my_group = next(group for group in groups if ctx.name in group)
            coordinator = my_group[0]
            label = f"mp/coord/l{level}"

            if ctx.name == coordinator:
                adapters: Dict[str, TwoPartyAdapter] = {}
                for member in my_group[1:]:
                    pctx = pair_context(
                        ctx, "alice", current, coordinator, member, label
                    )
                    adapters[member] = TwoPartyAdapter(
                        pair_protocol.alice(pctx)
                    )
                if adapters:
                    first_inbox = strays + inbox
                    strays.clear()  # drive re-strays whatever it can't route
                    inbox = []
                    yield from drive_adapters(adapters, first_inbox, strays)
                    for member in my_group[1:]:
                        pair_result = adapters[member].output
                        current = current & pair_result
            else:
                pctx = pair_context(
                    ctx, "bob", current, coordinator, ctx.name, label
                )
                adapter = TwoPartyAdapter(pair_protocol.bob(pctx))
                first_inbox = strays + inbox
                strays.clear()
                inbox = []
                yield from drive_adapters(
                    {coordinator: adapter}, first_inbox, strays
                )
                if not self.broadcast:
                    return None  # not a coordinator: done after this level
                from repro.multiparty.broadcast import await_broadcast

                return (
                    yield from await_broadcast(
                        ctx,
                        frozenset(ctx.input),
                        strays,
                        self.universe_size,
                        self.max_set_size,
                    )
                )

            active = [group[0] for group in groups]
            level += 1

        if self.broadcast and len(ctx.players) > 1:
            from repro.multiparty.broadcast import send_broadcast

            yield from send_broadcast(
                ctx, current, self.universe_size, self.max_set_size
            )
        return current

    def run(
        self,
        sets: Sequence[Iterable[int]],
        *,
        seed: int = 0,
        recover: Optional[bool] = None,
    ) -> MultipartyResult:
        """Compute the intersection of ``m`` players' sets.

        :param sets: one iterable of elements per player.
        :param seed: replay seed for all randomness.
        :param recover: ``None`` (default) engages the crash-recovery
            layer exactly when a fault plan is active; ``True``/``False``
            force it on/off.  Even with ``False``, a crash degrades to a
            typed certified-superset result instead of raising.
        """
        return _run_with_contract(self, sets, seed, recover)
