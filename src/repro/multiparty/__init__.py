"""Section 4: multi-party set intersection in the message-passing model.

``m`` players each hold a set ``S_i subset of [n]``, ``|S_i| <= k``, and
want ``S = S_1 n ... n S_m``.  Any player may message any other; per round
the players compute locally and then exchange messages (the message-passing
model of [BEO+13, PVZ12]).

* :mod:`repro.multiparty.network` -- the bulk-synchronous message-passing
  simulator with exact per-player bit accounting, plus the adapter that
  runs two-party coroutines (many pairs in parallel) inside it.
* :mod:`repro.multiparty.coordinator` -- Corollary 4.1: group players,
  coordinators pairwise-intersect with members (verified by ``2k``-bit
  equality checks), recurse over coordinators.  Expected *average*
  communication per player ``O(k log^(r) k)``; with ``r = log* k`` the total
  ``O(mk)`` matches the ``Omega(mk)`` lower bound.
* :mod:`repro.multiparty.binary_tree` -- Corollary 4.2: within each group
  the players aggregate up a binary tree, bounding the *worst-case*
  per-player communication at the price of more rounds.
"""

from repro.multiparty.binary_tree import BinaryTreeIntersection
from repro.multiparty.coordinator import CoordinatorIntersection
from repro.multiparty.network import (
    MultipartyOutcome,
    PlayerContext,
    TwoPartyAdapter,
    run_message_passing,
)

__all__ = [
    "BinaryTreeIntersection",
    "CoordinatorIntersection",
    "MultipartyOutcome",
    "PlayerContext",
    "TwoPartyAdapter",
    "run_message_passing",
]
