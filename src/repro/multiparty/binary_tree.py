"""Corollary 4.2: worst-case-bounded multiparty intersection.

Corollary 4.1's coordinator pays for every member in its group; Corollary
4.2 spreads that cost by aggregating *up a complete binary tree* inside each
group: at tree step ``t`` the surviving players pair up ``(0,1), (2,3), ...``
(by group position), each pair runs the two-party protocol on their carried
candidate sets, and the left player of each pair carries the pairwise
intersection upward.  A player on a root-to-leaf path participates in at
most ``ceil(log2(group)) = O(k)`` pairwise protocols per recursion level, so
the worst-case per-player communication is ``O(k^2 log^(r) k)`` per level --
``O(k^2 log^(r) k * max(1, log(m)/k))`` overall -- at the price of
``O(r * k)`` expected rounds per level (the tree steps are sequential).

Certification: the paper runs plain pairwise protocols and adds a ``k``-bit
equality check at the top pair, repeating the whole tree on failure.  We
use the amplified pairwise protocol (``2k``-bit check per pair, the same
primitive Corollary 4.1 uses) at every tree edge instead: each pair
self-certifies with error ``2^-2k``, so a union bound over the at most
``2^k`` edges gives the same ``1 - 2^-k`` guarantee without the group-wide
retry broadcast the paper leaves implicit (see DESIGN.md).  The top pair's
amplification check *is* the root certification.

Like Corollary 4.1, groups recurse: each group's tree winner advances with
the group intersection until one player holds the answer.
"""

from __future__ import annotations

from typing import FrozenSet, Generator, Iterable, List, Optional, Sequence

from repro.core.amplify import AmplifiedIntersection
from repro.multiparty.coordinator import (
    MultipartyResult,
    _run_with_contract,
    partition_groups,
)
from repro.multiparty.network import PlayerContext, TwoPartyAdapter
from repro.multiparty.pairing import drive_adapters, pair_context

__all__ = ["BinaryTreeIntersection"]


class BinaryTreeIntersection:
    """Corollary 4.2 (worst-case-bounded multiparty intersection).

    :param universe_size: universe ``[n]``.
    :param max_set_size: bound ``k`` on every player's set.
    :param rounds: two-party tradeoff parameter ``r`` (default ``log* k``).
    :param group_size: players per group; default ``2^min(k, 16)``.
    :param max_attempts: retry cap forwarded to the amplified pairwise
        protocol.
    :param broadcast: when True the tree winner broadcasts the result's
        hash image so every player outputs the intersection (see
        :mod:`repro.multiparty.broadcast`).
    """

    name = "binary-tree-multiparty"

    def __init__(
        self,
        universe_size: int,
        max_set_size: int,
        *,
        rounds: Optional[int] = None,
        group_size: Optional[int] = None,
        max_attempts: int = 64,
        broadcast: bool = False,
    ) -> None:
        if universe_size < 1:
            raise ValueError(f"universe_size must be >= 1, got {universe_size}")
        if max_set_size < 1:
            raise ValueError(f"max_set_size must be >= 1, got {max_set_size}")
        self.universe_size = universe_size
        self.max_set_size = max_set_size
        self.rounds = rounds
        if group_size is None:
            group_size = 2 ** min(max_set_size, 16)
        if group_size < 2:
            raise ValueError(f"group_size must be >= 2, got {group_size}")
        self.group_size = group_size
        self.max_attempts = max_attempts
        self.broadcast = broadcast

    def _pair_protocol(self) -> AmplifiedIntersection:
        return AmplifiedIntersection(
            self.universe_size,
            self.max_set_size,
            rounds=self.rounds,
            max_attempts=self.max_attempts,
            check_width=2 * self.max_set_size,
        )

    def _player(self, ctx: PlayerContext) -> Generator:
        current: FrozenSet[int] = frozenset(ctx.input)
        active: List[str] = list(ctx.players)
        inbox: List = []
        strays: List = []
        level = 0
        # Stateless, like the coordinator protocol's: one instance covers
        # every tree edge this player climbs.
        pair_protocol = self._pair_protocol()

        while len(active) > 1:
            groups = partition_groups(active, self.group_size)
            my_group = next(group for group in groups if ctx.name in group)

            # Climb the in-group binary tree; survivors are every 2^t-th
            # group member.
            survivors = list(my_group)
            step = 0
            while len(survivors) > 1:
                label = f"mp/tree/l{level}/t{step}"
                pairs = list(zip(survivors[0::2], survivors[1::2]))
                my_pair = next(
                    (pair for pair in pairs if ctx.name in pair), None
                )
                if my_pair is not None:
                    left, right = my_pair
                    role = "alice" if ctx.name == left else "bob"
                    pctx = pair_context(ctx, role, current, left, right, label)
                    coroutine = (
                        pair_protocol.alice(pctx)
                        if role == "alice"
                        else pair_protocol.bob(pctx)
                    )
                    peer = right if role == "alice" else left
                    adapter = TwoPartyAdapter(coroutine)
                    first_inbox = strays + inbox
                    strays.clear()  # drive re-strays unroutable messages
                    inbox = []
                    yield from drive_adapters({peer: adapter}, first_inbox, strays)
                    if role == "bob":
                        if not self.broadcast:
                            return None  # eliminated from the tree
                        from repro.multiparty.broadcast import await_broadcast

                        return (
                            yield from await_broadcast(
                                ctx,
                                frozenset(ctx.input),
                                strays,
                                self.universe_size,
                                self.max_set_size,
                            )
                        )
                    current = frozenset(adapter.output)
                survivors = survivors[0::2]
                step += 1

            active = [group[0] for group in groups]
            level += 1

        if self.broadcast and len(ctx.players) > 1:
            from repro.multiparty.broadcast import send_broadcast

            yield from send_broadcast(
                ctx, current, self.universe_size, self.max_set_size
            )
        return current

    def run(
        self,
        sets: Sequence[Iterable[int]],
        *,
        seed: int = 0,
        recover: Optional[bool] = None,
    ) -> MultipartyResult:
        """Compute the intersection of ``m`` players' sets.

        :param sets: one iterable of elements per player.
        :param seed: replay seed for all randomness.
        :param recover: ``None`` (default) engages the crash-recovery
            layer exactly when a fault plan is active; ``True``/``False``
            force it on/off.  Even with ``False``, a crash degrades to a
            typed certified-superset result instead of raising.
        """
        return _run_with_contract(self, sets, seed, recover)
