"""Quickstart: compute a set intersection with near-optimal communication.

Two servers each hold a set of up to ``k`` record identifiers from a huge
universe and want to know exactly which records they share.  The naive
approach ships a whole set across the wire (``O(k log(n/k))`` bits); the
verification-tree protocol of Brody et al. (PODC 2014) needs only ``O(k)``
bits in ``O(log* k)`` message exchanges.

Run:  python examples/quickstart.py
"""

import random

from repro import compute_intersection, optimal_rounds


def main() -> None:
    rng = random.Random(2014)
    universe = 1 << 32  # 4 billion possible record ids
    k = 1000

    # Two servers with overlapping record sets.
    shared_records = set(rng.sample(range(universe), 300))
    server_a = frozenset(shared_records | set(rng.sample(range(universe), k - 300)))
    server_b = frozenset(shared_records | set(rng.sample(range(universe), k - 300)))

    print(f"universe size : 2^32")
    print(f"|A| = {len(server_a)}, |B| = {len(server_b)}")
    print(f"optimal round parameter log* k = {optimal_rounds(k)}")
    print()

    # One call: runs the verification-tree protocol on a bit-exact
    # two-party simulator and reports the true wire cost.
    result = compute_intersection(
        server_a, server_b, universe_size=universe, max_set_size=k, seed=7
    )

    truth = server_a & server_b
    print(f"protocol        : {result.protocol}")
    print(f"intersection ok : {result.intersection == truth}"
          f"  (|A n B| = {len(result.intersection)})")
    print(f"communication   : {result.bits} bits"
          f"  ({result.bits / k:.1f} bits per element)")
    print(f"messages        : {result.messages}")
    print()

    # Compare against the deterministic exchange a naive system would use.
    naive = compute_intersection(
        server_a, server_b, universe_size=universe, max_set_size=k,
        deterministic=True, seed=7,
    )
    print(f"naive exchange  : {naive.bits} bits ({naive.protocol})")
    print(f"savings         : {naive.bits / result.bits:.1f}x fewer bits")

    # Need ironclad guarantees?  Amplify to success probability 1 - 2^-k.
    amplified = compute_intersection(
        server_a, server_b, universe_size=universe, max_set_size=k,
        amplified=True, seed=7,
    )
    print(f"amplified       : {amplified.bits} bits, "
          f"{amplified.messages} messages, success 1 - 2^-{k}")

    # No common random string between the servers?  Use private coins: the
    # Section 3.1 constructive translation costs O(log k + log log n) extra.
    private = compute_intersection(
        server_a, server_b, universe_size=universe, max_set_size=k,
        model="private", seed=7,
    )
    print(f"private coins   : {private.bits} bits "
          f"(+{private.bits - result.bits} over shared randomness)")


if __name__ == "__main__":
    main()
