"""Exact similarity analytics between two servers' shingle sets.

The paper's application list: with an intersection protocol you get the
*exact* Jaccard similarity, Hamming distance, number of distinct elements,
and 1-/2-rarity -- no sketching error -- at the same communication/round
tradeoff.  This example compares document fingerprint (shingle) sets held
on two servers, the classic near-duplicate-detection setup.

Run:  python examples/similarity_suite.py
"""

import random

from repro.applications import (
    distinct_elements,
    hamming_distance,
    jaccard,
    rarity,
    set_statistics,
)


def shingle_set(rng, universe, size, base=None, mutation_rate=0.0):
    """A document's shingle set; optionally a mutated copy of ``base``."""
    if base is None:
        return frozenset(rng.sample(range(universe), size))
    mutated = set(base)
    for shingle in list(mutated):
        if rng.random() < mutation_rate:
            mutated.discard(shingle)
            mutated.add(rng.randrange(universe))
    return frozenset(mutated)


def main() -> None:
    rng = random.Random(7)
    universe = 1 << 48  # 48-bit shingle hashes
    size = 800

    original = shingle_set(rng, universe, size)
    pairs = {
        "identical copy": shingle_set(rng, universe, size, original, 0.0),
        "light edit (5% mutated)": shingle_set(rng, universe, size, original, 0.05),
        "heavy edit (40% mutated)": shingle_set(rng, universe, size, original, 0.40),
        "unrelated document": shingle_set(rng, universe, size),
    }

    options = {"universe_size": universe, "max_set_size": size, "seed": 3}
    for label, other in pairs.items():
        report = set_statistics(original, other, **options)
        similarity = jaccard(original, other, **options)
        print(f"{label}:")
        print(f"  exact Jaccard      : {similarity} ~= {float(similarity):.4f}")
        print(f"  distinct shingles  : "
              f"{distinct_elements(original, other, **options)}")
        print(f"  Hamming distance   : "
              f"{hamming_distance(original, other, **options)}")
        print(f"  1-rarity / 2-rarity: "
              f"{float(rarity(1, original, other, **options)):.4f} / "
              f"{float(rarity(2, original, other, **options)):.4f}")
        print(f"  wire cost          : {report.bits} bits "
              f"({report.bits / size:.1f} bits/shingle), "
              f"{report.messages} messages")
        # Sanity: every statistic is exact, never an estimate.
        assert report.intersection == original & other
        print()


if __name__ == "__main__":
    main()
