"""Exact recovery vs approximate sketching at the same communication budget.

The paper vs Pagh-Stockel-Woodruff [PSW14]: one-way sketches *estimate* the
intersection size; the paper's two-way protocols *recover the actual
intersection*.  This example gives both the same wire budget on the same
instance and shows what each buys -- the choice a system designer faces
when sizing a similarity service.

Run:  python examples/exact_vs_sketch.py
"""

import random

from repro.core.tree_protocol import TreeProtocol
from repro.protocols.minhash import MinHashSketchProtocol


def main() -> None:
    rng = random.Random(314)
    universe = 1 << 36
    k = 1000
    overlap = 250

    sample = rng.sample(range(universe), 2 * k - overlap)
    server_a = frozenset(sample[:k])
    server_b = frozenset(sample[:overlap] + sample[k:])
    truth = server_a & server_b

    exact = TreeProtocol(universe, k)
    exact_outcome = exact.run(server_a, server_b, seed=1)
    budget = exact_outcome.total_bits

    probe = MinHashSketchProtocol(universe, k)
    num_hashes = max(1, budget // probe.value_width)
    sketch = MinHashSketchProtocol(universe, k, num_hashes=num_hashes)
    sketch_outcome = sketch.run(server_a, server_b, seed=1)
    estimate = sketch_outcome.bob_output

    print(f"instance: k = {k}, |A n B| = {len(truth)}, "
          f"true Jaccard = {len(truth) / len(server_a | server_b):.4f}")
    print()
    print("verification-tree protocol (this paper):")
    print(f"  bits     : {exact_outcome.total_bits}")
    print(f"  messages : {exact_outcome.num_messages}")
    print(f"  output   : the EXACT set "
          f"(correct: {exact_outcome.alice_output == truth}; "
          f"both parties hold all {len(truth)} common ids)")
    print()
    print(f"MinHash sketch ([PSW14] one-way model), t = {num_hashes} hashes:")
    print(f"  bits     : {sketch_outcome.total_bits}")
    print(f"  messages : {sketch_outcome.num_messages}")
    print(f"  output   : |A n B| ~= {estimate.intersection_estimate} "
          f"(true {len(truth)}; "
          f"error {abs(estimate.intersection_estimate - len(truth))}), "
          f"J ~= {estimate.jaccard_estimate:.4f}")
    print(f"  note     : a scalar estimate -- no common id is ever named,")
    print(f"             and the ~1/sqrt(t) error never reaches zero.")
    print()

    # What the sketch CAN do cheaper: a quick low-precision probe.
    cheap = MinHashSketchProtocol(universe, k, num_hashes=32)
    cheap_outcome = cheap.run(server_a, server_b, seed=1)
    print(f"where sketches shine -- a 32-hash probe costs only "
          f"{cheap_outcome.total_bits} bits "
          f"({budget // cheap_outcome.total_bits}x less) and still reads "
          f"J ~= {cheap_outcome.bob_output.jaccard_estimate:.2f}: "
          f"use it to decide WHETHER to run the exact protocol.")


if __name__ == "__main__":
    main()
