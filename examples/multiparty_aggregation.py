"""Multi-server intersection in the message-passing model (Section 4).

A fleet of ``m`` regional servers each hold a set of active session ids;
security wants the sessions active in *every* region (a tight anomaly
signal).  Corollary 4.1's coordinator scheme computes the full intersection
with ``O(k)`` average bits per server; Corollary 4.2's binary-tree scheme
caps the *worst-case* load on any single server.

Run:  python examples/multiparty_aggregation.py
"""

import random

from repro.multiparty import BinaryTreeIntersection, CoordinatorIntersection


def make_fleet(rng, universe, num_servers, set_size, common_size):
    common = set(rng.sample(range(universe), common_size))
    fleet = []
    for _ in range(num_servers):
        noise = set(rng.sample(range(universe), set_size - common_size))
        fleet.append(frozenset(common | noise))
    return fleet


def describe(name, result, num_servers, k):
    outcome = result.outcome
    print(f"{name}:")
    print(f"  intersection size : {len(result.intersection)}")
    print(f"  total bits        : {result.total_bits} "
          f"({result.total_bits / (num_servers * k):.1f} per player-element)")
    print(f"  avg player bits   : {outcome.average_player_bits:.0f}")
    print(f"  max player bits   : {outcome.max_player_bits}")
    print(f"  rounds            : {result.rounds}")
    print()


def main() -> None:
    rng = random.Random(4242)
    universe = 1 << 30
    num_servers = 12
    k = 256
    fleet = make_fleet(rng, universe, num_servers, k, common_size=40)
    truth = frozenset.intersection(*fleet)
    print(f"{num_servers} servers, k = {k}, true common sessions = {len(truth)}")
    print()

    coordinator = CoordinatorIntersection(universe, k).run(fleet, seed=1)
    assert coordinator.intersection == truth
    describe("Corollary 4.1 (coordinator, average-optimal)",
             coordinator, num_servers, k)

    tree = BinaryTreeIntersection(universe, k).run(fleet, seed=1)
    assert tree.intersection == truth
    describe("Corollary 4.2 (binary tree, worst-case-bounded)",
             tree, num_servers, k)

    spread = (coordinator.outcome.max_player_bits
              / tree.outcome.max_player_bits)
    print(f"The binary tree cut the heaviest server's load by {spread:.1f}x,"
          f" paying {tree.rounds - coordinator.rounds} extra rounds.")


if __name__ == "__main__":
    main()
