"""Explore the communication/round tradeoff curve for your own parameters.

Theorem 1.1 gives, for every round budget ``r``, a protocol with
``O(k log^(r) k)`` expected bits in at most ``6r`` messages.  This script
sweeps ``r`` from 1 to ``log* k`` on a concrete instance and prints the
measured curve next to the theory curve and the baselines -- the table a
systems engineer would consult before picking a round budget for a
latency-sensitive deployment.

Run:  python examples/tradeoff_explorer.py [k] [log2_universe]
"""

import random
import sys

from repro import TreeProtocol, communication_bound, optimal_rounds
from repro.core.tradeoff import trivial_bound
from repro.protocols.one_round import OneRoundHashingProtocol
from repro.protocols.trivial import TrivialExchangeProtocol
from repro.util.iterlog import iterated_log


def main() -> None:
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 1024
    log_n = int(sys.argv[2]) if len(sys.argv) > 2 else 32
    universe = 1 << log_n
    seeds = 5

    rng = random.Random(1)
    sample = rng.sample(range(universe), 2 * k - k // 2)
    alice = frozenset(sample[:k])
    bob = frozenset(sample[k // 2 :])
    truth = alice & bob

    print(f"k = {k}, universe = 2^{log_n}, |S n T| = {len(truth)}, "
          f"log* k = {optimal_rounds(k)}")
    print()
    header = (f"{'r':>3}  {'messages':>8}  {'mean bits':>10}  "
              f"{'bits/k':>7}  {'theory k*log^(r)k':>18}")
    print(header)
    print("-" * len(header))

    for rounds in range(1, optimal_rounds(k) + 1):
        protocol = TreeProtocol(universe, k, rounds=rounds)
        bits = []
        messages = []
        for seed in range(seeds):
            outcome = protocol.run(alice, bob, seed=seed)
            assert outcome.alice_output == truth, "protocol failure (rare)"
            bits.append(outcome.total_bits)
            messages.append(outcome.num_messages)
        mean_bits = sum(bits) / len(bits)
        print(f"{rounds:>3}  {max(messages):>8}  {mean_bits:>10.0f}  "
              f"{mean_bits / k:>7.1f}  "
              f"{communication_bound(k, rounds):>18.0f}")

    print()
    trivial = TrivialExchangeProtocol(universe, k, both_outputs=False)
    one_round = OneRoundHashingProtocol(universe, k)
    trivial_bits = trivial.run(alice, bob, seed=0).total_bits
    one_round_bits = one_round.run(alice, bob, seed=0).total_bits
    print("baselines:")
    print(f"  deterministic exchange : {trivial_bits} bits "
          f"(theory ~ k log(n/k) = {trivial_bound(universe, k):.0f})")
    print(f"  one-round hashing      : {one_round_bits} bits "
          f"(theory ~ k log k = {k * iterated_log(k, 1):.0f})")


if __name__ == "__main__":
    main()
