"""Cross-datacenter deduplication -- "finding duplicates" from the paper.

A storage fleet holds content-addressed blobs (keyed by a fingerprint of
their bytes).  Capacity planning wants to know: which blobs are duplicated
between site pairs (candidates for single-site retention), and which are
replicated everywhere (already safe)?  Both questions are set
intersections, answered here with exact communication accounting.

Run:  python examples/deduplication.py
"""

import random

from repro.applications.dedup import (
    find_duplicates,
    find_global_duplicates,
    pairwise_duplicate_matrix,
)


def build_fleet(rng, universe, num_sites, blobs_per_site):
    """Sites share a replicated core plus regional blobs with some pairwise
    drift."""
    core = rng.sample(range(universe), blobs_per_site // 4)
    regional_pool = rng.sample(range(universe), blobs_per_site * 2)
    sites = []
    for _ in range(num_sites):
        regional = rng.sample(regional_pool, blobs_per_site - len(core))
        sites.append(frozenset(core) | frozenset(regional))
    return sites


def main() -> None:
    rng = random.Random(77)
    universe = 1 << 44  # 44-bit content fingerprints
    num_sites, blobs_per_site = 4, 400
    sites = build_fleet(rng, universe, num_sites, blobs_per_site)
    k = max(len(site) for site in sites)

    print(f"{num_sites} sites, ~{blobs_per_site} blobs each, "
          f"44-bit content fingerprints")
    print()

    # Pairwise duplicate heat map.
    matrix = pairwise_duplicate_matrix(
        sites, universe_size=universe, max_set_size=k
    )
    print("pairwise duplicate counts (diagonal = site size):")
    for row in matrix:
        print("   " + "  ".join(f"{count:5d}" for count in row))
    print()

    # Cost of one pairwise run, for the capacity planner's budget.
    sample = find_duplicates(
        sites[0], sites[1], universe_size=universe, max_set_size=k
    )
    print(f"one pairwise check: {sample.count} duplicates found with "
          f"{sample.bits} bits ({sample.bits / k:.1f} bits/blob) in "
          f"{sample.messages} messages")
    naive_bits = 44 * len(sites[0])
    print(f"naively shipping all fingerprints: {naive_bits} bits "
          f"({naive_bits / sample.bits:.1f}x more)")
    print()

    # Globally replicated blobs via the multiparty protocol.
    global_duplicates, accounting = find_global_duplicates(
        sites, universe_size=universe, max_set_size=k
    )
    expected = frozenset.intersection(*sites)
    print(f"globally replicated blobs: {len(global_duplicates)} "
          f"(exact: {global_duplicates == expected})")
    print(f"  total communication : {accounting['total_bits']} bits")
    print(f"  rounds              : {accounting['rounds']}")
    print(f"  busiest site        : {accounting['max_player_bits']} bits")


if __name__ == "__main__":
    main()
