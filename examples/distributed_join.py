"""Distributed database join -- the paper's motivating application.

"A quite basic problem, such as computing the join of two databases held by
different servers, requires computing an intersection, which one would like
to do with as little communication and as few messages as possible."

Scenario: an orders service and a shipping service each hold a keyed
relation; analytics wants ``orders JOIN shipments ON order_id``.  Shipping
the full orders table costs megabits; finding the matching keys with the
intersection protocol first costs ~bits-per-key and then only the matched
rows move.

Run:  python examples/distributed_join.py
"""

import random

from repro.applications import Relation, distributed_join


def synthesize_relations(rng, universe, orders_count, shipped_fraction):
    """Orders table on server A; shipments (a fraction of orders, plus some
    foreign records) on server B."""
    order_ids = rng.sample(range(universe), orders_count)
    orders = Relation(
        {
            order_id: (f"customer-{rng.randrange(10_000)}", rng.randrange(100, 9999))
            for order_id in order_ids
        }
    )
    shipped = rng.sample(order_ids, int(shipped_fraction * orders_count))
    foreign = rng.sample(range(universe), orders_count - len(shipped))
    shipments = Relation(
        {
            ship_id: (f"carrier-{rng.randrange(8)}", f"2026-07-{rng.randrange(1, 29):02d}")
            for ship_id in set(shipped) | set(foreign)
        }
    )
    return orders, shipments


def main() -> None:
    rng = random.Random(99)
    universe = 1 << 40  # order ids are 40-bit identifiers
    orders_count = 2000

    for shipped_fraction in (0.02, 0.25, 0.9):
        orders, shipments = synthesize_relations(
            rng, universe, orders_count, shipped_fraction
        )
        k = max(len(orders), len(shipments))
        result = distributed_join(
            orders, shipments, universe_size=universe, max_set_size=k, seed=1
        )

        # What a naive system would ship: the whole orders relation.
        ship_all_bits = orders.row_bits(orders.keys)

        print(f"shipped fraction {shipped_fraction:4.0%}:")
        print(f"  matched rows        : {len(result.rows)}")
        print(f"  key discovery       : {result.key_bits} bits "
              f"in {result.messages} messages ({result.protocol})")
        print(f"  matched-row payload : {result.row_bits} bits")
        print(f"  naive ship-it-all   : {ship_all_bits} bits")
        print(f"  total savings       : "
              f"{ship_all_bits / result.total_bits:.1f}x")
        sample_key = min(result.rows) if result.rows else None
        if sample_key is not None:
            left_row, right_row = result.rows[sample_key]
            print(f"  sample joined row   : {sample_key} -> {left_row} + {right_row}")
        print()


if __name__ == "__main__":
    main()
