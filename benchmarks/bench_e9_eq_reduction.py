"""E9 -- Fact 2.1: ``EQ^n_k`` via ``INT_k`` improves FKNN's rounds.

Claims: the pair-tagging reduction solves ``k`` equality instances at the
``INT_k`` cost -- ``O(k)`` bits in ``O(log* k)`` rounds -- improving the
``O(sqrt(k))`` round complexity of Feder et al. at the same communication.
The table compares the reduction against our amortized-equality protocol
(the Theorem 3.2 stand-in) on identical instances, and against the
``6 log* k`` and ``sqrt(k)`` round yardsticks.
"""

import math
import random

from _harness import emit, format_table
from repro.protocols.fknn import AmortizedEqualityProtocol
from repro.reductions.eq_to_int import EqualityViaIntersection
from repro.util.iterlog import log_star

STRING_BITS = 48


def make_strings(rng, k, unequal_every):
    xs = [rng.getrandbits(STRING_BITS) for _ in range(k)]
    ys = [x ^ 3 if i % unequal_every == 0 else x for i, x in enumerate(xs)]
    truth = tuple(x == y for x, y in zip(xs, ys))
    return xs, ys, truth


def measure():
    rows = []
    for k in (64, 256, 1024):
        rng = random.Random(80 + k)
        xs, ys, truth = make_strings(rng, k, 4)
        via_int = EqualityViaIntersection(k, STRING_BITS).run(xs, ys, seed=0)
        direct = AmortizedEqualityProtocol(k).run(xs, ys, seed=0)
        assert via_int.alice_output == truth
        assert direct.alice_output == truth
        rows.append(
            [
                k,
                via_int.total_bits,
                via_int.total_bits / k,
                via_int.num_messages,
                6 * log_star(k),
                math.ceil(math.sqrt(k)),
                direct.total_bits,
                direct.num_messages,
            ]
        )
    return rows


def test_e9_eq_reduction(benchmark):
    rows = measure()
    emit(
        "e9_eq_reduction",
        format_table(
            "E9: EQ^n_k via INT_k (Fact 2.1) vs amortized equality",
            [
                "k",
                "via-INT bits",
                "bits/k",
                "via-INT msgs",
                "6log*k",
                "sqrt(k)",
                "direct bits",
                "direct msgs",
            ],
            rows,
        ),
    )
    for row in rows:
        assert row[3] <= row[4]  # O(log* k) rounds achieved
        assert row[2] < 64  # O(k) bits achieved
    # At large k the reduction's rounds sit far below the sqrt(k) pace of
    # the original FKNN protocol.
    assert rows[-1][3] < rows[-1][5]

    rng = random.Random(81)
    xs, ys, _ = make_strings(rng, 512, 4)
    reduction = EqualityViaIntersection(512, STRING_BITS)
    benchmark(lambda: reduction.run(xs, ys, seed=0))
