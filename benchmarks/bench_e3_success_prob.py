"""E3 -- success probability ``1 - 1/poly(k)`` (Theorem 1.1) and ``1 - 2^-k``
(amplified, Section 4).

Claim: failure rates fall polynomially in ``k``; amplification makes
failures unobservable.  Measured over many seeded trials at a deliberately
*weak* confidence exponent (so the unamplified failure rate is measurable at
small ``k`` and its decay with ``k`` is visible), plus the paper-default
exponent and the amplified wrapper.
"""

import random

from _harness import emit, format_table, make_instance
from repro.core.amplify import AmplifiedIntersection
from repro.core.tree_protocol import TreeProtocol

UNIVERSE = 1 << 20
TRIALS = 150


def failure_rate(protocol, rng, k, trials=TRIALS):
    failures = 0
    for seed in range(trials):
        s, t = make_instance(rng, UNIVERSE, k, 0.5)
        if not protocol.run(s, t, seed=seed).correct_for(s, t):
            failures += 1
    return failures / trials


def measure():
    rows = []
    for k in (16, 64, 256):
        rng = random.Random(20)
        weak = TreeProtocol(UNIVERSE, k, rounds=2, confidence_exponent=1)
        standard = TreeProtocol(UNIVERSE, k, rounds=2)
        amplified = AmplifiedIntersection(UNIVERSE, k, rounds=2)
        rows.append(
            [
                k,
                failure_rate(weak, rng, k),
                failure_rate(standard, rng, k),
                failure_rate(amplified, rng, k),
            ]
        )
    return rows


def test_e3_success_probability(benchmark):
    rows = measure()
    emit(
        "e3_success_prob",
        format_table(
            "E3: failure rates (150 trials each; Theorem 1.1 / Section 4)",
            ["k", "fail(exp=1)", "fail(exp=4 paper)", "fail(amplified)"],
            rows,
        ),
    )
    weak_rates = [row[1] for row in rows]
    # 1/poly(k): the weak configuration's failure rate must decay with k.
    assert weak_rates[-1] <= weak_rates[0] + 0.02
    # paper default: failures rare at every k; amplified: none observed.
    for row in rows:
        assert row[2] <= 0.05
        assert row[3] == 0.0

    rng = random.Random(21)
    protocol = AmplifiedIntersection(UNIVERSE, 256, rounds=2)
    instance = make_instance(rng, UNIVERSE, 256, 0.5)
    benchmark(lambda: protocol.run(*instance, seed=0))
