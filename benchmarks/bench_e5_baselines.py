"""E5 -- baseline separations and crossovers.

Claims from the paper's Section 1 landscape:

* trivial deterministic: ``Theta(k log(n/k))`` -- grows with the universe;
* one-round hashing: ``Theta(k log k)`` -- universe-free but carries log k;
* toy bucket protocol: ``O(k log log k)``;
* tree at ``log* k``: ``O(k)``.

The table sweeps the density ``n/k`` at fixed ``k`` and shows who wins
where: the trivial protocol wins only when the universe is barely larger
than the sets (its ``log(n/k)`` is tiny), and the crossover against the
tree protocol happens by ``n/k ~ 2^6``; past that the randomized protocols'
universe-free costs dominate, ordered ``tree < bucket < one-round``.
"""

import random

from _harness import emit, format_table, make_instance
from repro.core.tree_protocol import TreeProtocol
from repro.protocols.bucket_verify import BucketVerifyProtocol
from repro.protocols.one_round import OneRoundHashingProtocol
from repro.protocols.trivial import TrivialExchangeProtocol

K = 512
SEEDS = 3


def measure():
    rng = random.Random(40)
    rows = []
    for log_ratio in (2, 4, 6, 10, 16):
        n = K << log_ratio
        instance = make_instance(rng, n, K, 0.5)
        costs = {}
        for name, protocol in [
            ("trivial", TrivialExchangeProtocol(n, K, both_outputs=False)),
            ("one-round", OneRoundHashingProtocol(n, K)),
            ("bucket", BucketVerifyProtocol(n, K)),
            ("tree", TreeProtocol(n, K)),
        ]:
            total = 0
            for seed in range(SEEDS):
                outcome = protocol.run(*instance, seed=seed)
                assert outcome.bob_output == instance[0] & instance[1]
                total += outcome.total_bits
            costs[name] = total / SEEDS
        winner = min(costs, key=costs.get)
        rows.append(
            [
                f"2^{log_ratio}",
                f"{costs['trivial']:.0f}",
                f"{costs['one-round']:.0f}",
                f"{costs['bucket']:.0f}",
                f"{costs['tree']:.0f}",
                winner,
            ]
        )
    return rows


def test_e5_baselines(benchmark):
    rows = measure()
    emit(
        "e5_baselines",
        format_table(
            f"E5: baseline comparison, k = {K}, density sweep (Section 1)",
            ["n/k", "trivial", "one-round", "bucket", "tree", "winner"],
            rows,
        ),
    )
    # Dense end: deterministic exchange wins.  Sparse end: a randomized
    # universe-free protocol wins.  (At simulable k the toy bucket
    # protocol's O(k log log k) with small constants edges out the tree's
    # O(k) with the paper's exponent-4 constants -- log log k < 4 for every
    # feasible k; see EXPERIMENTS.md.  The asymptotic claim shows up as
    # flatness in E2, not as a crossover reachable on a laptop.)
    assert rows[0][-1] == "trivial"
    assert rows[-1][-1] in ("tree", "bucket")
    # Trivial grows with n/k; the randomized columns must not.
    trivial_costs = [float(row[1]) for row in rows]
    tree_costs = [float(row[4]) for row in rows]
    bucket_costs = [float(row[3]) for row in rows]
    assert trivial_costs[-1] > 2 * trivial_costs[0]
    assert max(tree_costs) / min(tree_costs) < 1.6
    assert max(bucket_costs) / min(bucket_costs) < 1.6
    # Ordering at the sparse end: both sub-log-k protocols beat one-round.
    last = rows[-1]
    assert float(last[4]) < float(last[2])
    assert float(last[3]) < float(last[2])

    rng = random.Random(41)
    n = K << 16
    protocol = TrivialExchangeProtocol(n, K, both_outputs=False)
    instance = make_instance(rng, n, K, 0.5)
    benchmark(lambda: protocol.run(*instance, seed=0))
