"""Perf-core microbenchmarks: the ``repro.perf`` subsystem's own suite.

Unlike the ``bench_e*`` experiments (which validate the paper's theorems),
this suite measures the *simulator*: engine round-trip throughput, batched
equality, a full tree-protocol run, the bit-codec fast paths, and the
headline e1-style trial loop run three ways -- serial with hot caches
disabled (the pre-perf baseline), serial with caches warm, and parallel
through :func:`repro.perf.run_trials`.  The loop's communication counters
must be bit-identical across all three; the report records a SHA-256 of
them as proof.

Two entry points:

* ``pytest benchmarks/bench_perf_core.py`` -- quick mode (short
  calibration, few trials; numbers are noisy but the invariants are
  checked).  Writes ``benchmarks/results/BENCH_core_quick.json``.
* ``python -m repro bench`` (or ``python benchmarks/bench_perf_core.py``)
  -- full mode; writes the committed ``BENCH_core.json`` baseline at the
  repo root.
"""

from pathlib import Path

from _harness import RESULTS_DIR, emit, format_table

from repro.perf.bench import DEFAULT_OUTPUT, run_core_benchmarks
from repro.perf.schema import validate_bench_report

REPO_ROOT = Path(__file__).resolve().parent.parent


def _report_rows(report):
    rows = [
        [name, f"{entry['ops_per_s']:.1f}", f"{entry['wall_s'] * 1e3:.2f}"]
        for name, entry in sorted(report["micro"].items())
    ]
    return rows


def test_perf_core_quick(benchmark):
    report = run_core_benchmarks(
        workers=4,
        quick=True,
        out_path=str(RESULTS_DIR / "BENCH_core_quick.json"),
    )
    assert validate_bench_report(report) == []

    loop = report["e1_trial_loop"]
    emit(
        "perf_core",
        format_table(
            "Perf core microbenchmarks (quick mode)",
            ["benchmark", "ops/s", "ms/op"],
            _report_rows(report),
        )
        + "\n\n"
        + format_table(
            "E1-style trial loop",
            ["trials", "serial-uncached s", "serial-cached s", "parallel s",
             "speedup", "bit-identical"],
            [[
                loop["trials"],
                f"{loop['serial_uncached_s']:.2f}",
                f"{loop['serial_cached_s']:.2f}",
                f"{loop['parallel_s']:.2f}",
                f"{loop['speedup_vs_serial']:.2f}x",
                loop["bit_identical"],
            ]],
        ),
    )

    # The perf contract: parallelism and caching must not change a single
    # counter, and the hot paths must actually pay for themselves.
    assert loop["bit_identical"]
    assert loop["speedup_vs_serial"] > 1.0

    # Time one representative hot-path op so pytest-benchmark tracks it.
    from repro.perf.bench import _op_bit_codec_gamma

    benchmark(_op_bit_codec_gamma)


if __name__ == "__main__":
    out = REPO_ROOT / DEFAULT_OUTPUT
    report = run_core_benchmarks(workers=4, out_path=str(out))
    loop = report["e1_trial_loop"]
    print(
        f"wrote {out}: speedup {loop['speedup_vs_serial']:.2f}x, "
        f"bit_identical={loop['bit_identical']}"
    )
