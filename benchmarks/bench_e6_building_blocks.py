"""E6 -- the building blocks: Lemma 3.3, Fact 3.5, and the DISJ baseline.

Claims:

* ``Basic-Intersection`` costs ``O(i * m log m)`` bits in 4 messages and is
  exact with probability ``1 - 1/m^i`` (table sweeps the exponent ``i``);
* the Fact 3.5 equality test costs ``width + 1`` bits in 2 messages with
  one-sided error ``2^-width`` (table sweeps width and shows measured
  false-accept rates tracking the bound);
* deciding disjointness (Hastad-Wigderson-style halving baseline) and
  *recovering the full intersection* (tree protocol) differ by only a
  constant factor -- the paper's headline framing.
"""

import random

from _harness import average_cost, emit, format_table, make_instance
from repro.core.tree_protocol import TreeProtocol
from repro.protocols.basic_intersection import BasicIntersectionProtocol
from repro.protocols.disjointness import HalvingDisjointness
from repro.protocols.equality import EqualityProtocol

UNIVERSE = 1 << 24


def measure_basic_intersection():
    rng = random.Random(50)
    rows = []
    k = 128
    for exponent in (0, 1, 2, 4):
        protocol = BasicIntersectionProtocol(UNIVERSE, k, exponent=exponent)
        instance = make_instance(rng, UNIVERSE, k, 0.5)

        def run(seed, protocol=protocol, instance=instance):
            outcome = protocol.run(*instance, seed=seed)
            return (
                outcome.total_bits,
                outcome.num_messages,
                outcome.correct_for(*instance),
            )

        bits, max_messages, success = average_cost(run, 40)
        rows.append(
            [exponent, f"{bits:.0f}", bits / (2 * k), f"{max_messages:.0f}", success]
        )
    return rows


def measure_equality():
    rows = []
    for width in (2, 4, 8, 16):
        false_accepts = 0
        trials = 600
        for seed in range(trials):
            protocol = EqualityProtocol(width=width)
            if protocol.run(seed, seed + 10**9, seed=seed).alice_output:
                false_accepts += 1
        rows.append(
            [width, width + 1, false_accepts / trials, 2.0**-width]
        )
    return rows


def measure_disj_vs_int():
    rng = random.Random(51)
    rows = []
    for k in (128, 512):
        instance = make_instance(rng, UNIVERSE, k, 0.0)
        disj_bits = (
            HalvingDisjointness(UNIVERSE, k).run(*instance, seed=0).total_bits
        )
        int_bits = TreeProtocol(UNIVERSE, k).run(*instance, seed=0).total_bits
        rows.append([k, disj_bits, int_bits, int_bits / disj_bits])
    return rows


def test_e6_building_blocks(benchmark):
    basic = measure_basic_intersection()
    emit(
        "e6_basic_intersection",
        format_table(
            "E6a: Basic-Intersection cost vs exponent i (Lemma 3.3), k=128",
            ["i", "mean bits", "bits/m", "max msgs", "success"],
            basic,
        ),
    )
    for row in basic:
        assert float(row[3]) <= 4  # 4 messages, always
    # bits grow with the exponent; success hits 1.0 from i = 2
    assert float(basic[0][1]) < float(basic[-1][1])
    assert basic[2][4] >= 0.97

    equality = measure_equality()
    emit(
        "e6_equality",
        format_table(
            "E6b: Fact 3.5 equality test, measured vs bound (600 trials)",
            ["width", "bits", "false-accept rate", "2^-width bound"],
            equality,
        ),
    )
    for row in equality:
        assert row[2] <= 3 * row[3] + 0.01  # measured tracks the bound

    disj = measure_disj_vs_int()
    emit(
        "e6_disj_vs_int",
        format_table(
            "E6c: deciding emptiness vs recovering the set (disjoint inputs)",
            ["k", "DISJ bits", "INT bits", "INT/DISJ"],
            disj,
        ),
    )
    for row in disj:
        assert row[3] < 12  # full recovery within a constant factor

    rng = random.Random(52)
    protocol = BasicIntersectionProtocol(UNIVERSE, 512)
    instance = make_instance(rng, UNIVERSE, 512, 0.5)
    benchmark(lambda: protocol.run(*instance, seed=0))
