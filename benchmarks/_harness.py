"""Shared infrastructure for the experiment benchmarks.

Each ``bench_e*.py`` module reproduces one experiment from DESIGN.md
Section 5 (the paper has no empirical tables/figures, so the experiments
validate the theorems).  Conventions:

* communication and round numbers come from the simulator's exact counters
  (deterministic given seeds), aggregated over several seeds;
* every experiment prints its table AND writes it to
  ``benchmarks/results/<name>.txt`` so the output survives pytest's capture;
* ``pytest-benchmark`` additionally times one representative protocol run
  per experiment (wall time is not a paper claim, but it keeps the harness
  honest about simulation cost);
* trial loops go through :func:`repro.plans.cached_trials` (which drives
  :func:`repro.perf.run_trials`), so setting ``REPRO_WORKERS=4``
  parallelizes every experiment's seed sweep with bit-identical tables
  (closure-style ``run`` callables fall back to the thread executor
  automatically; the counters don't change either way), and setting
  ``REPRO_PLAN_CACHE=/some/dir`` makes re-runs of keyed sweeps
  incremental: an experiment that passes a stable ``key`` to
  :func:`average_cost` re-reads its finished cells from the
  content-addressed shard cache instead of re-simulating them.

Run with::

    pytest benchmarks/ --benchmark-only
    REPRO_WORKERS=4 pytest benchmarks/ --benchmark-only
    REPRO_PLAN_CACHE=.plan-cache pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple

from repro.plans import cached_trials

# Single source of truth for planted-overlap instances: the generators the
# test suite and benchmarks share now live in repro.workloads (re-exported
# here so every bench_e*.py keeps importing from the harness).
from repro.workloads import make_instance, make_multiparty_instance  # noqa: F401

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean of a nonempty sequence."""
    return sum(values) / len(values)


def average_cost(
    run: Callable[[int], Tuple[int, int, bool]],
    seeds: int,
    key: Optional[str] = None,
) -> Tuple[float, float, float]:
    """Drive ``run(seed) -> (bits, messages, correct)`` over seeds;
    returns (mean bits, max messages, success rate).

    Seeds are ``0..seeds-1`` as before; execution goes through the
    deterministic trial executor, so the aggregate is identical for any
    ``REPRO_WORKERS`` setting.

    :param key: optional stable cell name (e.g. ``"e1/tree/k=256/r=2"``)
        enabling the content-addressed shard cache when
        ``$REPRO_PLAN_CACHE`` is set.  The key must name everything that
        determines the results -- experiment, protocol, parameters -- since
        the cache cannot see inside ``run``.
    """
    results = cached_trials(run, list(range(seeds)), key=key)
    bits: List[int] = [b for b, _, _ in results]
    messages: List[int] = [m for _, m, _ in results]
    correct = sum(int(ok) for _, _, ok in results)
    return mean(bits), max(messages), correct / seeds


def instance_key(instance) -> str:
    """A short content fingerprint of a sampled instance pair.

    Cache keys passed to :func:`average_cost` must name everything that
    determines the trial results; experiments that sample instances from a
    shared sequential RNG fold this fingerprint into the key so a change
    in sampling order can never alias a stale cached cell.
    """
    import zlib

    alice, bob = instance
    digest = zlib.crc32(repr((sorted(alice), sorted(bob))).encode("ascii"))
    return f"{digest:08x}"


def format_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence]
) -> str:
    """Render an aligned plain-text table (the 'rows the paper reports')."""
    rendered_rows = [[_render(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered_rows))
        if rendered_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _render(cell) -> str:
    if isinstance(cell, float):
        if cell >= 100:
            return f"{cell:.0f}"
        return f"{cell:.2f}"
    return str(cell)


def emit(name: str, text: str) -> None:
    """Print the table and persist it under benchmarks/results/."""
    print("\n" + text + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
