"""Shared infrastructure for the experiment benchmarks.

Each ``bench_e*.py`` module reproduces one experiment from DESIGN.md
Section 5 (the paper has no empirical tables/figures, so the experiments
validate the theorems).  Conventions:

* communication and round numbers come from the simulator's exact counters
  (deterministic given seeds), aggregated over several seeds;
* every experiment prints its table AND writes it to
  ``benchmarks/results/<name>.txt`` so the output survives pytest's capture;
* ``pytest-benchmark`` additionally times one representative protocol run
  per experiment (wall time is not a paper claim, but it keeps the harness
  honest about simulation cost).

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Callable, FrozenSet, List, Sequence, Tuple

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def make_instance(
    rng: random.Random,
    universe_size: int,
    set_size: int,
    overlap_fraction: float,
) -> Tuple[FrozenSet[int], FrozenSet[int]]:
    """Build ``(S, T)`` with the requested overlap (same generator the test
    suite uses, duplicated here so benchmarks are self-contained)."""
    overlap = int(round(overlap_fraction * set_size))
    sample = rng.sample(range(universe_size), 2 * set_size - overlap)
    return (
        frozenset(sample[:set_size]),
        frozenset(sample[:overlap] + sample[set_size:]),
    )


def make_multiparty_instance(
    rng: random.Random,
    universe_size: int,
    set_size: int,
    num_players: int,
    common_size: int,
):
    """``m`` player sets sharing a planted common core."""
    common = set(rng.sample(range(universe_size), common_size))
    sets = []
    for _ in range(num_players):
        extra = set(rng.sample(range(universe_size), set_size - common_size))
        sets.append(frozenset(common | extra))
    return sets


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean of a nonempty sequence."""
    return sum(values) / len(values)


def average_cost(
    run: Callable[[int], Tuple[int, int, bool]],
    seeds: int,
) -> Tuple[float, float, float]:
    """Drive ``run(seed) -> (bits, messages, correct)`` over seeds;
    returns (mean bits, max messages, success rate)."""
    bits: List[int] = []
    messages: List[int] = []
    correct = 0
    for seed in range(seeds):
        b, m, ok = run(seed)
        bits.append(b)
        messages.append(m)
        correct += int(ok)
    return mean(bits), max(messages), correct / seeds


def format_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence]
) -> str:
    """Render an aligned plain-text table (the 'rows the paper reports')."""
    rendered_rows = [[_render(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered_rows))
        if rendered_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _render(cell) -> str:
    if isinstance(cell, float):
        if cell >= 100:
            return f"{cell:.0f}"
        return f"{cell:.2f}"
    return str(cell)


def emit(name: str, text: str) -> None:
    """Print the table and persist it under benchmarks/results/."""
    print("\n" + text + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
