"""E1 -- Theorem 1.1/3.6: the communication/round tradeoff of the tree
protocol.

Claim: for every ``r``, expected communication ``O(k log^(r) k)`` in at most
``6r`` messages.  The table sweeps ``k`` and ``r`` (and the three overlap
regimes) and reports measured bits, bits normalized by the theory curve
``k * log^(r) k`` (which must stay in a constant band across ``k`` for each
``r``), and the worst observed message count against the ``6r`` budget.

Also includes the DESIGN.md ablation: the per-stage confidence exponent
(the paper's ``(log^(r-i-1) k)^4``) swept over {2, 4, 8}.
"""

import random

from _harness import average_cost, emit, format_table, instance_key, make_instance
from repro.core.tradeoff import communication_bound
from repro.core.tree_protocol import TreeProtocol
from repro.util.iterlog import log_star

SEEDS = 6
UNIVERSE = 1 << 24


def measure_tradeoff():
    rng = random.Random(1)
    rows = []
    for k in (64, 256, 1024):
        for rounds in range(1, log_star(k) + 1):
            for overlap in (0.0, 0.5, 1.0):
                protocol = TreeProtocol(UNIVERSE, k, rounds=rounds)
                instance = make_instance(rng, UNIVERSE, k, overlap)

                def run(seed, protocol=protocol, instance=instance):
                    outcome = protocol.run(*instance, seed=seed)
                    return (
                        outcome.total_bits,
                        outcome.num_messages,
                        outcome.correct_for(*instance),
                    )

                bits, max_messages, success = average_cost(
                    run,
                    SEEDS,
                    key=f"e1/tree/k={k}/r={rounds}/overlap={overlap}"
                    f"/{instance_key(instance)}",
                )
                bound = communication_bound(k, rounds)
                rows.append(
                    [
                        k,
                        rounds,
                        overlap,
                        f"{bits:.0f}",
                        bits / bound,
                        f"{max_messages:.0f}/{max(2, 6 * rounds)}",
                        success,
                    ]
                )
    return rows


def measure_ablation():
    rng = random.Random(2)
    rows = []
    k, rounds = 256, 2
    for exponent in (2, 4, 8):
        protocol = TreeProtocol(
            UNIVERSE, k, rounds=rounds, confidence_exponent=exponent
        )
        instance = make_instance(rng, UNIVERSE, k, 0.5)

        def run(seed, protocol=protocol, instance=instance):
            outcome = protocol.run(*instance, seed=seed)
            return (
                outcome.total_bits,
                outcome.num_messages,
                outcome.correct_for(*instance),
            )

        bits, _, success = average_cost(
            run,
            20,
            key=f"e1/ablation-confidence/k={k}/r={rounds}"
            f"/exp={exponent}/{instance_key(instance)}",
        )
        rows.append([exponent, f"{bits:.0f}", success])
    return rows


def measure_leaf_ablation():
    """DESIGN.md ablation: bucket count k (paper) vs k/log k (toy-protocol
    style) vs 2k."""
    import math

    rng = random.Random(4)
    rows = []
    k, rounds = 512, 3
    log_k = max(1, math.ceil(math.log2(k)))
    for label, leaves in (
        ("k/log k", max(1, k // log_k)),
        ("k (paper)", k),
        ("2k", 2 * k),
    ):
        protocol = TreeProtocol(UNIVERSE, k, rounds=rounds, num_leaves=leaves)
        instance = make_instance(rng, UNIVERSE, k, 0.5)

        def run(seed, protocol=protocol, instance=instance):
            outcome = protocol.run(*instance, seed=seed)
            return (
                outcome.total_bits,
                outcome.num_messages,
                outcome.correct_for(*instance),
            )

        bits, _, success = average_cost(
            run,
            10,
            key=f"e1/ablation-leaves/k={k}/r={rounds}"
            f"/leaves={leaves}/{instance_key(instance)}",
        )
        rows.append([label, leaves, f"{bits:.0f}", success])
    return rows


def test_e1_tree_tradeoff(benchmark):
    rows = measure_tradeoff()
    emit(
        "e1_tree_tradeoff",
        format_table(
            "E1: Tree protocol communication/round tradeoff (Theorem 1.1)",
            [
                "k",
                "r",
                "overlap",
                "mean bits",
                "bits/(k*log^(r)k)",
                "msgs/budget",
                "success",
            ],
            rows,
        ),
    )
    # Hard assertions: normalized cost bounded; round budget respected.
    for row in rows:
        assert row[4] < 64.0
        observed, budget = row[5].split("/")
        assert int(observed) <= int(budget)
        assert row[6] >= 0.8

    ablation = measure_ablation()
    emit(
        "e1_ablation_confidence",
        format_table(
            "E1 ablation: per-stage confidence exponent (paper uses 4)",
            ["exponent", "mean bits", "success"],
            ablation,
        ),
    )

    leaf_ablation = measure_leaf_ablation()
    emit(
        "e1_ablation_leaves",
        format_table(
            "E1 ablation: bucket count (k = 512, r = 3)",
            ["buckets", "leaves", "mean bits", "success"],
            leaf_ablation,
        ),
    )
    assert all(row[3] >= 0.9 for row in leaf_ablation)

    rng = random.Random(3)
    protocol = TreeProtocol(UNIVERSE, 512)
    instance = make_instance(rng, UNIVERSE, 512, 0.5)
    benchmark(lambda: protocol.run(*instance, seed=0))
