"""E12 -- analytic cost models vs measured wire costs, and the tree
protocol's per-stage anatomy.

Two tables:

* **Cost models** (``repro.analysis``): for the structurally deterministic
  protocols the closed-form prediction must equal the measured bits
  *exactly* (a bit-level audit that the implementation charges precisely
  what the analysis says); the expectation models (trivial exchange, tree
  upper bound) must bracket the measurements.
* **Stage anatomy**: the Theorem 3.6 accounting made visible -- stage 0
  carries the ``Theta(k log^(r) k)`` equality sweep plus almost all
  Basic-Intersection re-runs, and failed-leaf counts collapse up the tree
  (the geometric decay behind Lemma 3.10's ``E[n_u] = O(1)``).
"""

import random

from _harness import emit, format_table, make_instance
from repro.analysis.predictions import (
    predict_basic_intersection_bits,
    predict_one_round_bits,
    predict_tree_bits_upper,
    predict_trivial_bits,
)
from repro.core.tree_protocol import TreeProtocol
from repro.protocols.basic_intersection import BasicIntersectionProtocol
from repro.protocols.one_round import OneRoundHashingProtocol
from repro.protocols.trivial import TrivialExchangeProtocol

UNIVERSE = 1 << 24


def measure_models():
    rng = random.Random(300)
    rows = []
    k = 256
    s, t = make_instance(rng, UNIVERSE, k, 0.5)

    measured = OneRoundHashingProtocol(UNIVERSE, k).run(s, t, seed=0).total_bits
    predicted = predict_one_round_bits((len(s), len(t)), k)
    rows.append(["one-round (exact)", measured, predicted, measured == predicted])

    measured = (
        BasicIntersectionProtocol(UNIVERSE, k, exponent=2)
        .run(s, t, seed=0)
        .total_bits
    )
    predicted = predict_basic_intersection_bits(len(s), len(t), 2)
    rows.append(
        ["basic-intersection (exact)", measured, predicted, measured == predicted]
    )

    measured = (
        TrivialExchangeProtocol(UNIVERSE, k, both_outputs=False)
        .run(s, t, seed=0)
        .total_bits
    )
    predicted = round(predict_trivial_bits(UNIVERSE, k, both_outputs=False))
    rows.append(
        [
            "trivial (expectation)",
            measured,
            predicted,
            0.5 <= measured / predicted <= 1.2,
        ]
    )

    for rounds in (2, 4):
        measured = (
            TreeProtocol(UNIVERSE, k, rounds=rounds).run(s, t, seed=0).total_bits
        )
        predicted = round(predict_tree_bits_upper(k, rounds))
        rows.append(
            [
                f"tree r={rounds} (upper model)",
                measured,
                predicted,
                measured <= 2 * predicted,
            ]
        )
    return rows


def measure_anatomy():
    rng = random.Random(301)
    k, rounds = 1024, 4
    sink = []
    protocol = TreeProtocol(UNIVERSE, k, rounds=rounds, stage_stats_sink=sink)
    s, t = make_instance(rng, UNIVERSE, k, 0.5)
    outcome = protocol.run(s, t, seed=0)
    assert outcome.correct_for(s, t)
    rows = [
        [
            entry.stage,
            entry.num_nodes,
            entry.eq_width,
            entry.equality_bits,
            entry.failed_nodes,
            entry.failed_leaves,
            entry.rerun_bits,
        ]
        for entry in sink
    ]
    return rows, outcome.total_bits


def test_e12_cost_models(benchmark):
    model_rows = measure_models()
    emit(
        "e12_cost_models",
        format_table(
            "E12a: analytic cost models vs measured bits (k = 256)",
            ["model", "measured", "predicted", "within spec"],
            model_rows,
        ),
    )
    assert all(row[3] for row in model_rows)
    # The deterministic-layout rows match bit for bit.
    assert model_rows[0][1] == model_rows[0][2]
    assert model_rows[1][1] == model_rows[1][2]

    anatomy_rows, total = measure_anatomy()
    emit(
        "e12_stage_anatomy",
        format_table(
            "E12b: tree protocol stage anatomy (k = 1024, r = 4)",
            [
                "stage",
                "|L_i|",
                "eq width",
                "equality bits",
                "failed nodes",
                "failed leaves",
                "re-run bits",
            ],
            anatomy_rows,
        ),
    )
    # Stage 0 dominates; failures collapse geometrically up the tree.
    stage0 = anatomy_rows[0][3] + anatomy_rows[0][6]
    assert stage0 > total / 2
    failed = [row[5] for row in anatomy_rows]
    assert failed == sorted(failed, reverse=True)
    assert failed[-1] <= failed[0] // 8

    rng = random.Random(302)
    instance = make_instance(rng, UNIVERSE, 256, 0.5)
    protocol = OneRoundHashingProtocol(UNIVERSE, 256)
    benchmark(lambda: protocol.run(*instance, seed=0))
