"""E8 -- Corollary 4.2: worst-case-bounded multiparty intersection.

Claims: the binary-tree scheme bounds the *worst-case* per-player
communication (the coordinator scheme concentrates ``O(m k log^(r) k)`` on
one player; the tree spreads it to ``O(k * depth)`` per player) at the
price of more rounds (sequential tree steps, the paper's ``O(r k)`` per
level).  The table compares both schemes' heaviest player and rounds.
"""

import random

from _harness import emit, format_table, make_multiparty_instance
from repro.multiparty.binary_tree import BinaryTreeIntersection
from repro.multiparty.coordinator import CoordinatorIntersection

UNIVERSE = 1 << 22
K = 64


def measure():
    rows = []
    for m in (4, 8, 16):
        rng = random.Random(70 + m)
        sets = make_multiparty_instance(rng, UNIVERSE, K, m, 16)
        truth = frozenset.intersection(*sets)
        coordinator = CoordinatorIntersection(UNIVERSE, K).run(sets, seed=0)
        tree = BinaryTreeIntersection(UNIVERSE, K).run(sets, seed=0)
        assert coordinator.intersection == truth
        assert tree.intersection == truth
        rows.append(
            [
                m,
                coordinator.outcome.max_player_bits,
                tree.outcome.max_player_bits,
                coordinator.outcome.max_player_bits
                / tree.outcome.max_player_bits,
                coordinator.rounds,
                tree.rounds,
            ]
        )
    return rows


def test_e8_multiparty_worst_case(benchmark):
    rows = measure()
    emit(
        "e8_multiparty_worst",
        format_table(
            f"E8: Corollary 4.2 -- worst-case per-player load, k = {K}",
            [
                "m",
                "coord max bits",
                "tree max bits",
                "spread factor",
                "coord rounds",
                "tree rounds",
            ],
            rows,
        ),
    )
    for row in rows:
        assert row[3] > 1.0  # the tree always spreads the load
        assert row[5] >= row[4]  # and pays rounds for it
    # The spread factor grows with m: coordinator load is ~m*k while tree
    # load is ~k log m.
    assert rows[-1][3] > rows[0][3]

    rng = random.Random(71)
    sets = make_multiparty_instance(rng, UNIVERSE, K, 8, 16)
    protocol = BinaryTreeIntersection(UNIVERSE, K)
    benchmark(lambda: protocol.run(sets, seed=0))
