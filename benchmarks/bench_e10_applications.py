"""E10 -- the Section 1 applications inherit the tradeoff.

Claims: exact Jaccard similarity, union size / distinct elements, Hamming
distance, and 1-/2-rarity all cost one intersection-protocol run plus a
one-round size exchange; the distributed join moves only the matching rows.
The tables verify exactness and show the costs tracking the underlying
``O(k)`` protocol, plus the join's savings over shipping a whole relation.
"""

import random
from fractions import Fraction

from _harness import emit, format_table, make_instance
from repro.applications import (
    Relation,
    distributed_join,
    jaccard,
    rarity,
    set_statistics,
)

UNIVERSE = 1 << 22


def measure_statistics():
    rows = []
    for k in (64, 256, 1024):
        rng = random.Random(90 + k)
        s, t = make_instance(rng, UNIVERSE, k, 0.5)
        options = {"universe_size": UNIVERSE, "max_set_size": k, "seed": 0}
        report = set_statistics(s, t, **options)
        assert report.intersection == s & t
        measured_jaccard = jaccard(s, t, **options)
        assert measured_jaccard == Fraction(len(s & t), len(s | t))
        assert rarity(1, s, t, **options) == Fraction(len(s ^ t), len(s | t))
        rows.append(
            [
                k,
                report.intersection_size,
                report.union_size,
                f"{float(measured_jaccard):.3f}",
                report.bits,
                report.bits / k,
                report.messages,
            ]
        )
    return rows


def measure_join():
    rows = []
    for match_fraction in (0.01, 0.1, 0.5):
        rng = random.Random(91)
        k = 512
        s, t = make_instance(rng, UNIVERSE, k, match_fraction)
        payload = "r" * 64  # 64-byte rows
        left = Relation({key: payload for key in s})
        right = Relation({key: payload for key in t})
        result = distributed_join(
            left, right, universe_size=UNIVERSE, max_set_size=k, seed=0
        )
        assert result.matching_keys == s & t
        ship_everything = 8 * sum(len(payload) + 8 for _ in s)
        rows.append(
            [
                match_fraction,
                len(result.rows),
                result.key_bits,
                result.row_bits,
                ship_everything / max(result.total_bits, 1),
            ]
        )
    return rows


def test_e10_applications(benchmark):
    stats_rows = measure_statistics()
    emit(
        "e10_statistics",
        format_table(
            "E10a: exact similarity statistics at the INT cost (Section 1)",
            ["k", "|SnT|", "|SuT|", "jaccard", "bits", "bits/k", "msgs"],
            stats_rows,
        ),
    )
    per_k = [row[5] for row in stats_rows]
    assert max(per_k) / min(per_k) < 2.0  # applications stay O(k)

    join_rows = measure_join()
    emit(
        "e10_join",
        format_table(
            "E10b: distributed join (k = 512, 64-byte rows)",
            [
                "match frac",
                "joined rows",
                "key bits",
                "row bits",
                "saving vs ship-all",
            ],
            join_rows,
        ),
    )
    # Sparse joins must show a large saving over shipping the relation.
    assert join_rows[0][4] > 5.0

    rng = random.Random(92)
    s, t = make_instance(rng, UNIVERSE, 512, 0.5)
    benchmark(
        lambda: set_statistics(
            s, t, universe_size=UNIVERSE, max_set_size=512, seed=0
        )
    )
