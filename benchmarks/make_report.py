"""Assemble benchmarks/results/*.txt into a single RESULTS.md.

Run after the benchmark suite::

    pytest benchmarks/ --benchmark-only
    python benchmarks/make_report.py        # writes RESULTS.md at repo root

Not collected by pytest (no test_/bench_ prefix).
"""

from __future__ import annotations

import sys
from datetime import date
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"
OUTPUT = Path(__file__).resolve().parent.parent / "RESULTS.md"

SECTION_ORDER = [
    ("e1_tree_tradeoff", "E1 — Theorem 1.1 tradeoff"),
    ("e1_ablation_confidence", "E1 ablation — confidence exponent"),
    ("e1_ablation_leaves", "E1 ablation — bucket count"),
    ("e2_optimal_point", "E2 — the optimal point (r = log* k)"),
    ("e3_success_prob", "E3 — success probability"),
    ("e4_sqrt_k", "E4 — Theorem 3.1"),
    ("e4_ablation_test_width", "E4 ablation — amortized-equality width"),
    ("e5_baselines", "E5 — baselines & crossovers"),
    ("e6_basic_intersection", "E6a — Basic-Intersection"),
    ("e6_equality", "E6b — Fact 3.5 equality"),
    ("e6_disj_vs_int", "E6c — DISJ vs INT"),
    ("e7_multiparty_avg", "E7 — Corollary 4.1"),
    ("e7_recursion_levels", "E7b — forced recursion"),
    ("e8_multiparty_worst", "E8 — Corollary 4.2"),
    ("e9_eq_reduction", "E9 — Fact 2.1 reduction"),
    ("e10_statistics", "E10a — applications"),
    ("e10_join", "E10b — distributed join"),
    ("e11_minhash_contrast", "E11 — exact vs sketch"),
    ("e12_cost_models", "E12a — cost models"),
    ("e12_stage_anatomy", "E12b — stage anatomy"),
    ("e13_distributions", "E13a — input-distribution robustness"),
    ("e13_union_contrast", "E13b — union vs intersection"),
]


def main() -> int:
    if not RESULTS_DIR.is_dir():
        print(
            "no benchmarks/results/ directory; run "
            "`pytest benchmarks/ --benchmark-only` first",
            file=sys.stderr,
        )
        return 1
    sections = []
    missing = []
    for stem, title in SECTION_ORDER:
        path = RESULTS_DIR / f"{stem}.txt"
        if not path.is_file():
            missing.append(stem)
            continue
        sections.append(f"## {title}\n\n```\n{path.read_text().rstrip()}\n```\n")
    header = (
        "# Benchmark results\n\n"
        f"Generated {date.today().isoformat()} from `benchmarks/results/`.\n"
        "Regenerate with `pytest benchmarks/ --benchmark-only && "
        "python benchmarks/make_report.py`.\n"
        "See `EXPERIMENTS.md` for the claim-by-claim interpretation.\n\n"
    )
    OUTPUT.write_text(header + "\n".join(sections), encoding="utf-8")
    print(f"wrote {OUTPUT} ({len(sections)} sections)")
    if missing:
        print(f"missing results (bench not run yet?): {', '.join(missing)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
