"""E7 -- Corollary 4.1: average-case multiparty intersection.

Claims: expected *average* communication per player ``O(k log^(r) k)``
(flat per-(player, k) as ``m`` and ``k`` grow), total ``O(mk)`` at
``r = log* k`` matching the ``Omega(mk)`` lower bound of [PVZ12, BEO+13],
and rounds ``O(r * max(1, log(m)/k))`` -- a single recursion level (so
two-party-like round counts) whenever ``m <= 2^k``.
"""

import random

from _harness import emit, format_table, make_multiparty_instance
from repro.multiparty.coordinator import CoordinatorIntersection

UNIVERSE = 1 << 22


def measure():
    rows = []
    for k in (32, 64):
        for m in (4, 8, 16, 32):
            rng = random.Random(60 + m + k)
            sets = make_multiparty_instance(rng, UNIVERSE, k, m, k // 4)
            truth = frozenset.intersection(*sets)
            result = CoordinatorIntersection(UNIVERSE, k).run(sets, seed=0)
            assert result.intersection == truth
            rows.append(
                [
                    m,
                    k,
                    result.total_bits,
                    result.total_bits / (m * k),
                    result.outcome.average_player_bits / k,
                    result.rounds,
                ]
            )
    return rows


def measure_recursion_levels():
    # Force multi-level recursion with a small group size to expose the
    # max(1, log m / k) factor in rounds.
    rows = []
    k = 32
    for group_size, m in ((4, 16), (4, 64)):
        rng = random.Random(61 + m)
        sets = make_multiparty_instance(rng, UNIVERSE, k, m, 8)
        result = CoordinatorIntersection(
            UNIVERSE, k, group_size=group_size
        ).run(sets, seed=0)
        assert result.intersection == frozenset.intersection(*sets)
        rows.append([m, group_size, result.rounds, result.total_bits])
    return rows


def test_e7_multiparty_average(benchmark):
    rows = measure()
    emit(
        "e7_multiparty_avg",
        format_table(
            "E7: Corollary 4.1 -- average-case multiparty (single level)",
            ["m", "k", "total bits", "bits/(m*k)", "avg player bits/k", "rounds"],
            rows,
        ),
    )
    per_mk = [row[3] for row in rows]
    # Total O(mk): normalized total flat within a small band.
    assert max(per_mk) / min(per_mk) < 3.0
    assert max(per_mk) < 150
    # Rounds stay two-party-like regardless of m (parallel pairs).
    assert max(row[5] for row in rows) <= 40

    levels = measure_recursion_levels()
    emit(
        "e7_recursion_levels",
        format_table(
            "E7b: forced recursion (group size 4): rounds grow with log m",
            ["m", "group", "rounds", "total bits"],
            levels,
        ),
    )
    assert levels[1][2] > levels[0][2]  # more levels, more rounds

    rng = random.Random(62)
    sets = make_multiparty_instance(rng, UNIVERSE, 64, 8, 16)
    protocol = CoordinatorIntersection(UNIVERSE, 64)
    benchmark(lambda: protocol.run(sets, seed=0))
