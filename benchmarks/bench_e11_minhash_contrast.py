"""E11 -- exact recovery vs one-way sketching (the [PSW14] contrast).

The introduction positions the paper against Pagh-Stockel-Woodruff:
*approximating the intersection size* with one-way sketches vs *recovering
the actual intersection* with two-way communication.  The table gives both
protocols the SAME communication budget and reports what each buys:

* the tree protocol returns the exact set (error listed is observed
  failure rate, 0 here);
* MinHash returns a scalar estimate whose relative error follows the
  ``~1/sqrt(t)`` law -- it cannot be driven to exactness at any finite
  budget, and it never names a single common element.
"""

import random

from _harness import emit, format_table, make_instance
from repro.core.tree_protocol import TreeProtocol
from repro.protocols.minhash import MinHashSketchProtocol

UNIVERSE = 1 << 24
TRIALS = 12


def measure():
    rows = []
    for k in (128, 512):
        rng = random.Random(200 + k)
        exact_protocol = TreeProtocol(UNIVERSE, k)
        probe = MinHashSketchProtocol(UNIVERSE, k)
        sample_instance = make_instance(rng, UNIVERSE, k, 0.5)
        budget = exact_protocol.run(*sample_instance, seed=0).total_bits
        num_hashes = max(1, budget // probe.value_width)
        sketch_protocol = MinHashSketchProtocol(
            UNIVERSE, k, num_hashes=num_hashes
        )

        exact_failures = 0
        sketch_rel_error = 0.0
        sketch_bits = exact_bits = 0
        for seed in range(TRIALS):
            s, t = make_instance(rng, UNIVERSE, k, 0.5)
            truth = len(s & t)
            exact_outcome = exact_protocol.run(s, t, seed=seed)
            exact_bits = exact_outcome.total_bits
            if exact_outcome.alice_output != s & t:
                exact_failures += 1
            sketch_outcome = sketch_protocol.run(s, t, seed=seed)
            sketch_bits = sketch_outcome.total_bits
            estimate = sketch_outcome.bob_output.intersection_estimate
            sketch_rel_error += abs(estimate - truth) / max(truth, 1)
        rows.append(
            [
                k,
                exact_bits,
                sketch_bits,
                num_hashes,
                exact_failures / TRIALS,
                sketch_rel_error / TRIALS,
            ]
        )
    return rows


def test_e11_minhash_contrast(benchmark):
    rows = measure()
    emit(
        "e11_minhash_contrast",
        format_table(
            "E11: exact intersection vs MinHash at equal communication",
            [
                "k",
                "tree bits (exact set)",
                "sketch bits (scalar)",
                "t hashes",
                "tree failure",
                "sketch rel. err",
            ],
            rows,
        ),
    )
    for row in rows:
        assert row[4] == 0.0  # exact recovery
        assert row[5] > 0.0  # the sketch is never exact
        # budgets really were comparable (within 35%)
        assert abs(row[1] - row[2]) / row[1] < 0.35

    rng = random.Random(201)
    sketch = MinHashSketchProtocol(UNIVERSE, 512, num_hashes=256)
    instance = make_instance(rng, UNIVERSE, 512, 0.5)
    benchmark(lambda: sketch.run(*instance, seed=0))
