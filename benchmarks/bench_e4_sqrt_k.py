"""E4 -- Theorem 3.1: the bucketing + amortized-equality protocol.

Claim: ``O(k)`` expected bits within an ``O(sqrt(k))`` round budget.  The
table sweeps ``k`` and reports bits/k (must be flat), rounds against both
the ``6 sqrt(k)`` budget and the much smaller realized ``O(log k)`` of our
group-testing amortized equality, and the standalone amortized-equality cost
per instance.

Ablation (DESIGN.md): the amortized-equality base test width.
"""

import math
import random

from _harness import average_cost, emit, format_table, instance_key, make_instance
from repro.protocols.fknn import AmortizedEqualityProtocol
from repro.protocols.sqrt_k import SqrtKProtocol

UNIVERSE = 1 << 24
SEEDS = 5


def measure_protocol():
    rng = random.Random(30)
    rows = []
    for k in (64, 256, 1024):
        protocol = SqrtKProtocol(UNIVERSE, k)
        instance = make_instance(rng, UNIVERSE, k, 0.5)

        def run(seed, protocol=protocol, instance=instance):
            outcome = protocol.run(*instance, seed=seed)
            return (
                outcome.total_bits,
                outcome.num_messages,
                outcome.correct_for(*instance),
            )

        bits, max_messages, success = average_cost(
            run, SEEDS, key=f"e4/sqrt-k/k={k}/{instance_key(instance)}"
        )
        rows.append(
            [
                k,
                f"{bits:.0f}",
                bits / k,
                f"{max_messages:.0f}",
                6 * math.ceil(math.sqrt(k)),
                success,
            ]
        )
    return rows


def measure_equality_ablation():
    rng = random.Random(31)
    rows = []
    k = 512
    xs = [rng.getrandbits(32) for _ in range(k)]
    ys = [x if i % 2 else x ^ 7 for i, x in enumerate(xs)]
    for base_width in (1, 2, 4):
        protocol = AmortizedEqualityProtocol(k, base_width=base_width)
        outcome = protocol.run(xs, ys, seed=0)
        correct = outcome.alice_output == tuple(
            x == y for x, y in zip(xs, ys)
        )
        rows.append(
            [base_width, outcome.total_bits, outcome.total_bits / k,
             outcome.num_messages, correct]
        )
    return rows


def test_e4_sqrt_k(benchmark):
    rows = measure_protocol()
    emit(
        "e4_sqrt_k",
        format_table(
            "E4: Theorem 3.1 protocol -- O(k) bits within O(sqrt k) rounds",
            ["k", "mean bits", "bits/k", "max msgs", "6*sqrt(k) budget", "success"],
            rows,
        ),
    )
    per_k = [row[2] for row in rows]
    assert max(per_k) / min(per_k) < 2.5  # O(k) flatness
    for row in rows:
        assert float(row[3]) <= row[4]  # inside the round budget
        assert row[5] >= 0.8

    ablation = measure_equality_ablation()
    emit(
        "e4_ablation_test_width",
        format_table(
            "E4 ablation: amortized-equality base test width (k = 512)",
            ["base width", "bits", "bits/instance", "msgs", "correct"],
            ablation,
        ),
    )

    rng = random.Random(32)
    protocol = SqrtKProtocol(UNIVERSE, 512)
    instance = make_instance(rng, UNIVERSE, 512, 0.5)
    benchmark(lambda: protocol.run(*instance, seed=0))
