"""E2 -- the optimal point: ``r = log* k`` gives ``O(k)`` bits.

Claim (Theorem 1.1 + the lower bound): at ``r = log* k`` communication is
``O(k)`` -- the bits-per-element column must stay flat as ``k`` grows 64x --
in ``O(log* k)`` rounds.  For reference the table also shows the ``Omega(k)``
lower-bound floor (1 bit per element of ``S n T`` certainty; [KS92]-style)
and the one-round ``Theta(k log k)`` cost ratio.
"""

import random

from _harness import average_cost, emit, format_table, make_instance
from repro.core.tree_protocol import TreeProtocol
from repro.protocols.one_round import OneRoundHashingProtocol
from repro.util.iterlog import log_star

UNIVERSE = 1 << 26
SEEDS = 5


def measure():
    rng = random.Random(10)
    rows = []
    for k in (64, 256, 1024, 4096):
        protocol = TreeProtocol(UNIVERSE, k)  # rounds = log* k
        one_round = OneRoundHashingProtocol(UNIVERSE, k)
        instance = make_instance(rng, UNIVERSE, k, 0.5)

        def run(seed, protocol=protocol, instance=instance):
            outcome = protocol.run(*instance, seed=seed)
            return (
                outcome.total_bits,
                outcome.num_messages,
                outcome.correct_for(*instance),
            )

        bits, max_messages, success = average_cost(run, SEEDS)
        one_round_bits = one_round.run(*instance, seed=0).total_bits
        rows.append(
            [
                k,
                log_star(k),
                f"{bits:.0f}",
                bits / k,
                f"{max_messages:.0f}/{6 * log_star(k)}",
                one_round_bits / bits,
                success,
            ]
        )
    return rows


def test_e2_optimal_point(benchmark):
    rows = measure()
    emit(
        "e2_optimal_point",
        format_table(
            "E2: r = log* k -- optimal O(k) communication (Theorem 1.1)",
            [
                "k",
                "log*k",
                "mean bits",
                "bits/k",
                "msgs/budget",
                "one-round/tree",
                "success",
            ],
            rows,
        ),
    )
    per_element = [row[3] for row in rows]
    # O(k): flat bits-per-element band across a 64x range of k.
    assert max(per_element) / min(per_element) < 2.0
    assert max(per_element) < 64
    # the speedup over one-round grows with k (log k vs constant)
    ratios = [row[5] for row in rows]
    assert ratios[-1] > ratios[0]

    rng = random.Random(11)
    protocol = TreeProtocol(UNIVERSE, 1024)
    instance = make_instance(rng, UNIVERSE, 1024, 0.5)
    benchmark(lambda: protocol.run(*instance, seed=0))
