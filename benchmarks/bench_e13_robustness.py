"""E13 -- robustness across input distributions & the union counterpoint.

Two claims rounded out:

* the protocols' guarantees are input-oblivious (randomized over the shared
  coins, worst-case over inputs): costs and exactness must hold across
  uniform, clustered (auto-increment keys), Zipf, and adversarial
  arithmetic-progression workloads -- structured inputs are where weak hash
  families would break;
* the abstract's counterpoint: recovering the *union* or symmetric
  difference requires ``Omega(k log(n/k))`` for any number of rounds.  The
  table shows the union's cost rising with ``log(n/k)`` while the
  intersection stays flat on the same instances.
"""

import random

from _harness import emit, format_table
from repro.applications.union_set import recover_union
from repro.core.tree_protocol import TreeProtocol
from repro.workloads import Distribution, WorkloadSpec, generate_pair

K = 512


def measure_distributions():
    rows = []
    for distribution in Distribution:
        spec = WorkloadSpec(1 << 24, K, 0.5, distribution)
        protocol = TreeProtocol(1 << 24, K)
        bits = []
        failures = 0
        for seed in range(8):
            s, t = generate_pair(spec, seed)
            outcome = protocol.run(s, t, seed=seed)
            bits.append(outcome.total_bits)
            if not outcome.correct_for(s, t):
                failures += 1
        rows.append(
            [
                distribution.value,
                f"{sum(bits) / len(bits):.0f}",
                sum(bits) / len(bits) / K,
                failures / 8,
            ]
        )
    return rows


def measure_union_contrast():
    rng = random.Random(0)
    rows = []
    for log_ratio in (4, 10, 16, 22):
        n = K << log_ratio
        spec = WorkloadSpec(n, K, 0.5)
        s, t = generate_pair(spec, 0)
        union_report = recover_union(
            s, t, universe_size=n, max_set_size=K, seed=0
        )
        assert union_report.result == s | t
        intersection_outcome = TreeProtocol(n, K).run(s, t, seed=0)
        assert intersection_outcome.correct_for(s, t)
        rows.append(
            [
                f"2^{log_ratio}",
                union_report.bits,
                union_report.bits / K,
                intersection_outcome.total_bits,
                intersection_outcome.total_bits / K,
            ]
        )
    return rows


def test_e13_robustness(benchmark):
    distribution_rows = measure_distributions()
    emit(
        "e13_distributions",
        format_table(
            f"E13a: tree protocol across input distributions (k = {K})",
            ["distribution", "mean bits", "bits/k", "failure rate"],
            distribution_rows,
        ),
    )
    costs = [row[2] for row in distribution_rows]
    assert max(costs) / min(costs) < 1.5  # input-shape oblivious
    assert all(row[3] == 0.0 for row in distribution_rows)

    union_rows = measure_union_contrast()
    emit(
        "e13_union_contrast",
        format_table(
            "E13b: union Omega(k log(n/k)) vs intersection O(k) (abstract)",
            ["n/k", "union bits", "union bits/k", "INT bits", "INT bits/k"],
            union_rows,
        ),
    )
    union_per_k = [row[2] for row in union_rows]
    int_per_k = [row[4] for row in union_rows]
    assert union_per_k[-1] > 2.5 * union_per_k[0]  # grows with log(n/k)
    assert max(int_per_k) / min(int_per_k) < 1.5  # flat

    spec = WorkloadSpec(1 << 24, K, 0.5, Distribution.ARITHMETIC)
    instance = generate_pair(spec, 3)
    protocol = TreeProtocol(1 << 24, K)
    benchmark(lambda: protocol.run(*instance, seed=0))
