"""Tests for the deterministic parallel trial executor (repro.perf).

The load-bearing property is bit-exactness: a trial run must produce
identical protocol outputs and communication counters whether it executes
serially, on threads, or across processes -- otherwise ``REPRO_WORKERS``
would silently change experiment tables.  The protocol-level checks here
run real ``TreeProtocol`` and ``SqrtKProtocol`` trials both ways and
compare every counter.
"""

from __future__ import annotations

import pytest

from conftest import make_instance
from repro.perf import (
    TrialFailure,
    derive_seed,
    hot_cache_names,
    hot_caches_disabled,
    resolve_workers,
    run_trials,
)
from repro.perf.schema import validate_bench_report
from repro.util.rng import SharedRandomness


# ---------------------------------------------------------------------------
# seed schedule


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, 3) == derive_seed(7, 3)

    def test_collision_free_over_10k_indices(self):
        seeds = {derive_seed(0, index) for index in range(10_000)}
        assert len(seeds) == 10_000

    def test_roots_are_independent(self):
        a = [derive_seed(0, index) for index in range(100)]
        b = [derive_seed(1, index) for index in range(100)]
        assert not set(a) & set(b)

    def test_fits_in_63_bits(self):
        for index in range(100):
            assert 0 <= derive_seed(123, index) < 1 << 63

    def test_pinned_lineage_values(self):
        # The derived seed schedule is load-bearing for the plan layer's
        # content-addressed shard cache: shard keys embed these values, so
        # any drift in the derivation silently invalidates every cache and
        # changes every experiment table.  Pin concrete values -- a failure
        # here means a deliberate (epoch-bumping) break, never a refactor
        # accident.
        assert derive_seed(0, 0) == 1819438799946339871
        assert derive_seed(0, 1) == 5314481483878345782
        assert derive_seed(1, 0) == 2882150976574477689
        assert derive_seed(42, 7) == 623293494264892931
        assert derive_seed(1 << 62, 999) == 305755527477710396

    def test_schedule_identical_across_executors(self):
        # The per-trial seeds an executor hands out are a function of
        # (root_seed, trial index) only -- never of worker count, executor
        # kind, or chunking.
        runs = [
            run_trials(_identity_trial, 9, root_seed=5, workers=1,
                       executor="serial"),
            run_trials(_identity_trial, 9, root_seed=5, workers=3,
                       executor="thread", chunk_size=2),
            run_trials(_identity_trial, 9, root_seed=5, workers=3,
                       executor="process", chunk_size=4),
        ]
        expected = [derive_seed(5, index) for index in range(9)]
        for run in runs:
            assert [outcome.seed for outcome in run.outcomes] == expected
            assert run.values() == expected


class TestResolveWorkers:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "8")
        assert resolve_workers(2) == 2

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None) == 3

    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1

    def test_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError):
            resolve_workers(None)


# ---------------------------------------------------------------------------
# executor mechanics (cheap trial functions)


def _identity_trial(seed: int) -> int:
    return seed


def _square(seed: int) -> int:
    return seed * seed


def _fail_on_odd(seed: int) -> int:
    if seed % 2:
        raise ValueError(f"odd seed {seed}")
    return seed


class TestRunTrials:
    def test_explicit_seeds_used_verbatim(self):
        run = run_trials(_square, [5, 3, 9], workers=1)
        assert run.values() == [25, 9, 81]
        assert [outcome.seed for outcome in run.outcomes] == [5, 3, 9]

    def test_count_uses_derived_schedule(self):
        run = run_trials(_square, 4, workers=1, root_seed=42)
        expected = [derive_seed(42, index) ** 2 for index in range(4)]
        assert run.values() == expected
        assert run.root_seed == 42

    def test_serial_and_process_agree(self):
        serial = run_trials(_square, 20, workers=1)
        parallel = run_trials(_square, 20, workers=4)
        assert serial.values() == parallel.values()
        assert serial.executor == "serial"
        assert parallel.executor == "process"
        assert parallel.workers == 4

    def test_thread_executor_agrees(self):
        serial = run_trials(_square, 12, workers=1)
        threaded = run_trials(_square, 12, workers=3, executor="thread")
        assert serial.values() == threaded.values()
        assert threaded.executor == "thread"

    def test_chunking_does_not_reorder(self):
        run = run_trials(_square, [*range(17)], workers=4, chunk_size=2)
        assert run.values() == [seed * seed for seed in range(17)]
        assert run.chunk_size == 2

    def test_closure_falls_back_to_threads(self):
        offset = 7
        run = run_trials(lambda seed: seed + offset, [1, 2, 3], workers=2)
        assert run.values() == [8, 9, 10]
        assert run.executor == "thread"
        assert "not picklable" in run.fallback_reason

    def test_failures_captured_per_trial(self):
        run = run_trials(_fail_on_odd, [0, 1, 2, 3], workers=1)
        assert [outcome.ok for outcome in run.outcomes] == [
            True, False, True, False,
        ]
        assert "odd seed 1" in run.failures[0].error
        assert run.values(strict=False) == [0, None, 2, None]

    def test_strict_values_reraise_original_exception(self):
        run = run_trials(_fail_on_odd, [0, 1], workers=1)
        with pytest.raises(ValueError, match="odd seed 1"):
            run.values()

    def test_strict_values_reraise_across_processes(self):
        run = run_trials(_fail_on_odd, [0, 1, 2, 3], workers=2)
        with pytest.raises(ValueError, match="odd seed 1"):
            run.values()

    def test_trial_failure_when_not_transportable(self):
        outcome = run_trials(_fail_on_odd, [1], workers=1).outcomes[0]
        stripped = type(outcome)(
            index=outcome.index,
            seed=outcome.seed,
            value=None,
            error=outcome.error,
            duration_s=outcome.duration_s,
            exception=None,
        )
        run = run_trials(_square, [0], workers=1)
        run.outcomes = [stripped]
        with pytest.raises(TrialFailure, match="1 of the trials failed"):
            run.values()

    def test_timing_recorded(self):
        run = run_trials(_square, 5, workers=1)
        assert run.wall_time_s > 0
        assert all(outcome.duration_s >= 0 for outcome in run.outcomes)
        assert run.trial_time_s <= run.wall_time_s * 1.5 + 0.1

    def test_zero_trials(self):
        run = run_trials(_square, 0, workers=4)
        assert run.values() == []
        assert run.trials == 0

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            run_trials(_square, 2, executor="gpu")


# ---------------------------------------------------------------------------
# bit-exactness on real protocols


def _tree_trial(seed: int):
    from repro.core.tree_protocol import TreeProtocol

    import random

    rng = random.Random(seed)
    alice, bob = make_instance(rng, 1 << 20, 64, 0.5)
    outcome = TreeProtocol(1 << 20, 64).run(alice, bob, seed=seed)
    return (
        outcome.total_bits,
        outcome.num_messages,
        sorted(outcome.alice_output),
        outcome.correct_for(alice, bob),
    )


def _sqrt_k_trial(seed: int):
    from repro.protocols.sqrt_k import SqrtKProtocol

    import random

    rng = random.Random(seed)
    alice, bob = make_instance(rng, 1 << 18, 32, 0.5)
    outcome = SqrtKProtocol(1 << 18, 32).run(alice, bob, seed=seed)
    return (
        outcome.total_bits,
        outcome.num_messages,
        sorted(outcome.alice_output),
        outcome.correct_for(alice, bob),
    )


@pytest.mark.parametrize(
    "trial_fn", [_tree_trial, _sqrt_k_trial], ids=["tree", "sqrt_k"]
)
def test_protocol_counters_identical_serial_vs_parallel(trial_fn):
    serial = run_trials(trial_fn, 8, workers=1, root_seed=99)
    parallel = run_trials(trial_fn, 8, workers=4, root_seed=99)
    assert parallel.executor == "process"
    assert serial.values() == parallel.values()


def test_protocol_counters_identical_with_caches_disabled():
    # Hot caches are a pure perf layer: disabling every registered cache
    # must not move a single counter.
    warm = run_trials(_tree_trial, 4, workers=1, root_seed=5).values()
    with hot_caches_disabled():
        cold = run_trials(_tree_trial, 4, workers=1, root_seed=5).values()
    assert warm == cold
    assert len(hot_cache_names()) >= 5


def test_shared_randomness_streams_stable_across_modes():
    # The substrate the protocols sample from must itself be scheduling
    # independent.
    def draws(seed: int):
        stream = SharedRandomness(seed).stream("perf-test")
        return [stream.uint_below(1 << 30) for _ in range(16)]

    serial = run_trials(draws, 6, workers=1, root_seed=11).values()
    threaded = run_trials(draws, 6, workers=3, executor="thread",
                          root_seed=11).values()
    assert serial == threaded


# ---------------------------------------------------------------------------
# benchmark report schema


class TestBenchSchema:
    def _minimal_report(self):
        micro_entry = {"ops_per_s": 10.0, "wall_s": 0.1, "iterations": 1}
        return {
            "schema_version": 3,
            "suite": "repro.perf.core",
            "created_unix": 1754000000.0,
            "host": {
                "python": "3.11.7",
                "platform": "linux",
                "cpu_count": 1,
                "cpu_count_affinity": 1,
            },
            "config": {"workers": 4, "quick": True, "target_s": 0.08},
            "micro": {
                name: dict(micro_entry)
                for name in (
                    "engine_round_trip",
                    "batched_equality",
                    "tree_protocol",
                    "bit_codec_gamma",
                    "bit_codec_uint",
                    "bitwriter_bulk",
                    "bitstring_concat",
                    "transcript_append",
                    "pairwise_batch",
                    "bucket_assign",
                    "multiparty_round",
                )
            },
            "e1_trial_loop": {
                "trials": 8,
                "k": 256,
                "rounds": 2,
                "serial_uncached_s": 1.0,
                "serial_cached_s": 0.4,
                "parallel_s": 0.4,
                "workers": 4,
                "speedup_vs_serial": 2.5,
                "speedup_cached_only": 2.5,
                "bit_identical": True,
                "counters_sha256": "0" * 64,
            },
        }

    def test_valid_report_passes(self):
        assert validate_bench_report(self._minimal_report()) == []

    def test_version_drift_detected(self):
        report = self._minimal_report()
        report["schema_version"] = 1
        assert any("schema_version" in p for p in validate_bench_report(report))

    def test_null_affinity_accepted(self):
        # Hosts without os.sched_getaffinity (macOS/Windows) report null.
        report = self._minimal_report()
        report["host"]["cpu_count_affinity"] = None
        assert validate_bench_report(report) == []

    def test_non_int_affinity_rejected(self):
        report = self._minimal_report()
        report["host"]["cpu_count_affinity"] = "all"
        assert any(
            "cpu_count_affinity" in p for p in validate_bench_report(report)
        )

    def test_backend_field_accepted_and_typed(self):
        report = self._minimal_report()
        report["micro"]["pairwise_batch"]["backend"] = "numpy"
        assert validate_bench_report(report) == []
        report["micro"]["pairwise_batch"]["backend"] = 7
        assert any(
            "pairwise_batch.backend" in p for p in validate_bench_report(report)
        )

    def test_missing_micro_detected(self):
        report = self._minimal_report()
        del report["micro"]["tree_protocol"]
        assert any("tree_protocol" in p for p in validate_bench_report(report))

    def test_wrong_type_detected(self):
        report = self._minimal_report()
        report["e1_trial_loop"]["speedup_vs_serial"] = "fast"
        assert any(
            "speedup_vs_serial" in p for p in validate_bench_report(report)
        )

    def test_non_dict_rejected(self):
        assert validate_bench_report([]) != []

    def _plan_resume_entry(self):
        return {
            "ops_per_s": 4000.0,
            "wall_s": 0.02,
            "iterations": 2,
            "shards": 6,
            "cold_s": 0.02,
            "warm_s": 0.001,
            "speedup": 20.0,
            "cache_hits": 6,
            "cache_misses": 0,
            "resume_identical": True,
        }

    def test_plan_resume_optional(self):
        # Old v3 baselines predate the plan layer; absence must validate so
        # `bench --compare` against them stays green.
        report = self._minimal_report()
        assert validate_bench_report(report) == []
        report["micro"]["plan_resume"] = self._plan_resume_entry()
        assert validate_bench_report(report) == []

    def test_plan_resume_fields_required_when_present(self):
        report = self._minimal_report()
        entry = self._plan_resume_entry()
        del entry["resume_identical"]
        report["micro"]["plan_resume"] = entry
        assert any(
            "plan_resume.resume_identical" in p
            for p in validate_bench_report(report)
        )

    def test_plan_resume_warnings(self):
        from repro.perf.schema import bench_report_warnings

        def plan_warnings(report):
            return [
                w for w in bench_report_warnings(report) if "plan_resume" in w
            ]

        report = self._minimal_report()
        report["micro"]["plan_resume"] = self._plan_resume_entry()
        assert plan_warnings(report) == []
        report["micro"]["plan_resume"]["speedup"] = 2.0
        report["micro"]["plan_resume"]["resume_identical"] = False
        warnings = plan_warnings(report)
        assert any("5x" in w for w in warnings)
        assert any("resume_identical" in w for w in warnings)

    def _serve_throughput_entry(self):
        return {
            "ops_per_s": 10000.0,
            "wall_s": 0.3,
            "iterations": 6,
            "sessions_per_s": 1200.0,
            "p50_ms": 2.0,
            "p99_ms": 8.0,
            "scalar_wall_s": 0.2,
            "coalesced_wall_s": 0.09,
            "coalesce_speedup": 2.2,
            "lanes_per_batch": 9000.0,
            "batch_identical": True,
            "shed": 0,
        }

    def test_serve_throughput_optional(self):
        # Baselines predating the serve layer must stay valid (same
        # optional-micro contract as plan_resume).
        report = self._minimal_report()
        assert validate_bench_report(report) == []
        report["micro"]["serve_throughput"] = self._serve_throughput_entry()
        assert validate_bench_report(report) == []

    def test_serve_throughput_fields_required_when_present(self):
        report = self._minimal_report()
        entry = self._serve_throughput_entry()
        del entry["batch_identical"]
        report["micro"]["serve_throughput"] = entry
        assert any(
            "serve_throughput.batch_identical" in p
            for p in validate_bench_report(report)
        )

    def test_serve_throughput_warnings(self):
        from repro.perf.schema import bench_report_warnings

        def serve_warnings(report):
            return [
                w
                for w in bench_report_warnings(report)
                if "serve_throughput" in w
            ]

        report = self._minimal_report()
        report["micro"]["serve_throughput"] = self._serve_throughput_entry()
        assert serve_warnings(report) == []
        report["micro"]["serve_throughput"]["coalesce_speedup"] = 1.3
        report["micro"]["serve_throughput"]["batch_identical"] = False
        warnings = serve_warnings(report)
        assert any("2x" in w for w in warnings)
        assert any("batch_identical" in w for w in warnings)

    def _multiround_entry(self):
        entry = dict(self._serve_throughput_entry(), rounds=2)
        # Honest expectation on this micro is parity, not a multiple.
        entry["coalesce_speedup"] = 1.1
        return entry

    def test_serve_throughput_multiround_optional(self):
        report = self._minimal_report()
        assert validate_bench_report(report) == []
        report["micro"]["serve_throughput_multiround"] = (
            self._multiround_entry()
        )
        assert validate_bench_report(report) == []

    def test_serve_throughput_multiround_fields_required_when_present(self):
        report = self._minimal_report()
        entry = self._multiround_entry()
        del entry["rounds"]
        report["micro"]["serve_throughput_multiround"] = entry
        assert any(
            "serve_throughput_multiround.rounds" in p
            for p in validate_bench_report(report)
        )

    def test_serve_throughput_multiround_warnings(self):
        from repro.perf.schema import bench_report_warnings

        def multiround_warnings(report):
            return [
                w
                for w in bench_report_warnings(report)
                if "serve_throughput_multiround" in w
            ]

        report = self._minimal_report()
        report["micro"]["serve_throughput_multiround"] = (
            self._multiround_entry()
        )
        # Parity-ish speedups are fine for the barrier micro: the warning
        # floor is 0.8x, not the one-round 2x target.
        assert multiround_warnings(report) == []
        report["micro"]["serve_throughput_multiround"]["coalesce_speedup"] = 0.7
        report["micro"]["serve_throughput_multiround"]["batch_identical"] = False
        warnings = multiround_warnings(report)
        assert any("0.8x" in w for w in warnings)
        assert any("batch_identical" in w for w in warnings)

    def _socket_throughput_entry(self):
        return {
            "ops_per_s": 9000.0,
            "wall_s": 0.1,
            "iterations": 6,
            "transport": "uds",
            "fleet": 2,
            "sessions_per_s": 700.0,
            "p50_ms": 10.0,
            "p99_ms": 14.0,
            "inproc_wall_s": 0.013,
            "socket_wall_s": 0.02,
            "socket_vs_inproc": 1.6,
            "batch_identical": True,
            "shed": 0,
        }

    def test_serve_socket_throughput_optional(self):
        report = self._minimal_report()
        assert validate_bench_report(report) == []
        report["micro"]["serve_socket_throughput"] = (
            self._socket_throughput_entry()
        )
        assert validate_bench_report(report) == []

    def test_serve_socket_throughput_fields_required_when_present(self):
        report = self._minimal_report()
        entry = self._socket_throughput_entry()
        del entry["socket_vs_inproc"]
        report["micro"]["serve_socket_throughput"] = entry
        assert any(
            "serve_socket_throughput.socket_vs_inproc" in p
            for p in validate_bench_report(report)
        )

    def test_serve_socket_throughput_warnings(self):
        from repro.perf.schema import bench_report_warnings

        def socket_warnings(report):
            return [
                w
                for w in bench_report_warnings(report)
                if "serve_socket_throughput" in w
            ]

        report = self._minimal_report()
        report["micro"]["serve_socket_throughput"] = (
            self._socket_throughput_entry()
        )
        assert socket_warnings(report) == []
        # No floor on the wall ratio itself -- syscall overhead is a price,
        # not a speedup -- so even a large ratio warns about nothing.
        report["micro"]["serve_socket_throughput"]["socket_vs_inproc"] = 40.0
        assert socket_warnings(report) == []
        report["micro"]["serve_socket_throughput"]["batch_identical"] = False
        report["micro"]["serve_socket_throughput"]["shed"] = 3
        warnings = socket_warnings(report)
        assert any("batch_identical" in w for w in warnings)
        assert any("shed" in w for w in warnings)

    def _cold_cache_entry(self):
        return {
            "ops_per_s": 150.0,
            "wall_s": 2.0,
            "iterations": 6,
            "rounds": 2,
            "sessions_per_s": 39.0,
            "p50_ms": 400.0,
            "p99_ms": 410.0,
            "warm_wall_s": 0.1,
            "cold_wall_s": 0.41,
            "cold_scalar_wall_s": 0.42,
            "cold_penalty": 4.1,
            "cold_coalesce_speedup": 1.02,
            "profile_identical": True,
            "shed": 0,
        }

    def test_serve_cold_cache_optional(self):
        report = self._minimal_report()
        assert validate_bench_report(report) == []
        report["micro"]["serve_cold_cache"] = self._cold_cache_entry()
        assert validate_bench_report(report) == []

    def test_serve_cold_cache_fields_required_when_present(self):
        report = self._minimal_report()
        entry = self._cold_cache_entry()
        del entry["profile_identical"]
        report["micro"]["serve_cold_cache"] = entry
        assert any(
            "serve_cold_cache.profile_identical" in p
            for p in validate_bench_report(report)
        )

    def test_serve_cold_cache_warnings(self):
        from repro.perf.schema import bench_report_warnings

        def cold_warnings(report):
            return [
                w
                for w in bench_report_warnings(report)
                if "serve_cold_cache" in w
            ]

        report = self._minimal_report()
        report["micro"]["serve_cold_cache"] = self._cold_cache_entry()
        # Parity is the honest measured result; no warning.
        assert cold_warnings(report) == []
        report["micro"]["serve_cold_cache"]["cold_coalesce_speedup"] = 0.7
        report["micro"]["serve_cold_cache"]["profile_identical"] = False
        warnings = cold_warnings(report)
        assert any("0.8x" in w for w in warnings)
        assert any("profile_identical" in w for w in warnings)
