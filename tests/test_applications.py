"""Tests for the Section 1 applications layer."""

from fractions import Fraction

import pytest

from conftest import make_instance
from repro.applications import (
    Relation,
    containment,
    distinct_elements,
    distributed_join,
    hamming_distance,
    intersection_size,
    jaccard,
    overlap_coefficient,
    rarity,
    set_statistics,
    symmetric_difference_size,
    union_size,
)


class TestCardinality:
    def test_all_statistics_exact(self, rng, overlap_fraction):
        s, t = make_instance(rng, 1 << 18, 96, overlap_fraction)
        report = set_statistics(s, t, universe_size=1 << 18, max_set_size=96)
        assert report.intersection == s & t
        assert report.intersection_size == len(s & t)
        assert report.union_size == len(s | t)
        assert report.symmetric_difference_size == len(s ^ t)
        assert report.bits > 0

    def test_wrappers(self, rng):
        s, t = make_instance(rng, 1 << 16, 64, 0.5)
        options = {"universe_size": 1 << 16, "max_set_size": 64}
        assert intersection_size(s, t, **options) == len(s & t)
        assert union_size(s, t, **options) == len(s | t)
        assert distinct_elements(s, t, **options) == len(s | t)
        assert symmetric_difference_size(s, t, **options) == len(s ^ t)

    def test_empty_sets(self):
        report = set_statistics(set(), set())
        assert report.union_size == 0
        assert report.intersection_size == 0

    def test_size_exchange_counted(self, rng):
        from repro.core.api import compute_intersection

        s, t = make_instance(rng, 1 << 16, 64, 0.5)
        options = {"universe_size": 1 << 16, "max_set_size": 64, "seed": 3}
        bare = compute_intersection(s, t, **options)
        report = set_statistics(s, t, **options)
        assert report.bits > bare.bits  # the one-round size exchange


class TestSimilarity:
    def test_jaccard_exact_fraction(self, rng):
        s, t = make_instance(rng, 1 << 16, 64, 0.5)
        value = jaccard(s, t, universe_size=1 << 16, max_set_size=64)
        assert isinstance(value, Fraction)
        assert value == Fraction(len(s & t), len(s | t))

    def test_jaccard_extremes(self, rng):
        s, t = make_instance(rng, 1 << 16, 64, 0.0)
        assert jaccard(s, t, universe_size=1 << 16, max_set_size=64) == 0
        s, _ = make_instance(rng, 1 << 16, 64, 0.0)
        assert jaccard(s, s, universe_size=1 << 16, max_set_size=64) == 1
        assert jaccard(set(), set()) == 1  # convention

    def test_hamming_distance(self, rng):
        s, t = make_instance(rng, 1 << 16, 64, 0.25)
        assert hamming_distance(
            s, t, universe_size=1 << 16, max_set_size=64
        ) == len(s ^ t)

    def test_overlap_coefficient(self, rng):
        s, t = make_instance(rng, 1 << 16, 64, 0.5)
        assert overlap_coefficient(
            s, t, universe_size=1 << 16, max_set_size=64
        ) == Fraction(len(s & t), min(len(s), len(t)))
        assert overlap_coefficient(set(), {1}) == 1

    def test_containment(self, rng):
        s, t = make_instance(rng, 1 << 16, 64, 0.5)
        assert containment(
            s, t, universe_size=1 << 16, max_set_size=64
        ) == Fraction(len(s & t), len(s))
        assert containment(set(), {5}) == 1


class TestRarity:
    def test_one_and_two_rarity(self, rng):
        s, t = make_instance(rng, 1 << 16, 64, 0.5)
        options = {"universe_size": 1 << 16, "max_set_size": 64}
        assert rarity(1, s, t, **options) == Fraction(len(s ^ t), len(s | t))
        assert rarity(2, s, t, **options) == Fraction(len(s & t), len(s | t))

    def test_rarities_sum_to_one(self, rng):
        s, t = make_instance(rng, 1 << 16, 64, 0.3)
        options = {"universe_size": 1 << 16, "max_set_size": 64}
        assert rarity(1, s, t, **options) + rarity(2, s, t, **options) == 1

    def test_higher_alpha_is_zero(self, rng):
        s, t = make_instance(rng, 1 << 16, 32, 0.3)
        assert rarity(3, s, t, universe_size=1 << 16, max_set_size=32) == 0

    def test_empty_sets(self):
        assert rarity(1, set(), set()) == 0

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            rarity(0, {1}, {1})


class TestJoin:
    def test_join_rows_correct(self, rng):
        s, t = make_instance(rng, 1 << 16, 48, 0.5)
        left = Relation({key: ("left", key) for key in s})
        right = Relation({key: ("right", key * 2) for key in t})
        result = distributed_join(
            left, right, universe_size=1 << 16, max_set_size=48
        )
        assert result.matching_keys == s & t
        assert set(result.rows) == set(s & t)
        for key, (left_row, right_row) in result.rows.items():
            assert left_row == ("left", key)
            assert right_row == ("right", key * 2)

    def test_empty_join(self, rng):
        s, t = make_instance(rng, 1 << 16, 32, 0.0)
        left = Relation({key: key for key in s})
        right = Relation({key: key for key in t})
        result = distributed_join(
            left, right, universe_size=1 << 16, max_set_size=32
        )
        assert result.rows == {}
        assert result.row_bits == 0

    def test_row_bits_proportional_to_matches(self, rng):
        s, _ = make_instance(rng, 1 << 16, 64, 0.0)
        left = Relation({key: "payload" for key in s})
        full = distributed_join(
            left, Relation({key: "payload" for key in s}),
            universe_size=1 << 16, max_set_size=64,
        )
        tiny_keys = frozenset(list(s)[:4])
        tiny = distributed_join(
            left, Relation({key: "payload" for key in tiny_keys}),
            universe_size=1 << 16, max_set_size=64,
        )
        assert tiny.row_bits < full.row_bits / 8

    def test_key_discovery_beats_shipping_everything(self, rng):
        # The motivation claim: with few matches, INT-based join moves far
        # fewer bits than shipping a whole relation of fat rows.
        s, t = make_instance(rng, 1 << 20, 256, 0.02)
        fat_row = "x" * 200  # 200-byte rows
        left = Relation({key: fat_row for key in s})
        right = Relation({key: fat_row for key in t})
        result = distributed_join(
            left, right, universe_size=1 << 20, max_set_size=256
        )
        ship_everything = 8 * sum(
            len(repr(key)) + len(fat_row) for key in s
        )
        assert result.total_bits < ship_everything / 5

    def test_relation_validation(self):
        with pytest.raises(ValueError):
            Relation({-1: "row"})
        with pytest.raises(ValueError):
            Relation({"key": "row"})  # type: ignore[dict-item]

    def test_relation_accessors(self):
        relation = Relation({3: "a", 7: "b"})
        assert len(relation) == 2
        assert relation[3] == "a"
        assert relation.keys == frozenset({3, 7})
