"""Rollup + prediction-checker tests, including the acceptance invariant:
per-round bit totals from the event stream sum exactly to the transcript's
``total_bits``, and TreeProtocol runs satisfy the Theorem 1.1/3.6 bounds
for r in {1, 2, log* k}."""

import pytest

from conftest import make_instance
from repro import obs
from repro.core.tradeoff import optimal_rounds
from repro.core.tree_protocol import TreeProtocol
from repro.obs.checker import MESSAGES_PER_STAGE, check_runs, check_trace
from repro.obs.rollup import rollup_runs


def traced_run(rng, k, rounds, seed=0, universe=1 << 20):
    S, T = make_instance(rng, universe, k, 0.4)
    protocol = TreeProtocol(universe, k, rounds=rounds)
    with obs.capture() as sink:
        outcome = protocol.run(S, T, seed=seed)
    assert outcome.alice_output == S & T
    return sink.events(), outcome


class TestRollup:
    def test_round_bits_rebuild_the_transcript_totals(self, rng):
        events, outcome = traced_run(rng, 128, rounds=2)
        (run,) = rollup_runs(events)
        assert run.closed
        assert run.protocol == "verification-tree"
        assert sum(run.round_bits) == outcome.total_bits
        assert run.num_rounds == outcome.num_messages
        assert run.reported_total_bits == outcome.total_bits
        # Sender attribution covers both parties and sums to the total.
        assert set(run.sender_bits) == {"alice", "bob"}
        assert sum(run.sender_bits.values()) == outcome.total_bits

    def test_multiple_runs_segment_cleanly(self, rng):
        events_a, outcome_a = traced_run(rng, 64, rounds=1, seed=1)
        events_b, outcome_b = traced_run(rng, 64, rounds=2, seed=2)
        runs = rollup_runs(events_a + events_b)
        assert len(runs) == 2
        assert runs[0].total_bits == outcome_a.total_bits
        assert runs[1].total_bits == outcome_b.total_bits

    def test_unclosed_run_is_flagged_not_checked(self, rng):
        events, _ = traced_run(rng, 64, rounds=1)
        truncated = [e for e in events if e["type"] != "protocol.finish"]
        (run,) = rollup_runs(truncated)
        assert not run.closed
        report = check_runs([run])
        assert not report.passed
        assert "truncated" in report.failures[0].detail

    def test_stray_message_events_outside_runs_are_ignored(self, rng):
        events, outcome = traced_run(rng, 64, rounds=1)
        stray = {
            "ts": 0.0,
            "seq": 1,
            "type": "message.open",
            "sender": "alice",
            "index": 0,
            "bits": 999,
        }
        runs = rollup_runs(events + [stray])
        assert runs[0].total_bits == outcome.total_bits


class TestChecker:
    @pytest.mark.parametrize("rounds", [1, 2, None])
    def test_tree_runs_pass_all_bounds(self, rng, rounds):
        # rounds=None resolves to the optimal r = log* k -- the acceptance
        # sweep {1, 2, log* k}.
        k = 256
        effective = rounds if rounds is not None else optimal_rounds(k)
        events, outcome = traced_run(rng, k, rounds=rounds)
        report = check_trace(events)
        assert report.passed, str(report)
        checks = {r.check for r in report.results}
        assert checks == {"accounting", "rounds<=6r", "bits<=O(k log^(r) k)"}
        assert outcome.num_messages <= MESSAGES_PER_STAGE * effective

    def test_accounting_mismatch_fails(self, rng):
        events, _ = traced_run(rng, 64, rounds=1)
        # Inflate every message.open's bits so the event-stream sum drifts
        # from the reported transcript total.
        tampered = [
            dict(e, bits=e["bits"] + 1) if e["type"] == "message.open" else e
            for e in events
        ]
        report = check_trace(tampered)
        assert not report.passed
        assert any(f.check == "accounting" for f in report.failures)

    def test_round_budget_violation_fails(self, rng):
        events, _ = traced_run(rng, 64, rounds=1)
        # Claim the run had r=1 but report an impossible message count.
        tampered = [
            dict(e, num_messages=100)
            if e["type"] == "protocol.finish"
            else e
            for e in events
        ]
        report = check_trace(tampered)
        assert not report.passed
        failed_checks = {f.check for f in report.failures}
        # The inflated message count breaks accounting *and* the 6r budget.
        assert "rounds<=6r" in failed_checks

    def test_bits_budget_violation_fails(self, rng):
        events, outcome = traced_run(rng, 64, rounds=1)
        # Scale both sides of the accounting identity by the same factor,
        # so accounting still balances but the bits bound blows up.
        factor = 10_000
        tampered = []
        for event in events:
            if event["type"] == "protocol.finish":
                event = dict(event, total_bits=event["total_bits"] * factor)
            elif event["type"] in ("message.open", "message.merge"):
                event = dict(event, bits=event["bits"] * factor)
            tampered.append(event)
        report = check_trace(tampered)
        assert any(
            f.check == "bits<=O(k log^(r) k)" for f in report.failures
        )

    def test_empty_trace_fails_loudly(self):
        report = check_trace([])
        assert not report.passed
        assert "no protocol runs" in report.failures[0].detail

    def test_non_tree_protocols_get_accounting_only(self, rng):
        from repro.protocols.bucket_verify import BucketVerifyProtocol

        S, T = make_instance(rng, 1 << 16, 64, 0.5)
        with obs.capture() as sink:
            BucketVerifyProtocol(1 << 16, 64).run(S, T, seed=1)
        report = check_trace(sink.events())
        assert report.passed, str(report)
        assert {r.check for r in report.results} == {"accounting"}

    def test_report_str_lists_verdicts(self, rng):
        events, _ = traced_run(rng, 64, rounds=1)
        text = str(check_trace(events))
        assert "[PASS]" in text and "verification-tree" in text


def _with_injected(events, extra):
    """Splice synthetic events in just before protocol.finish, so the
    rollup attributes them to the run."""
    spliced = []
    for event in events:
        if event["type"] == "protocol.finish":
            for i, synthetic in enumerate(extra):
                spliced.append(dict(synthetic, ts=event["ts"], seq=-1 - i))
        spliced.append(event)
    return spliced


def _scale_bits(events, factor):
    """Scale both sides of the accounting identity so accounting still
    balances while the bit total blows past the per-attempt cutoff."""
    scaled = []
    for event in events:
        if event["type"] == "protocol.finish":
            event = dict(event, total_bits=event["total_bits"] * factor)
        elif event["type"] in ("message.open", "message.merge"):
            event = dict(event, bits=event["bits"] * factor)
        scaled.append(event)
    return scaled


FAULT = {"type": "fault.injected", "kind": "bitflip", "sender": "alice"}


def _retry(attempt):
    return {
        "type": "retry.attempt",
        "protocol": "verification-tree",
        "attempt": attempt,
        "reason": "verify-failed",
    }


class TestRetryAwareChecker:
    def test_faulted_run_gets_the_retry_aware_bits_check(self, rng):
        events, _ = traced_run(rng, 64, rounds=1)
        report = check_trace(_with_injected(events, [FAULT]))
        assert report.passed, str(report)
        checks = {r.check for r in report.results}
        assert checks == {"accounting", "rounds<=6r", "bits<=attempts*bound"}

    def test_rounds_check_stays_informational_under_faults(self, rng):
        events, _ = traced_run(rng, 64, rounds=1)
        report = check_trace(_with_injected(events, [FAULT]))
        (rounds_check,) = [
            r for r in report.results if r.check == "rounds<=6r"
        ]
        assert rounds_check.passed
        assert "informational" in rounds_check.detail

    def test_bits_over_retry_budget_fails(self, rng):
        events, _ = traced_run(rng, 64, rounds=1)
        tampered = _with_injected(_scale_bits(events, 10_000), [FAULT])
        report = check_trace(tampered)
        assert not report.passed
        assert any(
            f.check == "bits<=attempts*bound" for f in report.failures
        )

    def test_retry_attempts_widen_the_budget(self, rng):
        from repro.core.tree_protocol import expected_bits_bound

        events, outcome = traced_run(rng, 64, rounds=1)
        # Pick a factor putting the total past 1x the cutoff but inside
        # the 3-attempt budget: with two attributed retry.attempt events
        # the same trace must pass.
        bound = expected_bits_bound(64, 1)
        factor = (2 * bound) // outcome.total_bits
        assert bound < factor * outcome.total_bits <= 3 * bound
        tampered = _scale_bits(events, factor)

        one_attempt = check_trace(_with_injected(tampered, [FAULT]))
        assert any(
            f.check == "bits<=attempts*bound" for f in one_attempt.failures
        )

        three_attempts = check_trace(
            _with_injected(tampered, [FAULT, _retry(0), _retry(1)])
        )
        assert three_attempts.passed, str(three_attempts)

    def test_fault_free_check_names_unchanged(self, rng):
        # The enforced fault-free names are pinned API: dashboards and the
        # CLI grep for them.
        events, _ = traced_run(rng, 64, rounds=1)
        checks = {r.check for r in check_trace(events).results}
        assert checks == {"accounting", "rounds<=6r", "bits<=O(k log^(r) k)"}
