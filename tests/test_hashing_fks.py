"""Tests for the FKS mod-prime universe reduction."""

import math
import random

import pytest

from repro.hashing.fks import FKSReduction, fks_modulus_bound, sample_fks_reduction
from repro.util.iterlog import ceil_log2
from repro.util.rng import SharedRandomness


class TestModulusBound:
    def test_bound_is_polynomial_in_k_and_log_n(self):
        # q = O~(k^2 log n): doubling n should barely move the bound, while
        # doubling k should move it by ~2^(2+exponent).
        base = fks_modulus_bound(64, 1 << 20)
        bigger_universe = fks_modulus_bound(64, 1 << 40)
        assert bigger_universe <= 4 * base
        bigger_sets = fks_modulus_bound(128, 1 << 20)
        assert bigger_sets > base

    def test_description_is_log_k_plus_log_log_n(self):
        # The whole point of Section 3.1: the prime's description length is
        # additive O(log k + log log n), exponentially smaller than log n.
        k, n = 256, 1 << 256
        bound = fks_modulus_bound(k, n)
        description = ceil_log2(bound)
        assert description <= 8 * (math.log2(k) + math.log2(math.log2(n))) + 32


class TestReduction:
    def test_identity_below_prime(self):
        reduction = FKSReduction(universe_size=1000, prime=2003)
        assert all(reduction(x) == x for x in range(0, 1000, 37))

    def test_modular(self):
        reduction = FKSReduction(universe_size=1000, prime=97)
        assert reduction(500) == 500 % 97

    def test_domain_validated(self):
        reduction = FKSReduction(universe_size=100, prime=97)
        with pytest.raises(ValueError):
            reduction(100)

    def test_reduce_set_order(self):
        reduction = FKSReduction(universe_size=100, prime=7)
        assert reduction.reduce_set([10, 3]) == [3, 3 % 7]

    def test_collision_free_rate(self):
        # Random prime collision-free on a fixed 2k-subset w.p. 1 - 1/poly.
        rng = random.Random(2)
        elements = rng.sample(range(1 << 30), 64)
        shared = SharedRandomness(1)
        failures = sum(
            0
            if sample_fks_reduction(
                1 << 30, 64, shared.stream(f"t{t}")
            ).is_collision_free_on(elements)
            else 1
            for t in range(150)
        )
        assert failures <= 3

    def test_reduced_universe_much_smaller_than_original(self):
        reduction = sample_fks_reduction(
            1 << 60, 64, SharedRandomness(2).stream("q")
        )
        assert reduction.reduced_universe_size < 1 << 40

    def test_description_bits(self):
        reduction = sample_fks_reduction(
            1 << 30, 32, SharedRandomness(3).stream("q")
        )
        assert reduction.description_bits == ceil_log2(reduction.prime + 1)

    def test_deterministic_given_stream(self):
        a = sample_fks_reduction(1 << 20, 16, SharedRandomness(4).stream("q"))
        b = sample_fks_reduction(1 << 20, 16, SharedRandomness(4).stream("q"))
        assert a.prime == b.prime
