"""Tests for the analytic cost models."""

import random

import pytest

from conftest import make_instance
from repro.analysis.predictions import (
    gamma_length,
    measured_message_layout_sanity,
    predict_basic_intersection_bits,
    predict_equality_bits,
    predict_one_round_bits,
    predict_tree_bits_upper,
    predict_trivial_bits,
)
from repro.core.tree_protocol import TreeProtocol
from repro.protocols.basic_intersection import BasicIntersectionProtocol
from repro.protocols.equality import EqualityProtocol
from repro.protocols.one_round import OneRoundHashingProtocol
from repro.protocols.trivial import TrivialExchangeProtocol


class TestExactPredictions:
    """Protocols with deterministic message layout: prediction == measured."""

    def test_gamma_length_matches_writer(self):
        assert measured_message_layout_sanity() == 2**20

    @pytest.mark.parametrize("overlap", [0.0, 0.5, 1.0])
    def test_one_round_exact(self, rng, overlap):
        k = 128
        s, t = make_instance(rng, 1 << 20, k, overlap)
        measured = OneRoundHashingProtocol(1 << 20, k).run(s, t, seed=0).total_bits
        assert measured == predict_one_round_bits((len(s), len(t)), k)

    def test_one_round_exact_asymmetric(self, rng):
        k = 64
        s = frozenset(list(make_instance(rng, 1 << 20, k, 0.0)[0])[:10])
        t, _ = make_instance(rng, 1 << 20, k, 0.0)
        measured = OneRoundHashingProtocol(1 << 20, k).run(s, t, seed=0).total_bits
        assert measured == predict_one_round_bits((len(s), len(t)), k)

    @pytest.mark.parametrize("exponent", [0, 1, 2, 4])
    def test_basic_intersection_exact(self, rng, exponent):
        k = 96
        s, t = make_instance(rng, 1 << 20, k, 0.5)
        protocol = BasicIntersectionProtocol(1 << 20, k, exponent=exponent)
        measured = protocol.run(s, t, seed=0).total_bits
        assert measured == predict_basic_intersection_bits(
            len(s), len(t), exponent
        )

    @pytest.mark.parametrize("width", [2, 8, 32, 128])
    def test_equality_exact(self, width):
        measured = EqualityProtocol(width=width).run("a", "b", seed=0).total_bits
        assert measured == predict_equality_bits(width)


class TestExpectationModels:
    def test_trivial_within_model(self):
        rng = random.Random(70)
        for log_ratio in (4, 10, 16):
            k = 256
            n = k << log_ratio
            s, t = make_instance(rng, n, k, 0.0)
            protocol = TrivialExchangeProtocol(n, k, both_outputs=False)
            measured = protocol.run(s, t, seed=0).total_bits
            predicted = predict_trivial_bits(n, k, both_outputs=False)
            assert measured <= predicted * 1.2
            assert measured >= predicted * 0.5

    def test_tree_upper_bound_model(self):
        rng = random.Random(71)
        for k, rounds in ((128, 2), (256, 3), (1024, 4)):
            s, t = make_instance(rng, 1 << 24, k, 0.5)
            measured = (
                TreeProtocol(1 << 24, k, rounds=rounds).run(s, t, seed=0).total_bits
            )
            model = predict_tree_bits_upper(k, rounds)
            assert measured <= model * 2.0, (k, rounds)
            assert measured >= model / 8.0, (k, rounds)

    def test_tree_r1_model(self):
        rng = random.Random(72)
        k = 256
        s, t = make_instance(rng, 1 << 24, k, 0.5)
        measured = TreeProtocol(1 << 24, k, rounds=1).run(s, t, seed=0).total_bits
        model = predict_tree_bits_upper(k, 1)
        assert abs(measured - model) / model < 0.2

    def test_gamma_length_values(self):
        assert gamma_length(0) == 1
        assert gamma_length(1) == 3
        assert gamma_length(7) == 7
