"""Tests for the shared/private randomness model."""

import pytest

from repro.util.bits import BitString
from repro.util.rng import PrivateRandomness, SharedRandomness


class TestSharedRandomness:
    def test_same_seed_same_label_same_bits(self):
        # The defining property of the common random string: both parties
        # derive identical coins from (seed, label).
        alice_view = SharedRandomness(42)
        bob_view = SharedRandomness(42)
        assert alice_view.stream("h").bits(128) == bob_view.stream("h").bits(128)

    def test_different_labels_differ(self):
        shared = SharedRandomness(42)
        assert shared.stream("a").bits(64) != shared.stream("b").bits(64)

    def test_different_seeds_differ(self):
        assert SharedRandomness(1).stream("x").bits(64) != SharedRandomness(
            2
        ).stream("x").bits(64)

    def test_stream_restart_replays(self):
        shared = SharedRandomness(7)
        first = shared.stream("lbl")
        second = shared.stream("lbl")
        assert [first.bit() for _ in range(50)] == [
            second.bit() for _ in range(50)
        ]

    def test_namespacing_equivalence(self):
        shared = SharedRandomness(7)
        assert shared.sub("pre").stream("x").bits(32) == shared.stream(
            "pre/x"
        ).bits(32)

    def test_nested_namespacing(self):
        shared = SharedRandomness(7)
        nested = shared.sub("a").sub("b")
        assert nested.stream("c").bits(32) == shared.stream("a/b/c").bits(32)

    def test_bits_returns_bitstring_of_exact_length(self):
        stream = SharedRandomness(1).stream("x")
        drawn = stream.bits(17)
        assert isinstance(drawn, BitString)
        assert len(drawn) == 17

    def test_zero_bits(self):
        assert len(SharedRandomness(1).stream("x").bits(0)) == 0

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            SharedRandomness(1).stream("x").bits(-1)

    def test_uint_below_range(self):
        stream = SharedRandomness(3).stream("u")
        for _ in range(200):
            assert 0 <= stream.uint_below(7) < 7

    def test_uint_below_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            SharedRandomness(3).stream("u").uint_below(0)

    def test_uint_below_roughly_uniform(self):
        stream = SharedRandomness(5).stream("uniform")
        counts = [0] * 4
        for _ in range(4000):
            counts[stream.uint_below(4)] += 1
        for count in counts:
            assert 800 < count < 1200

    def test_sample_without_replacement(self):
        stream = SharedRandomness(5).stream("s")
        sample = stream.sample_without_replacement(100, 30)
        assert len(sample) == 30
        assert len(set(sample)) == 30
        assert sample == sorted(sample)
        assert all(0 <= x < 100 for x in sample)

    def test_sample_too_large_rejected(self):
        with pytest.raises(ValueError):
            SharedRandomness(1).stream("s").sample_without_replacement(5, 6)


class TestPrivateRandomness:
    def test_distinct_from_shared_with_same_seed(self):
        # Private streams live in their own namespace: a party's private
        # coins never accidentally coincide with the shared string.
        shared = SharedRandomness(9).stream("x")
        private = PrivateRandomness(9).stream("x")
        assert shared.bits(64) != private.bits(64)

    def test_replayable(self):
        a = PrivateRandomness(11).stream("y").bits(64)
        b = PrivateRandomness(11).stream("y").bits(64)
        assert a == b

    def test_seed_property(self):
        assert PrivateRandomness(13).seed == 13
        assert SharedRandomness(14).seed == 14

    def test_bit_balance(self):
        # Sanity: coin flips are roughly unbiased.
        stream = PrivateRandomness(17).stream("flips")
        ones = sum(stream.bit() for _ in range(4000))
        assert 1800 < ones < 2200
